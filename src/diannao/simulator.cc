#include "diannao/simulator.hh"

#include <algorithm>

#include "arch/energy_model.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sunstone {
namespace diannao {

namespace {

/** Finds the tensor bound to a given partition name, or -1. */
TensorId
tensorOfPartition(const BoundArch &ba, const std::string &name)
{
    for (TensorId t = 0; t < ba.numTensors(); ++t)
        if (ba.partitionOf(t) == name)
            return t;
    return -1;
}

/** Per-word read/write energy of one scratchpad (level 0). */
struct BufEnergy
{
    double readPj = 0;
    double writePj = 0;
    int wordBits = 16;
};

BufEnergy
bufEnergy(const BoundArch &ba, const std::string &partition)
{
    BufEnergy e;
    const TensorId t = tensorOfPartition(ba, partition);
    if (t < 0)
        return e;
    e.readPj = ba.readEnergyPj(0, t);
    e.writePj = ba.writeEnergyPj(0, t);
    e.wordBits = ba.workload().tensor(t).wordBits;
    return e;
}

} // anonymous namespace

SimResult
simulate(const BoundArch &ba, const CompiledProgram &prog)
{
    SUNSTONE_TRACE_SPAN("diannao.simulate");
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    SUNSTONE_ASSERT(ba.numLevels() == 2,
                    "DianNao simulator needs a two-level architecture");

    SimResult r;
    r.reorderWords = prog.reorderWords;

    const BufEnergy nbin = bufEnergy(ba, "nbin");
    const BufEnergy sb = bufEnergy(ba, "sb");
    const BufEnergy nbout = bufEnergy(ba, "nbout");
    const double dram_pj_per_bit = energy::dramPjPerBit();

    // Scratchpad capacities for the fit check.
    auto capacityOf = [&](Buffer b) {
        const char *name = b == Buffer::NBin   ? "nbin"
                           : b == Buffer::NBout ? "nbout"
                                                : "sb";
        for (const auto &p : arch.levels[0].partitions)
            if (p.name == name)
                return p.capacityBits;
        return std::int64_t(0);
    };
    auto wordBitsOf = [&](int tensor) {
        return tensor >= 0 ? wl.tensor(tensor).wordBits : 16;
    };

    double dma_words_cycles = 0;
    for (const auto &ins : prog.program) {
        ++r.instructions;
        switch (ins.op) {
          case Instruction::Op::Load: {
            const int bits = wordBitsOf(ins.tensor);
            if (capacityOf(ins.buf) > 0)
                SUNSTONE_ASSERT(ins.sizeWords * bits <=
                                        capacityOf(ins.buf) ||
                                    ins.sizeWords == wl.totalOps(),
                                "tile overflows scratchpad");
            r.dramDataWords += ins.sizeWords;
            r.dramPj += (double)ins.sizeWords * bits * dram_pj_per_bit;
            // The DMA writes the tile into the scratchpad.
            switch (ins.buf) {
              case Buffer::NBin:
                r.nbinWrites += ins.sizeWords;
                r.nbinPj += (double)ins.sizeWords * nbin.writePj;
                break;
              case Buffer::SB:
                r.sbWrites += ins.sizeWords;
                r.sbPj += (double)ins.sizeWords * sb.writePj;
                break;
              case Buffer::NBout:
                r.nboutWrites += ins.sizeWords;
                r.nboutPj += (double)ins.sizeWords * nbout.writePj;
                break;
            }
            dma_words_cycles +=
                (double)ins.sizeWords /
                arch.levels[1].readBwWordsPerCycle;
            break;
          }
          case Instruction::Op::Store: {
            const int bits = wordBitsOf(ins.tensor);
            r.dramDataWords += ins.sizeWords;
            r.dramPj += (double)ins.sizeWords * bits * dram_pj_per_bit;
            r.nboutReads += ins.sizeWords;
            r.nboutPj += (double)ins.sizeWords * nbout.readPj;
            dma_words_cycles +=
                (double)ins.sizeWords /
                arch.levels[1].writeBwWordsPerCycle;
            break;
          }
          case Instruction::Op::Compute: {
            r.macs += ins.macs;
            // Every MAC pulls one word from NBin and one from SB; the
            // NFU accumulates internally and touches NBout once per
            // output word of the pass.
            r.nbinReads += ins.macs;
            r.nbinPj += (double)ins.macs * nbin.readPj;
            r.sbReads += ins.macs;
            r.sbPj += (double)ins.macs * sb.readPj;
            r.nboutWrites += ins.nboutWords;
            r.nboutPj += (double)ins.nboutWords * nbout.writePj;
            break;
          }
        }
    }

    r.macPj = (double)r.macs * ba.macEnergyPj() * wl.multipliesPerOp();
    r.instrPj = (double)r.instructions * instructionBits * dram_pj_per_bit;
    // The reordering pass reads and rewrites each word once.
    r.reorderPj = (double)r.reorderWords * 16 * dram_pj_per_bit * 2;

    r.totalPj = r.macPj + r.dramPj + r.nbinPj + r.sbPj + r.nboutPj +
                r.instrPj + r.reorderPj;

    const double lanes = (double)arch.levels[0].fanout;
    r.cycles = std::max((double)r.macs / lanes, dma_words_cycles);
    obs::metrics().counter("diannao.programs_simulated").add(1);
    obs::metrics().counter("diannao.instructions_executed")
        .add(r.instructions);
    return r;
}

SimResult
simulateNaiveStreaming(const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("diannao.simulate_naive");
    const Workload &wl = ba.workload();
    SimResult r;
    const std::int64_t ops = wl.totalOps();
    const double dram_pj_per_bit = energy::dramPjPerBit();

    // The NFU's fixed datapath unrolls Tn=16 output lanes along one
    // output dimension; each streamed word of an operand not indexed by
    // that dimension is broadcast to all 16 lanes, so even the naive
    // schedule fetches it once per 16 operations. Lane-private operands
    // (weights) stream one word per operation; outputs accumulate inside
    // the NFU and are written once.
    const std::int64_t lane_width = 16;
    const TensorId out_t = wl.outputs().front();
    DimId lane_dim = -1;
    std::int64_t lane_dim_size = 0;
    for (DimId d : wl.reuse(out_t).indexing) {
        // Prefer the largest output dim that lets some input broadcast.
        bool helps = false;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (!wl.tensor(t).isOutput &&
                !wl.reuse(t).indexing.contains(d))
                helps = true;
        if (helps && wl.dimSize(d) > lane_dim_size) {
            lane_dim = d;
            lane_dim_size = wl.dimSize(d);
        }
    }
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        const auto &ts = wl.tensor(t);
        std::int64_t words;
        if (ts.isOutput) {
            words = ts.footprint(wl.shape());
        } else {
            const bool broadcast =
                lane_dim >= 0 && !wl.reuse(t).indexing.contains(lane_dim);
            words = broadcast
                        ? ops / std::min(lane_width,
                                         std::max<std::int64_t>(
                                             1, lane_dim_size))
                        : ops;
        }
        r.dramDataWords += words;
        r.dramPj += (double)words * ts.wordBits * dram_pj_per_bit;
    }
    r.macs = ops;
    r.macPj = (double)ops * ba.macEnergyPj() * wl.multipliesPerOp();
    r.instructions = 1 + wl.numTensors();
    r.instrPj =
        (double)r.instructions * instructionBits * dram_pj_per_bit;
    r.totalPj = r.macPj + r.dramPj + r.instrPj;
    const double lanes = (double)ba.arch().levels[0].fanout;
    r.cycles = std::max((double)ops / lanes,
                        (double)r.dramDataWords /
                            ba.arch().levels[1].readBwWordsPerCycle);
    return r;
}

} // namespace diannao
} // namespace sunstone
