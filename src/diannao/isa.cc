#include "diannao/isa.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace sunstone {
namespace diannao {

namespace {

/** One letter per opcode in the on-disk form. */
char
opChar(Instruction::Op op)
{
    switch (op) {
      case Instruction::Op::Load:
        return 'L';
      case Instruction::Op::Store:
        return 'S';
      case Instruction::Op::Compute:
        return 'C';
    }
    SUNSTONE_PANIC("bad opcode");
}

} // anonymous namespace

void
saveProgram(const Program &program, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot write program file '", path, "'");
    f << "# diannao program v1: op buf addr words macs nbout tensor\n";
    for (const auto &ins : program) {
        f << opChar(ins.op) << " " << static_cast<int>(ins.buf) << " "
          << ins.dramAddr << " " << ins.sizeWords << " " << ins.macs
          << " " << ins.nboutWords << " " << ins.tensor << "\n";
    }
    if (!f)
        SUNSTONE_FATAL("error writing program file '", path, "'");
}

Program
loadProgram(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot open program file '", path, "'");
    Program program;
    std::string line;
    int lineno = 0;
    while (std::getline(f, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char op;
        int buf;
        Instruction ins;
        if (!(ls >> op >> buf >> ins.dramAddr >> ins.sizeWords >>
              ins.macs >> ins.nboutWords >> ins.tensor))
            SUNSTONE_FATAL("program file '", path, "' line ", lineno,
                           ": malformed instruction");
        switch (op) {
          case 'L':
            ins.op = Instruction::Op::Load;
            break;
          case 'S':
            ins.op = Instruction::Op::Store;
            break;
          case 'C':
            ins.op = Instruction::Op::Compute;
            break;
          default:
            SUNSTONE_FATAL("program file '", path, "' line ", lineno,
                           ": unknown opcode '", op, "'");
        }
        if (buf < 0 || buf > 2)
            SUNSTONE_FATAL("program file '", path, "' line ", lineno,
                           ": bad buffer id ", buf);
        ins.buf = static_cast<Buffer>(buf);
        program.push_back(ins);
    }
    return program;
}

} // namespace diannao
} // namespace sunstone
