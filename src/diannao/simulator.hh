/**
 * @file
 * Instruction-level simulator of the DianNao-like accelerator
 * (Section V-D). Executes a compiled Program, tracking per-component
 * event counts and converting them to energy with the same 45 nm model
 * the rest of the repository uses. Instructions themselves are fetched
 * from DRAM (the paper's conservative assumption), so instruction
 * overhead appears as DRAM energy proportional to the stream length.
 */

#ifndef SUNSTONE_DIANNAO_SIMULATOR_HH
#define SUNSTONE_DIANNAO_SIMULATOR_HH

#include "arch/arch.hh"
#include "diannao/compiler.hh"
#include "diannao/isa.hh"

namespace sunstone {
namespace diannao {

/** Per-component event counts and energies for one simulated program. */
struct SimResult
{
    std::int64_t instructions = 0;
    std::int64_t macs = 0;
    std::int64_t dramDataWords = 0;
    std::int64_t nbinReads = 0, nbinWrites = 0;
    std::int64_t sbReads = 0, sbWrites = 0;
    std::int64_t nboutReads = 0, nboutWrites = 0;
    std::int64_t reorderWords = 0;

    /** Energy breakdown (pJ). */
    double macPj = 0;
    double dramPj = 0;
    double nbinPj = 0;
    double sbPj = 0;
    double nboutPj = 0;
    double instrPj = 0;
    double reorderPj = 0;
    double totalPj = 0;

    /** Execution cycles (compute/DMA overlapped via double buffering). */
    double cycles = 0;
};

/**
 * Executes a compiled program on the DianNao-like machine described by
 * `ba` (two levels, nbin/nbout/sb partitions). Checks that every loaded
 * tile fits its scratchpad; panics otherwise (the compiler guarantees
 * fitting tiles for valid mappings).
 */
SimResult simulate(const BoundArch &ba, const CompiledProgram &prog);

/**
 * Models the naive schedule of Fig. 9a: all operands streamed from DRAM
 * per operation, outputs accumulated in the NFU and written once; no
 * on-chip buffer reuse and negligible instruction traffic.
 */
SimResult simulateNaiveStreaming(const BoundArch &ba);

} // namespace diannao
} // namespace sunstone

#endif // SUNSTONE_DIANNAO_SIMULATOR_HH
