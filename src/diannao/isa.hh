/**
 * @file
 * DianNao-style instruction set (Section V-D): wide control instructions
 * drive DMA transfers between DRAM and the three on-chip scratchpads
 * (NBin for inputs, SB for synapses/weights, NBout for outputs) and kick
 * off FSM-sequenced NFU computation over on-chip data. As in DianNao, no
 * instructions are needed while data stays on chip — instructions are
 * only issued at off-chip transfer boundaries.
 */

#ifndef SUNSTONE_DIANNAO_ISA_HH
#define SUNSTONE_DIANNAO_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sunstone {
namespace diannao {

/** On-chip scratchpads of the DianNao-like accelerator. */
enum class Buffer { NBin, NBout, SB };

/** One 256-bit control instruction. */
struct Instruction
{
    enum class Op {
        /** DMA DRAM -> buffer. */
        Load,
        /** DMA buffer -> DRAM. */
        Store,
        /** Run the NFU over the resident tiles. */
        Compute,
    };

    Op op = Op::Compute;
    Buffer buf = Buffer::NBin;
    /** DRAM word address for Load/Store. */
    std::int64_t dramAddr = 0;
    /** Transfer size in words for Load/Store. */
    std::int64_t sizeWords = 0;
    /** MAC operations sequenced by a Compute. */
    std::int64_t macs = 0;
    /** Output words the NFU touches in NBout during a Compute. */
    std::int64_t nboutWords = 0;
    /** Tensor moved by a Load/Store (index into the workload). */
    int tensor = -1;

    std::string toString() const;
};

/** Width of one control instruction in bits (as in the paper). */
constexpr int instructionBits = 256;

/** A compiled instruction stream. */
using Program = std::vector<Instruction>;

/**
 * Writes a program as one instruction per line (the textual form of the
 * 256-bit control words); fatal() on I/O errors.
 */
void saveProgram(const Program &program, const std::string &path);

/** Reads a program written by saveProgram(); fatal() on parse errors. */
Program loadProgram(const std::string &path);

} // namespace diannao
} // namespace sunstone

#endif // SUNSTONE_DIANNAO_ISA_HH
