/**
 * @file
 * Compiler from a (workload, mapping) pair to a DianNao instruction
 * stream (Section V-D). The mapping must target a two-level DianNao-like
 * architecture (on-chip buffers + DRAM). The compiler walks the DRAM
 * level's temporal loop nest; whenever a tensor's resident tile changes
 * it emits the corresponding Load (and Store/reload for output tiles),
 * and it emits one Compute per processing pass.
 *
 * It also reports the data-reordering cost: tensors whose tiles are not
 * contiguous in DRAM must be laid out once before execution so that each
 * pass's operands can be fetched as a single burst (Section V-D).
 */

#ifndef SUNSTONE_DIANNAO_COMPILER_HH
#define SUNSTONE_DIANNAO_COMPILER_HH

#include "diannao/isa.hh"
#include "mapping/mapping.hh"

namespace sunstone {
namespace diannao {

/** Compilation result. */
struct CompiledProgram
{
    Program program;

    /** Words rewritten by the one-time DRAM data reordering pass. */
    std::int64_t reorderWords = 0;

    /** Total MACs sequenced (sanity: equals workload ops). */
    std::int64_t totalMacs = 0;
};

/**
 * Compiles a mapping for a two-level DianNao-like architecture.
 * fatal() if the architecture does not have exactly two levels.
 */
CompiledProgram compileMapping(const BoundArch &ba, const Mapping &m);

/**
 * Compiles the naive streaming schedule of Fig. 9a (left): every operand
 * is fetched from DRAM for every operation and every partial result is
 * spilled — the workload's inherent reuse is not captured.
 */
CompiledProgram compileNaive(const BoundArch &ba);

} // namespace diannao
} // namespace sunstone

#endif // SUNSTONE_DIANNAO_COMPILER_HH
