#include "diannao/compiler.hh"

#include <sstream>
#include <unordered_set>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sunstone {
namespace diannao {

std::string
Instruction::toString() const
{
    std::ostringstream os;
    switch (op) {
      case Op::Load:
        os << "LOAD  buf=" << static_cast<int>(buf) << " addr=" << dramAddr
           << " words=" << sizeWords;
        break;
      case Op::Store:
        os << "STORE buf=" << static_cast<int>(buf) << " addr=" << dramAddr
           << " words=" << sizeWords;
        break;
      case Op::Compute:
        os << "COMP  macs=" << macs << " nbout=" << nboutWords;
        break;
    }
    return os.str();
}

namespace {

/** Maps a tensor to its scratchpad via the partition binding. */
Buffer
bufferOf(const BoundArch &ba, TensorId t)
{
    const std::string &p = ba.partitionOf(t);
    if (p == "nbin")
        return Buffer::NBin;
    if (p == "nbout")
        return Buffer::NBout;
    if (p == "sb")
        return Buffer::SB;
    SUNSTONE_FATAL("tensor '", ba.workload().tensor(t).name,
                   "' bound to unknown DianNao partition '", p, "'");
}

/** Outer (DRAM-level) loop in nest order. */
struct Loop
{
    DimId dim;
    std::int64_t factor;
};

} // anonymous namespace

CompiledProgram
compileMapping(const BoundArch &ba, const Mapping &m)
{
    SUNSTONE_TRACE_SPAN("diannao.compile");
    obs::metrics().counter("diannao.programs_compiled").add(1);
    const Workload &wl = ba.workload();
    if (ba.numLevels() != 2)
        SUNSTONE_FATAL("DianNao compiler needs a two-level architecture, "
                       "got ", ba.numLevels(), " levels");
    std::string why;
    if (!m.valid(ba, &why))
        SUNSTONE_FATAL("cannot compile invalid mapping: ", why);

    CompiledProgram out;
    const int nd = wl.numDims();
    const auto tile_shape = m.tileShape(0);

    // MACs per processing pass: the volume of the on-chip tile.
    std::int64_t pass_macs = 1;
    for (DimId d = 0; d < nd; ++d)
        pass_macs = satMul(pass_macs, tile_shape[d]);

    // Per-tensor tile footprints and DRAM base addresses (tensors laid
    // out back to back after the reordering pass).
    std::vector<std::int64_t> tile_fp(wl.numTensors());
    std::vector<std::int64_t> base_addr(wl.numTensors());
    std::int64_t addr = 0;
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        tile_fp[t] = wl.tensor(t).footprint(tile_shape);
        base_addr[t] = addr;
        addr += wl.tensor(t).footprint(wl.shape());
    }

    // One-time reordering pass. The DMA fetches a tile as bursts of its
    // innermost contiguous run, so a tensor only needs rewriting when
    // that run is shorter than a DRAM burst. Weights are excluded: their
    // layout is fixed offline by the compiler at no runtime cost.
    constexpr std::int64_t burst_words = 8;
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        const auto &ts = wl.tensor(t);
        if (ts.name == "weight" || ts.name == "dweight" ||
            ts.name == "w")
            continue; // laid out offline by the compiler
        if (ts.isOutput)
            continue; // the consumer layer's input reorder covers this
                      // producer-consumer boundary once
        const std::int64_t run = ts.ranks.back().extent(tile_shape);
        const std::int64_t full = ts.ranks.back().extent(wl.shape());
        if (run < std::min(full, burst_words))
            out.reorderWords += ts.footprint(wl.shape());
    }

    // Walk the DRAM-level temporal nest.
    std::vector<Loop> loops;
    const auto &lm = m.level(1);
    for (DimId d : lm.order)
        if (lm.temporal[d] > 1)
            loops.push_back({d, lm.temporal[d]});

    std::int64_t total_steps = 1;
    for (const auto &l : loops)
        total_steps = satMul(total_steps, l.factor);
    SUNSTONE_ASSERT(total_steps <= 8'000'000,
                    "DianNao compilation walk too large: ", total_steps);

    const int n_loops = static_cast<int>(loops.size());
    std::vector<std::int64_t> index(n_loops, 0);

    // Tile identity per tensor: the loop indices over its indexing dims,
    // folded into a single mixed-radix id.
    auto tile_id = [&](TensorId t) {
        const DimSet idx = wl.reuse(t).indexing;
        std::int64_t id = 0;
        for (int i = 0; i < n_loops; ++i) {
            if (!idx.contains(loops[i].dim))
                continue;
            id = id * loops[i].factor + index[i];
        }
        return id;
    };

    std::vector<std::int64_t> cur_id(wl.numTensors(), -1);
    std::vector<std::unordered_set<std::int64_t>> seen(wl.numTensors());

    for (std::int64_t step = 0; step < total_steps; ++step) {
        for (TensorId t = 0; t < wl.numTensors(); ++t) {
            const std::int64_t id = tile_id(t);
            if (id == cur_id[t])
                continue;
            const auto &ts = wl.tensor(t);
            const Buffer buf = bufferOf(ba, t);
            if (ts.isOutput) {
                // Drain the finished tile, then (re)load on revisit.
                if (cur_id[t] >= 0)
                    out.program.push_back(
                        {Instruction::Op::Store, buf,
                         base_addr[t] + cur_id[t] * tile_fp[t],
                         tile_fp[t], 0, 0, t});
                if (seen[t].count(id))
                    out.program.push_back(
                        {Instruction::Op::Load, buf,
                         base_addr[t] + id * tile_fp[t], tile_fp[t], 0,
                         0, t});
                seen[t].insert(id);
            } else {
                out.program.push_back(
                    {Instruction::Op::Load, buf,
                     base_addr[t] + id * tile_fp[t], tile_fp[t], 0, 0,
                     t});
            }
            cur_id[t] = id;
        }
        std::int64_t out_words = 0;
        for (TensorId t : wl.outputs())
            out_words += tile_fp[t];
        out.program.push_back({Instruction::Op::Compute, Buffer::NBin, 0,
                               0, pass_macs, out_words, -1});
        out.totalMacs += pass_macs;

        for (int i = n_loops - 1; i >= 0; --i) {
            if (++index[i] < loops[i].factor)
                break;
            index[i] = 0;
        }
    }
    // Final drain of the resident output tiles.
    for (TensorId t : wl.outputs()) {
        if (cur_id[t] >= 0)
            out.program.push_back({Instruction::Op::Store, bufferOf(ba, t),
                                   base_addr[t] + cur_id[t] * tile_fp[t],
                                   tile_fp[t], 0, 0, t});
    }
    return out;
}

CompiledProgram
compileNaive(const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("diannao.compile");
    obs::metrics().counter("diannao.programs_compiled").add(1);
    const Workload &wl = ba.workload();
    CompiledProgram out;
    const std::int64_t ops = wl.totalOps();
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        const auto &ts = wl.tensor(t);
        if (ts.isOutput)
            out.program.push_back({Instruction::Op::Store,
                                   bufferOf(ba, t), 0,
                                   ts.footprint(wl.shape()), 0, 0, t});
        else
            out.program.push_back({Instruction::Op::Load, bufferOf(ba, t),
                                   0, ops, 0, 0, t});
    }
    out.program.push_back(
        {Instruction::Op::Compute, Buffer::NBin, 0, 0, ops, 0, -1});
    out.totalMacs = ops;
    return out;
}

} // namespace diannao
} // namespace sunstone
