/**
 * @file
 * Compact set of problem dimensions. Tensor-algebra workloads have a small
 * number of dimensions (7 for CONV, 4 for MTTKRP, ...), so a 32-bit mask
 * with value semantics is sufficient and keeps reuse analysis allocation
 * free.
 */

#ifndef SUNSTONE_WORKLOAD_DIM_SET_HH
#define SUNSTONE_WORKLOAD_DIM_SET_HH

#include <cstdint>

#include "common/logging.hh"

namespace sunstone {

/** Index of a problem dimension within its Workload (0-based). */
using DimId = int;

/** Maximum number of dimensions a workload may declare. */
constexpr int MaxDims = 32;

/** Value-semantic set of DimIds backed by a bit mask. */
class DimSet
{
  public:
    constexpr DimSet() = default;

    /** Constructs a singleton set. */
    static DimSet
    of(DimId d)
    {
        DimSet s;
        s.add(d);
        return s;
    }

    /** Constructs the set {0, 1, ..., n-1}. */
    static DimSet
    all(int n)
    {
        SUNSTONE_ASSERT(n >= 0 && n <= MaxDims, "bad dim count ", n);
        DimSet s;
        s.mask = (n == MaxDims) ? ~std::uint32_t(0)
                                : ((std::uint32_t(1) << n) - 1);
        return s;
    }

    void
    add(DimId d)
    {
        SUNSTONE_ASSERT(d >= 0 && d < MaxDims, "bad DimId ", d);
        mask |= std::uint32_t(1) << d;
    }

    void
    remove(DimId d)
    {
        SUNSTONE_ASSERT(d >= 0 && d < MaxDims, "bad DimId ", d);
        mask &= ~(std::uint32_t(1) << d);
    }

    bool
    contains(DimId d) const
    {
        SUNSTONE_ASSERT(d >= 0 && d < MaxDims, "bad DimId ", d);
        return mask & (std::uint32_t(1) << d);
    }

    bool empty() const { return mask == 0; }
    int size() const { return __builtin_popcount(mask); }

    DimSet
    unionWith(DimSet o) const
    {
        DimSet s;
        s.mask = mask | o.mask;
        return s;
    }

    DimSet
    intersect(DimSet o) const
    {
        DimSet s;
        s.mask = mask & o.mask;
        return s;
    }

    DimSet
    minus(DimSet o) const
    {
        DimSet s;
        s.mask = mask & ~o.mask;
        return s;
    }

    /** @return true when this is a subset of o. */
    bool subsetOf(DimSet o) const { return (mask & ~o.mask) == 0; }

    bool operator==(const DimSet &o) const = default;

    /** Raw mask, usable as a hash key. */
    std::uint32_t raw() const { return mask; }

    /** Iterator over the member DimIds in ascending order. */
    class Iterator
    {
      public:
        explicit Iterator(std::uint32_t m) : rest(m) {}
        DimId operator*() const { return __builtin_ctz(rest); }
        Iterator &
        operator++()
        {
            rest &= rest - 1;
            return *this;
        }
        bool operator!=(const Iterator &o) const { return rest != o.rest; }

      private:
        std::uint32_t rest;
    };

    Iterator begin() const { return Iterator(mask); }
    Iterator end() const { return Iterator(0); }

  private:
    std::uint32_t mask = 0;
};

} // namespace sunstone

#endif // SUNSTONE_WORKLOAD_DIM_SET_HH
