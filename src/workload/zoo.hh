/**
 * @file
 * Constructors for every tensor-algebra kernel in the paper's Table II,
 * plus the 1D convolution running example of Sections II-IV and the
 * weight-update (backward) convolution used in Fig. 7.
 */

#ifndef SUNSTONE_WORKLOAD_ZOO_HH
#define SUNSTONE_WORKLOAD_ZOO_HH

#include <cstdint>

#include "workload/workload.hh"

namespace sunstone {

/** Shape of a 2D convolution layer (dims as in Table II / Timeloop). */
struct ConvShape
{
    std::int64_t n = 1;      ///< batch
    std::int64_t k = 1;      ///< output channels
    std::int64_t c = 1;      ///< input channels
    std::int64_t p = 1;      ///< output rows
    std::int64_t q = 1;      ///< output cols
    std::int64_t r = 1;      ///< filter rows
    std::int64_t s = 1;      ///< filter cols
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::string name = "conv";
};

/**
 * CONV: ofmap[n,k,p,q] = sum_{c,r,s} ifmap[n,c,sh*p+r,sw*q+s]
 *                                     * weight[k,c,r,s].
 */
Workload makeConv2D(const ConvShape &shape);

/** Backward/weight-update CONV: dw[k,c,r,s] = sum_{n,p,q} ... (Fig. 7). */
Workload makeConvWeightUpdate(const ConvShape &shape);

/** The paper's running example: 1D conv with C input channels. */
Workload makeConv1D(std::int64_t k, std::int64_t c, std::int64_t p,
                    std::int64_t r);

/** Fully-connected layer / GEMM: out[m,n] = sum_k a[m,k] * b[k,n]. */
Workload makeGemm(std::int64_t m, std::int64_t n, std::int64_t k);

/** MTTKRP: out[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j]. */
Workload makeMTTKRP(std::int64_t i, std::int64_t k, std::int64_t l,
                    std::int64_t j, const std::string &name = "mttkrp");

/** SDDMM: out[i,j] = A[i,j] * sum_k B[i,k] * C[k,j]. */
Workload makeSDDMM(std::int64_t i, std::int64_t j, std::int64_t k,
                   const std::string &name = "sddmm");

/** TTMc: out[i,l,m] = sum_{j,k} A[i,j,k] * B[j,l] * C[k,m]. */
Workload makeTTMc(std::int64_t i, std::int64_t j, std::int64_t k,
                  std::int64_t l, std::int64_t m,
                  const std::string &name = "ttmc");

/** MMc (matrix chain): out[i,l] = sum_{j,k} A[i,j] * B[j,k] * C[k,l]. */
Workload makeMMc(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l, const std::string &name = "mmc");

/**
 * Depthwise CONV (MobileNet-style): every channel is filtered
 * independently, so the channel dim indexes *every* tensor and offers
 * no reuse -- a stress test for reuse inference.
 * ofmap[n,c,p,q] = sum_{r,s} ifmap[n,c,p+r,q+s] * weight[c,r,s].
 */
Workload makeDepthwiseConv(const ConvShape &shape);

/**
 * TCL (tensor contraction layer):
 * out[l,m,n] = sum_{i,j,k} A[i,j,k] * B[i,l] * C[j,m] * D[k,n].
 */
Workload makeTCL(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l, std::int64_t m, std::int64_t n,
                 const std::string &name = "tcl");

} // namespace sunstone

#endif // SUNSTONE_WORKLOAD_ZOO_HH
