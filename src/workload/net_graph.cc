#include "workload/net_graph.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace sunstone {

namespace {

/** Non-fatal tensor lookup; @return id or -1. */
TensorId
findTensor(const Workload &wl, const std::string &name)
{
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        if (wl.tensor(t).name == name)
            return t;
    return -1;
}

} // namespace

int
NetGraph::addNode(Workload wl, int count)
{
    nodes_.push_back({std::move(wl), count});
    return numNodes() - 1;
}

void
NetGraph::addEdge(int producer, const std::string &producer_tensor,
                  int consumer, const std::string &consumer_tensor)
{
    edges_.push_back({producer, producer_tensor, consumer, consumer_tensor});
}

bool
NetGraph::validate(std::string *err) const
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    for (int i = 0; i < numNodes(); ++i)
        if (nodes_[i].count < 1)
            return fail("node '" + nodes_[i].workload.name() +
                        "' has count < 1");

    for (int i = 0; i < numEdges(); ++i) {
        const NetEdge &e = edges_[i];
        std::ostringstream where;
        where << "edge " << i << " (" << e.producerTensor << " -> "
              << e.consumerTensor << ")";
        if (e.producer < 0 || e.producer >= numNodes() || e.consumer < 0 ||
            e.consumer >= numNodes())
            return fail(where.str() + ": node index out of range");
        if (e.producer == e.consumer)
            return fail(where.str() + ": self-edge");

        const Workload &pw = nodes_[e.producer].workload;
        const Workload &cw = nodes_[e.consumer].workload;
        const TensorId pt = findTensor(pw, e.producerTensor);
        const TensorId ct = findTensor(cw, e.consumerTensor);
        if (pt < 0)
            return fail(where.str() + ": producer op '" + pw.name() +
                        "' has no tensor '" + e.producerTensor + "'");
        if (ct < 0)
            return fail(where.str() + ": consumer op '" + cw.name() +
                        "' has no tensor '" + e.consumerTensor + "'");
        if (!pw.tensor(pt).isOutput)
            return fail(where.str() + ": producer tensor is not an output");
        if (cw.tensor(ct).isOutput)
            return fail(where.str() + ": consumer tensor is not an input");
        if (pw.tensor(pt).wordBits != cw.tensor(ct).wordBits)
            return fail(where.str() + ": word widths disagree");
        if (nodes_[e.producer].count != nodes_[e.consumer].count)
            return fail(where.str() + ": endpoint multiplicities disagree");

        const auto &pranks = pw.tensor(pt).ranks;
        const auto &cranks = cw.tensor(ct).ranks;
        if (pranks.size() != cranks.size())
            return fail(where.str() + ": rank counts disagree");
        for (std::size_t r = 0; r < pranks.size(); ++r) {
            const std::int64_t pe = pranks[r].extent(pw.shape());
            const std::int64_t ce = cranks[r].extent(cw.shape());
            // A consumer halo (sliding window) may read past the
            // produced extent; the reverse means the producer writes
            // data the shapes cannot hold.
            if (ce < pe) {
                std::ostringstream os;
                os << where.str() << ": rank " << r << " extent "
                   << "shrinks from " << pe << " to " << ce;
                return fail(os.str());
            }
        }
    }

    // A consumer input has at most one producer.
    for (int i = 0; i < numEdges(); ++i)
        for (int j = i + 1; j < numEdges(); ++j)
            if (edges_[i].consumer == edges_[j].consumer &&
                edges_[i].consumerTensor == edges_[j].consumerTensor)
                return fail("tensor '" + edges_[i].consumerTensor +
                            "' of node '" +
                            nodes_[edges_[i].consumer].workload.name() +
                            "' has two producers");

    // Kahn's algorithm detects cycles.
    std::vector<int> indeg(numNodes(), 0);
    for (const NetEdge &e : edges_)
        ++indeg[e.consumer];
    std::vector<int> ready;
    for (int i = 0; i < numNodes(); ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    int seen = 0;
    while (!ready.empty()) {
        const int v = ready.back();
        ready.pop_back();
        ++seen;
        for (const NetEdge &e : edges_)
            if (e.producer == v && --indeg[e.consumer] == 0)
                ready.push_back(e.consumer);
    }
    if (seen != numNodes())
        return fail("graph has a cycle");
    return true;
}

std::vector<int>
NetGraph::topoOrder() const
{
    std::vector<int> indeg(numNodes(), 0);
    for (const NetEdge &e : edges_)
        ++indeg[e.consumer];
    // Smallest-index-first among ready nodes keeps the order stable
    // under node insertion order, so schedules and checkpoints are
    // deterministic.
    std::vector<int> order;
    order.reserve(numNodes());
    std::vector<bool> done(numNodes(), false);
    for (int step = 0; step < numNodes(); ++step) {
        int pick = -1;
        for (int i = 0; i < numNodes(); ++i)
            if (!done[i] && indeg[i] == 0) {
                pick = i;
                break;
            }
        if (pick < 0)
            SUNSTONE_FATAL("topoOrder on a cyclic graph");
        done[pick] = true;
        order.push_back(pick);
        for (const NetEdge &e : edges_)
            if (e.producer == pick)
                --indeg[e.consumer];
    }
    return order;
}

int
NetGraph::consumerCount(int producer, const std::string &tensor_name) const
{
    int n = 0;
    for (const NetEdge &e : edges_)
        n += (e.producer == producer && e.producerTensor == tensor_name);
    return n;
}

std::vector<std::vector<std::string>>
NetGraph::ephemeralTensors(const std::vector<int> &group) const
{
    auto inGroup = [&](int v) {
        return std::find(group.begin(), group.end(), v) != group.end();
    };
    std::vector<std::vector<std::string>> eph(group.size());
    for (const NetEdge &e : edges_) {
        if (!inGroup(e.producer) || !inGroup(e.consumer))
            continue;
        // The producer side only becomes ephemeral when the group holds
        // every consumer of the tensor; otherwise an outside reader
        // still needs the DRAM copy.
        bool allInside = true;
        for (const NetEdge &o : edges_)
            if (o.producer == e.producer &&
                o.producerTensor == e.producerTensor)
                allInside &= inGroup(o.consumer);
        auto add = [&](std::size_t i, const std::string &name) {
            if (std::find(eph[i].begin(), eph[i].end(), name) ==
                eph[i].end())
                eph[i].push_back(name);
        };
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (group[i] == e.producer && allInside)
                add(i, e.producerTensor);
            if (group[i] == e.consumer)
                add(i, e.consumerTensor);
        }
    }
    return eph;
}

NetGraph
NetGraph::fromLayers(const std::vector<Layer> &layers)
{
    NetGraph g;
    for (const Layer &l : layers)
        g.addNode(l.workload, l.count);
    return g;
}

std::vector<Layer>
NetGraph::toLayers() const
{
    std::vector<Layer> layers;
    layers.reserve(nodes_.size());
    for (const NetNode &n : nodes_)
        layers.push_back({n.workload, n.count});
    return layers;
}

} // namespace sunstone
