/**
 * @file
 * Tensor-level network DAG (ROADMAP item 3): nodes are einsum ops
 * (reusing Workload), edges are named inter-op tensors — the producer's
 * output feeding a consumer's input. The flat std::vector<Layer> nets
 * are the degenerate edge-free case, adapted losslessly by fromLayers /
 * toLayers, so every pre-DAG net keeps its exact per-layer semantics.
 *
 * Edges exist so the scheduler can treat inter-op tensors as first-class
 * objects: a fused subgraph marks its internal edge tensors Ephemeral
 * (see arch.hh) and the cost model drops their DRAM round-trip when a
 * mapping keeps them resident on chip.
 */

#ifndef SUNSTONE_WORKLOAD_NET_GRAPH_HH
#define SUNSTONE_WORKLOAD_NET_GRAPH_HH

#include <string>
#include <vector>

#include "workload/nets.hh"

namespace sunstone {

/** One op of the network plus its multiplicity (mirrors Layer). */
struct NetNode
{
    Workload workload;
    int count = 1;
};

/**
 * An inter-op tensor: the producer's named output is (a slice of) the
 * consumer's named input. Shapes must agree rank-by-rank, except that a
 * consumer rank may have a larger extent than the producer's (halo of a
 * sliding-window consumer); the surplus is boundary data the fusion
 * machinery simply never drops.
 */
struct NetEdge
{
    int producer = -1;
    std::string producerTensor;
    int consumer = -1;
    std::string consumerTensor;
};

/** A network as a DAG of einsum ops over named inter-op tensors. */
class NetGraph
{
  public:
    /** Appends a node; @return its index. */
    int addNode(Workload wl, int count = 1);

    /** Appends an edge (validated later by validate()). */
    void addEdge(int producer, const std::string &producer_tensor,
                 int consumer, const std::string &consumer_tensor);

    int numNodes() const { return static_cast<int>(nodes_.size()); }
    int numEdges() const { return static_cast<int>(edges_.size()); }
    const NetNode &node(int i) const { return nodes_.at(i); }
    NetNode &node(int i) { return nodes_.at(i); }
    const NetEdge &edge(int i) const { return edges_.at(i); }
    const std::vector<NetNode> &nodes() const { return nodes_; }
    const std::vector<NetEdge> &edges() const { return edges_; }

    /**
     * Checks structural consistency: node counts >= 1; edge endpoints in
     * range and distinct; the producer tensor is an output and the
     * consumer tensor an input of the respective ops; word widths equal;
     * rank counts equal with consumer extents >= producer extents;
     * endpoint multiplicities equal; at most one edge into any consumer
     * input; and acyclicity.
     *
     * @param err optional; receives a human-readable reason on failure
     * @return true when the graph is well formed
     */
    bool validate(std::string *err = nullptr) const;

    /**
     * @return a deterministic topological order (Kahn's algorithm,
     * smallest node index first among ready nodes). The graph must be
     * acyclic; fatal() otherwise.
     */
    std::vector<int> topoOrder() const;

    /**
     * @return the number of edges consuming tensor `tensor_name`
     * produced by node `producer`.
     */
    int consumerCount(int producer, const std::string &tensor_name) const;

    /**
     * Residency classification for a candidate fused subgraph: for each
     * member (aligned with `group`), the names of its tensors that are
     * internal to the group — produced and consumed entirely inside it —
     * and therefore Ephemeral when the group is fused. Tensors touching
     * any node outside the group stay boundary.
     */
    std::vector<std::vector<std::string>>
    ephemeralTensors(const std::vector<int> &group) const;

    /** Adapts a flat layer list to an edge-free graph (lossless). */
    static NetGraph fromLayers(const std::vector<Layer> &layers);

    /** @return the node list as layers (drops edges; node-lossless). */
    std::vector<Layer> toLayers() const;

  private:
    std::vector<NetNode> nodes_;
    std::vector<NetEdge> edges_;
};

/**
 * Transformer attention per head as a three-op chain (Q·Kᵀ →
 * softmax-scale → ·V): S[i,k] = Q[i,j]·K[k,j]; P[i,k] = S[i,k]·G[i]
 * (the row-wise normalization as a scale proxy, keeping the op in the
 * einsum IR); O[i,l] = P[i,k]·V[k,l]. Edges carry S and P, the
 * seq×seq intermediates whose DRAM round-trip fusion removes.
 *
 * @param seq sequence length (i = k = seq; j = l = 64 per BERT head)
 * @param heads node multiplicity (12 for BERT-base)
 */
NetGraph attentionGraph(std::int64_t seq = 512, int heads = 12);

/**
 * ResNet-18 with residual-block structure: the conv layers of
 * resnet18Layers() unrolled into distinct nodes with producer→consumer
 * edges wherever one conv's ofmap feeds the next conv's ifmap with
 * agreeing shapes. Tensors feeding a residual add (two consumers) stay
 * boundary, matching the single-consumer chain-fusion rule.
 */
NetGraph resnet18Graph(std::int64_t batch = 16);

} // namespace sunstone

#endif // SUNSTONE_WORKLOAD_NET_GRAPH_HH
