/**
 * @file
 * Layer tables for the networks and tensor datasets the paper evaluates:
 * ResNet-18 (Fig. 8, Table VI, Fig. 9), Inception-v3 weight-update layers
 * (Fig. 7, Table I), and the non-DNN workload instances of Fig. 6
 * (MTTKRP / TTMc / SDDMM over FROSTT / SuiteSparse shapes).
 *
 * Mode sizes of the sparse datasets are rounded (< 1% change) to nearby
 * composite numbers so divisor-exact tiling has factors to work with; all
 * mappers see the same rounded shapes (see DESIGN.md "Substitutions").
 */

#ifndef SUNSTONE_WORKLOAD_NETS_HH
#define SUNSTONE_WORKLOAD_NETS_HH

#include <vector>

#include "workload/zoo.hh"

namespace sunstone {

/** A named layer plus its multiplicity within the network. */
struct Layer
{
    Workload workload;
    int count = 1;
};

/**
 * Unique convolution layers of ResNet-18 with multiplicities.
 * @param batch batch size (the paper uses 16 for Fig. 8)
 */
std::vector<Layer> resnet18Layers(std::int64_t batch = 16);

/**
 * Representative Inception-v3 convolution layers, forward direction,
 * including the asymmetric 1x7 / 7x1 / 1x3 / 3x1 kernels that break
 * symmetric-convolution-only tools (Section V-B2).
 */
std::vector<Layer> inceptionV3Layers(std::int64_t batch = 16);

/**
 * The same Inception-v3 layers as weight-update (backward w.r.t. weights)
 * einsums — the Fig. 7 benchmark.
 */
std::vector<Layer> inceptionV3WeightUpdateLayers(std::int64_t batch = 16);

/** Fig. 6 non-DNN suite: MTTKRP rank 32, TTMc rank 8, SDDMM rank 512. */
std::vector<Layer> nonDnnSuite();

/** A small Inception-v3 layer used for Table I space-size estimates. */
Workload inceptionTableIExample(std::int64_t batch = 16);

/** Unique AlexNet convolution layers (Table II cites TCL on AlexNet). */
std::vector<Layer> alexnetLayers(std::int64_t batch = 4);

/** Unique VGG-16 convolution layers. */
std::vector<Layer> vgg16Layers(std::int64_t batch = 4);

/**
 * TCL instances replacing the flatten+fc entry of AlexNet and VGG
 * (Table II's "Application Instance" column for TCL).
 */
std::vector<Layer> tclSuite();

/**
 * Transformer attention as matrix chains (Table II's MMc row): the
 * score*value chain per head for BERT-base-like shapes.
 */
std::vector<Layer> attentionSuite(std::int64_t seq = 512);

/** MobileNet-style depthwise separable blocks (extension workloads). */
std::vector<Layer> depthwiseSuite(std::int64_t batch = 4);

} // namespace sunstone

#endif // SUNSTONE_WORKLOAD_NETS_HH
