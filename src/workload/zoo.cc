#include "workload/zoo.hh"

#include <sstream>

namespace sunstone {

Workload
makeConv2D(const ConvShape &sh)
{
    std::ostringstream expr;
    expr << "ofmap[n,k,p,q] = ifmap[n,c,";
    if (sh.strideH != 1)
        expr << sh.strideH << "*";
    expr << "p+r,";
    if (sh.strideW != 1)
        expr << sh.strideW << "*";
    expr << "q+s] * weight[k,c,r,s]";
    return parseEinsum(sh.name, expr.str(),
                       {{"n", sh.n},
                        {"k", sh.k},
                        {"c", sh.c},
                        {"p", sh.p},
                        {"q", sh.q},
                        {"r", sh.r},
                        {"s", sh.s}});
}

Workload
makeConvWeightUpdate(const ConvShape &sh)
{
    // Gradient w.r.t. weights: the filter tensor becomes the output and
    // the reduction runs over batch and output positions.
    std::ostringstream expr;
    expr << "dweight[k,c,r,s] = dofmap[n,k,p,q] * ifmap[n,c,";
    if (sh.strideH != 1)
        expr << sh.strideH << "*";
    expr << "p+r,";
    if (sh.strideW != 1)
        expr << sh.strideW << "*";
    expr << "q+s]";
    return parseEinsum(sh.name + "_wu", expr.str(),
                       {{"n", sh.n},
                        {"k", sh.k},
                        {"c", sh.c},
                        {"p", sh.p},
                        {"q", sh.q},
                        {"r", sh.r},
                        {"s", sh.s}});
}

Workload
makeConv1D(std::int64_t k, std::int64_t c, std::int64_t p, std::int64_t r)
{
    return parseEinsum("conv1d", "ofmap[k,p] = ifmap[c,p+r] * weight[k,c,r]",
                       {{"k", k}, {"c", c}, {"p", p}, {"r", r}});
}

Workload
makeGemm(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return parseEinsum("gemm", "out[m,n] = a[m,k] * b[k,n]",
                       {{"m", m}, {"n", n}, {"k", k}});
}

Workload
makeMTTKRP(std::int64_t i, std::int64_t k, std::int64_t l, std::int64_t j,
           const std::string &name)
{
    return parseEinsum(name, "out[i,j] = A[i,k,l] * B[k,j] * C[l,j]",
                       {{"i", i}, {"k", k}, {"l", l}, {"j", j}});
}

Workload
makeSDDMM(std::int64_t i, std::int64_t j, std::int64_t k,
          const std::string &name)
{
    return parseEinsum(name, "out[i,j] = A[i,j] * B[i,k] * C[k,j]",
                       {{"i", i}, {"j", j}, {"k", k}});
}

Workload
makeTTMc(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l,
         std::int64_t m, const std::string &name)
{
    return parseEinsum(name, "out[i,l,m] = A[i,j,k] * B[j,l] * C[k,m]",
                       {{"i", i}, {"j", j}, {"k", k}, {"l", l}, {"m", m}});
}

Workload
makeMMc(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l,
        const std::string &name)
{
    return parseEinsum(name, "out[i,l] = A[i,j] * B[j,k] * C[k,l]",
                       {{"i", i}, {"j", j}, {"k", k}, {"l", l}});
}

Workload
makeDepthwiseConv(const ConvShape &sh)
{
    std::ostringstream expr;
    expr << "ofmap[n,c,p,q] = ifmap[n,c,";
    if (sh.strideH != 1)
        expr << sh.strideH << "*";
    expr << "p+r,";
    if (sh.strideW != 1)
        expr << sh.strideW << "*";
    expr << "q+s] * weight[c,r,s]";
    return parseEinsum(sh.name + "_dw", expr.str(),
                       {{"n", sh.n},
                        {"c", sh.c},
                        {"p", sh.p},
                        {"q", sh.q},
                        {"r", sh.r},
                        {"s", sh.s}});
}

Workload
makeTCL(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l,
        std::int64_t m, std::int64_t n, const std::string &name)
{
    return parseEinsum(
        name, "out[l,m,n] = A[i,j,k] * B[i,l] * C[j,m] * D[k,n]",
        {{"i", i}, {"j", j}, {"k", k}, {"l", l}, {"m", m}, {"n", n}});
}

} // namespace sunstone
