/**
 * @file
 * Tensor-algebra workload description (the paper's Section IV problem
 * input): named problem dimensions with sizes, plus a list of tensors each
 * indexed by affine expressions over the dimensions. Compound expressions
 * such as p+r model sliding-window (convolution) access; integer
 * coefficients model strides and dilation (2*p + r).
 *
 * From this description alone the library infers all reuse information
 * (Table III in the paper): indexing vs non-indexing dimensions, full reuse
 * and partial (sliding-window) reuse. No per-workload heuristics exist
 * anywhere downstream.
 */

#ifndef SUNSTONE_WORKLOAD_WORKLOAD_HH
#define SUNSTONE_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "workload/dim_set.hh"

namespace sunstone {

/** One term of an affine index expression: coeff * dim. */
struct IndexTerm
{
    DimId dim = 0;
    std::int64_t coeff = 1;

    bool operator==(const IndexTerm &) const = default;
};

/**
 * Affine index expression, e.g. [p + r] or [2*p + r]. A tensor rank is
 * indexed by exactly one expression; most expressions have a single term.
 */
struct IndexExpr
{
    std::vector<IndexTerm> terms;

    /** @return true when the expression has two or more terms. */
    bool compound() const { return terms.size() >= 2; }

    /** @return the set of dims participating in this expression. */
    DimSet dims() const;

    /**
     * Extent of this rank when each dim d spans [0, shape[d]).
     * For p + r with extents Pt, Rt this is (Pt - 1) + (Rt - 1) + 1,
     * the standard halo'd tile width. Inline: the cost model calls this
     * for every rank of every tensor of every evaluation.
     */
    std::int64_t
    extent(const std::vector<std::int64_t> &shape) const
    {
        // The index values span [0, sum coeff_i * (extent_i - 1)], hence
        // the accessed extent along this rank is that sum plus one.
        std::int64_t e = 1;
        for (const auto &t : terms) {
            SUNSTONE_ASSERT(t.dim >= 0 && t.dim < (int)shape.size(),
                            "dim out of range in IndexExpr");
            e += t.coeff * (shape[t.dim] - 1);
        }
        return e;
    }

    bool operator==(const IndexExpr &) const = default;
};

/** A tensor participating in the computation. */
struct TensorSpec
{
    std::string name;
    std::vector<IndexExpr> ranks;
    bool isOutput = false;
    /** Datatype width in bits (Table IV gives per-datatype precisions). */
    int wordBits = 16;

    /** @return union of dims over all ranks (the indexing dims). */
    DimSet indexingDims() const;

    /** @return tensor footprint (in words) for the given tile shape.
     *  Inline for the same reason as IndexExpr::extent(). */
    std::int64_t
    footprint(const std::vector<std::int64_t> &shape) const
    {
        std::int64_t fp = 1;
        for (const auto &r : ranks)
            fp = satMul(fp, r.extent(shape));
        return fp;
    }
};

/** Identifies a tensor within its workload. */
using TensorId = int;

/** Per-tensor reuse information inferred from the access pattern. */
struct TensorReuse
{
    /** Dims appearing in some index expression of the tensor. */
    DimSet indexing;
    /** Dims not indexing the tensor: iterating them fully reuses it. */
    DimSet fullyReusedBy;
    /**
     * Dims that index the tensor only through a compound (sliding-window)
     * expression: iterating them reuses the overlap (partial reuse).
     */
    DimSet partiallyReusedBy;
};

/**
 * A complete workload: dimension table plus tensors. Construct via
 * WorkloadBuilder or parseEinsum(); both validate the description.
 */
class Workload
{
  public:
    /** @return human-readable workload name. */
    const std::string &name() const { return name_; }

    int numDims() const { return static_cast<int>(dimSizes.size()); }
    std::int64_t dimSize(DimId d) const { return dimSizes.at(d); }
    const std::string &dimName(DimId d) const { return dimNames.at(d); }
    const std::vector<std::int64_t> &shape() const { return dimSizes; }

    /** @return DimId for a dimension name; fatal() if absent. */
    DimId dimByName(const std::string &n) const;

    int numTensors() const { return static_cast<int>(tensors_.size()); }
    const TensorSpec &tensor(TensorId t) const { return tensors_.at(t); }
    const std::vector<TensorSpec> &tensors() const { return tensors_; }

    /** @return TensorId for a tensor name; fatal() if absent. */
    TensorId tensorByName(const std::string &n) const;

    /** @return ids of output tensors (usually exactly one). */
    std::vector<TensorId> outputs() const;

    /** @return inferred reuse info for tensor t (cached). */
    const TensorReuse &reuse(TensorId t) const { return reuse_.at(t); }

    /**
     * @return total number of compute operations: the volume of the
     * operation space (product of all dimension sizes), as in Fig. 2.
     */
    std::int64_t totalOps() const;

    /** @return multiplies per operation-space point (#inputs). */
    int multipliesPerOp() const;

    /** Sets the word width of a tensor (chainable tweak for presets). */
    void setWordBits(TensorId t, int bits) { tensors_.at(t).wordBits = bits; }

    /** Renders the algebraic definition, e.g. for logs and docs. */
    std::string toString() const;

    /** @return a copy with a different shape (same access pattern). */
    Workload withShape(const std::vector<std::int64_t> &new_shape) const;

  private:
    friend class WorkloadBuilder;

    void computeReuse();
    void validate() const;

    std::string name_;
    std::vector<std::string> dimNames;
    std::vector<std::int64_t> dimSizes;
    std::vector<TensorSpec> tensors_;
    std::vector<TensorReuse> reuse_;
};

/** Fluent builder for Workload. */
class WorkloadBuilder
{
  public:
    explicit WorkloadBuilder(std::string name);

    /** Declares a problem dimension with its size. */
    WorkloadBuilder &dim(const std::string &name, std::int64_t size);

    /** Starts a new input tensor. */
    WorkloadBuilder &input(const std::string &name, int word_bits = 16);

    /** Starts a new output tensor. */
    WorkloadBuilder &output(const std::string &name, int word_bits = 16);

    /** Adds a single-dim rank (coeff * dim) to the current tensor. */
    WorkloadBuilder &rank(const std::string &dim_name,
                          std::int64_t coeff = 1);

    /** Adds a compound rank such as [p + r] or [2*p + r]. */
    WorkloadBuilder &
    rank(std::vector<std::pair<std::string, std::int64_t>> terms);

    /** Finalizes: validates, infers reuse, and returns the workload. */
    Workload build();

  private:
    Workload w;
};

/**
 * Parses an einsum-style description into a Workload, e.g.
 *   parseEinsum("mttkrp", "out[i,j] = A[i,k,l] * B[k,j] * C[l,j]",
 *               {{"i", 64}, {"j", 32}, {"k", 64}, {"l", 64}});
 * Compound ranks use '+' ("ifmap[c, p+r]") and strides use 'N*'
 * ("ifmap[c, 2*p+r]"). The left-hand side is the output tensor.
 * Calls fatal() on malformed input.
 */
Workload
parseEinsum(const std::string &name, const std::string &expr,
            const std::vector<std::pair<std::string, std::int64_t>> &sizes);

} // namespace sunstone

#endif // SUNSTONE_WORKLOAD_WORKLOAD_HH
