#include "workload/workload.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

DimSet
IndexExpr::dims() const
{
    DimSet s;
    for (const auto &t : terms)
        s.add(t.dim);
    return s;
}

DimSet
TensorSpec::indexingDims() const
{
    DimSet s;
    for (const auto &r : ranks)
        s = s.unionWith(r.dims());
    return s;
}

DimId
Workload::dimByName(const std::string &n) const
{
    for (int d = 0; d < numDims(); ++d)
        if (dimNames[d] == n)
            return d;
    SUNSTONE_FATAL("workload '", name_, "' has no dimension '", n, "'");
}

TensorId
Workload::tensorByName(const std::string &n) const
{
    for (int t = 0; t < numTensors(); ++t)
        if (tensors_[t].name == n)
            return t;
    SUNSTONE_FATAL("workload '", name_, "' has no tensor '", n, "'");
}

std::vector<TensorId>
Workload::outputs() const
{
    std::vector<TensorId> out;
    for (int t = 0; t < numTensors(); ++t)
        if (tensors_[t].isOutput)
            out.push_back(t);
    return out;
}

std::int64_t
Workload::totalOps() const
{
    std::int64_t ops = 1;
    for (auto s : dimSizes)
        ops = satMul(ops, s);
    return ops;
}

int
Workload::multipliesPerOp() const
{
    int inputs = 0;
    for (const auto &t : tensors_)
        if (!t.isOutput)
            ++inputs;
    return std::max(1, inputs - 1);
}

void
Workload::computeReuse()
{
    reuse_.clear();
    reuse_.reserve(tensors_.size());
    const DimSet all = DimSet::all(numDims());
    for (const auto &ts : tensors_) {
        TensorReuse r;
        r.indexing = ts.indexingDims();
        r.fullyReusedBy = all.minus(r.indexing);
        // A dim yields partial (sliding-window) reuse when it appears only
        // inside compound expressions: moving along it shifts the window,
        // so the overlap can be kept (Section IV, Table III).
        DimSet simple;
        for (const auto &rank : ts.ranks)
            if (!rank.compound())
                simple = simple.unionWith(rank.dims());
        for (const auto &rank : ts.ranks) {
            if (!rank.compound())
                continue;
            for (const auto &term : rank.terms)
                if (!simple.contains(term.dim))
                    r.partiallyReusedBy.add(term.dim);
        }
        reuse_.push_back(r);
    }
}

void
Workload::validate() const
{
    if (dimSizes.empty())
        SUNSTONE_FATAL("workload '", name_, "' declares no dimensions");
    if (tensors_.empty())
        SUNSTONE_FATAL("workload '", name_, "' declares no tensors");
    for (auto s : dimSizes)
        if (s < 1)
            SUNSTONE_FATAL("workload '", name_,
                           "' has a non-positive dimension size");
    int outputs = 0;
    DimSet used;
    for (const auto &t : tensors_) {
        if (t.isOutput)
            ++outputs;
        if (t.ranks.empty())
            SUNSTONE_FATAL("tensor '", t.name, "' has no ranks");
        for (const auto &r : t.ranks) {
            if (r.terms.empty())
                SUNSTONE_FATAL("tensor '", t.name, "' has an empty rank");
            for (const auto &term : r.terms) {
                if (term.dim < 0 || term.dim >= numDims())
                    SUNSTONE_FATAL("tensor '", t.name,
                                   "' indexes an undeclared dimension");
                if (term.coeff < 1)
                    SUNSTONE_FATAL("tensor '", t.name,
                                   "' has a non-positive stride");
            }
        }
        used = used.unionWith(t.indexingDims());
    }
    if (outputs == 0)
        SUNSTONE_FATAL("workload '", name_, "' has no output tensor");
    if (!(used == DimSet::all(numDims())))
        SUNSTONE_FATAL("workload '", name_,
                       "' declares a dimension no tensor uses");
}

std::string
Workload::toString() const
{
    std::ostringstream os;
    os << name_ << ": ";
    bool first_tensor = true;
    // Output first, then inputs, einsum style.
    auto render = [&](const TensorSpec &t) {
        os << t.name << "[";
        for (std::size_t i = 0; i < t.ranks.size(); ++i) {
            if (i)
                os << ",";
            const auto &terms = t.ranks[i].terms;
            for (std::size_t j = 0; j < terms.size(); ++j) {
                if (j)
                    os << "+";
                if (terms[j].coeff != 1)
                    os << terms[j].coeff << "*";
                os << dimNames[terms[j].dim];
            }
        }
        os << "]";
    };
    for (const auto &t : tensors_)
        if (t.isOutput) {
            render(t);
            os << " = ";
        }
    for (const auto &t : tensors_) {
        if (t.isOutput)
            continue;
        if (!first_tensor)
            os << " * ";
        render(t);
        first_tensor = false;
    }
    os << "  { ";
    for (int d = 0; d < numDims(); ++d) {
        if (d)
            os << ", ";
        os << dimNames[d] << ":" << dimSizes[d];
    }
    os << " }";
    return os.str();
}

Workload
Workload::withShape(const std::vector<std::int64_t> &new_shape) const
{
    SUNSTONE_ASSERT(new_shape.size() == dimSizes.size(),
                    "withShape(): rank mismatch");
    Workload w = *this;
    w.dimSizes = new_shape;
    w.validate();
    w.computeReuse();
    return w;
}

WorkloadBuilder::WorkloadBuilder(std::string name)
{
    w.name_ = std::move(name);
}

WorkloadBuilder &
WorkloadBuilder::dim(const std::string &name, std::int64_t size)
{
    for (const auto &n : w.dimNames)
        if (n == name)
            SUNSTONE_FATAL("duplicate dimension '", name, "'");
    w.dimNames.push_back(name);
    w.dimSizes.push_back(size);
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::input(const std::string &name, int word_bits)
{
    TensorSpec t;
    t.name = name;
    t.wordBits = word_bits;
    w.tensors_.push_back(std::move(t));
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::output(const std::string &name, int word_bits)
{
    TensorSpec t;
    t.name = name;
    t.isOutput = true;
    t.wordBits = word_bits;
    w.tensors_.push_back(std::move(t));
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::rank(const std::string &dim_name, std::int64_t coeff)
{
    return rank({{dim_name, coeff}});
}

WorkloadBuilder &
WorkloadBuilder::rank(std::vector<std::pair<std::string, std::int64_t>> terms)
{
    if (w.tensors_.empty())
        SUNSTONE_FATAL("rank() before any input()/output()");
    IndexExpr e;
    for (auto &[n, c] : terms)
        e.terms.push_back({w.dimByName(n), c});
    w.tensors_.back().ranks.push_back(std::move(e));
    return *this;
}

Workload
WorkloadBuilder::build()
{
    w.validate();
    w.computeReuse();
    return w;
}

namespace {

/** Cursor-based mini parser for the einsum grammar. */
struct Parser
{
    const std::string &s;
    std::size_t pos = 0;

    explicit Parser(const std::string &str) : s(str) {}

    void
    skipWs()
    {
        while (pos < s.size() && std::isspace((unsigned char)s[pos]))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    done()
    {
        skipWs();
        return pos >= s.size();
    }

    std::string
    ident()
    {
        skipWs();
        std::size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum((unsigned char)s[pos]) || s[pos] == '_'))
            ++pos;
        if (pos == start)
            SUNSTONE_FATAL("einsum parse error near position ", start,
                           " in '", s, "'");
        return s.substr(start, pos - start);
    }

    std::int64_t
    number()
    {
        skipWs();
        std::size_t start = pos;
        while (pos < s.size() && std::isdigit((unsigned char)s[pos]))
            ++pos;
        if (pos == start)
            SUNSTONE_FATAL("expected number at position ", start, " in '",
                           s, "'");
        return std::stoll(s.substr(start, pos - start));
    }

    bool
    peekDigit()
    {
        skipWs();
        return pos < s.size() && std::isdigit((unsigned char)s[pos]);
    }
};

} // anonymous namespace

Workload
parseEinsum(const std::string &name, const std::string &expr,
            const std::vector<std::pair<std::string, std::int64_t>> &sizes)
{
    WorkloadBuilder b(name);
    for (const auto &[n, sz] : sizes)
        b.dim(n, sz);

    Parser p(expr);
    bool is_output = true;
    while (!p.done()) {
        std::string tname = p.ident();
        if (is_output)
            b.output(tname);
        else
            b.input(tname);
        if (!p.eat('['))
            SUNSTONE_FATAL("expected '[' after tensor '", tname, "'");
        // Parse comma-separated ranks; each rank is term (+ term)* with
        // term := [N*] dim.
        do {
            std::vector<std::pair<std::string, std::int64_t>> terms;
            do {
                std::int64_t coeff = 1;
                if (p.peekDigit()) {
                    coeff = p.number();
                    if (!p.eat('*'))
                        SUNSTONE_FATAL("expected '*' after stride in '",
                                       expr, "'");
                }
                terms.emplace_back(p.ident(), coeff);
            } while (p.eat('+'));
            b.rank(terms);
        } while (p.eat(','));
        if (!p.eat(']'))
            SUNSTONE_FATAL("expected ']' in '", expr, "'");
        if (is_output) {
            if (!p.eat('='))
                SUNSTONE_FATAL("expected '=' after output in '", expr, "'");
            is_output = false;
        } else if (!p.eat('*') && !p.done()) {
            SUNSTONE_FATAL("expected '*' between inputs in '", expr, "'");
        }
    }
    return b.build();
}

} // namespace sunstone
