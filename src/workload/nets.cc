#include "workload/nets.hh"

#include "workload/net_graph.hh"

namespace sunstone {

namespace {

ConvShape
conv(std::string name, std::int64_t n, std::int64_t k, std::int64_t c,
     std::int64_t pq, std::int64_t r, std::int64_t s, std::int64_t stride)
{
    ConvShape sh;
    sh.name = std::move(name);
    sh.n = n;
    sh.k = k;
    sh.c = c;
    sh.p = pq;
    sh.q = pq;
    sh.r = r;
    sh.s = s;
    sh.strideH = stride;
    sh.strideW = stride;
    return sh;
}

} // anonymous namespace

std::vector<Layer>
resnet18Layers(std::int64_t batch)
{
    std::vector<Layer> layers;
    auto add = [&](const ConvShape &sh, int count) {
        layers.push_back({makeConv2D(sh), count});
    };
    add(conv("conv1", batch, 64, 3, 112, 7, 7, 2), 1);
    add(conv("conv2_x", batch, 64, 64, 56, 3, 3, 1), 4);
    add(conv("conv3_ds", batch, 128, 64, 28, 1, 1, 2), 1);
    add(conv("conv3_1", batch, 128, 64, 28, 3, 3, 2), 1);
    add(conv("conv3_x", batch, 128, 128, 28, 3, 3, 1), 3);
    add(conv("conv4_ds", batch, 256, 128, 14, 1, 1, 2), 1);
    add(conv("conv4_1", batch, 256, 128, 14, 3, 3, 2), 1);
    add(conv("conv4_x", batch, 256, 256, 14, 3, 3, 1), 3);
    add(conv("conv5_ds", batch, 512, 256, 7, 1, 1, 2), 1);
    add(conv("conv5_1", batch, 512, 256, 7, 3, 3, 2), 1);
    add(conv("conv5_x", batch, 512, 512, 7, 3, 3, 1), 3);
    layers.push_back({makeGemm(batch, 1000, 512), 1});
    return layers;
}

namespace {

/**
 * The representative Inception-v3 convolution set. Layer names follow the
 * paper's Fig. 7 style; the asymmetric 1x7 / 7x1 / 1x3 / 3x1 kernels are
 * the ones symmetric-only tools cannot map.
 */
std::vector<ConvShape>
inceptionShapes(std::int64_t batch)
{
    std::vector<ConvShape> shapes;
    ConvShape sh;

    shapes.push_back(conv("3x3_stem", batch, 64, 32, 147, 3, 3, 1));
    shapes.push_back(conv("3x3_red", batch, 192, 80, 72, 3, 3, 1));
    shapes.push_back(conv("5x5_mod", batch, 64, 48, 35, 5, 5, 1));
    shapes.push_back(conv("3x3_dbl", batch, 96, 96, 35, 3, 3, 1));
    shapes.push_back(conv("1x1_mixed", batch, 192, 768, 17, 1, 1, 1));

    sh = conv("1x7_deep", batch, 128, 128, 17, 1, 7, 1);
    sh.r = 1;
    sh.s = 7;
    shapes.push_back(sh);

    sh = conv("7x1_deep", batch, 192, 128, 17, 7, 1, 1);
    sh.r = 7;
    sh.s = 1;
    shapes.push_back(sh);

    sh = conv("1x3_8", batch, 384, 384, 8, 1, 3, 1);
    shapes.push_back(sh);

    sh = conv("3x1_8", batch, 384, 448, 8, 3, 1, 1);
    shapes.push_back(sh);

    return shapes;
}

} // anonymous namespace

std::vector<Layer>
inceptionV3Layers(std::int64_t batch)
{
    std::vector<Layer> layers;
    for (const auto &sh : inceptionShapes(batch))
        layers.push_back({makeConv2D(sh), 1});
    return layers;
}

std::vector<Layer>
inceptionV3WeightUpdateLayers(std::int64_t batch)
{
    std::vector<Layer> layers;
    for (const auto &sh : inceptionShapes(batch))
        layers.push_back({makeConvWeightUpdate(sh), 1});
    return layers;
}

std::vector<Layer>
nonDnnSuite()
{
    std::vector<Layer> suite;
    // FROSTT mode sizes rounded to nearby composites (see header note).
    suite.push_back({makeMTTKRP(12096, 9216, 28800, 32, "mttkrp_nell2"), 1});
    suite.push_back(
        {makeMTTKRP(480000, 17920, 2160, 32, "mttkrp_netflix"), 1});
    suite.push_back({makeMTTKRP(3072, 3072, 3072, 32, "mttkrp_poisson1"), 1});
    suite.push_back(
        {makeTTMc(12096, 9216, 28800, 8, 8, "ttmc_nell2"), 1});
    suite.push_back({makeTTMc(480000, 17920, 2160, 8, 8, "ttmc_netflix"), 1});
    suite.push_back({makeTTMc(3072, 3072, 3072, 8, 8, "ttmc_poisson1"), 1});
    // SuiteSparse matrices for SDDMM (ALS), rank 512.
    suite.push_back({makeSDDMM(10800, 10800, 512, "sddmm_bcsstk17"), 1});
    suite.push_back({makeSDDMM(62400, 62400, 512, "sddmm_cant"), 1});
    return suite;
}

Workload
inceptionTableIExample(std::int64_t batch)
{
    return makeConv2D(conv("3x3_dbl", batch, 96, 96, 35, 3, 3, 1));
}

std::vector<Layer>
alexnetLayers(std::int64_t batch)
{
    std::vector<Layer> layers;
    auto add = [&](const ConvShape &sh, int count) {
        layers.push_back({makeConv2D(sh), count});
    };
    // Output sizes rounded to composites (55 -> 54, 27 -> 28, 13 -> 12).
    add(conv("alex_conv1", batch, 96, 3, 54, 11, 11, 4), 1);
    add(conv("alex_conv2", batch, 256, 96, 28, 5, 5, 1), 1);
    add(conv("alex_conv3", batch, 384, 256, 12, 3, 3, 1), 1);
    add(conv("alex_conv4", batch, 384, 384, 12, 3, 3, 1), 1);
    add(conv("alex_conv5", batch, 256, 384, 12, 3, 3, 1), 1);
    return layers;
}

std::vector<Layer>
vgg16Layers(std::int64_t batch)
{
    std::vector<Layer> layers;
    auto add = [&](const ConvShape &sh, int count) {
        layers.push_back({makeConv2D(sh), count});
    };
    add(conv("vgg_1_1", batch, 64, 3, 224, 3, 3, 1), 1);
    add(conv("vgg_1_2", batch, 64, 64, 224, 3, 3, 1), 1);
    add(conv("vgg_2", batch, 128, 64, 112, 3, 3, 1), 1);
    add(conv("vgg_2_2", batch, 128, 128, 112, 3, 3, 1), 1);
    add(conv("vgg_3", batch, 256, 128, 56, 3, 3, 1), 1);
    add(conv("vgg_3_x", batch, 256, 256, 56, 3, 3, 1), 2);
    add(conv("vgg_4", batch, 512, 256, 28, 3, 3, 1), 1);
    add(conv("vgg_4_x", batch, 512, 512, 28, 3, 3, 1), 2);
    add(conv("vgg_5_x", batch, 512, 512, 14, 3, 3, 1), 3);
    return layers;
}

std::vector<Layer>
tclSuite()
{
    std::vector<Layer> suite;
    // AlexNet final feature map 256 x 6 x 6 contracted to 128 x 4 x 4,
    // and VGG-16's 512 x 7 x 7 to 256 x 4 x 4 (Kossaifi et al. style).
    suite.push_back(
        {makeTCL(6, 6, 256, 4, 4, 128, "tcl_alexnet"), 1});
    suite.push_back({makeTCL(7, 7, 512, 4, 4, 256, "tcl_vgg"), 1});
    return suite;
}

std::vector<Layer>
attentionSuite(std::int64_t seq)
{
    std::vector<Layer> suite;
    // Per-head chain out = (Q K^T) V with d_k = 64:
    // out[i,l] = sum_{j,k} Q[i,j] * K[k,j]~B[j,k] * V[k,l].
    suite.push_back({makeMMc(seq, 64, seq, 64, "attention_head"), 1});
    // Whole-model projection chain with d_model = 768.
    suite.push_back({makeMMc(seq, 768, 768, 768, "attention_proj"), 1});
    return suite;
}

NetGraph
attentionGraph(std::int64_t seq, int heads)
{
    NetGraph g;
    // Per-head chain for BERT-base shapes (d_k = d_v = 64). The
    // softmax is modeled as a row-wise scale so it stays inside the
    // einsum IR; what matters to the scheduler is its access pattern:
    // it reads and writes the full seq x seq score matrix.
    const int qk = g.addNode(
        parseEinsum("attn_qk", "S[i,k] = Q[i,j] * K[k,j]",
                    {{"i", seq}, {"j", 64}, {"k", seq}}),
        heads);
    const int sm = g.addNode(
        parseEinsum("attn_softmax", "P[i,k] = S[i,k] * G[i]",
                    {{"i", seq}, {"k", seq}}),
        heads);
    const int pv = g.addNode(
        parseEinsum("attn_pv", "O[i,l] = P[i,k] * V[k,l]",
                    {{"i", seq}, {"k", seq}, {"l", 64}}),
        heads);
    g.addEdge(qk, "S", sm, "S");
    g.addEdge(sm, "P", pv, "P");
    return g;
}

NetGraph
resnet18Graph(std::int64_t batch)
{
    NetGraph g;
    auto add = [&](const ConvShape &sh) {
        return g.addNode(makeConv2D(sh), 1);
    };
    // Same conv multiset as resnet18Layers (so fuse=off dedup finds the
    // same unique structures), unrolled into residual blocks. Edges run
    // only within a basic block (first conv -> second conv): a block's
    // output also feeds the next block's skip connection, so it has two
    // consumers and stays a boundary tensor.
    add(conv("conv1", batch, 64, 3, 112, 7, 7, 2));
    struct Stage
    {
        std::int64_t k, c, pq;
    };
    const Stage stages[] = {
        {64, 64, 56}, {128, 64, 28}, {256, 128, 14}, {512, 256, 7}};
    int stage = 2;
    for (const auto &[k, c, pq] : stages) {
        const std::string base = "conv" + std::to_string(stage);
        const bool down = stage > 2; // stages 3-5 downsample on entry
        if (down)
            add(conv(base + "_ds", batch, k, c, pq, 1, 1, 2));
        for (int block = 1; block <= 2; ++block) {
            const std::string tag =
                base + "_" + std::to_string(block);
            const std::int64_t cin =
                (block == 1 && down) ? c : k;
            const int a = add(conv(tag + "a", batch, k, cin, pq, 3, 3,
                                   (block == 1 && down) ? 2 : 1));
            const int b = add(conv(tag + "b", batch, k, k, pq, 3, 3, 1));
            g.addEdge(a, "ofmap", b, "ifmap");
        }
        ++stage;
    }
    g.addNode(makeGemm(batch, 1000, 512), 1);
    return g;
}

std::vector<Layer>
depthwiseSuite(std::int64_t batch)
{
    std::vector<Layer> suite;
    ConvShape sh;
    sh.n = batch;
    sh.c = 32;
    sh.p = 112;
    sh.q = 112;
    sh.r = 3;
    sh.s = 3;
    sh.name = "mbnet_dw1";
    suite.push_back({makeDepthwiseConv(sh), 1});
    sh.c = 256;
    sh.p = 14;
    sh.q = 14;
    sh.name = "mbnet_dw4";
    suite.push_back({makeDepthwiseConv(sh), 1});
    return suite;
}

} // namespace sunstone
