#include "core/net_scheduler.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "search/checkpoint.hh"
#include "search/warmstart.hh"

namespace sunstone {

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null"; // "%g" would emit inf/nan, which is not valid JSON
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Structural fingerprint of the whole schedule: the unique layer
 * fingerprints folded in discovery order (which is deterministic — it
 * follows the input layer list). Guards a "net" checkpoint against being
 * resumed for a different network or architecture.
 */
std::uint64_t
netFingerprint(const std::vector<std::uint64_t> &unique_fps)
{
    std::uint64_t h = 0x53554e53544f4e45ULL; // "SUNSTONE"
    for (std::uint64_t fp : unique_fps) {
        h ^= fp;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    }
    return h;
}

/** One completed unique search, as carried by the "net" checkpoint. */
struct DoneSearch
{
    bool found = false;
    Mapping mapping;
    double seconds = 0;
    std::int64_t examined = 0;
    std::string stopReason = "exhausted";
};

std::string
doneToJson(std::uint64_t fp, const DoneSearch &d)
{
    std::string s = "{\"fp\": " + jsonHexU64(fp) +
                    ", \"found\": " + (d.found ? "true" : "false") +
                    ", \"seconds\": " + jsonDouble(d.seconds) +
                    ", \"examined\": " + std::to_string(d.examined) +
                    ", \"stop\": \"" + jsonEscape(d.stopReason) + "\"";
    if (d.found)
        s += ", \"mapping\": " + mappingToJson(d.mapping);
    return s + "}";
}

bool
doneFromJson(const JsonValue &v, std::uint64_t &fp, DoneSearch &d)
{
    const JsonValue *f = v.find("fp");
    if (!f)
        return false;
    fp = f->asHexU64();
    if (const JsonValue *x = v.find("found"))
        d.found = x->asBool();
    if (const JsonValue *x = v.find("seconds"))
        d.seconds = x->asDouble();
    if (const JsonValue *x = v.find("examined"))
        d.examined = x->asInt();
    if (const JsonValue *x = v.find("stop"))
        d.stopReason = x->asString("exhausted");
    if (d.found) {
        const JsonValue *m = v.find("mapping");
        if (!m || !mappingFromJson(*m, d.mapping))
            return false;
    }
    return true;
}

} // anonymous namespace

std::string
NetScheduleResult::toJson() const
{
    std::string j = "{";
    j += "\"allFound\":" + std::string(allFound ? "true" : "false");
    j += ",\"stopReason\":\"" + jsonEscape(stopReason) + "\"";
    j += ",\"layersTotal\":" + std::to_string(layersTotal);
    j += ",\"layersUnique\":" + std::to_string(layersUnique);
    j += ",\"totalEnergyPj\":" + num(totalEnergyPj);
    j += ",\"totalDelaySeconds\":" + num(totalDelaySeconds);
    j += ",\"totalEdp\":" + num(totalEdp);
    j += ",\"seconds\":" + num(seconds);
    j += ",\"layers\":[";
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSchedule &l = layers[i];
        if (i)
            j += ",";
        j += "{\"name\":\"" + jsonEscape(l.name) + "\"";
        j += ",\"count\":" + std::to_string(l.count);
        j += ",\"found\":" + std::string(l.found ? "true" : "false");
        j += ",\"deduplicated\":" +
             std::string(l.deduplicated ? "true" : "false");
        if (!l.stopReason.empty())
            j += ",\"stopReason\":\"" + jsonEscape(l.stopReason) + "\"";
        if (l.found) {
            j += ",\"energyPj\":" + num(l.cost.totalEnergyPj);
            j += ",\"delaySeconds\":" + num(l.cost.delaySeconds);
            j += ",\"edp\":" + num(l.cost.edp);
            j += ",\"utilization\":" + num(l.cost.utilization);
        }
        j += ",\"seconds\":" + num(l.seconds);
        j += ",\"candidatesExamined\":" +
             std::to_string(l.candidatesExamined);
        // Only the fusion-aware scheduler emits these, so FusionMode::Off
        // output stays byte-identical to the pre-fusion format.
        if (!fusionMode.empty()) {
            j += ",\"group\":" + std::to_string(l.group);
            j += ",\"fused\":" + std::string(l.fused ? "true" : "false");
        }
        j += "}";
    }
    j += "]";
    if (!fusionMode.empty()) {
        j += ",\"fusion\":{\"mode\":\"" + jsonEscape(fusionMode) + "\"";
        j += ",\"groupsFusable\":" + std::to_string(groupsFusable);
        j += ",\"groupsFused\":" + std::to_string(groupsFused);
        j += ",\"opsFused\":" + std::to_string(opsFused);
        j += ",\"groups\":[";
        for (std::size_t i = 0; i < groups.size(); ++i) {
            const GroupSchedule &gr = groups[i];
            if (i)
                j += ",";
            j += "{\"members\":[";
            for (std::size_t m = 0; m < gr.members.size(); ++m) {
                if (m)
                    j += ",";
                j += "\"" + jsonEscape(gr.members[m]) + "\"";
            }
            j += "],\"count\":" + std::to_string(gr.count);
            j += ",\"fused\":" + std::string(gr.fused ? "true" : "false");
            if (!gr.rejectReason.empty())
                j += ",\"rejectReason\":\"" + jsonEscape(gr.rejectReason) +
                     "\"";
            j += ",\"fusedEnergyPj\":" + num(gr.fusedEnergyPj);
            j += ",\"fusedDelaySeconds\":" + num(gr.fusedDelaySeconds);
            j += ",\"unfusedEnergyPj\":" + num(gr.unfusedEnergyPj);
            j += ",\"unfusedDelaySeconds\":" + num(gr.unfusedDelaySeconds);
            j += ",\"searchSeconds\":" + num(gr.searchSeconds);
            j += ",\"candidatesExamined\":" +
                 std::to_string(gr.candidatesExamined);
            j += "}";
        }
        j += "]}";
    }
    j += ",\"stats\":" + stats.toJson();
    j += "}";
    return j;
}

NetScheduleResult
scheduleNet(SearchContext &sc, const ArchSpec &arch,
            const std::vector<Layer> &layers,
            const NetSchedulerOptions &opts)
{
    SUNSTONE_TRACE_SPAN("net.schedule");
    Timer timer;
    NetScheduleResult result;

    const unsigned threads =
        opts.threads ? opts.threads : opts.sunstone.threads;
    EvalEngine &eng =
        sc.engine() ? *sc.engine()
                    : (opts.engine ? *opts.engine
                                   : sc.engineOrPrivate(threads));

    // The whole-network wall-clock budget becomes one absolute deadline
    // shared by every per-layer search: layers launched late inherit
    // whatever is left instead of each getting a fresh budget. The other
    // StopPolicy bounds (max-evals, plateau, invalid streak) apply to
    // each unique layer search individually.
    const StopPolicy &netPolicy = sc.policy();
    if (netPolicy.deadlineSeconds != 0 && !sc.hardDeadline()) {
        const double budget = std::max(0.0, netPolicy.deadlineSeconds);
        sc.setHardDeadline(std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(budget)));
    }

    // Bind every layer and group by structural fingerprint. BoundArch
    // objects are heap-allocated so references taken by the concurrent
    // searches below stay stable.
    struct Unique
    {
        std::unique_ptr<BoundArch> ba;
        std::uint64_t fingerprint = 0;
        bool restored = false;
        SunstoneResult search;
    };
    std::vector<Unique> uniques;
    std::vector<std::size_t> layerToUnique(layers.size());
    std::unordered_map<std::uint64_t, std::size_t> byFingerprint;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        auto ba = std::make_unique<BoundArch>(arch, layers[i].workload);
        const std::uint64_t fp = eng.context(*ba).fingerprint();
        auto [it, inserted] = byFingerprint.emplace(fp, uniques.size());
        if (inserted)
            uniques.push_back({std::move(ba), fp, false, {}});
        layerToUnique[i] = it->second;
    }
    std::vector<std::uint64_t> uniqueFps;
    uniqueFps.reserve(uniques.size());
    for (const Unique &u : uniques)
        uniqueFps.push_back(u.fingerprint);
    const std::uint64_t netFp = netFingerprint(uniqueFps);

    // Consume a pending "net" resume snapshot: every unique search it
    // records as completed is adopted instead of re-run.
    double baseSeconds = 0;
    if (std::optional<SearchCheckpoint> ck = sc.takeResume()) {
        if (ck->search != "net")
            SUNSTONE_FATAL("checkpoint was written by search '",
                           ck->search, "', cannot resume the network "
                           "scheduler from it");
        if (ck->workloadFingerprint != netFp)
            SUNSTONE_FATAL("checkpoint fingerprint ",
                           ck->workloadFingerprint,
                           " does not match this network/architecture (",
                           netFp, ") — it was taken for a different "
                           "problem");
        if (sc.hasSeed() && sc.seed() != ck->seed)
            SUNSTONE_FATAL("checkpoint seed ", ck->seed,
                           " differs from the requested seed ",
                           sc.seed());
        sc.setSeed(ck->seed);
        baseSeconds = ck->seconds;
        JsonValue v;
        if (!parseJson(ck->streamState, v) || !v.isObject())
            SUNSTONE_FATAL("malformed 'net' checkpoint stream payload");
        std::unordered_map<std::uint64_t, DoneSearch> done;
        if (const JsonValue *arr = v.find("done"); arr && arr->isArray())
            for (const JsonValue &e : arr->items) {
                std::uint64_t fp = 0;
                DoneSearch d;
                if (!doneFromJson(e, fp, d))
                    SUNSTONE_FATAL("malformed 'net' checkpoint entry");
                done.emplace(fp, std::move(d));
            }
        for (Unique &u : uniques) {
            auto it = done.find(u.fingerprint);
            if (it == done.end())
                continue;
            const DoneSearch &d = it->second;
            u.restored = true;
            u.search.found = d.found;
            u.search.mapping = d.mapping;
            u.search.seconds = d.seconds;
            u.search.candidatesExamined = d.examined;
            u.search.stopReason = d.stopReason;
            if (d.found)
                u.search.cost =
                    eng.evaluate(eng.context(*u.ba), d.mapping);
            obs::metrics().counter("net.resumed_searches").add(1);
        }
    }

    // Writes the "net" checkpoint reflecting every completed (or
    // restored) unique search. Serialized by checkpointMtx — completed
    // searches land concurrently from the pool.
    std::mutex checkpointMtx;
    const auto writeNetCheckpoint = [&] {
        if (sc.checkpointPath().empty())
            return;
        SearchCheckpoint ck;
        ck.search = "net";
        ck.workloadFingerprint = netFp;
        ck.seed = sc.seed();
        std::string payload = "{\"done\": [";
        bool first = true;
        for (const Unique &u : uniques) {
            if (!u.restored)
                continue;
            DoneSearch d;
            d.found = u.search.found;
            d.mapping = u.search.mapping;
            d.seconds = u.search.seconds;
            d.examined = u.search.candidatesExamined;
            d.stopReason = u.search.stopReason;
            if (!first)
                payload += ", ";
            first = false;
            payload += doneToJson(u.fingerprint, d);
            ck.evaluated += u.search.candidatesExamined;
        }
        payload += "]}";
        ck.streamState = payload;
        ck.seconds = baseSeconds + timer.seconds();
        if (!ck.save(sc.checkpointPath()))
            SUNSTONE_WARN("failed to write checkpoint '",
                          sc.checkpointPath(), "'");
        else
            obs::flightRecorder().record(
                "checkpoint.written",
                "net evals=" + std::to_string(ck.evaluated) + " -> " +
                    sc.checkpointPath());
    };
    {
        std::lock_guard<std::mutex> lk(checkpointMtx);
        writeNetCheckpoint(); // records the restored set immediately
    }

    // Coarse phase units for the progress line: one per unique search.
    obs::ProgressBoard &board = obs::progressBoard();
    board.addUnits(static_cast<std::int64_t>(uniques.size()));
    for (const Unique &u : uniques)
        if (u.restored)
            board.noteUnitDone();

    // Warm-start store: loaded once before the fan-out (a missing file
    // just means an empty store) and only *read* while searches run,
    // so concurrent queries need no locking and results stay
    // deterministic. Realized bests are recorded back serially below.
    WarmStartStore wstore;
    const bool useWarmstart = !opts.warmstartStore.empty();
    if (useWarmstart)
        wstore.load(opts.warmstartStore);

    // One Sunstone search per unique structure, concurrently on the
    // shared pool. The search's own parallelFor nests on the same pool
    // through group-scoped joins, so no thread oversubscription.
    parallelFor(eng.pool(), uniques.size(), [&](std::size_t u) {
        if (uniques[u].restored)
            return;
        SUNSTONE_TRACE_SPAN("net.search:" +
                            uniques[u].ba->workload().name());
        SunstoneOptions so = opts.sunstone;
        so.engine = &eng;
        // One trajectory per unique structure, labeled by the layer that
        // introduced it.
        obs::ConvergenceRecorder *conv =
            sc.convergence() ? sc.convergence() : so.convergence;
        if (conv)
            so.searchLabel =
                "sunstone:" + uniques[u].ba->workload().name();
        // Each concurrent search gets its own child context; the
        // network-wide hard deadline and cancellation flag are shared
        // through it, the per-search bounds are copied.
        SearchContext child(&eng, netPolicy, conv);
        child.policy().deadlineSeconds = 0; // network-wide, see above
        if (sc.hardDeadline())
            child.setHardDeadline(*sc.hardDeadline());
        if (sc.hasSeed())
            child.setSeed(sc.seed());
        child.setSurrogate(sc.surrogate());
        if (useWarmstart)
            child.setWarmStarts(wstore.query(*uniques[u].ba));
        Timer t;
        uniques[u].search = sunstoneOptimize(child, *uniques[u].ba, so);
        eng.addPhaseSeconds(
            "layer:" + uniques[u].ba->workload().name(), t.seconds());
        {
            std::lock_guard<std::mutex> lk(checkpointMtx);
            uniques[u].restored = true; // completed: in checkpoints now
            writeNetCheckpoint();
        }
        board.noteUnitDone();
    });
    obs::metrics().counter("net.unique_searches").add(
        static_cast<std::int64_t>(uniques.size()));

    if (useWarmstart) {
        // Serial, in unique order: deterministic store contents.
        bool changed = false;
        for (const Unique &u : uniques)
            if (u.search.found &&
                wstore.record(*u.ba, u.ba->workload().name(),
                              u.search.cost.edp, u.search.mapping))
                changed = true;
        if (changed && !wstore.save(opts.warmstartStore))
            SUNSTONE_WARN("failed to write warm-start store '",
                          opts.warmstartStore, "'");
        obs::metrics().gauge("net.warmstart.store_entries")
            .set(static_cast<double>(wstore.size()));
    }

    result.allFound = true;
    result.stopReason = "exhausted";
    result.layers.reserve(layers.size());
    std::vector<bool> seen(uniques.size(), false);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const std::size_t u = layerToUnique[i];
        const Unique &uq = uniques[u];
        LayerSchedule ls;
        ls.name = layers[i].workload.name();
        ls.count = layers[i].count;
        ls.found = uq.search.found;
        ls.mapping = uq.search.mapping;
        if (seen[u]) {
            // Broadcast: re-validate the chosen mapping under this
            // layer's own context. Identical structure means an
            // identical cache key, so this is a guaranteed hit — the
            // dedup shows up in the telemetry instead of as a repeated
            // search.
            ls.deduplicated = true;
            ls.stopReason = "dedup";
            obs::metrics().counter("net.dedup_broadcasts").add(1);
            if (ls.found) {
                SUNSTONE_TRACE_SPAN("net.broadcast");
                ls.cost = eng.evaluate(eng.context(*uq.ba), ls.mapping);
            }
        } else {
            seen[u] = true;
            ls.cost = uq.search.cost;
            ls.seconds = uq.search.seconds;
            ls.candidatesExamined = uq.search.candidatesExamined;
            ls.stopReason = uq.search.stopReason;
            // The first interrupting reason wins over "exhausted";
            // cancellation outranks the deadline.
            if (ls.stopReason == "deadline" &&
                result.stopReason == "exhausted")
                result.stopReason = "deadline";
            if (ls.stopReason == "cancelled")
                result.stopReason = "cancelled";
        }
        if (ls.found) {
            result.totalEnergyPj += ls.count * ls.cost.totalEnergyPj;
            result.totalDelaySeconds += ls.count * ls.cost.delaySeconds;
        } else {
            result.allFound = false;
        }
        result.layersTotal += ls.count;
        result.layers.push_back(std::move(ls));
    }
    obs::metrics().counter("net.layers_scheduled").add(
        static_cast<std::int64_t>(layers.size()));
    result.layersUnique = static_cast<int>(uniques.size());
    result.totalEdp = result.totalEnergyPj * result.totalDelaySeconds;
    result.seconds = baseSeconds + timer.seconds();
    eng.addPhaseSeconds("net.schedule", timer.seconds());
    result.stats = eng.stats();
    return result;
}

NetScheduleResult
scheduleNet(const ArchSpec &arch, const std::vector<Layer> &layers,
            const NetSchedulerOptions &opts)
{
    SearchContext sc;
    return scheduleNet(sc, arch, layers, opts);
}

namespace {

/**
 * @return true when mapping m keeps every Ephemeral tensor of ba fully
 * resident at its residency level — the exact condition under which the
 * cost model drops the tensor's DRAM round-trip.
 */
bool
coversEphemeral(const BoundArch &ba, const Mapping &m)
{
    const Workload &wl = ba.workload();
    for (TensorId t = 0; t < ba.numTensors(); ++t) {
        if (ba.residency(t) != Residency::Ephemeral)
            continue;
        const int lvl = ba.residencyLevel(t);
        if (lvl < 0)
            return false;
        const std::vector<std::int64_t> shape = m.tileShape(lvl);
        for (DimId d : wl.tensor(t).indexingDims())
            if (shape[d] != wl.dimSize(d))
                return false;
    }
    return true;
}

/**
 * Derives a fused candidate from a per-layer mapping: every temporal
 * loop over an ephemeral tensor's indexing dims is sunk from above the
 * residency level into it, so the tensor's tile there spans the whole
 * tensor. Spatial factors stay put (moving them would break fanout
 * packing); a mapping that spreads such a dim spatially above the level
 * simply fails the coverage check later. The result may be invalid
 * (capacity) — callers must check valid().
 */
Mapping
sinkEphemeralLoops(const BoundArch &ba, const Mapping &m0)
{
    Mapping m = m0;
    const Workload &wl = ba.workload();
    for (TensorId t = 0; t < ba.numTensors(); ++t) {
        if (ba.residency(t) != Residency::Ephemeral)
            continue;
        const int lvl = ba.residencyLevel(t);
        if (lvl < 0)
            continue;
        for (DimId d : wl.tensor(t).indexingDims())
            for (int l = lvl + 1; l < m.numLevels(); ++l) {
                m.level(lvl).temporal[d] *= m.level(l).temporal[d];
                m.level(l).temporal[d] = 1;
            }
    }
    return m;
}

/**
 * The fusion-aware scheduler (FusionMode::Greedy). Structure mirrors
 * the per-layer scheduleNet — bind, dedup, resume, search, assemble —
 * with one extra unit kind: fused chains, searched per member under
 * residency-marked BoundArchs and accepted only when they dominate the
 * per-op baselines.
 */
NetScheduleResult
scheduleNetGreedy(SearchContext &sc, const ArchSpec &arch, const NetGraph &g,
                  const NetSchedulerOptions &opts)
{
    SUNSTONE_TRACE_SPAN("net.schedule.fused");
    Timer timer;
    NetScheduleResult result;
    result.fusionMode = "greedy";

    const unsigned threads =
        opts.threads ? opts.threads : opts.sunstone.threads;
    EvalEngine &eng =
        sc.engine() ? *sc.engine()
                    : (opts.engine ? *opts.engine
                                   : sc.engineOrPrivate(threads));

    const StopPolicy &netPolicy = sc.policy();
    if (netPolicy.deadlineSeconds != 0 && !sc.hardDeadline()) {
        const double budget = std::max(0.0, netPolicy.deadlineSeconds);
        sc.setHardDeadline(std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(budget)));
    }

    // ---- Bind + dedup per-op baselines (as the per-layer path) -------
    struct Unique
    {
        std::unique_ptr<BoundArch> ba;
        std::uint64_t fingerprint = 0;
        bool restored = false;
        SunstoneResult search;
    };
    std::vector<Unique> uniques;
    std::vector<std::size_t> nodeToUnique(g.numNodes());
    std::unordered_map<std::uint64_t, std::size_t> byFingerprint;
    for (int i = 0; i < g.numNodes(); ++i) {
        auto ba = std::make_unique<BoundArch>(arch, g.node(i).workload);
        const std::uint64_t fp = eng.context(*ba).fingerprint();
        auto [it, inserted] = byFingerprint.emplace(fp, uniques.size());
        if (inserted)
            uniques.push_back({std::move(ba), fp, false, {}});
        nodeToUnique[i] = it->second;
    }

    // ---- Plan chains (static fusion legality) ------------------------
    // Greedy maximal chains in topological order: extend while the tail
    // produces a single-consumer tensor that statically fits at a common
    // on-chip level on both sides. The check is optimistic (the whole
    // partition budget); the search-time fits() and the coverage test
    // decide for the actual mappings.
    std::vector<std::vector<int>> groupNodes;
    std::vector<int> nodeGroup(g.numNodes(), -1);
    {
        SUNSTONE_TRACE_SPAN("net.fuse.plan");
        auto fusableEdge = [&](const NetEdge &e) {
            obs::metrics().counter("net.fusion.edges_considered").add(1);
            if (g.consumerCount(e.producer, e.producerTensor) != 1) {
                obs::metrics()
                    .counter("net.fusion.edges_rejected_multiconsumer")
                    .add(1);
                return false;
            }
            const BoundArch &pba = *uniques[nodeToUnique[e.producer]].ba;
            const BoundArch &cba = *uniques[nodeToUnique[e.consumer]].ba;
            const Workload &pwl = g.node(e.producer).workload;
            const Workload &cwl = g.node(e.consumer).workload;
            const TensorId pt = pwl.tensorByName(e.producerTensor);
            const TensorId ct = cwl.tensorByName(e.consumerTensor);
            const int pl = pba.residencyLevel(pt);
            const int cl = cba.residencyLevel(ct);
            if (pl < 0 || pl != cl) {
                obs::metrics()
                    .counter("net.fusion.edges_rejected_level")
                    .add(1);
                return false;
            }
            const std::int64_t pbits =
                pwl.tensor(pt).footprint(pwl.shape()) *
                pwl.tensor(pt).wordBits;
            const std::int64_t cbits =
                cwl.tensor(ct).footprint(cwl.shape()) *
                cwl.tensor(ct).wordBits;
            if (pbits > pba.capacityBitsFor(pl, pt) ||
                cbits > cba.capacityBitsFor(cl, ct)) {
                obs::metrics()
                    .counter("net.fusion.edges_rejected_capacity")
                    .add(1);
                return false;
            }
            return true;
        };
        for (int v : g.topoOrder()) {
            if (nodeGroup[v] >= 0)
                continue;
            std::vector<int> chain{v};
            nodeGroup[v] = static_cast<int>(groupNodes.size());
            for (bool grew = true; grew;) {
                grew = false;
                const int tail = chain.back();
                for (int e = 0; e < g.numEdges() && !grew; ++e) {
                    const NetEdge &ed = g.edge(e);
                    if (ed.producer != tail || nodeGroup[ed.consumer] >= 0)
                        continue;
                    if (!fusableEdge(ed))
                        continue;
                    chain.push_back(ed.consumer);
                    nodeGroup[ed.consumer] = nodeGroup[v];
                    grew = true;
                }
            }
            groupNodes.push_back(std::move(chain));
        }
    }

    // ---- Build fused units (dedup by subgraph fingerprint) -----------
    struct FusedMember
    {
        std::unique_ptr<BoundArch> ba; // residency-marked
        std::uint64_t fingerprint = 0;
        int node = -1;
        SunstoneResult search;
    };
    struct FusedUnit
    {
        std::vector<FusedMember> members;
        std::uint64_t fingerprint = 0;
        bool restored = false;
    };
    std::vector<FusedUnit> fusedUnits;
    std::vector<int> groupUnit(groupNodes.size(), -1);
    std::unordered_map<std::uint64_t, int> unitByFp;
    for (std::size_t gi = 0; gi < groupNodes.size(); ++gi) {
        const std::vector<int> &chain = groupNodes[gi];
        if (chain.size() < 2)
            continue;
        const auto eph = g.ephemeralTensors(chain);
        FusedUnit fu;
        fu.fingerprint = 0x46555345ULL; // "FUSE": separates the fp
                                        // namespace from node fps
        for (std::size_t i = 0; i < chain.size(); ++i) {
            FusedMember fm;
            fm.node = chain[i];
            fm.ba = std::make_unique<BoundArch>(
                arch, g.node(chain[i]).workload);
            for (const std::string &name : eph[i])
                fm.ba->setResidency(fm.ba->workload().tensorByName(name),
                                    Residency::Ephemeral);
            fm.fingerprint = eng.context(*fm.ba).fingerprint();
            fu.fingerprint ^= fm.fingerprint;
            fu.fingerprint *= 0x100000001b3ULL;
            fu.fingerprint ^= fu.fingerprint >> 29;
            fu.members.push_back(std::move(fm));
        }
        auto [it, inserted] =
            unitByFp.emplace(fu.fingerprint,
                             static_cast<int>(fusedUnits.size()));
        if (inserted)
            fusedUnits.push_back(std::move(fu));
        groupUnit[gi] = it->second;
    }
    std::vector<int> unitOwner(fusedUnits.size(), -1);
    for (std::size_t gi = 0; gi < groupNodes.size(); ++gi)
        if (groupUnit[gi] >= 0 && unitOwner[groupUnit[gi]] < 0)
            unitOwner[groupUnit[gi]] = static_cast<int>(gi);

    std::vector<std::uint64_t> allFps;
    for (const Unique &u : uniques)
        allFps.push_back(u.fingerprint);
    for (const FusedUnit &fu : fusedUnits)
        allFps.push_back(fu.fingerprint);
    const std::uint64_t netFp = netFingerprint(allFps);

    // ---- Resume ------------------------------------------------------
    double baseSeconds = 0;
    if (std::optional<SearchCheckpoint> ck = sc.takeResume()) {
        if (ck->search != "net-fused")
            SUNSTONE_FATAL("checkpoint was written by search '",
                           ck->search, "', cannot resume the fused "
                           "network scheduler from it");
        if (ck->workloadFingerprint != netFp)
            SUNSTONE_FATAL("checkpoint fingerprint ",
                           ck->workloadFingerprint,
                           " does not match this network/architecture (",
                           netFp, ") — it was taken for a different "
                           "problem");
        if (sc.hasSeed() && sc.seed() != ck->seed)
            SUNSTONE_FATAL("checkpoint seed ", ck->seed,
                           " differs from the requested seed ",
                           sc.seed());
        sc.setSeed(ck->seed);
        baseSeconds = ck->seconds;
        JsonValue v;
        if (!parseJson(ck->streamState, v) || !v.isObject())
            SUNSTONE_FATAL("malformed 'net-fused' checkpoint payload");
        std::unordered_map<std::uint64_t, DoneSearch> done;
        std::unordered_map<std::uint64_t, std::vector<DoneSearch>>
            doneFused;
        if (const JsonValue *arr = v.find("done"); arr && arr->isArray())
            for (const JsonValue &e : arr->items) {
                const JsonValue *f = e.find("fp");
                if (!f)
                    SUNSTONE_FATAL("malformed 'net-fused' entry");
                if (const JsonValue *fs = e.find("fused");
                    fs && fs->isArray()) {
                    std::vector<DoneSearch> recs;
                    for (const JsonValue &me : fs->items) {
                        std::uint64_t mfp = 0;
                        DoneSearch d;
                        if (!doneFromJson(me, mfp, d))
                            SUNSTONE_FATAL(
                                "malformed 'net-fused' member entry");
                        recs.push_back(std::move(d));
                    }
                    doneFused.emplace(f->asHexU64(), std::move(recs));
                    continue;
                }
                std::uint64_t fp = 0;
                DoneSearch d;
                if (!doneFromJson(e, fp, d))
                    SUNSTONE_FATAL("malformed 'net-fused' entry");
                done.emplace(fp, std::move(d));
            }
        for (Unique &u : uniques) {
            auto it = done.find(u.fingerprint);
            if (it == done.end())
                continue;
            const DoneSearch &d = it->second;
            u.restored = true;
            u.search.found = d.found;
            u.search.mapping = d.mapping;
            u.search.seconds = d.seconds;
            u.search.candidatesExamined = d.examined;
            u.search.stopReason = d.stopReason;
            if (d.found)
                u.search.cost =
                    eng.evaluate(eng.context(*u.ba), d.mapping);
            obs::metrics().counter("net.resumed_searches").add(1);
        }
        for (FusedUnit &fu : fusedUnits) {
            auto it = doneFused.find(fu.fingerprint);
            if (it == doneFused.end() ||
                it->second.size() != fu.members.size())
                continue;
            fu.restored = true;
            for (std::size_t i = 0; i < fu.members.size(); ++i) {
                const DoneSearch &d = it->second[i];
                FusedMember &fm = fu.members[i];
                fm.search.found = d.found;
                fm.search.mapping = d.mapping;
                fm.search.seconds = d.seconds;
                fm.search.candidatesExamined = d.examined;
                fm.search.stopReason = d.stopReason;
                if (d.found)
                    fm.search.cost =
                        eng.evaluate(eng.context(*fm.ba), d.mapping);
            }
            obs::metrics().counter("net.resumed_searches").add(1);
        }
    }

    // ---- Checkpointing -----------------------------------------------
    std::mutex checkpointMtx;
    const auto writeNetCheckpoint = [&] {
        if (sc.checkpointPath().empty())
            return;
        SearchCheckpoint ck;
        ck.search = "net-fused";
        ck.workloadFingerprint = netFp;
        ck.seed = sc.seed();
        std::string payload = "{\"done\": [";
        bool first = true;
        for (const Unique &u : uniques) {
            if (!u.restored)
                continue;
            DoneSearch d;
            d.found = u.search.found;
            d.mapping = u.search.mapping;
            d.seconds = u.search.seconds;
            d.examined = u.search.candidatesExamined;
            d.stopReason = u.search.stopReason;
            if (!first)
                payload += ", ";
            first = false;
            payload += doneToJson(u.fingerprint, d);
            ck.evaluated += u.search.candidatesExamined;
        }
        for (const FusedUnit &fu : fusedUnits) {
            if (!fu.restored)
                continue;
            if (!first)
                payload += ", ";
            first = false;
            payload += "{\"fp\": " + jsonHexU64(fu.fingerprint) +
                       ", \"fused\": [";
            for (std::size_t i = 0; i < fu.members.size(); ++i) {
                const FusedMember &fm = fu.members[i];
                DoneSearch d;
                d.found = fm.search.found;
                d.mapping = fm.search.mapping;
                d.seconds = fm.search.seconds;
                d.examined = fm.search.candidatesExamined;
                d.stopReason = fm.search.stopReason;
                if (i)
                    payload += ", ";
                payload += doneToJson(fm.fingerprint, d);
                ck.evaluated += fm.search.candidatesExamined;
            }
            payload += "]}";
        }
        payload += "]}";
        ck.streamState = payload;
        ck.seconds = baseSeconds + timer.seconds();
        if (!ck.save(sc.checkpointPath()))
            SUNSTONE_WARN("failed to write checkpoint '",
                          sc.checkpointPath(), "'");
        else
            obs::flightRecorder().record(
                "checkpoint.written",
                "net-fused evals=" + std::to_string(ck.evaluated) +
                    " -> " + sc.checkpointPath());
    };
    {
        std::lock_guard<std::mutex> lk(checkpointMtx);
        writeNetCheckpoint();
    }

    // Coarse phase units: one per unique per-op search, one per fused
    // chain search.
    obs::ProgressBoard &board = obs::progressBoard();
    board.addUnits(
        static_cast<std::int64_t>(uniques.size() + fusedUnits.size()));
    for (const Unique &u : uniques)
        if (u.restored)
            board.noteUnitDone();
    for (const FusedUnit &fu : fusedUnits)
        if (fu.restored)
            board.noteUnitDone();

    const auto makeChild = [&](const std::string &label,
                               SunstoneOptions &so,
                               obs::ConvergenceRecorder **conv_out) {
        so = opts.sunstone;
        so.engine = &eng;
        obs::ConvergenceRecorder *conv =
            sc.convergence() ? sc.convergence() : so.convergence;
        if (conv)
            so.searchLabel = label;
        *conv_out = conv;
    };
    const auto fom = [&](const CostResult &c) {
        return opts.sunstone.optimizeEdp ? c.edp : c.totalEnergyPj;
    };

    // Warm-start store (see the flat-path comment): read-only while
    // the fan-outs run, recorded back serially after pass 2.
    WarmStartStore wstore;
    const bool useWarmstart = !opts.warmstartStore.empty();
    if (useWarmstart)
        wstore.load(opts.warmstartStore);

    // ---- Pass 1: per-op baseline searches ----------------------------
    parallelFor(eng.pool(), uniques.size(), [&](std::size_t u) {
        if (uniques[u].restored)
            return;
        SUNSTONE_TRACE_SPAN("net.search:" +
                            uniques[u].ba->workload().name());
        SunstoneOptions so;
        obs::ConvergenceRecorder *conv = nullptr;
        makeChild("sunstone:" + uniques[u].ba->workload().name(), so,
                  &conv);
        SearchContext child(&eng, netPolicy, conv);
        child.policy().deadlineSeconds = 0;
        if (sc.hardDeadline())
            child.setHardDeadline(*sc.hardDeadline());
        if (sc.hasSeed())
            child.setSeed(sc.seed());
        child.setSurrogate(sc.surrogate());
        if (useWarmstart)
            child.setWarmStarts(wstore.query(*uniques[u].ba));
        Timer t;
        uniques[u].search = sunstoneOptimize(child, *uniques[u].ba, so);
        eng.addPhaseSeconds(
            "layer:" + uniques[u].ba->workload().name(), t.seconds());
        {
            std::lock_guard<std::mutex> lk(checkpointMtx);
            uniques[u].restored = true;
            writeNetCheckpoint();
        }
        board.noteUnitDone();
    });
    obs::metrics().counter("net.unique_searches").add(
        static_cast<std::int64_t>(uniques.size()));

    // ---- Pass 2: fused-chain searches --------------------------------
    // Runs after the baselines (a barrier, not a pipeline) because each
    // fused member search is seeded with the sunken per-op winner, which
    // both bounds the fused result from below and guarantees a coverage
    // candidate whenever one is valid.
    parallelFor(eng.pool(), fusedUnits.size(), [&](std::size_t fi) {
        FusedUnit &fu = fusedUnits[fi];
        if (fu.restored)
            return;
        SUNSTONE_TRACE_SPAN("net.search.fused:" +
                            fu.members.front().ba->workload().name());
        Timer t;
        for (FusedMember &fm : fu.members) {
            SunstoneOptions so;
            obs::ConvergenceRecorder *conv = nullptr;
            makeChild("sunstone:" + fm.ba->workload().name() + "+fused",
                      so, &conv);
            SearchContext child(&eng, netPolicy, conv);
            child.policy().deadlineSeconds = 0;
            if (sc.hardDeadline())
                child.setHardDeadline(*sc.hardDeadline());
            if (sc.hasSeed())
                child.setSeed(sc.seed());
            child.setSurrogate(sc.surrogate());
            // Fused variants share the per-op structure, so stored
            // per-op bests still seed them; fused results are not
            // recorded back (their costs assume ephemeral residency).
            if (useWarmstart)
                child.setWarmStarts(wstore.query(*fm.ba));
            fm.search = sunstoneOptimize(child, *fm.ba, so);
            const Unique &base = uniques[nodeToUnique[fm.node]];
            if (base.search.found) {
                Mapping seeded =
                    sinkEphemeralLoops(*fm.ba, base.search.mapping);
                if (seeded.valid(*fm.ba)) {
                    const CostResult c =
                        eng.evaluate(eng.context(*fm.ba), seeded);
                    if (!fm.search.found || fom(c) < fom(fm.search.cost)) {
                        fm.search.found = true;
                        fm.search.mapping = std::move(seeded);
                        fm.search.cost = c;
                    }
                }
            }
        }
        eng.addPhaseSeconds(
            "fused:" + fu.members.front().ba->workload().name(),
            t.seconds());
        {
            std::lock_guard<std::mutex> lk(checkpointMtx);
            fu.restored = true;
            writeNetCheckpoint();
        }
        board.noteUnitDone();
    });
    obs::metrics().counter("net.fusion.unit_searches").add(
        static_cast<std::int64_t>(fusedUnits.size()));

    if (useWarmstart) {
        // Serial, in unique order: deterministic store contents. Only
        // per-op results are recorded (fused costs assume residency).
        bool changed = false;
        for (const Unique &u : uniques)
            if (u.search.found &&
                wstore.record(*u.ba, u.ba->workload().name(),
                              u.search.cost.edp, u.search.mapping))
                changed = true;
        if (changed && !wstore.save(opts.warmstartStore))
            SUNSTONE_WARN("failed to write warm-start store '",
                          opts.warmstartStore, "'");
        obs::metrics().gauge("net.warmstart.store_entries")
            .set(static_cast<double>(wstore.size()));
    }

    // ---- Decide per group --------------------------------------------
    result.stopReason = "exhausted";
    const auto foldStop = [&](const std::string &s) {
        if (s == "deadline" && result.stopReason == "exhausted")
            result.stopReason = "deadline";
        if (s == "cancelled")
            result.stopReason = "cancelled";
    };
    for (const Unique &u : uniques)
        foldStop(u.search.stopReason);
    for (const FusedUnit &fu : fusedUnits)
        for (const FusedMember &fm : fu.members)
            foldStop(fm.search.stopReason);

    std::vector<bool> accepted(groupNodes.size(), false);
    result.groups.resize(groupNodes.size());
    for (std::size_t gi = 0; gi < groupNodes.size(); ++gi) {
        const std::vector<int> &chain = groupNodes[gi];
        GroupSchedule &gr = result.groups[gi];
        gr.count = g.node(chain.front()).count;
        bool unfusedFound = true;
        for (int n : chain) {
            gr.members.push_back(g.node(n).workload.name());
            const Unique &uq = uniques[nodeToUnique[n]];
            unfusedFound &= uq.search.found;
            gr.searchSeconds += uq.search.seconds;
            gr.candidatesExamined += uq.search.candidatesExamined;
            if (uq.search.found) {
                gr.unfusedEnergyPj += uq.search.cost.totalEnergyPj;
                gr.unfusedDelaySeconds += uq.search.cost.delaySeconds;
            }
        }
        if (groupUnit[gi] < 0)
            continue; // singleton: nothing to decide
        ++result.groupsFusable;
        const FusedUnit &fu = fusedUnits[groupUnit[gi]];
        bool fusedFound = true;
        bool covered = true;
        for (const FusedMember &fm : fu.members) {
            fusedFound &= fm.search.found;
            gr.searchSeconds += fm.search.seconds;
            gr.candidatesExamined += fm.search.candidatesExamined;
            if (fm.search.found) {
                covered &= coversEphemeral(*fm.ba, fm.search.mapping);
                gr.fusedEnergyPj += fm.search.cost.totalEnergyPj;
                gr.fusedDelaySeconds += fm.search.cost.delaySeconds;
            }
        }
        if (!fusedFound) {
            gr.rejectReason = "search";
        } else if (!covered) {
            gr.rejectReason = "coverage";
        } else if (unfusedFound &&
                   !(gr.fusedEnergyPj <= gr.unfusedEnergyPj &&
                     gr.fusedDelaySeconds <= gr.unfusedDelaySeconds &&
                     gr.fusedEnergyPj * gr.fusedDelaySeconds <
                         gr.unfusedEnergyPj * gr.unfusedDelaySeconds)) {
            // Fusing must not regress either energy or delay, and must
            // strictly improve EDP: chain-wise dominance is what makes
            // the net-level totals provably no worse than per-layer.
            gr.rejectReason = "cost";
        } else {
            accepted[gi] = true;
            gr.fused = true;
            ++result.groupsFused;
            result.opsFused += static_cast<int>(chain.size());
        }
        std::string detail = gr.members.front();
        for (std::size_t m = 1; m < gr.members.size(); ++m)
            detail += "+" + gr.members[m];
        if (gr.fused)
            obs::flightRecorder().record("chain.accepted", detail);
        else
            obs::flightRecorder().record(
                "chain.rejected", detail + " reason=" + gr.rejectReason);
    }
    obs::metrics().counter("net.fusion.groups_fused").add(
        result.groupsFused);
    obs::metrics().counter("net.fusion.ops_fused").add(result.opsFused);

    // ---- Assemble per-node results (node order) ----------------------
    result.allFound = true;
    result.layers.reserve(g.numNodes());
    std::vector<bool> seen(uniques.size(), false);
    for (int n = 0; n < g.numNodes(); ++n) {
        const int gi = nodeGroup[n];
        LayerSchedule ls;
        ls.name = g.node(n).workload.name();
        ls.count = g.node(n).count;
        ls.group = gi;
        if (accepted[gi]) {
            const FusedUnit &fu = fusedUnits[groupUnit[gi]];
            std::size_t pos = 0;
            while (groupNodes[gi][pos] != n)
                ++pos;
            const FusedMember &fm = fu.members[pos];
            ls.found = true;
            ls.fused = true;
            ls.mapping = fm.search.mapping;
            if (unitOwner[groupUnit[gi]] == gi) {
                ls.cost = fm.search.cost;
                ls.seconds = fm.search.seconds;
                ls.candidatesExamined = fm.search.candidatesExamined;
                ls.stopReason = fm.search.stopReason;
            } else {
                // A structurally identical chain already searched this
                // subgraph; broadcast with a guaranteed cache hit.
                ls.deduplicated = true;
                ls.stopReason = "dedup";
                ls.cost = eng.evaluate(eng.context(*fm.ba), ls.mapping);
                obs::metrics().counter("net.dedup_broadcasts").add(1);
            }
        } else {
            const std::size_t u = nodeToUnique[n];
            const Unique &uq = uniques[u];
            ls.found = uq.search.found;
            ls.mapping = uq.search.mapping;
            if (seen[u]) {
                ls.deduplicated = true;
                ls.stopReason = "dedup";
                obs::metrics().counter("net.dedup_broadcasts").add(1);
                if (ls.found) {
                    SUNSTONE_TRACE_SPAN("net.broadcast");
                    ls.cost =
                        eng.evaluate(eng.context(*uq.ba), ls.mapping);
                }
            } else {
                seen[u] = true;
                ls.cost = uq.search.cost;
                ls.seconds = uq.search.seconds;
                ls.candidatesExamined = uq.search.candidatesExamined;
                ls.stopReason = uq.search.stopReason;
            }
        }
        if (ls.found) {
            result.totalEnergyPj += ls.count * ls.cost.totalEnergyPj;
            result.totalDelaySeconds += ls.count * ls.cost.delaySeconds;
        } else {
            result.allFound = false;
        }
        result.layersTotal += ls.count;
        result.layers.push_back(std::move(ls));
    }
    obs::metrics().counter("net.layers_scheduled").add(g.numNodes());
    result.layersUnique = static_cast<int>(uniques.size());
    result.totalEdp = result.totalEnergyPj * result.totalDelaySeconds;
    result.seconds = baseSeconds + timer.seconds();
    eng.addPhaseSeconds("net.schedule.fused", timer.seconds());
    result.stats = eng.stats();
    return result;
}

} // anonymous namespace

NetScheduleResult
scheduleNet(SearchContext &sc, const ArchSpec &arch, const NetGraph &graph,
            const NetSchedulerOptions &opts)
{
    std::string err;
    if (!graph.validate(&err))
        SUNSTONE_FATAL("invalid network graph: ", err);
    // FusionMode::Off takes the exact per-layer code path over the
    // graph's node list, so its results are bit-identical to the flat
    // scheduler's.
    if (opts.fusion == FusionMode::Off)
        return scheduleNet(sc, arch, graph.toLayers(), opts);
    return scheduleNetGreedy(sc, arch, graph, opts);
}

NetScheduleResult
scheduleNet(const ArchSpec &arch, const NetGraph &graph,
            const NetSchedulerOptions &opts)
{
    SearchContext sc;
    return scheduleNet(sc, arch, graph, opts);
}

} // namespace sunstone
