#include "core/net_scheduler.hh"

#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null"; // "%g" would emit inf/nan, which is not valid JSON
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // anonymous namespace

std::string
NetScheduleResult::toJson() const
{
    std::string j = "{";
    j += "\"allFound\":" + std::string(allFound ? "true" : "false");
    j += ",\"layersTotal\":" + std::to_string(layersTotal);
    j += ",\"layersUnique\":" + std::to_string(layersUnique);
    j += ",\"totalEnergyPj\":" + num(totalEnergyPj);
    j += ",\"totalDelaySeconds\":" + num(totalDelaySeconds);
    j += ",\"totalEdp\":" + num(totalEdp);
    j += ",\"seconds\":" + num(seconds);
    j += ",\"layers\":[";
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSchedule &l = layers[i];
        if (i)
            j += ",";
        j += "{\"name\":\"" + jsonEscape(l.name) + "\"";
        j += ",\"count\":" + std::to_string(l.count);
        j += ",\"found\":" + std::string(l.found ? "true" : "false");
        j += ",\"deduplicated\":" +
             std::string(l.deduplicated ? "true" : "false");
        if (l.found) {
            j += ",\"energyPj\":" + num(l.cost.totalEnergyPj);
            j += ",\"delaySeconds\":" + num(l.cost.delaySeconds);
            j += ",\"edp\":" + num(l.cost.edp);
            j += ",\"utilization\":" + num(l.cost.utilization);
        }
        j += ",\"seconds\":" + num(l.seconds);
        j += ",\"candidatesExamined\":" +
             std::to_string(l.candidatesExamined);
        j += "}";
    }
    j += "],\"stats\":" + stats.toJson();
    j += "}";
    return j;
}

NetScheduleResult
scheduleNet(const ArchSpec &arch, const std::vector<Layer> &layers,
            const NetSchedulerOptions &opts)
{
    SUNSTONE_TRACE_SPAN("net.schedule");
    Timer timer;
    NetScheduleResult result;

    const unsigned threads =
        opts.threads ? opts.threads : opts.sunstone.threads;
    EvalEngine localEngine(EvalEngineOptions{.threads = threads});
    EvalEngine &eng = opts.engine ? *opts.engine : localEngine;

    // Bind every layer and group by structural fingerprint. BoundArch
    // objects are heap-allocated so references taken by the concurrent
    // searches below stay stable.
    struct Unique
    {
        std::unique_ptr<BoundArch> ba;
        SunstoneResult search;
    };
    std::vector<Unique> uniques;
    std::vector<std::size_t> layerToUnique(layers.size());
    std::unordered_map<std::uint64_t, std::size_t> byFingerprint;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        auto ba = std::make_unique<BoundArch>(arch, layers[i].workload);
        const std::uint64_t fp = eng.context(*ba).fingerprint();
        auto [it, inserted] =
            byFingerprint.emplace(fp, uniques.size());
        if (inserted)
            uniques.push_back({std::move(ba), {}});
        layerToUnique[i] = it->second;
    }

    // One Sunstone search per unique structure, concurrently on the
    // shared pool. The search's own parallelFor nests on the same pool
    // through group-scoped joins, so no thread oversubscription.
    parallelFor(eng.pool(), uniques.size(), [&](std::size_t u) {
        SUNSTONE_TRACE_SPAN("net.search:" +
                            uniques[u].ba->workload().name());
        SunstoneOptions so = opts.sunstone;
        so.engine = &eng;
        // One trajectory per unique structure, labeled by the layer that
        // introduced it.
        if (so.convergence)
            so.searchLabel =
                "sunstone:" + uniques[u].ba->workload().name();
        Timer t;
        uniques[u].search = sunstoneOptimize(*uniques[u].ba, so);
        eng.addPhaseSeconds(
            "layer:" + uniques[u].ba->workload().name(), t.seconds());
    });
    obs::metrics().counter("net.unique_searches").add(
        static_cast<std::int64_t>(uniques.size()));

    result.allFound = true;
    result.layers.reserve(layers.size());
    std::vector<bool> seen(uniques.size(), false);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const std::size_t u = layerToUnique[i];
        const Unique &uq = uniques[u];
        LayerSchedule ls;
        ls.name = layers[i].workload.name();
        ls.count = layers[i].count;
        ls.found = uq.search.found;
        ls.mapping = uq.search.mapping;
        if (seen[u]) {
            // Broadcast: re-validate the chosen mapping under this
            // layer's own context. Identical structure means an
            // identical cache key, so this is a guaranteed hit — the
            // dedup shows up in the telemetry instead of as a repeated
            // search.
            ls.deduplicated = true;
            obs::metrics().counter("net.dedup_broadcasts").add(1);
            if (ls.found) {
                SUNSTONE_TRACE_SPAN("net.broadcast");
                ls.cost = eng.evaluate(eng.context(*uq.ba), ls.mapping);
            }
        } else {
            seen[u] = true;
            ls.cost = uq.search.cost;
            ls.seconds = uq.search.seconds;
            ls.candidatesExamined = uq.search.candidatesExamined;
        }
        if (ls.found) {
            result.totalEnergyPj += ls.count * ls.cost.totalEnergyPj;
            result.totalDelaySeconds += ls.count * ls.cost.delaySeconds;
        } else {
            result.allFound = false;
        }
        result.layersTotal += ls.count;
        result.layers.push_back(std::move(ls));
    }
    obs::metrics().counter("net.layers_scheduled").add(
        static_cast<std::int64_t>(layers.size()));
    result.layersUnique = static_cast<int>(uniques.size());
    result.totalEdp = result.totalEnergyPj * result.totalDelaySeconds;
    result.seconds = timer.seconds();
    eng.addPhaseSeconds("net.schedule", result.seconds);
    result.stats = eng.stats();
    return result;
}

} // namespace sunstone
