#include "core/net_scheduler.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "search/checkpoint.hh"

namespace sunstone {

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null"; // "%g" would emit inf/nan, which is not valid JSON
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Structural fingerprint of the whole schedule: the unique layer
 * fingerprints folded in discovery order (which is deterministic — it
 * follows the input layer list). Guards a "net" checkpoint against being
 * resumed for a different network or architecture.
 */
std::uint64_t
netFingerprint(const std::vector<std::uint64_t> &unique_fps)
{
    std::uint64_t h = 0x53554e53544f4e45ULL; // "SUNSTONE"
    for (std::uint64_t fp : unique_fps) {
        h ^= fp;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    }
    return h;
}

/** One completed unique search, as carried by the "net" checkpoint. */
struct DoneSearch
{
    bool found = false;
    Mapping mapping;
    double seconds = 0;
    std::int64_t examined = 0;
    std::string stopReason = "exhausted";
};

std::string
doneToJson(std::uint64_t fp, const DoneSearch &d)
{
    std::string s = "{\"fp\": " + jsonHexU64(fp) +
                    ", \"found\": " + (d.found ? "true" : "false") +
                    ", \"seconds\": " + jsonDouble(d.seconds) +
                    ", \"examined\": " + std::to_string(d.examined) +
                    ", \"stop\": \"" + jsonEscape(d.stopReason) + "\"";
    if (d.found)
        s += ", \"mapping\": " + mappingToJson(d.mapping);
    return s + "}";
}

bool
doneFromJson(const JsonValue &v, std::uint64_t &fp, DoneSearch &d)
{
    const JsonValue *f = v.find("fp");
    if (!f)
        return false;
    fp = f->asHexU64();
    if (const JsonValue *x = v.find("found"))
        d.found = x->asBool();
    if (const JsonValue *x = v.find("seconds"))
        d.seconds = x->asDouble();
    if (const JsonValue *x = v.find("examined"))
        d.examined = x->asInt();
    if (const JsonValue *x = v.find("stop"))
        d.stopReason = x->asString("exhausted");
    if (d.found) {
        const JsonValue *m = v.find("mapping");
        if (!m || !mappingFromJson(*m, d.mapping))
            return false;
    }
    return true;
}

} // anonymous namespace

std::string
NetScheduleResult::toJson() const
{
    std::string j = "{";
    j += "\"allFound\":" + std::string(allFound ? "true" : "false");
    j += ",\"stopReason\":\"" + jsonEscape(stopReason) + "\"";
    j += ",\"layersTotal\":" + std::to_string(layersTotal);
    j += ",\"layersUnique\":" + std::to_string(layersUnique);
    j += ",\"totalEnergyPj\":" + num(totalEnergyPj);
    j += ",\"totalDelaySeconds\":" + num(totalDelaySeconds);
    j += ",\"totalEdp\":" + num(totalEdp);
    j += ",\"seconds\":" + num(seconds);
    j += ",\"layers\":[";
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerSchedule &l = layers[i];
        if (i)
            j += ",";
        j += "{\"name\":\"" + jsonEscape(l.name) + "\"";
        j += ",\"count\":" + std::to_string(l.count);
        j += ",\"found\":" + std::string(l.found ? "true" : "false");
        j += ",\"deduplicated\":" +
             std::string(l.deduplicated ? "true" : "false");
        if (!l.stopReason.empty())
            j += ",\"stopReason\":\"" + jsonEscape(l.stopReason) + "\"";
        if (l.found) {
            j += ",\"energyPj\":" + num(l.cost.totalEnergyPj);
            j += ",\"delaySeconds\":" + num(l.cost.delaySeconds);
            j += ",\"edp\":" + num(l.cost.edp);
            j += ",\"utilization\":" + num(l.cost.utilization);
        }
        j += ",\"seconds\":" + num(l.seconds);
        j += ",\"candidatesExamined\":" +
             std::to_string(l.candidatesExamined);
        j += "}";
    }
    j += "],\"stats\":" + stats.toJson();
    j += "}";
    return j;
}

NetScheduleResult
scheduleNet(SearchContext &sc, const ArchSpec &arch,
            const std::vector<Layer> &layers,
            const NetSchedulerOptions &opts)
{
    SUNSTONE_TRACE_SPAN("net.schedule");
    Timer timer;
    NetScheduleResult result;

    const unsigned threads =
        opts.threads ? opts.threads : opts.sunstone.threads;
    EvalEngine &eng =
        sc.engine() ? *sc.engine()
                    : (opts.engine ? *opts.engine
                                   : sc.engineOrPrivate(threads));

    // The whole-network wall-clock budget becomes one absolute deadline
    // shared by every per-layer search: layers launched late inherit
    // whatever is left instead of each getting a fresh budget. The other
    // StopPolicy bounds (max-evals, plateau, invalid streak) apply to
    // each unique layer search individually.
    const StopPolicy &netPolicy = sc.policy();
    if (netPolicy.deadlineSeconds != 0 && !sc.hardDeadline()) {
        const double budget = std::max(0.0, netPolicy.deadlineSeconds);
        sc.setHardDeadline(std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(budget)));
    }

    // Bind every layer and group by structural fingerprint. BoundArch
    // objects are heap-allocated so references taken by the concurrent
    // searches below stay stable.
    struct Unique
    {
        std::unique_ptr<BoundArch> ba;
        std::uint64_t fingerprint = 0;
        bool restored = false;
        SunstoneResult search;
    };
    std::vector<Unique> uniques;
    std::vector<std::size_t> layerToUnique(layers.size());
    std::unordered_map<std::uint64_t, std::size_t> byFingerprint;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        auto ba = std::make_unique<BoundArch>(arch, layers[i].workload);
        const std::uint64_t fp = eng.context(*ba).fingerprint();
        auto [it, inserted] = byFingerprint.emplace(fp, uniques.size());
        if (inserted)
            uniques.push_back({std::move(ba), fp, false, {}});
        layerToUnique[i] = it->second;
    }
    std::vector<std::uint64_t> uniqueFps;
    uniqueFps.reserve(uniques.size());
    for (const Unique &u : uniques)
        uniqueFps.push_back(u.fingerprint);
    const std::uint64_t netFp = netFingerprint(uniqueFps);

    // Consume a pending "net" resume snapshot: every unique search it
    // records as completed is adopted instead of re-run.
    double baseSeconds = 0;
    if (std::optional<SearchCheckpoint> ck = sc.takeResume()) {
        if (ck->search != "net")
            SUNSTONE_FATAL("checkpoint was written by search '",
                           ck->search, "', cannot resume the network "
                           "scheduler from it");
        if (ck->workloadFingerprint != netFp)
            SUNSTONE_FATAL("checkpoint fingerprint ",
                           ck->workloadFingerprint,
                           " does not match this network/architecture (",
                           netFp, ") — it was taken for a different "
                           "problem");
        if (sc.hasSeed() && sc.seed() != ck->seed)
            SUNSTONE_FATAL("checkpoint seed ", ck->seed,
                           " differs from the requested seed ",
                           sc.seed());
        sc.setSeed(ck->seed);
        baseSeconds = ck->seconds;
        JsonValue v;
        if (!parseJson(ck->streamState, v) || !v.isObject())
            SUNSTONE_FATAL("malformed 'net' checkpoint stream payload");
        std::unordered_map<std::uint64_t, DoneSearch> done;
        if (const JsonValue *arr = v.find("done"); arr && arr->isArray())
            for (const JsonValue &e : arr->items) {
                std::uint64_t fp = 0;
                DoneSearch d;
                if (!doneFromJson(e, fp, d))
                    SUNSTONE_FATAL("malformed 'net' checkpoint entry");
                done.emplace(fp, std::move(d));
            }
        for (Unique &u : uniques) {
            auto it = done.find(u.fingerprint);
            if (it == done.end())
                continue;
            const DoneSearch &d = it->second;
            u.restored = true;
            u.search.found = d.found;
            u.search.mapping = d.mapping;
            u.search.seconds = d.seconds;
            u.search.candidatesExamined = d.examined;
            u.search.stopReason = d.stopReason;
            if (d.found)
                u.search.cost =
                    eng.evaluate(eng.context(*u.ba), d.mapping);
            obs::metrics().counter("net.resumed_searches").add(1);
        }
    }

    // Writes the "net" checkpoint reflecting every completed (or
    // restored) unique search. Serialized by checkpointMtx — completed
    // searches land concurrently from the pool.
    std::mutex checkpointMtx;
    const auto writeNetCheckpoint = [&] {
        if (sc.checkpointPath().empty())
            return;
        SearchCheckpoint ck;
        ck.search = "net";
        ck.workloadFingerprint = netFp;
        ck.seed = sc.seed();
        std::string payload = "{\"done\": [";
        bool first = true;
        for (const Unique &u : uniques) {
            if (!u.restored)
                continue;
            DoneSearch d;
            d.found = u.search.found;
            d.mapping = u.search.mapping;
            d.seconds = u.search.seconds;
            d.examined = u.search.candidatesExamined;
            d.stopReason = u.search.stopReason;
            if (!first)
                payload += ", ";
            first = false;
            payload += doneToJson(u.fingerprint, d);
            ck.evaluated += u.search.candidatesExamined;
        }
        payload += "]}";
        ck.streamState = payload;
        ck.seconds = baseSeconds + timer.seconds();
        if (!ck.save(sc.checkpointPath()))
            SUNSTONE_WARN("failed to write checkpoint '",
                          sc.checkpointPath(), "'");
    };
    {
        std::lock_guard<std::mutex> lk(checkpointMtx);
        writeNetCheckpoint(); // records the restored set immediately
    }

    // One Sunstone search per unique structure, concurrently on the
    // shared pool. The search's own parallelFor nests on the same pool
    // through group-scoped joins, so no thread oversubscription.
    parallelFor(eng.pool(), uniques.size(), [&](std::size_t u) {
        if (uniques[u].restored)
            return;
        SUNSTONE_TRACE_SPAN("net.search:" +
                            uniques[u].ba->workload().name());
        SunstoneOptions so = opts.sunstone;
        so.engine = &eng;
        // One trajectory per unique structure, labeled by the layer that
        // introduced it.
        obs::ConvergenceRecorder *conv =
            sc.convergence() ? sc.convergence() : so.convergence;
        if (conv)
            so.searchLabel =
                "sunstone:" + uniques[u].ba->workload().name();
        // Each concurrent search gets its own child context; the
        // network-wide hard deadline and cancellation flag are shared
        // through it, the per-search bounds are copied.
        SearchContext child(&eng, netPolicy, conv);
        child.policy().deadlineSeconds = 0; // network-wide, see above
        if (sc.hardDeadline())
            child.setHardDeadline(*sc.hardDeadline());
        if (sc.hasSeed())
            child.setSeed(sc.seed());
        Timer t;
        uniques[u].search = sunstoneOptimize(child, *uniques[u].ba, so);
        eng.addPhaseSeconds(
            "layer:" + uniques[u].ba->workload().name(), t.seconds());
        std::lock_guard<std::mutex> lk(checkpointMtx);
        uniques[u].restored = true; // completed: include in checkpoints
        writeNetCheckpoint();
    });
    obs::metrics().counter("net.unique_searches").add(
        static_cast<std::int64_t>(uniques.size()));

    result.allFound = true;
    result.stopReason = "exhausted";
    result.layers.reserve(layers.size());
    std::vector<bool> seen(uniques.size(), false);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const std::size_t u = layerToUnique[i];
        const Unique &uq = uniques[u];
        LayerSchedule ls;
        ls.name = layers[i].workload.name();
        ls.count = layers[i].count;
        ls.found = uq.search.found;
        ls.mapping = uq.search.mapping;
        if (seen[u]) {
            // Broadcast: re-validate the chosen mapping under this
            // layer's own context. Identical structure means an
            // identical cache key, so this is a guaranteed hit — the
            // dedup shows up in the telemetry instead of as a repeated
            // search.
            ls.deduplicated = true;
            obs::metrics().counter("net.dedup_broadcasts").add(1);
            if (ls.found) {
                SUNSTONE_TRACE_SPAN("net.broadcast");
                ls.cost = eng.evaluate(eng.context(*uq.ba), ls.mapping);
            }
        } else {
            seen[u] = true;
            ls.cost = uq.search.cost;
            ls.seconds = uq.search.seconds;
            ls.candidatesExamined = uq.search.candidatesExamined;
            ls.stopReason = uq.search.stopReason;
            // The first interrupting reason wins over "exhausted";
            // cancellation outranks the deadline.
            if (ls.stopReason == "deadline" &&
                result.stopReason == "exhausted")
                result.stopReason = "deadline";
            if (ls.stopReason == "cancelled")
                result.stopReason = "cancelled";
        }
        if (ls.found) {
            result.totalEnergyPj += ls.count * ls.cost.totalEnergyPj;
            result.totalDelaySeconds += ls.count * ls.cost.delaySeconds;
        } else {
            result.allFound = false;
        }
        result.layersTotal += ls.count;
        result.layers.push_back(std::move(ls));
    }
    obs::metrics().counter("net.layers_scheduled").add(
        static_cast<std::int64_t>(layers.size()));
    result.layersUnique = static_cast<int>(uniques.size());
    result.totalEdp = result.totalEnergyPj * result.totalDelaySeconds;
    result.seconds = baseSeconds + timer.seconds();
    eng.addPhaseSeconds("net.schedule", timer.seconds());
    result.stats = eng.stats();
    return result;
}

NetScheduleResult
scheduleNet(const ArchSpec &arch, const std::vector<Layer> &layers,
            const NetSchedulerOptions &opts)
{
    SearchContext sc;
    return scheduleNet(sc, arch, layers, opts);
}

} // namespace sunstone
