#include "core/unrolling.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

namespace {

void
enumerate(const std::vector<DimId> &dims,
          const std::vector<std::int64_t> &remaining, std::int64_t fanout,
          std::size_t pos, std::vector<std::int64_t> &current,
          std::int64_t product, UnrollResult &res)
{
    if (pos == dims.size()) {
        ++res.combosVisited;
        res.candidates.push_back(current);
        return;
    }
    const DimId d = dims[pos];
    for (std::int64_t f : cachedDivisors(remaining[d])) {
        if (satMul(product, f) > fanout)
            break;
        current[d] = f;
        enumerate(dims, remaining, fanout, pos + 1, current,
                  product * f, res);
    }
    current[d] = 1;
}

} // anonymous namespace

UnrollResult
unrollCandidates(const Workload &wl, DimSet allowed,
                 const std::vector<std::int64_t> &remaining,
                 std::int64_t fanout, double util_threshold)
{
    const int nd = wl.numDims();
    UnrollResult res;

    res.unprunedSpace = 1;
    for (DimId d = 0; d < nd; ++d)
        res.unprunedSpace = satMul(
            res.unprunedSpace,
            static_cast<std::int64_t>(cachedDivisors(remaining[d]).size()));

    std::vector<DimId> dims;
    for (DimId d : allowed)
        if (remaining[d] > 1)
            dims.push_back(d);

    std::vector<std::int64_t> current(nd, 1);
    if (dims.empty()) {
        res.candidates.push_back(current);
        res.combosVisited = 1;
        return res;
    }
    enumerate(dims, remaining, fanout, 0, current, 1, res);

    // High-throughput filter: keep the combos closest to filling the
    // fanout. At least the best combination always survives.
    std::int64_t best = 1;
    auto product = [nd](const std::vector<std::int64_t> &v) {
        std::int64_t p = 1;
        for (int d = 0; d < nd; ++d)
            p = satMul(p, v[d]);
        return p;
    };
    for (const auto &c : res.candidates)
        best = std::max(best, product(c));
    const double cutoff = util_threshold * static_cast<double>(best);
    std::vector<std::vector<std::int64_t>> kept;
    for (auto &c : res.candidates)
        if (static_cast<double>(product(c)) >= cutoff)
            kept.push_back(std::move(c));
    res.candidates = std::move(kept);
    return res;
}

} // namespace sunstone
