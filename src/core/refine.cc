#include "core/refine.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/math_utils.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"
#include "search/search_driver.hh"

namespace sunstone {

namespace {

/** Objective of a mapping; infinity when invalid. */
double
objective(EvalEngine &engine, const EvalEngine::Context &ctx,
          const EvalEngine::PrefixHandle &ph, const Mapping &m, bool edp,
          RefineStats *stats, SearchDriver *driver)
{
    if (stats)
        ++stats->evaluated;
    if (driver)
        driver->noteEvaluated(1);
    CostResult r = engine.evaluateWithPrefix(ctx, ph, m);
    if (!r.valid)
        return std::numeric_limits<double>::infinity();
    return edp ? r.edp : r.totalEnergyPj;
}

/**
 * A candidate move plus the lowest level it touched: levels below
 * `prefixLevels` are identical to the round's base mapping, so the
 * evaluation can reuse the base's cached prefix terms.
 */
struct Neighbour
{
    Mapping m;
    int prefixLevels = 0;
};

/** Generates all single-prime-factor move neighbours of m. */
std::vector<Neighbour>
neighbours(const BoundArch &ba, const Mapping &m)
{
    const int nl = m.numLevels();
    const int nd = m.numDims();
    std::vector<Neighbour> out;

    // Every (level, temporal|spatial) slot is a possible source and
    // destination for one prime factor of each dim.
    struct Slot
    {
        int level;
        bool spatial;
    };
    std::vector<Slot> slots;
    for (int l = 0; l < nl; ++l) {
        slots.push_back({l, false});
        if (ba.arch().levels[l].fanout > 1)
            slots.push_back({l, true});
    }

    auto factorOf = [&](const Mapping &map, const Slot &s, DimId d) {
        const auto &lm = map.level(s.level);
        return s.spatial ? lm.spatial[d] : lm.temporal[d];
    };
    auto factorRef = [&](Mapping &map, const Slot &s,
                         DimId d) -> std::int64_t & {
        auto &lm = map.level(s.level);
        return s.spatial ? lm.spatial[d] : lm.temporal[d];
    };

    for (DimId d = 0; d < nd; ++d) {
        for (const auto &src : slots) {
            const std::int64_t f = factorOf(m, src, d);
            if (f <= 1)
                continue;
            for (auto [p, e] : cachedPrimeFactors(f)) {
                (void)e;
                for (const auto &dst : slots) {
                    if (src.level == dst.level &&
                        src.spatial == dst.spatial)
                        continue;
                    Mapping n = m;
                    factorRef(n, src, d) /= p;
                    factorRef(n, dst, d) =
                        satMul(factorRef(n, dst, d), p);
                    out.push_back(
                        {std::move(n), std::min(src.level, dst.level)});
                }
            }
        }
    }

    // Innermost-loop rotations per level: move each dim with a factor
    // > 1 to the innermost position.
    for (int l = 1; l < nl; ++l) {
        for (DimId d = 0; d < nd; ++d) {
            if (m.level(l).temporal[d] <= 1)
                continue;
            if (m.level(l).order.back() == d)
                continue;
            Mapping n = m;
            auto &order = n.level(l).order;
            order.erase(std::find(order.begin(), order.end(), d));
            order.push_back(d);
            out.push_back({std::move(n), l});
        }
    }
    return out;
}

} // anonymous namespace

Mapping
polishMapping(const BoundArch &ba, const Mapping &m, bool optimize_edp,
              int max_rounds, RefineStats *stats, EvalEngine *engine,
              SearchDriver *driver)
{
    SUNSTONE_TRACE_SPAN("refine.hillclimb");
    EvalEngine localEngine;
    EvalEngine &eng = engine ? *engine : localEngine;
    const EvalEngine::Context ctx = eng.context(ba);
    Mapping best = m;
    double best_obj = objective(eng, ctx, EvalEngine::PrefixHandle{}, best,
                                optimize_edp, stats, driver);
    for (int round = 0; round < max_rounds; ++round) {
        if (driver && driver->shouldStop())
            break;
        bool improved = false;
        // Neighbours are generated from the round's base mapping, and
        // each shares that base's levels below its lowest changed one:
        // evaluate through the memoized prefix terms of the base so only
        // the touched levels are recomputed.
        const Mapping base = best;
        for (auto &n : neighbours(ba, base)) {
            if (driver && driver->shouldStop())
                break;
            const EvalEngine::PrefixHandle ph =
                eng.prefix(ctx, base, n.prefixLevels);
            const double obj =
                objective(eng, ctx, ph, n.m, optimize_edp, stats, driver);
            if (obj < best_obj) {
                best_obj = obj;
                best = std::move(n.m);
                improved = true;
            }
        }
        if (!improved)
            break;
        if (stats)
            ++stats->movesAccepted;
    }
    return best;
}

} // namespace sunstone
