#include "core/refine.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/math_utils.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"
#include "search/search_driver.hh"

namespace sunstone {

namespace {

/** Objective of a mapping; infinity when invalid. */
double
objective(EvalEngine &engine, const EvalEngine::Context &ctx,
          const EvalEngine::PrefixHandle &ph, const Mapping &m, bool edp,
          RefineStats *stats, SearchDriver *driver)
{
    if (stats)
        ++stats->evaluated;
    if (driver)
        driver->noteEvaluated(1);
    CostResult r = engine.evaluateWithPrefix(ctx, ph, m);
    if (!r.valid)
        return std::numeric_limits<double>::infinity();
    return edp ? r.edp : r.totalEnergyPj;
}

/**
 * A candidate move plus the lowest level it touched: levels below
 * `prefixLevels` are identical to the round's base mapping, so the
 * evaluation can reuse the base's cached prefix terms.
 */
struct Neighbour
{
    Mapping m;
    int prefixLevels = 0;
};

/** Generates all single-prime-factor move neighbours of m. */
std::vector<Neighbour>
neighbours(const BoundArch &ba, const Mapping &m)
{
    const int nl = m.numLevels();
    const int nd = m.numDims();
    std::vector<Neighbour> out;

    // Every (level, temporal|spatial) slot is a possible source and
    // destination for one prime factor of each dim.
    struct Slot
    {
        int level;
        bool spatial;
    };
    std::vector<Slot> slots;
    for (int l = 0; l < nl; ++l) {
        slots.push_back({l, false});
        if (ba.arch().levels[l].fanout > 1)
            slots.push_back({l, true});
    }

    auto factorOf = [&](const Mapping &map, const Slot &s, DimId d) {
        const auto &lm = map.level(s.level);
        return s.spatial ? lm.spatial[d] : lm.temporal[d];
    };
    auto factorRef = [&](Mapping &map, const Slot &s,
                         DimId d) -> std::int64_t & {
        auto &lm = map.level(s.level);
        return s.spatial ? lm.spatial[d] : lm.temporal[d];
    };

    for (DimId d = 0; d < nd; ++d) {
        for (const auto &src : slots) {
            const std::int64_t f = factorOf(m, src, d);
            if (f <= 1)
                continue;
            for (auto [p, e] : cachedPrimeFactors(f)) {
                (void)e;
                for (const auto &dst : slots) {
                    if (src.level == dst.level &&
                        src.spatial == dst.spatial)
                        continue;
                    Mapping n = m;
                    factorRef(n, src, d) /= p;
                    factorRef(n, dst, d) =
                        satMul(factorRef(n, dst, d), p);
                    out.push_back(
                        {std::move(n), std::min(src.level, dst.level)});
                }
            }
        }
    }

    // Innermost-loop rotations per level: move each dim with a factor
    // > 1 to the innermost position.
    for (int l = 1; l < nl; ++l) {
        for (DimId d = 0; d < nd; ++d) {
            if (m.level(l).temporal[d] <= 1)
                continue;
            if (m.level(l).order.back() == d)
                continue;
            Mapping n = m;
            auto &order = n.level(l).order;
            order.erase(std::find(order.begin(), order.end(), d));
            order.push_back(d);
            out.push_back({std::move(n), l});
        }
    }
    return out;
}

} // anonymous namespace

Mapping
polishMapping(const BoundArch &ba, const Mapping &m, bool optimize_edp,
              int max_rounds, RefineStats *stats, EvalEngine *engine,
              SearchDriver *driver)
{
    SUNSTONE_TRACE_SPAN("refine.hillclimb");
    EvalEngine localEngine;
    EvalEngine &eng = engine ? *engine : localEngine;
    const EvalEngine::Context ctx = eng.context(ba);
    Mapping best = m;
    double best_obj = objective(eng, ctx, EvalEngine::PrefixHandle{}, best,
                                optimize_edp, stats, driver);
    for (int round = 0; round < max_rounds; ++round) {
        if (driver && driver->shouldStop())
            break;
        bool improved = false;
        // Neighbours are generated from the round's base mapping, and
        // each shares that base's levels below its lowest changed one:
        // evaluate through the memoized prefix terms of the base so only
        // the touched levels are recomputed.
        const Mapping base = best;
        std::vector<Neighbour> ns = neighbours(ba, base);

        // Surrogate hook (serial, like the whole hill-climb): rank the
        // round's neighbours cheapest-first by predicted metric and,
        // once the confidence gate is open, skip the predicted-worst
        // tail entirely. Realized objectives stream back into the
        // model, and each round contributes a rank-correlation sample
        // to the gate.
        SurrogateModel *sm = driver ? driver->surrogate() : nullptr;
        std::vector<double> feat, preds;
        if (sm && sm->ranking() && ns.size() > 1) {
            sm->refit();
            preds.reserve(ns.size());
            for (const Neighbour &n : ns) {
                sm->featurize(n.m, feat);
                preds.push_back(sm->predict(feat));
            }
            std::vector<std::size_t> order(ns.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&preds](std::size_t a, std::size_t b) {
                                 return preds[a] < preds[b];
                             });
            std::size_t keep = ns.size();
            if (sm->gateOpen()) {
                const double pf = std::clamp(
                    sm->options().pruneFraction, 0.0, 0.95);
                keep = std::max<std::size_t>(
                    1, ns.size() -
                           static_cast<std::size_t>(
                               pf * static_cast<double>(ns.size())));
                driver->noteSurrogatePruned(
                    static_cast<std::int64_t>(ns.size() - keep));
            }
            std::vector<Neighbour> ranked;
            ranked.reserve(keep);
            std::vector<double> rankedPreds;
            rankedPreds.reserve(keep);
            for (std::size_t j = 0; j < keep; ++j) {
                ranked.push_back(std::move(ns[order[j]]));
                rankedPreds.push_back(preds[order[j]]);
            }
            ns = std::move(ranked);
            preds = std::move(rankedPreds);
        } else {
            preds.clear();
        }

        std::vector<double> realized;
        realized.reserve(ns.size());
        for (auto &n : ns) {
            if (driver && driver->shouldStop())
                break;
            const EvalEngine::PrefixHandle ph =
                eng.prefix(ctx, base, n.prefixLevels);
            const double obj =
                objective(eng, ctx, ph, n.m, optimize_edp, stats, driver);
            if (sm) {
                sm->featurize(n.m, feat);
                sm->observe(feat, obj);
                realized.push_back(obj);
            }
            if (obj < best_obj) {
                best_obj = obj;
                best = std::move(n.m);
                improved = true;
            }
        }
        if (sm && !preds.empty()) {
            preds.resize(realized.size());
            sm->updateGate(preds, realized);
        }
        if (!improved)
            break;
        if (stats)
            ++stats->movesAccepted;
    }
    return best;
}

} // namespace sunstone
