/**
 * @file
 * Network-level scheduler: maps a whole network (a list of layers with
 * multiplicities) onto one architecture through a shared EvalEngine.
 *
 * Real networks repeat layer structures heavily — ResNet-18's basic
 * blocks, Inception's parallel towers — and per-layer schedulers redo
 * the identical search for every repetition. The scheduler instead
 *  - deduplicates layers by the engine's structural fingerprint (display
 *    names excluded, so differently-named twins still merge),
 *  - runs the Sunstone search once per unique structure, concurrently on
 *    the engine's shared worker pool (the search's own parallelism nests
 *    on the same pool via group-scoped joins), and
 *  - broadcasts each result to the duplicates, re-validating the chosen
 *    mapping through the engine — a guaranteed cache hit, which also
 *    makes the dedup observable in the telemetry.
 *
 * Aggregates report the network as the paper's figures do: energies and
 * delays weighted by layer multiplicity (layers execute sequentially on
 * the accelerator), EDP as total energy x total delay.
 */

#ifndef SUNSTONE_CORE_NET_SCHEDULER_HH
#define SUNSTONE_CORE_NET_SCHEDULER_HH

#include <string>
#include <vector>

#include "core/sunstone.hh"
#include "model/eval_engine.hh"
#include "workload/nets.hh"

namespace sunstone {

/** Scheduler configuration. */
struct NetSchedulerOptions
{
    /** Per-layer search configuration. */
    SunstoneOptions sunstone;

    /**
     * Shared evaluation engine; a private one is created when null. The
     * engine's pool carries both the layer-level and the search-level
     * parallelism.
     */
    EvalEngine *engine = nullptr;

    /** Pool size for a private engine; 0 falls back to sunstone.threads. */
    unsigned threads = 0;
};

/** Outcome for one input layer. */
struct LayerSchedule
{
    std::string name;
    /** Multiplicity of the layer within the network. */
    int count = 1;
    bool found = false;
    /** Result copied from a structurally identical layer's search. */
    bool deduplicated = false;
    Mapping mapping;
    CostResult cost;
    /** Wall-clock of the search (0 for deduplicated layers). */
    double seconds = 0;
    std::int64_t candidatesExamined = 0;
    /** Why the layer's search ended ("" for deduplicated layers). */
    std::string stopReason;
};

/** Whole-network outcome. */
struct NetScheduleResult
{
    /** Every unique layer search produced a valid mapping. */
    bool allFound = false;

    std::vector<LayerSchedule> layers;

    /** Layer instances, counting multiplicity. */
    int layersTotal = 0;
    /** Structurally distinct layers actually searched. */
    int layersUnique = 0;

    /** Multiplicity-weighted aggregates over found layers. */
    double totalEnergyPj = 0;
    double totalDelaySeconds = 0;
    /** Network EDP: total energy x total delay. */
    double totalEdp = 0;

    /** Wall-clock of the whole schedule. */
    double seconds = 0;

    /**
     * Why the schedule ended: "exhausted" when every unique search ran
     * to its own completion, else the first interrupting reason
     * ("deadline" or "cancelled").
     */
    std::string stopReason;

    /** Engine telemetry snapshot taken after the schedule. */
    SearchStats stats;

    /** Renders the result (aggregates, layers, stats) as JSON. */
    std::string toJson() const;
};

/**
 * Schedules every layer of a network on `arch` under the caller's
 * SearchContext. The context's StopPolicy applies to the whole network:
 * `deadlineSeconds` is converted into one absolute hard deadline shared
 * by every per-layer search (layers launched late do not each get a
 * fresh budget), and the cancellation flag is polled by all of them.
 * When the context carries a checkpoint path, a net-level checkpoint
 * (search "net") is written after each completed unique search, and a
 * pending resume snapshot skips those searches on the next run.
 *
 * @param sc search context (policy, checkpoint/resume, engine)
 * @param arch the architecture (bound per layer internally)
 * @param layers layer table with multiplicities (see workload/nets.hh)
 * @param opts scheduler configuration
 */
NetScheduleResult scheduleNet(SearchContext &sc, const ArchSpec &arch,
                              const std::vector<Layer> &layers,
                              const NetSchedulerOptions &opts = {});

/** Convenience overload running under a fresh default context. */
NetScheduleResult scheduleNet(const ArchSpec &arch,
                              const std::vector<Layer> &layers,
                              const NetSchedulerOptions &opts = {});

} // namespace sunstone

#endif // SUNSTONE_CORE_NET_SCHEDULER_HH
