/**
 * @file
 * Network-level scheduler: maps a whole network (a list of layers with
 * multiplicities) onto one architecture through a shared EvalEngine.
 *
 * Real networks repeat layer structures heavily — ResNet-18's basic
 * blocks, Inception's parallel towers — and per-layer schedulers redo
 * the identical search for every repetition. The scheduler instead
 *  - deduplicates layers by the engine's structural fingerprint (display
 *    names excluded, so differently-named twins still merge),
 *  - runs the Sunstone search once per unique structure, concurrently on
 *    the engine's shared worker pool (the search's own parallelism nests
 *    on the same pool via group-scoped joins), and
 *  - broadcasts each result to the duplicates, re-validating the chosen
 *    mapping through the engine — a guaranteed cache hit, which also
 *    makes the dedup observable in the telemetry.
 *
 * Aggregates report the network as the paper's figures do: energies and
 * delays weighted by layer multiplicity (layers execute sequentially on
 * the accelerator), EDP as total energy x total delay.
 *
 * Given a NetGraph and FusionMode::Greedy, the scheduler additionally
 * co-searches fusion grouping with per-subgraph mappings (DESIGN.md
 * §13): producer→consumer chains whose shared tensor statically fits on
 * chip are searched both per-op and as a fused subgraph (the shared
 * tensors marked Ephemeral), and a chain is fused only when the fused
 * mappings dominate the per-op ones (no worse energy and delay, strictly
 * better EDP) with every ephemeral tensor fully resident — otherwise the
 * group falls back to its per-op results, so fused totals never regress.
 * FusionMode::Off runs the per-layer path unchanged.
 */

#ifndef SUNSTONE_CORE_NET_SCHEDULER_HH
#define SUNSTONE_CORE_NET_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/sunstone.hh"
#include "model/eval_engine.hh"
#include "workload/net_graph.hh"
#include "workload/nets.hh"

namespace sunstone {

/** How the scheduler treats producer→consumer edges of a NetGraph. */
enum class FusionMode
{
    /** Ignore edges; per-layer scheduling, bit-identical to before. */
    Off,
    /** Greedily fuse single-consumer chains when they win (see above). */
    Greedy,
};

/** Scheduler configuration. */
struct NetSchedulerOptions
{
    /** Per-layer search configuration. */
    SunstoneOptions sunstone;

    /**
     * Shared evaluation engine; a private one is created when null. The
     * engine's pool carries both the layer-level and the search-level
     * parallelism.
     */
    EvalEngine *engine = nullptr;

    /** Pool size for a private engine; 0 falls back to sunstone.threads. */
    unsigned threads = 0;

    /** Fusion mode for the NetGraph overload (layer lists are flat). */
    FusionMode fusion = FusionMode::Off;

    /**
     * Path of the persistent warm-start store (see warmstart.hh).
     * When set, each unique layer's search is seeded from the stored
     * best mappings of structurally similar layers, and every realized
     * best is recorded back (the file is created when missing). Empty
     * disables warm starting.
     */
    std::string warmstartStore;
};

/** Outcome for one input layer. */
struct LayerSchedule
{
    std::string name;
    /** Multiplicity of the layer within the network. */
    int count = 1;
    bool found = false;
    /** Result copied from a structurally identical layer's search. */
    bool deduplicated = false;
    Mapping mapping;
    CostResult cost;
    /** Wall-clock of the search (0 for deduplicated layers). */
    double seconds = 0;
    std::int64_t candidatesExamined = 0;
    /** Why the layer's search ended ("dedup" for deduplicated layers). */
    std::string stopReason;
    /** Fused-group index (greedy mode; -1 when scheduled per-layer). */
    int group = -1;
    /** Whether the reported mapping is the fused (ephemeral) variant. */
    bool fused = false;
};

/** Outcome for one fusion candidate group (greedy mode only). */
struct GroupSchedule
{
    /** Node names, chain order. */
    std::vector<std::string> members;
    /** Multiplicity shared by all members. */
    int count = 1;
    /** Whether the fused variant was accepted. */
    bool fused = false;
    /**
     * Why a multi-op group stayed unfused: "search" (a fused member
     * search found nothing), "coverage" (a chosen mapping spills an
     * ephemeral tensor), "cost" (fused mappings do not dominate), or ""
     * for accepted and single-op groups.
     */
    std::string rejectReason;
    /** Per-instance sums over members of the fused variant (when found). */
    double fusedEnergyPj = 0;
    double fusedDelaySeconds = 0;
    /** Per-instance sums over members of the per-op variant. */
    double unfusedEnergyPj = 0;
    double unfusedDelaySeconds = 0;
    /**
     * Attributed search cost of the whole chain: member per-op search
     * wall-clock and candidate counts, plus the fused-variant searches
     * for multi-op groups. Deduplicated members re-attribute the shared
     * search's cost, so the sums answer "what did deciding this chain
     * cost" rather than partitioning the wall-clock.
     */
    double searchSeconds = 0;
    std::int64_t candidatesExamined = 0;
};

/** Whole-network outcome. */
struct NetScheduleResult
{
    /** Every unique layer search produced a valid mapping. */
    bool allFound = false;

    std::vector<LayerSchedule> layers;

    /** Layer instances, counting multiplicity. */
    int layersTotal = 0;
    /** Structurally distinct layers actually searched. */
    int layersUnique = 0;

    /** Multiplicity-weighted aggregates over found layers. */
    double totalEnergyPj = 0;
    double totalDelaySeconds = 0;
    /** Network EDP: total energy x total delay. */
    double totalEdp = 0;

    /** Wall-clock of the whole schedule. */
    double seconds = 0;

    /**
     * Why the schedule ended: "exhausted" when every unique search ran
     * to its own completion, else the first interrupting reason
     * ("deadline" or "cancelled").
     */
    std::string stopReason;

    /** Engine telemetry snapshot taken after the schedule. */
    SearchStats stats;

    /**
     * "greedy" when fusion ran; empty otherwise. Gates all fusion
     * fields in toJson() so FusionMode::Off output is bit-identical to
     * the pre-fusion scheduler's.
     */
    std::string fusionMode;
    /** Fusion candidate groups, including singletons (greedy mode). */
    std::vector<GroupSchedule> groups;
    /** Multi-op groups considered / accepted; members of accepted. */
    int groupsFusable = 0;
    int groupsFused = 0;
    int opsFused = 0;

    /** Renders the result (aggregates, layers, stats) as JSON. */
    std::string toJson() const;
};

/**
 * Schedules every layer of a network on `arch` under the caller's
 * SearchContext. The context's StopPolicy applies to the whole network:
 * `deadlineSeconds` is converted into one absolute hard deadline shared
 * by every per-layer search (layers launched late do not each get a
 * fresh budget), and the cancellation flag is polled by all of them.
 * When the context carries a checkpoint path, a net-level checkpoint
 * (search "net") is written after each completed unique search, and a
 * pending resume snapshot skips those searches on the next run.
 *
 * @param sc search context (policy, checkpoint/resume, engine)
 * @param arch the architecture (bound per layer internally)
 * @param layers layer table with multiplicities (see workload/nets.hh)
 * @param opts scheduler configuration
 */
NetScheduleResult scheduleNet(SearchContext &sc, const ArchSpec &arch,
                              const std::vector<Layer> &layers,
                              const NetSchedulerOptions &opts = {});

/** Convenience overload running under a fresh default context. */
NetScheduleResult scheduleNet(const ArchSpec &arch,
                              const std::vector<Layer> &layers,
                              const NetSchedulerOptions &opts = {});

/**
 * Schedules a network DAG. With FusionMode::Off (or an edge-free graph)
 * this is exactly the per-layer scheduler over the graph's node list.
 * With FusionMode::Greedy, single-consumer producer→consumer chains
 * whose shared tensors statically fit on chip are searched both per-op
 * and fused, and each chain keeps whichever variant dominates; the
 * result gains per-group entries and fusion counters. The graph must
 * validate(); fatal() otherwise.
 */
NetScheduleResult scheduleNet(SearchContext &sc, const ArchSpec &arch,
                              const NetGraph &graph,
                              const NetSchedulerOptions &opts = {});

/** Convenience overload running under a fresh default context. */
NetScheduleResult scheduleNet(const ArchSpec &arch, const NetGraph &graph,
                              const NetSchedulerOptions &opts = {});

} // namespace sunstone

#endif // SUNSTONE_CORE_NET_SCHEDULER_HH
