/**
 * @file
 * Deterministic local refinement of a mapping: greedy hill climbing over
 * single-prime-factor moves between levels (temporal and spatial) and
 * innermost-loop rotations. The level-by-level search decides each level
 * with only an approximation of the levels above (Section V-C); this
 * pass cheaply repairs the small cross-level misallocations that
 * approximation leaves behind. A few hundred cost-model evaluations at
 * most — negligible next to the search itself.
 */

#ifndef SUNSTONE_CORE_REFINE_HH
#define SUNSTONE_CORE_REFINE_HH

#include "model/cost_model.hh"

namespace sunstone {

class EvalEngine;
class SearchDriver;

/** Refinement statistics. */
struct RefineStats
{
    std::int64_t evaluated = 0;
    int movesAccepted = 0;
};

/**
 * Hill climbs from `m` and returns the improved mapping.
 *
 * @param ba bound architecture/workload
 * @param m valid starting mapping
 * @param optimize_edp objective (EDP or energy)
 * @param max_rounds cap on accepted-improvement rounds
 * @param stats optional counters
 * @param engine optional shared evaluation engine; a private one is
 *        created when null. The hill climb revisits neighbours across
 *        rounds, so a shared memoized engine saves real evaluations.
 * @param driver optional search driver: evaluations are accounted with
 *        noteEvaluated() and the climb stops early once the driver's
 *        StopPolicy fires (deadline, eval budget, cancellation).
 */
Mapping polishMapping(const BoundArch &ba, const Mapping &m,
                      bool optimize_edp, int max_rounds = 64,
                      RefineStats *stats = nullptr,
                      EvalEngine *engine = nullptr,
                      SearchDriver *driver = nullptr);

} // namespace sunstone

#endif // SUNSTONE_CORE_REFINE_HH
