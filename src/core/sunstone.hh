/**
 * @file
 * The Sunstone scheduler (the paper's contribution, Sections III-IV):
 * level-by-level dataflow optimization where each step jointly picks
 *  - the reuse suffix of the loop ordering *above* the level being tiled
 *    (ordering trie, Section IV-A),
 *  - the level's temporal tile, grown only along the indexing dims of the
 *    reused operand (Tiling Principle + tree of Section IV-B), after
 *    greedily absorbing the previous step's reuse-suffix loops, and
 *  - the spatial unrolling of the fanout above, restricted by the Spatial
 *    Unrolling Principle and a throughput filter (Section III-B).
 *
 * Candidates are scored by completing the partial mapping (all residual
 * loops to DRAM) and evaluating its energy; a beam plus alpha-beta
 * pruning against the incumbent keeps the per-level frontier small
 * (Section V-C). Both the bottom-up and top-down inter-level orders and
 * all intra-level decision orders of Table VI are supported.
 */

#ifndef SUNSTONE_CORE_SUNSTONE_HH
#define SUNSTONE_CORE_SUNSTONE_HH

#include <cstdint>
#include <string>

#include "model/cost_model.hh"
#include "search/search_context.hh"

namespace sunstone {

class EvalEngine;

namespace obs {
class ConvergenceRecorder;
} // namespace obs

/** Search configuration. */
struct SunstoneOptions
{
    /** Inter-level optimization order (Table VI). */
    enum class LevelOrder { BottomUp, TopDown };

    /**
     * Intra-level decision order (Table VI):
     *  - UnrollTileOrder (default, the paper's implementation): per
     *    candidate ordering, spatial unrolling is decided before the
     *    temporal tile, so parallelism and tiling do not starve each
     *    other.
     *  - TileUnrollOrder: per candidate ordering, temporal tile first.
     *  - OrderTileUnroll: tile and unrolling are enumerated over the
     *    union of every ordering's principle-allowed dims and the
     *    ordering is bound last (a larger space, same principles).
     */
    enum class IntraOrder { OrderTileUnroll, TileUnrollOrder,
                            UnrollTileOrder };

    LevelOrder levelOrder = LevelOrder::BottomUp;
    IntraOrder intraOrder = IntraOrder::UnrollTileOrder;

    /** Partial mappings carried between levels. */
    int beamWidth = 32;

    /** Keep unrollings with >= threshold * best-achievable utilization. */
    double utilizationThreshold = 0.75;

    /** Alpha-beta pruning of partials against the incumbent energy. */
    bool alphaBeta = true;

    /** Prune partials whose estimate exceeds incumbent * slack. */
    double alphaSlack = 2.0;

    /** Worker threads (the paper evaluates all tools with 8). */
    unsigned threads = 1;

    /** Rank final candidates by EDP (default) or energy alone. */
    bool optimizeEdp = true;

    /** Hill-climb the winning mapping with single-factor moves. */
    bool polish = true;

    /**
     * Add one unconstrained (empty-suffix) ordering candidate per level
     * so unrollings mixing reduction and output dims stay reachable.
     */
    bool generalistOrdering = true;

    /**
     * Shared evaluation engine (memoization cache, telemetry, worker
     * pool). When null the driver creates a private engine sized by
     * `threads`; inject one to share the cache and pool across searches
     * (the network scheduler does).
     */
    EvalEngine *engine = nullptr;

    /**
     * Optional convergence telemetry: when set, the search opens one
     * trajectory named `searchLabel` and records a point per incumbent
     * improvement plus one final point equal to the returned result.
     */
    obs::ConvergenceRecorder *convergence = nullptr;

    /** Trajectory name used with `convergence`. */
    std::string searchLabel = "sunstone";
};

/** Search outcome. */
struct SunstoneResult
{
    bool found = false;
    Mapping mapping;
    CostResult cost;

    /** (order, tile, unroll) combinations examined — the "space size". */
    std::int64_t candidatesExamined = 0;
    /** Wall-clock time of the search (cumulative across resumes). */
    double seconds = 0;

    /** Why the search ended (a stable stopReasonName() string). */
    std::string stopReason;
};

/**
 * Runs the Sunstone search for a workload/architecture pair under the
 * caller's SearchContext (StopPolicy, checkpoint/resume, convergence,
 * shared engine). Resuming assumes the same SunstoneOptions as the run
 * that wrote the checkpoint.
 */
SunstoneResult sunstoneOptimize(SearchContext &sc, const BoundArch &ba,
                                const SunstoneOptions &opts = {});

/** Convenience overload running under a fresh default context. */
SunstoneResult sunstoneOptimize(const BoundArch &ba,
                                const SunstoneOptions &opts = {});

} // namespace sunstone

#endif // SUNSTONE_CORE_SUNSTONE_HH
