/**
 * @file
 * Spatial-unrolling enumeration with the Spatial Unrolling Principle of
 * Section III-B: dimensions whose unrolling would spatially reuse the
 * already-temporally-reused operand are rejected, and the remaining
 * combinations are filtered by a throughput (utilization) threshold —
 * the "high throughput" pruning of Table I.
 */

#ifndef SUNSTONE_CORE_UNROLLING_HH
#define SUNSTONE_CORE_UNROLLING_HH

#include <cstdint>
#include <vector>

#include "workload/dim_set.hh"
#include "workload/workload.hh"

namespace sunstone {

/** Result of one unrolling enumeration. */
struct UnrollResult
{
    /** Surviving spatial factor vectors (per dim). */
    std::vector<std::vector<std::int64_t>> candidates;
    /** Combinations examined (after the principle's dim filter). */
    std::int64_t combosVisited = 0;
    /** Size of the unfiltered space over all dims (for reporting). */
    std::int64_t unprunedSpace = 0;
};

/**
 * Enumerates spatial factor vectors for one fanout.
 *
 * @param wl the workload
 * @param allowed dims the Spatial Unrolling Principle permits
 * @param remaining per-dim quotient available
 * @param fanout number of parallel instances to fill
 * @param util_threshold keep combos whose product >= threshold * best
 *        achievable product (>= 1 combo always survives)
 */
UnrollResult
unrollCandidates(const Workload &wl, DimSet allowed,
                 const std::vector<std::int64_t> &remaining,
                 std::int64_t fanout, double util_threshold);

} // namespace sunstone

#endif // SUNSTONE_CORE_UNROLLING_HH
