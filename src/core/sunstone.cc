#include "core/sunstone.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_set>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "core/ordering_trie.hh"
#include "core/refine.hh"
#include "core/tiling_tree.hh"
#include "core/unrolling.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/trace.hh"
#include "search/checkpoint.hh"
#include "search/search_driver.hh"

namespace sunstone {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A partially decided mapping plus its search bookkeeping. */
struct Partial
{
    Mapping m;
    std::vector<std::int64_t> remaining;
    /** Reuse suffix chosen for the next level's loops (innermost first). */
    std::vector<DimId> pendingSuffix;
    double score = kInf;
};

/**
 * Per-beam-entry expansion sink. Each entry expands into its own
 * collector whose alpha-beta incumbent is seeded from the step-start
 * global incumbent, so an entry's pruning decisions depend only on its
 * own emission sequence — never on how expansions interleave across
 * worker threads. The serial in-entry-order merge in expandBeam applies
 * the global incumbent afterwards.
 */
struct Collector
{
    std::vector<Partial> out;
    double inc = kInf;
};

std::string
i64ArrayJson(const std::vector<std::int64_t> &v)
{
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(v[i]);
    }
    return s + "]";
}

std::string
dimArrayJson(const std::vector<DimId> &v)
{
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(static_cast<int>(v[i]));
    }
    return s + "]";
}

/**
 * Beam checkpoint payload: the next step to run, the inter-level
 * direction (validated on resume), the cumulative examined counter, the
 * global incumbent, and every surviving partial. Written only after a
 * fully completed step, so a resumed run replays from a state the
 * uninterrupted run also passed through.
 */
std::string
beamPayload(int next_step, bool bottom_up, std::int64_t examined,
            double incumbent, const std::vector<Partial> &beam)
{
    std::string s = "{\"step\": " + std::to_string(next_step) +
                    ", \"bottomUp\": " +
                    (bottom_up ? std::string("true") : "false") +
                    ", \"examined\": " + std::to_string(examined) +
                    ", \"incumbent\": " + jsonDouble(incumbent) +
                    ", \"beam\": [";
    for (std::size_t i = 0; i < beam.size(); ++i) {
        if (i)
            s += ", ";
        const Partial &p = beam[i];
        s += "{\"m\": " + mappingToJson(p.m) +
             ", \"rem\": " + i64ArrayJson(p.remaining) +
             ", \"suffix\": " + dimArrayJson(p.pendingSuffix) +
             ", \"score\": " + jsonDouble(p.score) + "}";
    }
    return s + "]}";
}

/** Capacity check of a shape against one storage level. */
bool
shapeFits(const BoundArch &ba, int level,
          const std::vector<std::int64_t> &shape)
{
    if (ba.arch().levels[level].isDram)
        return true;
    const Workload &wl = ba.workload();
    std::vector<std::int64_t> fp(wl.numTensors(), 0);
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        if (ba.stores(level, t))
            fp[t] = wl.tensor(t).footprint(shape);
    return ba.fits(level, fp);
}

class Driver
{
  public:
    Driver(SearchContext &sc, const BoundArch &ba,
           const SunstoneOptions &opts)
        : sc(sc), ba(ba), opts(opts), wl(ba.workload()),
          nLevels(ba.numLevels()), nDims(wl.numDims()),
          engine(sc.engine()
                     ? *sc.engine()
                     : (opts.engine ? *opts.engine
                                    : sc.engineOrPrivate(opts.threads))),
          ctx(engine.context(ba))
    {
    }

    SunstoneResult
    run()
    {
        SUNSTONE_TRACE_SPAN("sunstone.search");
        Timer timer;
        SunstoneResult result;

        // The driver owns timing, eval accounting, the incumbent, the
        // convergence trajectory, StopPolicy enforcement, and the
        // checkpoint/resume cycle. The beam logic below only feeds it.
        if (!sc.convergence() && opts.convergence)
            sc.setConvergence(opts.convergence);
        SearchDriver drv(sc, engine, ba, opts.searchLabel,
                         opts.optimizeEdp);
        drv_ = &drv;

        const bool bottom_up =
            opts.levelOrder == SunstoneOptions::LevelOrder::BottomUp;
        int step = bottom_up ? 0 : nLevels - 1;
        std::vector<Partial> beam;
        const std::string payload = drv.consumeResumePayload();
        if (!payload.empty()) {
            restoreBeamState(payload, bottom_up, step, beam);
        } else {
            beam = initialBeam();
            if (!sc.warmStarts().empty()) {
                // Warm starts from structurally similar layers: the
                // driver evaluates them (they may set the incumbent
                // outright), and their completion-score energies seed
                // the alpha-beta bound so the beam prunes against a
                // realistic target from step zero.
                drv.seedWarmStarts();
                CostModelOptions cmo;
                cmo.assumeValid = true;
                cmo.modelNoc = false;
                for (const Mapping &seed : sc.warmStarts()) {
                    if (!seed.valid(ba))
                        continue;
                    const double e = engine.scoreEnergy(
                        ctx, EvalEngine::PrefixHandle{}, seed, cmo);
                    if (e < incumbent_)
                        incumbent_ = e;
                }
            }
        }

        if (bottom_up) {
            for (int k = step; k < nLevels - 1; ++k) {
                if (drv.shouldStop())
                    break;
                beam = expandBeam(beam, k, /*bottom_up=*/true);
                saveBeamState(drv, k + 1, bottom_up, beam);
            }
            finalizeBottomUp(beam);
        } else {
            for (int k = step; k >= 1; --k) {
                if (drv.shouldStop())
                    break;
                beam = expandBeam(beam, k, /*bottom_up=*/false);
                saveBeamState(drv, k - 1, bottom_up, beam);
            }
            finalizeTopDown(beam);
        }

        // Full evaluation (with validity check) of the surviving beam.
        // Always runs, even after a stop fired mid-search: the partial
        // beam still yields the best mapping found so far.
        std::vector<std::pair<double, const Partial *>> ranked;
        {
            SUNSTONE_TRACE_SPAN("sunstone.rank");
            // Rank the survivors as one batch across the pool; results
            // come back in beam order, so the recorded trajectory and
            // tie-breaking match the historical serial loop exactly.
            std::vector<Mapping> ms;
            ms.reserve(beam.size());
            for (const auto &p : beam)
                ms.push_back(p.m);
            std::vector<CostResult> results;
            engine.evaluateBatch(ctx, ms, {},
                                 EvalEngine::CachePolicy::UseCache,
                                 results);
            drv.noteEvaluated(static_cast<std::int64_t>(beam.size()));
            for (std::size_t i = 0; i < beam.size(); ++i) {
                const CostResult &cr = results[i];
                if (!cr.valid)
                    continue;
                drv.offer(beam[i].m, cr);
                ranked.emplace_back(
                    opts.optimizeEdp ? cr.edp : cr.totalEnergyPj,
                    &beam[i]);
            }
        }
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });

        // Polish the few best survivors: the level-by-level search
        // decides each level under an approximation of the levels
        // above, and a short hill climb repairs the leftovers.
        const std::size_t polish_count =
            opts.polish ? std::min<std::size_t>(4, ranked.size())
                        : std::min<std::size_t>(1, ranked.size());
        for (std::size_t i = 0; i < polish_count; ++i) {
            if (drv.shouldStop())
                break;
            Mapping m = ranked[i].second->m;
            if (opts.polish) {
                SUNSTONE_TRACE_SPAN("sunstone.refine");
                RefineStats rs;
                m = polishMapping(ba, m, opts.optimizeEdp, 64, &rs,
                                  &engine, &drv);
                examined.fetch_add(rs.evaluated);
            }
            CostResult cr = engine.evaluate(ctx, m);
            drv.noteEvaluated(1);
            if (!cr.valid)
                continue;
            drv.offer(m, cr);
        }

        DriverOutcome o = drv.finish(StopReason::Exhausted);
        drv_ = nullptr;
        result.found = o.found;
        if (o.found) {
            result.mapping = std::move(o.best);
            result.cost = std::move(o.bestCost);
        }
        result.candidatesExamined = examined.load();
        result.seconds = o.seconds;
        result.stopReason = stopReasonName(o.reason);
        engine.addPhaseSeconds("sunstone.search", timer.seconds());
        return result;
    }

  private:
    /** Checkpoints a fully completed step (no-op without a path). */
    void
    saveBeamState(SearchDriver &drv, int next_step, bool bottom_up,
                  const std::vector<Partial> &beam)
    {
        if (sc.checkpointPath().empty() || drv.shouldStop())
            return;
        drv.checkpointNow(beamPayload(next_step, bottom_up,
                                      examined.load(), incumbent_, beam));
    }

    void
    restoreBeamState(const std::string &payload, bool bottom_up,
                     int &step, std::vector<Partial> &beam)
    {
        JsonValue v;
        if (!parseJson(payload, v) || !v.isObject())
            SUNSTONE_FATAL("sunstone resume: malformed beam payload");
        const JsonValue *bu = v.find("bottomUp");
        if (!bu || bu->asBool(!bottom_up) != bottom_up)
            SUNSTONE_FATAL("sunstone resume: checkpoint level order does "
                           "not match the configured LevelOrder");
        const JsonValue *st = v.find("step");
        const JsonValue *bm = v.find("beam");
        if (!st || !bm || !bm->isArray())
            SUNSTONE_FATAL("sunstone resume: malformed beam payload");
        step = static_cast<int>(st->asInt(0));
        if (const JsonValue *ex = v.find("examined"))
            examined.store(ex->asInt(0));
        if (const JsonValue *inc = v.find("incumbent"))
            incumbent_ = inc->isNull() ? kInf : inc->asDouble(kInf);
        beam.clear();
        for (const JsonValue &e : bm->items) {
            Partial p;
            p.m = Mapping(nLevels, nDims);
            const JsonValue *m = e.find("m");
            if (!m || !mappingFromJson(*m, p.m))
                SUNSTONE_FATAL("sunstone resume: malformed beam mapping");
            p.remaining.assign(nDims, 1);
            if (const JsonValue *rem = e.find("rem"))
                for (std::size_t i = 0;
                     i < rem->items.size() &&
                     i < static_cast<std::size_t>(nDims);
                     ++i)
                    p.remaining[i] = rem->items[i].asInt(1);
            if (const JsonValue *suf = e.find("suffix"))
                for (const JsonValue &d : suf->items)
                    p.pendingSuffix.push_back(
                        static_cast<DimId>(d.asInt(0)));
            if (const JsonValue *s = e.find("score"))
                p.score = s->isNull() ? kInf : s->asDouble(kInf);
            beam.push_back(std::move(p));
        }
    }

    std::vector<Partial>
    initialBeam()
    {
        Partial p;
        p.m = Mapping(nLevels, nDims);
        p.remaining = wl.shape();
        return {p};
    }

    DimSet
    activeDims(const std::vector<std::int64_t> &remaining) const
    {
        DimSet s;
        for (DimId d = 0; d < nDims; ++d)
            if (remaining[d] > 1)
                s.add(d);
        return s;
    }

    /**
     * Grow dims per the Tiling Principle for one ordering candidate at
     * one level. Dims that index no tensor stored at the level are
     * excluded: growing them is capacity-free there (the data lives
     * higher up), adds no reuse at this level, and would silently
     * consume quotient that upper spatial levels need.
     */
    DimSet
    growDimsFor(const OrderingCandidate &ord, DimSet active, int level)
        const
    {
        DimSet stored;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (ba.stores(level, t))
                stored = stored.unionWith(wl.reuse(t).indexing);
        DimSet g;
        for (TensorId t : ord.fullyReusedTensors())
            g = g.unionWith(wl.reuse(t).indexing);
        if (g.empty())
            g = DimSet::all(nDims);
        return g.intersect(stored).intersect(active);
    }

    /** Allowed unroll dims per the Spatial Unrolling Principle. */
    DimSet
    allowedUnrollDimsFor(const OrderingCandidate &ord) const
    {
        auto reused = ord.fullyReusedTensors();
        if (reused.empty())
            return DimSet::all(nDims);
        DimSet allowed = DimSet::all(nDims);
        for (TensorId t : reused)
            allowed = allowed.intersect(wl.reuse(t).indexing);
        return allowed;
    }

    /**
     * Greedily absorbs the pending reuse-suffix loops into level k's
     * temporal factors (largest fitting divisors, innermost first) and
     * fixes level k's loop order with the suffix innermost.
     */
    void
    absorb(Partial &p, int k) const
    {
        auto &lm = p.m.level(k);
        for (DimId d : p.pendingSuffix) {
            auto shape = p.m.tileShape(k);
            const auto &divs = cachedDivisors(p.remaining[d]);
            for (auto it = divs.rbegin(); it != divs.rend(); ++it) {
                auto candidate = shape;
                candidate[d] = satMul(candidate[d], *it);
                if (shapeFits(ba, k, candidate)) {
                    lm.temporal[d] = satMul(lm.temporal[d], *it);
                    p.remaining[d] /= *it;
                    break;
                }
            }
        }
        // Suffix dims innermost, the rest outermost in canonical order.
        OrderingCandidate oc;
        oc.suffix = p.pendingSuffix;
        lm.order = oc.fullOrder(nDims);
    }

    /**
     * Scores a partial by completing it (all residual loops to the DRAM
     * level for bottom-up, to level 0 for top-down) and evaluating its
     * energy — the paper's approximated-energy alpha-beta surrogate.
     */
    double
    scoreCompletion(Partial &p, const std::vector<DimId> &suffix,
                    bool bottom_up,
                    const EvalEngine::PrefixHandle &ph) const
    {
        const int fill = bottom_up ? nLevels - 1 : 0;
        auto &lm = p.m.level(fill);
        // Complete in place and restore afterwards: the fill level's
        // factors (and order, for bottom-up) are stashed in per-thread
        // buffers so scoring performs no Mapping copy.
        thread_local std::vector<std::int64_t> saved_temporal;
        thread_local std::vector<DimId> saved_order;
        saved_temporal.assign(lm.temporal.begin(), lm.temporal.end());
        for (DimId d = 0; d < nDims; ++d)
            lm.temporal[d] = satMul(lm.temporal[d], p.remaining[d]);
        if (bottom_up) {
            saved_order.assign(lm.order.begin(), lm.order.end());
            OrderingCandidate oc;
            oc.suffix = suffix;
            lm.order = oc.fullOrder(nDims);
        }
        CostModelOptions cmo;
        cmo.assumeValid = true;
        cmo.modelNoc = false;
        // Partials are ranked by approximated energy (access counts), as
        // in the paper; the delay of a residual-at-DRAM completion is
        // too noisy to rank by EDP. Parallelism diversity is preserved
        // by the stratified beam (see expandBeam), and the final pick
        // over the surviving beam uses the real objective. Completions
        // are nearly all distinct, so scoring goes through the
        // allocation-free fast path (never cached); the decided-level
        // prefix terms come from the step's shared handle.
        const double e = engine.scoreEnergy(ctx, ph, p.m, cmo);
        lm.temporal.assign(saved_temporal.begin(), saved_temporal.end());
        if (bottom_up)
            lm.order.assign(saved_order.begin(), saved_order.end());
        return e;
    }

    /** Scores a finished step candidate into its entry's collector. */
    void
    emit(Collector &col, Partial &&cand, bool bottom_up,
         const EvalEngine::PrefixHandle &ph)
    {
        if (drv_->shouldStop())
            return;
        cand.score =
            scoreCompletion(cand, cand.pendingSuffix, bottom_up, ph);
        examined.fetch_add(1, std::memory_order_relaxed);
        drv_->noteEvaluated(1);
        if (opts.alphaBeta) {
            if (cand.score < col.inc)
                col.inc = cand.score;
            if (cand.score > col.inc * opts.alphaSlack) {
                engine.notePrune();
                return;
            }
        }
        col.out.push_back(std::move(cand));
    }

    /** Expands every beam entry at step k, then trims to the beam. */
    std::vector<Partial>
    expandBeam(const std::vector<Partial> &beam, int k, bool bottom_up)
    {
        // One collector per entry, each seeded with the step-start
        // incumbent: expansion threads never share pruning state, so the
        // candidate set is bit-identical at any --threads. The merge is
        // serial and in entry order, where the global incumbent tightens
        // deterministically.
        std::vector<Collector> cols(beam.size());
        for (auto &c : cols)
            c.inc = incumbent_;
        parallelFor(engine.pool(), beam.size(), [&](std::size_t i) {
            if (bottom_up)
                expandBottomUp(beam[i], k, cols[i]);
            else
                expandTopDown(beam[i], k, cols[i]);
        });
        std::vector<Partial> out;
        for (auto &c : cols) {
            for (auto &p : c.out) {
                if (opts.alphaBeta) {
                    if (p.score < incumbent_)
                        incumbent_ = p.score;
                    if (p.score > incumbent_ * opts.alphaSlack) {
                        engine.notePrune();
                        continue;
                    }
                }
                out.push_back(std::move(p));
            }
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const Partial &a, const Partial &b) {
                             return a.score < b.score;
                         });
        if ((int)out.size() <= opts.beamWidth)
            return out;

        // Stratified beam: candidates are bucketed by (chosen ordering
        // suffix, log2 of the spatial product) and drained round-robin,
        // best first. An energy-only score would otherwise evict every
        // high-utilization candidate before its latency advantage
        // becomes visible, and would collapse the ordering diversity the
        // next level's decisions depend on.
        std::map<std::pair<std::uint64_t, int>, std::deque<Partial>>
            buckets;
        for (auto &p : out) {
            const std::int64_t sp =
                std::max<std::int64_t>(1, p.m.totalSpatial());
            int log_sp = 0;
            while ((std::int64_t(1) << (log_sp + 1)) <= sp)
                ++log_sp;
            std::uint64_t suffix_key = 1;
            for (DimId d : p.pendingSuffix)
                suffix_key = suffix_key * 131 + std::uint64_t(d + 1);
            buckets[{suffix_key, log_sp}].push_back(std::move(p));
        }
        std::vector<Partial> kept;
        kept.reserve(opts.beamWidth);
        while ((int)kept.size() < opts.beamWidth) {
            bool any = false;
            for (auto &[key, q] : buckets) {
                if (q.empty())
                    continue;
                kept.push_back(std::move(q.front()));
                q.pop_front();
                any = true;
                if ((int)kept.size() >= opts.beamWidth)
                    break;
            }
            if (!any)
                break;
        }
        return kept;
    }

    /**
     * Bottom-up step k: absorb the pending suffix into t[k], then pick
     * (order above k, t[k] growth, s[k+1]) in the configured intra-level
     * order.
     */
    void
    expandBottomUp(Partial base, int k, Collector &col)
    {
        // The innermost fanout (vector lanes below level 0) has no step
        // of its own: enumerate s[0] variants first.
        if (k == 0 && ba.arch().levels[0].fanout > 1) {
            UnrollResult ur =
                tracedUnrolls(DimSet::all(nDims), base.remaining,
                              ba.arch().levels[0].fanout,
                              opts.utilizationThreshold);
            for (const auto &u : ur.candidates) {
                Partial v = base;
                for (DimId d = 0; d < nDims; ++d) {
                    v.m.level(0).spatial[d] = u[d];
                    v.remaining[d] /= u[d];
                }
                if (!shapeFits(ba, 0, v.m.tileShape(0)))
                    continue;
                expandBottomUpInner(std::move(v), k, col);
            }
            return;
        }
        expandBottomUpInner(std::move(base), k, col);
    }

    void
    expandBottomUpInner(Partial base, int k, Collector &col)
    {
        absorb(base, k);
        // All candidates emitted below share the absorbed base's decided
        // levels [0, k): build (or fetch) their contribution terms once,
        // so every completion score only walks the undecided suffix.
        const EvalEngine::PrefixHandle ph = engine.prefix(ctx, base.m, k);
        const DimSet active = activeDims(base.remaining);
        auto orderings = tracedOrderings(active);
        if (opts.generalistOrdering) {
            // One unconstrained candidate (empty suffix, no assumed
            // reuse): its grow/unroll sets are unrestricted, covering
            // the mixed reduction/output unrollings the principles
            // exclude. Cheap insurance on reduction-heavy workloads
            // such as weight-update convolutions.
            OrderingCandidate generalist;
            generalist.fullReuse.assign(wl.numTensors(), DimSet());
            generalist.partialReuse.assign(wl.numTensors(), DimSet());
            orderings.push_back(std::move(generalist));
        }
        const std::int64_t fanout_above =
            (k + 1 < nLevels) ? ba.arch().levels[k + 1].fanout : 1;

        // The generalist candidate is throttled: principled-union grow
        // set and near-full-utilization unrolls only. Its sole job is
        // reaching the mixed reduction/output unrollings the principles
        // exclude, not re-opening the whole space.
        DimSet principled_grow;
        for (const auto &ord : orderings)
            if (!ord.suffix.empty() || !ord.fullyReusedTensors().empty())
                principled_grow = principled_grow.unionWith(
                    growDimsFor(ord, active, k));
        auto isGeneralist = [](const OrderingCandidate &ord) {
            return ord.suffix.empty() &&
                   ord.fullyReusedTensors().empty();
        };
        auto growFor = [&](const OrderingCandidate &ord) {
            return isGeneralist(ord) ? principled_grow
                                     : growDimsFor(ord, active, k);
        };
        auto utilFor = [&](const OrderingCandidate &ord) {
            return isGeneralist(ord)
                       ? std::max(0.95, opts.utilizationThreshold)
                       : opts.utilizationThreshold;
        };

        using IO = SunstoneOptions::IntraOrder;
        if (opts.intraOrder == IO::UnrollTileOrder) {
            // The paper's default: per ordering, spatial unrolling first
            // (from the full quotient), then the temporal tile from what
            // remains. This keeps tiling from starving parallelism.
            for (const auto &ord : orderings) {
                std::vector<std::vector<std::int64_t>> unrolls;
                if (fanout_above > 1) {
                    UnrollResult ur = tracedUnrolls(
                        allowedUnrollDimsFor(ord), base.remaining,
                        fanout_above, utilFor(ord));
                    examined.fetch_add(ur.combosVisited,
                                       std::memory_order_relaxed);
                    unrolls = std::move(ur.candidates);
                    if (isGeneralist(ord) && unrolls.size() > 24) {
                        auto product = [&](const auto &v) {
                            std::int64_t p = 1;
                            for (auto f : v)
                                p = satMul(p, f);
                            return p;
                        };
                        std::sort(unrolls.begin(), unrolls.end(),
                                  [&](const auto &a, const auto &b) {
                                      return product(a) > product(b);
                                  });
                        unrolls.resize(24);
                    }
                } else {
                    unrolls.emplace_back(nDims, 1);
                }
                for (const auto &u : unrolls) {
                    std::vector<std::int64_t> rem = base.remaining;
                    for (DimId d = 0; d < nDims; ++d)
                        rem[d] /= u[d];
                    const auto tiles =
                        tracedTiles(k, baseShapeFor(base, k), rem,
                                    growFor(ord));
                    examined.fetch_add(tiles.nodesVisited,
                                       std::memory_order_relaxed);
                    for (const auto &tile : tiles.maximal)
                        emitCandidate(base, k, ord, tile, u, ph, col);
                }
            }
            return;
        }

        if (opts.intraOrder == IO::TileUnrollOrder) {
            // Per ordering, temporal tile first, then unrolling from the
            // leftover quotient.
            for (const auto &ord : orderings) {
                const auto tiles =
                    tracedTiles(k, baseShapeFor(base, k), base.remaining,
                                growFor(ord));
                examined.fetch_add(tiles.nodesVisited,
                                   std::memory_order_relaxed);
                for (const auto &tile : tiles.maximal)
                    emitTileUnrolls(base, k, ord, tile, fanout_above,
                                    allowedUnrollDimsFor(ord), ph, col);
            }
            return;
        }

        // OrderTileUnroll: the ordering is bound last, so tile and
        // unroll enumerate over the union of every ordering's
        // principle-allowed dims (a strictly larger space).
        DimSet grow_union, allow_union;
        for (const auto &ord : orderings) {
            grow_union = grow_union.unionWith(growDimsFor(ord, active, k));
            allow_union =
                allow_union.unionWith(allowedUnrollDimsFor(ord));
        }
        const auto tiles = tracedTiles(k, baseShapeFor(base, k),
                                       base.remaining, grow_union);
        examined.fetch_add(tiles.nodesVisited, std::memory_order_relaxed);
        for (const auto &tile : tiles.maximal)
            for (const auto &ord : orderings)
                emitTileUnrolls(base, k, ord, tile, fanout_above,
                                allow_union, ph, col);
    }

    // Span-wrapped enumerators: every (order, tile, unroll) decision in
    // either inter-level order routes through these, so each per-level
    // phase shows up as its own named span in the trace.

    std::vector<OrderingCandidate>
    tracedOrderings(DimSet active) const
    {
        SUNSTONE_TRACE_SPAN("sunstone.ordering");
        return orderingCandidates(wl, active);
    }

    UnrollResult
    tracedUnrolls(DimSet allowed, const std::vector<std::int64_t> &rem,
                  std::int64_t fanout, double util) const
    {
        SUNSTONE_TRACE_SPAN("sunstone.unrolling");
        return unrollCandidates(wl, allowed, rem, fanout, util);
    }

    TilingTreeResult
    tracedTiles(int k, const std::vector<std::int64_t> &shape,
                const std::vector<std::int64_t> &rem, DimSet grow) const
    {
        SUNSTONE_TRACE_SPAN("sunstone.tiling");
        return growTiles(ba, k, shape, rem, grow);
    }

    std::vector<std::int64_t>
    baseShapeFor(const Partial &p, int k) const
    {
        return p.m.tileShape(k);
    }

    void
    emitTileUnrolls(const Partial &base, int k,
                    const OrderingCandidate &ord,
                    const std::vector<std::int64_t> &tile,
                    std::int64_t fanout_above, DimSet allowed,
                    const EvalEngine::PrefixHandle &ph, Collector &col)
    {
        std::vector<std::int64_t> rem = base.remaining;
        for (DimId d = 0; d < nDims; ++d)
            rem[d] /= tile[d];
        if (fanout_above > 1) {
            UnrollResult ur = tracedUnrolls(
                allowed, rem, fanout_above, opts.utilizationThreshold);
            examined.fetch_add(ur.combosVisited,
                               std::memory_order_relaxed);
            for (const auto &u : ur.candidates)
                emitCandidate(base, k, ord, tile, u, ph, col);
        } else {
            emitCandidate(base, k, ord, tile,
                          std::vector<std::int64_t>(nDims, 1), ph, col);
        }
    }

    /** Builds the new partial for a (order, tile, unroll) triple. */
    void
    emitCandidate(const Partial &base, int k, const OrderingCandidate &ord,
                  const std::vector<std::int64_t> &tile,
                  const std::vector<std::int64_t> &unroll,
                  const EvalEngine::PrefixHandle &ph, Collector &col)
    {
        Partial cand = base;
        auto &lm = cand.m.level(k);
        for (DimId d = 0; d < nDims; ++d) {
            lm.temporal[d] = satMul(lm.temporal[d], tile[d]);
            cand.remaining[d] /= tile[d];
        }
        if (k + 1 < nLevels) {
            auto &up = cand.m.level(k + 1);
            for (DimId d = 0; d < nDims; ++d) {
                up.spatial[d] = unroll[d];
                cand.remaining[d] /= unroll[d];
            }
            up.order = ord.fullOrder(nDims);
            // The spatially enlarged tile must fit the level above even
            // before its own temporal loops are chosen.
            if (!ba.arch().levels[k + 1].isDram &&
                !shapeFits(ba, k + 1, cand.m.tileShape(k + 1)))
                return;
        }
        cand.pendingSuffix = ord.suffix;
        emit(col, std::move(cand), /*bottom_up=*/true, ph);
    }

    /**
     * Top-down step k: choose t[k] via the first-fit frontier (minimal
     * factor vectors whose residual fits the level below), then the
     * ordering of level k's loops, then s[k].
     */
    void
    expandTopDown(const Partial &base, int k, Collector &col)
    {
        const auto tiles = firstFitTiles(base.remaining, k);
        for (const auto &tile : tiles) {
            std::vector<std::int64_t> rem = base.remaining;
            DimSet tiled;
            for (DimId d = 0; d < nDims; ++d) {
                rem[d] /= tile[d];
                if (tile[d] > 1)
                    tiled.add(d);
            }
            auto orderings = tracedOrderings(tiled);
            for (const auto &ord : orderings) {
                const std::int64_t fanout = ba.arch().levels[k].fanout;
                std::vector<std::vector<std::int64_t>> unrolls;
                if (fanout > 1) {
                    UnrollResult ur = tracedUnrolls(
                        allowedUnrollDimsFor(ord), rem, fanout,
                        opts.utilizationThreshold);
                    examined.fetch_add(ur.combosVisited,
                                       std::memory_order_relaxed);
                    unrolls = std::move(ur.candidates);
                } else {
                    unrolls.emplace_back(nDims, 1);
                }
                for (const auto &u : unrolls) {
                    Partial cand = base;
                    auto &lm = cand.m.level(k);
                    for (DimId d = 0; d < nDims; ++d) {
                        lm.temporal[d] = tile[d];
                        lm.spatial[d] = u[d];
                        cand.remaining[d] = rem[d] / u[d];
                    }
                    lm.order = ord.fullOrder(nDims);
                    cand.pendingSuffix = ord.suffix;
                    emit(col, std::move(cand), /*bottom_up=*/false,
                         EvalEngine::PrefixHandle{});
                }
            }
        }
    }

    /**
     * Minimal t[k] factor vectors such that the residual problem fits
     * the storage level below (top-down tiling frontier). Growth is
     * unguided (all dims) — the Tiling Principle has nothing to bind to
     * yet, which is a key reason top-down explores more (Section V-C).
     */
    std::vector<std::vector<std::int64_t>>
    firstFitTiles(const std::vector<std::int64_t> &remaining, int k)
    {
        SUNSTONE_TRACE_SPAN("sunstone.tiling");
        std::vector<std::vector<std::int64_t>> result;
        std::vector<std::int64_t> unit(nDims, 1);
        auto residualFits = [&](const std::vector<std::int64_t> &t) {
            std::vector<std::int64_t> shape(nDims);
            for (DimId d = 0; d < nDims; ++d)
                shape[d] = remaining[d] / t[d];
            return shapeFits(ba, k - 1, shape);
        };
        // Hash of the factor vector, not the vector itself: the frontier
        // visits millions of nodes on large shapes and the ordered-map
        // key comparisons dominated. A 64-bit FNV collision would only
        // drop one duplicate candidate, never corrupt a mapping.
        std::unordered_set<std::uint64_t> visited;
        std::vector<std::vector<std::int64_t>> frontier{unit};
        visited.insert(hashFactors(unit));
        constexpr std::int64_t node_cap = 2'000'000;
        std::int64_t visited_nodes = 0;
        while (!frontier.empty()) {
            std::vector<std::vector<std::int64_t>> next;
            for (auto &node : frontier) {
                examined.fetch_add(1, std::memory_order_relaxed);
                if (++visited_nodes > node_cap) {
                    SUNSTONE_WARN("top-down tiling frontier capped at ",
                                  node_cap, " nodes");
                    return result;
                }
                if (residualFits(node)) {
                    result.push_back(node);
                    continue;
                }
                for (DimId d = 0; d < nDims; ++d) {
                    std::int64_t nf = nextDivisor(remaining[d], node[d]);
                    if (nf == 0)
                        continue;
                    auto child = node;
                    child[d] = nf;
                    if (visited.insert(hashFactors(child)).second)
                        next.push_back(std::move(child));
                }
            }
            frontier = std::move(next);
        }
        return result;
    }

    void
    finalizeBottomUp(std::vector<Partial> &beam)
    {
        for (auto &p : beam) {
            auto &lm = p.m.level(nLevels - 1);
            for (DimId d = 0; d < nDims; ++d) {
                lm.temporal[d] = satMul(lm.temporal[d], p.remaining[d]);
                p.remaining[d] = 1;
            }
            OrderingCandidate oc;
            oc.suffix = p.pendingSuffix;
            lm.order = oc.fullOrder(nDims);
        }
    }

    void
    finalizeTopDown(std::vector<Partial> &beam)
    {
        for (auto &p : beam) {
            auto &lm = p.m.level(0);
            for (DimId d = 0; d < nDims; ++d) {
                lm.temporal[d] = satMul(lm.temporal[d], p.remaining[d]);
                p.remaining[d] = 1;
            }
        }
    }

    SearchContext &sc;
    const BoundArch &ba;
    SunstoneOptions opts;
    const Workload &wl;
    const int nLevels;
    const int nDims;
    EvalEngine &engine;
    const EvalEngine::Context ctx;
    SearchDriver *drv_ = nullptr;
    std::atomic<std::int64_t> examined{0};
    /** Global alpha-beta incumbent; serial updates only (merge phase). */
    double incumbent_ = kInf;
};

} // anonymous namespace

SunstoneResult
sunstoneOptimize(SearchContext &sc, const BoundArch &ba,
                 const SunstoneOptions &opts)
{
    Driver driver(sc, ba, opts);
    return driver.run();
}

SunstoneResult
sunstoneOptimize(const BoundArch &ba, const SunstoneOptions &opts)
{
    SearchContext sc;
    return sunstoneOptimize(sc, ba, opts);
}

} // namespace sunstone
