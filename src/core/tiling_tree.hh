/**
 * @file
 * Tile-growth search tree of Section IV-B. Starting from a base tile, the
 * tree grows one dimension at a time to the next-larger divisor of that
 * dimension's remaining quotient, but only along the *grow dimensions*
 * selected by the Tiling Principle (the indexing dims of the tensor(s)
 * the upper-level ordering reuses). A node with any fitting child is
 * strictly dominated (the child reuses more) and is pruned; the surviving
 * candidates are the maximal fitting tiles (Fig. 5).
 */

#ifndef SUNSTONE_CORE_TILING_TREE_HH
#define SUNSTONE_CORE_TILING_TREE_HH

#include <cstdint>
#include <vector>

#include "arch/arch.hh"
#include "workload/dim_set.hh"

namespace sunstone {

/** Result of one tiling-tree search. */
struct TilingTreeResult
{
    /** Maximal fitting factor vectors (per dim, this level only). */
    std::vector<std::vector<std::int64_t>> maximal;
    /** Number of tree nodes visited (the "space size" contribution). */
    std::int64_t nodesVisited = 0;
    /** Total number of fitting tiles in the unpruned grow-dim space. */
    std::int64_t unprunedSpace = 0;
};

/**
 * Enumerates maximal fitting temporal-factor vectors for one level.
 *
 * @param ba bound architecture
 * @param level storage level whose capacity constrains the tile
 * @param base_shape cumulative tile shape from the levels below,
 *        including this level's spatial factors and any pre-absorbed
 *        temporal factors
 * @param remaining per-dim quotients still available for this level
 * @param grow_dims dims the Tiling Principle allows to grow
 */
TilingTreeResult
growTiles(const BoundArch &ba, int level,
          const std::vector<std::int64_t> &base_shape,
          const std::vector<std::int64_t> &remaining, DimSet grow_dims);

} // namespace sunstone

#endif // SUNSTONE_CORE_TILING_TREE_HH
