#include "core/ordering_trie.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace sunstone {

std::vector<TensorId>
OrderingCandidate::fullyReusedTensors() const
{
    std::vector<TensorId> out;
    for (TensorId t = 0; t < (TensorId)fullReuse.size(); ++t)
        if (!fullReuse[t].empty())
            out.push_back(t);
    return out;
}

std::vector<DimId>
OrderingCandidate::fullOrder(int num_dims) const
{
    std::vector<DimId> order;
    DimSet in_suffix;
    for (DimId d : suffix)
        in_suffix.add(d);
    for (DimId d = 0; d < num_dims; ++d)
        if (!in_suffix.contains(d))
            order.push_back(d);
    // Suffix is innermost-first; the order vector is outermost-first.
    for (auto it = suffix.rbegin(); it != suffix.rend(); ++it)
        order.push_back(*it);
    return order;
}

std::string
OrderingCandidate::toString(const Workload &wl) const
{
    std::ostringstream os;
    os << "suffix(inner-first)=[";
    for (std::size_t i = 0; i < suffix.size(); ++i) {
        if (i)
            os << ",";
        os << wl.dimName(suffix[i]);
    }
    os << "]";
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        if (!fullReuse[t].empty()) {
            os << " " << wl.tensor(t).name << ":full{";
            bool first = true;
            for (DimId d : fullReuse[t]) {
                if (!first)
                    os << ",";
                os << wl.dimName(d);
                first = false;
            }
            os << "}";
        }
        if (!partialReuse[t].empty()) {
            os << " " << wl.tensor(t).name << ":partial{";
            bool first = true;
            for (DimId d : partialReuse[t]) {
                if (!first)
                    os << ",";
                os << wl.dimName(d);
                first = false;
            }
            os << "}";
        }
    }
    return os.str();
}

namespace {

/**
 * @return true when candidate a dominates b: for every tensor a's
 * full-reuse dims contain b's and a's partial dims contain b's (with
 * full reuse also covering partial claims on the same dims).
 */
bool
dominates(const OrderingCandidate &a, const OrderingCandidate &b)
{
    for (std::size_t t = 0; t < a.fullReuse.size(); ++t) {
        if (!b.fullReuse[t].subsetOf(a.fullReuse[t]))
            return false;
        DimSet a_any = a.fullReuse[t].unionWith(a.partialReuse[t]);
        if (!b.partialReuse[t].subsetOf(a_any))
            return false;
    }
    return true;
}

bool
sameSignature(const OrderingCandidate &a, const OrderingCandidate &b)
{
    return a.fullReuse == b.fullReuse && a.partialReuse == b.partialReuse;
}

struct TrieBuilder
{
    const Workload &wl;
    DimSet active;
    OrderingTrieStats stats;
    std::vector<OrderingCandidate> leaves;

    explicit TrieBuilder(const Workload &w, DimSet a) : wl(w), active(a) {}

    /**
     * @param suffix current suffix (innermost first)
     * @param used dims already in the suffix
     * @param cand running reuse credit
     */
    void
    grow(std::vector<DimId> &suffix, DimSet used, OrderingCandidate &cand)
    {
        ++stats.nodesVisited;
        bool extended = false;
        for (DimId d : active) {
            if (used.contains(d))
                continue;
            // Which tensors would d newly reuse on top of this suffix?
            DimSet new_full, new_partial; // tensor credit masks per dim
            bool adds = false;
            std::vector<std::pair<TensorId, bool>> credits; // (t, full?)
            for (TensorId t = 0; t < wl.numTensors(); ++t) {
                const TensorReuse &r = wl.reuse(t);
                // Ordering Principle 2: the loops inside d must all be
                // non-indexing for the tensor.
                if (!used.intersect(r.indexing).empty())
                    continue;
                if (r.fullyReusedBy.contains(d)) {
                    credits.emplace_back(t, true);
                    adds = true;
                } else if (r.partiallyReusedBy.contains(d)) {
                    credits.emplace_back(t, false);
                    adds = true;
                }
            }
            (void)new_full;
            (void)new_partial;
            if (!adds)
                continue; // Ordering Principle 3: no further reuse

            extended = true;
            suffix.push_back(d);
            DimSet used2 = used;
            used2.add(d);
            OrderingCandidate next = cand;
            next.suffix = suffix;
            for (auto [t, full] : credits) {
                if (full)
                    next.fullReuse[t].add(d);
                else
                    next.partialReuse[t].add(d);
            }
            grow(suffix, used2, next);
            suffix.pop_back();
        }
        if (!extended) {
            ++stats.leaves;
            leaves.push_back(cand);
            leaves.back().suffix = suffix;
        }
    }
};

} // anonymous namespace

std::vector<OrderingCandidate>
orderingCandidates(const Workload &wl, DimSet active_dims,
                   OrderingTrieStats *stats)
{
    TrieBuilder b(wl, active_dims);
    OrderingCandidate root;
    root.fullReuse.assign(wl.numTensors(), DimSet());
    root.partialReuse.assign(wl.numTensors(), DimSet());
    std::vector<DimId> suffix;
    b.grow(suffix, DimSet(), root);

    // Deduplicate identical signatures, then dominance-prune.
    std::vector<OrderingCandidate> out;
    for (auto &cand : b.leaves) {
        bool skip = false;
        for (const auto &kept : out)
            if (sameSignature(kept, cand)) {
                skip = true;
                break;
            }
        if (!skip)
            out.push_back(std::move(cand));
    }
    std::vector<OrderingCandidate> pruned;
    for (std::size_t i = 0; i < out.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < out.size() && !dominated; ++j) {
            if (i == j)
                continue;
            if (dominates(out[j], out[i]) &&
                !sameSignature(out[i], out[j]))
                dominated = true;
        }
        if (!dominated)
            pruned.push_back(out[i]);
    }
    if (pruned.empty()) {
        // No reuse anywhere (degenerate workloads): keep one canonical
        // empty suffix so callers always have an ordering to use.
        OrderingCandidate empty;
        empty.fullReuse.assign(wl.numTensors(), DimSet());
        empty.partialReuse.assign(wl.numTensors(), DimSet());
        pruned.push_back(empty);
    }
    if (stats) {
        b.stats.survivors = static_cast<std::int64_t>(pruned.size());
        *stats = b.stats;
    }
    return pruned;
}

} // namespace sunstone
