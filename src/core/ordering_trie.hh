/**
 * @file
 * Loop-ordering search over the trie representation of Section IV-A.
 *
 * A candidate ordering is represented by its *reuse suffix*: the run of
 * innermost loops that actually creates inter-tile reuse. Ordering
 * Principle 3 says the loops above the suffix do not change any access
 * count, so a full ordering is recovered by placing the remaining
 * dimensions outside in a canonical order.
 *
 * The trie is grown innermost-out. A dimension extends a suffix only if
 * it adds reuse of some tensor (Ordering Principles 1 and 2):
 *  - full reuse of tensor T: the dim does not index T and no dim already
 *    in the suffix indexes T;
 *  - partial (sliding-window) reuse of T: the dim indexes T only through
 *    a compound expression and no dim already in the suffix indexes T.
 * Leaves are deduplicated by reuse signature and dominance-pruned (the
 * sibling-subsumption rule of Fig. 4).
 */

#ifndef SUNSTONE_CORE_ORDERING_TRIE_HH
#define SUNSTONE_CORE_ORDERING_TRIE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace sunstone {

/** One surviving loop-ordering candidate. */
struct OrderingCandidate
{
    /** Reuse suffix, innermost loop first. */
    std::vector<DimId> suffix;

    /** Per-tensor dims across which the tensor is fully reused. */
    std::vector<DimSet> fullReuse;

    /** Per-tensor dims providing partial (sliding-window) reuse. */
    std::vector<DimSet> partialReuse;

    /** @return tensors with at least one full-reuse dim in the suffix. */
    std::vector<TensorId> fullyReusedTensors() const;

    /**
     * @return a complete outermost-first loop order: the non-suffix dims
     * in ascending DimId order, then the suffix (innermost last).
     */
    std::vector<DimId> fullOrder(int num_dims) const;

    std::string toString(const Workload &wl) const;
};

/** Statistics from one trie construction. */
struct OrderingTrieStats
{
    std::int64_t nodesVisited = 0;
    std::int64_t leaves = 0;
    std::int64_t survivors = 0;
};

/**
 * Enumerates the pruned set of ordering candidates for a workload.
 *
 * @param wl the workload
 * @param active_dims dims that still have loop iterations left at this
 *        level (quotient > 1); others cannot provide reuse
 * @param stats optional construction statistics
 */
std::vector<OrderingCandidate>
orderingCandidates(const Workload &wl, DimSet active_dims,
                   OrderingTrieStats *stats = nullptr);

} // namespace sunstone

#endif // SUNSTONE_CORE_ORDERING_TRIE_HH
