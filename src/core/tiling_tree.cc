#include "core/tiling_tree.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "model/eval_engine.hh"

namespace sunstone {

namespace {

/** Capacity check for a factor vector on top of the base shape. The
 *  caller provides the shape/footprint scratch so the BFS inner loop
 *  performs no allocations. */
bool
fits(const BoundArch &ba, int level,
     const std::vector<std::int64_t> &base_shape,
     const std::vector<std::int64_t> &factors,
     std::vector<std::int64_t> &shape, std::vector<std::int64_t> &fp)
{
    const Workload &wl = ba.workload();
    shape.resize(base_shape.size());
    for (std::size_t d = 0; d < shape.size(); ++d)
        shape[d] = satMul(base_shape[d], factors[d]);
    fp.resize(wl.numTensors());
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        fp[t] = ba.stores(level, t) ? wl.tensor(t).footprint(shape) : 0;
    return ba.fits(level, fp);
}

} // anonymous namespace

TilingTreeResult
growTiles(const BoundArch &ba, int level,
          const std::vector<std::int64_t> &base_shape,
          const std::vector<std::int64_t> &remaining, DimSet grow_dims)
{
    const int nd = static_cast<int>(remaining.size());
    TilingTreeResult res;

    std::vector<std::int64_t> shape_scratch, fp_scratch;
    std::vector<std::int64_t> unit(nd, 1);
    if (!fits(ba, level, base_shape, unit, shape_scratch, fp_scratch)) {
        // Even the unit tile overflows (the base shape is too large);
        // no candidates at this level.
        return res;
    }

    // Hoist each grow dim's divisor list out of the BFS: the interned
    // table is looked up once per dim instead of once per probe, and the
    // references stay valid for the whole walk.
    std::vector<const std::vector<std::int64_t> *> divs(nd, nullptr);
    for (DimId d : grow_dims)
        divs[d] = &cachedDivisors(remaining[d]);

    // Count the unpruned grow-dim space for reporting: every combination
    // of divisors along the grow dims.
    res.unprunedSpace = 1;
    for (DimId d : grow_dims)
        res.unprunedSpace = satMul(
            res.unprunedSpace, static_cast<std::int64_t>(divs[d]->size()));

    // BFS over factor vectors with memoization; a node is pruned when it
    // has at least one fitting child (Tiling Principle). The lattice is
    // a diamond (a child is reachable from one parent per grown dim), so
    // the fit verdict is memoized per node hash: the first probe pays
    // the footprint check and enqueues fitting children, later probes
    // reuse the verdict. Keys are 64-bit hashes of the factor vectors,
    // not the vectors (same rationale as the top-down frontier: an FNV
    // collision only drops a duplicate candidate, never corrupts a
    // mapping).
    std::unordered_map<std::uint64_t, bool> probed;
    std::vector<std::vector<std::int64_t>> frontier{unit};
    probed.emplace(hashFactors(unit), true);

    while (!frontier.empty()) {
        std::vector<std::vector<std::int64_t>> next;
        for (auto &node : frontier) {
            ++res.nodesVisited;
            bool any_fitting_child = false;
            for (DimId d : grow_dims) {
                const auto &dd = *divs[d];
                auto di = std::upper_bound(dd.begin(), dd.end(), node[d]);
                if (di == dd.end())
                    continue; // dim exhausted
                const std::int64_t nf = *di;
                // Probe the child in place; copy only when it is kept.
                const std::int64_t old = node[d];
                node[d] = nf;
                auto [it, first_probe] =
                    probed.emplace(hashFactors(node), false);
                if (first_probe)
                    it->second = fits(ba, level, base_shape, node,
                                      shape_scratch, fp_scratch);
                if (!it->second) {
                    ++res.nodesVisited; // examined and rejected
                    node[d] = old;
                    continue;
                }
                any_fitting_child = true;
                if (first_probe)
                    next.push_back(node);
                node[d] = old;
            }
            if (!any_fitting_child)
                res.maximal.push_back(node);
        }
        frontier = std::move(next);
    }
    return res;
}

} // namespace sunstone
