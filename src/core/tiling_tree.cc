#include "core/tiling_tree.hh"

#include <map>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

namespace {

/** Capacity check for a factor vector on top of the base shape. */
bool
fits(const BoundArch &ba, int level,
     const std::vector<std::int64_t> &base_shape,
     const std::vector<std::int64_t> &factors)
{
    const Workload &wl = ba.workload();
    std::vector<std::int64_t> shape(base_shape);
    for (std::size_t d = 0; d < shape.size(); ++d)
        shape[d] = satMul(shape[d], factors[d]);
    std::vector<std::int64_t> fp(wl.numTensors());
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        fp[t] = ba.stores(level, t) ? wl.tensor(t).footprint(shape) : 0;
    return ba.fits(level, fp);
}

} // anonymous namespace

TilingTreeResult
growTiles(const BoundArch &ba, int level,
          const std::vector<std::int64_t> &base_shape,
          const std::vector<std::int64_t> &remaining, DimSet grow_dims)
{
    const int nd = static_cast<int>(remaining.size());
    TilingTreeResult res;

    std::vector<std::int64_t> unit(nd, 1);
    if (!fits(ba, level, base_shape, unit)) {
        // Even the unit tile overflows (the base shape is too large);
        // no candidates at this level.
        return res;
    }

    // Count the unpruned grow-dim space for reporting: every combination
    // of divisors along the grow dims.
    res.unprunedSpace = 1;
    for (DimId d : grow_dims)
        res.unprunedSpace = satMul(
            res.unprunedSpace,
            static_cast<std::int64_t>(divisors(remaining[d]).size()));

    // BFS over factor vectors with memoization; a node is pruned when it
    // has at least one fitting child (Tiling Principle).
    std::map<std::vector<std::int64_t>, bool> visited;
    std::vector<std::vector<std::int64_t>> frontier{unit};
    visited[unit] = true;

    while (!frontier.empty()) {
        std::vector<std::vector<std::int64_t>> next;
        for (auto &node : frontier) {
            ++res.nodesVisited;
            bool any_fitting_child = false;
            for (DimId d : grow_dims) {
                std::int64_t nf = nextDivisor(remaining[d], node[d]);
                if (nf == 0)
                    continue; // dim exhausted
                auto child = node;
                child[d] = nf;
                if (!fits(ba, level, base_shape, child)) {
                    ++res.nodesVisited; // examined and rejected
                    continue;
                }
                any_fitting_child = true;
                if (!visited[child]) {
                    visited[child] = true;
                    next.push_back(std::move(child));
                }
            }
            if (!any_fitting_child)
                res.maximal.push_back(node);
        }
        frontier = std::move(next);
    }
    return res;
}

} // namespace sunstone
