/**
 * @file
 * Timeloop-like mapper: undirected uniform-random sampling of the full
 * mapping space with the two termination knobs of Table V — a timeout
 * (consecutive invalid samples) and a victory condition (consecutive
 * valid samples without improvement) — plus a wall-clock cap standing in
 * for the paper's one-hour-per-layer limit. Supports multithreading.
 */

#ifndef SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH
#define SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH

#include <cstdint>

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs mirroring Table V. */
struct TimeloopOptions
{
    /** Stop after this many consecutive invalid samples. */
    std::int64_t timeout = 20000;
    /** Stop after this many consecutive non-improving valid samples. */
    std::int64_t victoryCondition = 25;
    /** Hard wall-clock cap in seconds (paper: 1 h per layer). */
    double maxSeconds = 60.0;
    unsigned threads = 1;
    std::uint64_t seed = 0x5075; // fixed default for determinism
    /** Rank mappings by EDP (default) or energy. */
    bool optimizeEdp = true;

    /**
     * Shared evaluation engine; a private one sized by `threads` is
     * created when null (the network benches inject one to share its
     * telemetry and worker pool across tools).
     */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;

    /** Table V fast configuration. */
    static TimeloopOptions
    fast()
    {
        TimeloopOptions o;
        o.timeout = 20000;
        o.victoryCondition = 25;
        return o;
    }

    /** Table V slow/conservative configuration. */
    static TimeloopOptions
    slow()
    {
        TimeloopOptions o;
        o.timeout = 80000;
        o.victoryCondition = 1500;
        return o;
    }
};

/** The mapper. */
class TimeloopMapper : public Mapper
{
  public:
    explicit TimeloopMapper(TimeloopOptions opts = TimeloopOptions::fast(),
                            std::string display_name = "TL");

    MapperResult optimize(const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    TimeloopOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH
