/**
 * @file
 * Timeloop-like mapper: undirected uniform-random sampling of the full
 * mapping space with the two termination knobs of Table V — a cap on
 * consecutive invalid samples (historically misnamed `timeout`) and a
 * victory condition (consecutive valid samples without improvement) —
 * plus a wall-clock cap standing in for the paper's one-hour-per-layer
 * limit. Candidates are drawn serially from a fixed set of logical RNG
 * shards and evaluated in parallel by the SearchDriver, so results are
 * bit-identical regardless of thread count.
 */

#ifndef SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH
#define SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH

#include <cstdint>

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs mirroring Table V; they become StopPolicy defaults. */
struct TimeloopOptions
{
    /**
     * Stop after this many consecutive invalid samples. This is the
     * knob Timeloop calls `timeout` — it was never a time; the text
     * config parser still accepts the old name with a warning.
     */
    std::int64_t maxConsecutiveInvalid = 20000;
    /** Stop after this many consecutive non-improving valid samples. */
    std::int64_t victoryCondition = 25;
    /** Hard wall-clock cap in seconds (paper: 1 h per layer). */
    double maxSeconds = 60.0;
    unsigned threads = 1;
    std::uint64_t seed = 0x5075; // fixed default for determinism
    /** Rank mappings by EDP (default) or energy. */
    bool optimizeEdp = true;

    /**
     * Shared evaluation engine; a private one sized by `threads` is
     * created when null (the network benches inject one to share its
     * telemetry and worker pool across tools).
     */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;

    /** Table V fast configuration. */
    static TimeloopOptions
    fast()
    {
        TimeloopOptions o;
        o.maxConsecutiveInvalid = 20000;
        o.victoryCondition = 25;
        return o;
    }

    /** Table V slow/conservative configuration. */
    static TimeloopOptions
    slow()
    {
        TimeloopOptions o;
        o.maxConsecutiveInvalid = 80000;
        o.victoryCondition = 1500;
        return o;
    }
};

/** The mapper. */
class TimeloopMapper : public Mapper
{
  public:
    explicit TimeloopMapper(TimeloopOptions opts = TimeloopOptions::fast(),
                            std::string display_name = "TL");

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    TimeloopOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_TIMELOOP_MAPPER_HH
