#include "mappers/space_size.hh"

#include <cmath>

#include "common/math_utils.hh"

namespace sunstone {
namespace space {

namespace {

double
factorial(int n)
{
    double f = 1;
    for (int i = 2; i <= n; ++i)
        f *= i;
    return f;
}

/** Ordered k-splits of every problem dim, multiplied together. */
double
allDimSplits(const Workload &wl, int k)
{
    double s = 1;
    for (DimId d = 0; d < wl.numDims(); ++d)
        s *= static_cast<double>(countFactorSplits(wl.dimSize(d), k));
    return s;
}

} // anonymous namespace

int
temporalSlots(const ArchSpec &arch)
{
    return arch.numLevels();
}

int
spatialSlots(const ArchSpec &arch)
{
    int n = 0;
    for (const auto &l : arch.levels)
        if (l.fanout > 1)
            ++n;
    return n;
}

double
timeloopSpace(const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int slots = temporalSlots(arch) + spatialSlots(arch);
    const double splits = allDimSplits(wl, slots);
    const double orders =
        std::pow(factorial(wl.numDims()), temporalSlots(arch) - 1);
    return splits * orders;
}

double
cosaSpace(const BoundArch &ba)
{
    return timeloopSpace(ba);
}

double
marvelSpace(const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    // Off-chip/on-chip decoupling: a 2-way split per dim for the DRAM
    // boundary plus the on-chip space with one fewer temporal slot.
    const int on_slots = temporalSlots(arch) - 1 + spatialSlots(arch);
    const double off = allDimSplits(wl, 2);
    const double on = allDimSplits(wl, on_slots) *
                      std::pow(factorial(wl.numDims()),
                               temporalSlots(arch) - 2);
    return off + on;
}

double
interstellarSpace(const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    // Spatial unrolling preset to the channel dims: the spatial slots
    // disappear from the per-dim splits.
    const double splits = allDimSplits(wl, temporalSlots(arch));
    const double orders =
        std::pow(factorial(wl.numDims()), temporalSlots(arch) - 1);
    return splits * orders;
}

double
dmazeSpace(const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    // Temporal splits over the on-chip levels with analyzed (not
    // enumerated) orders, spatial restricted to non-reduction dims.
    const double splits = allDimSplits(wl, temporalSlots(arch));
    const double orders = wl.numDims() * (temporalSlots(arch) - 1);
    return splits * orders;
}

} // namespace space
} // namespace sunstone
