/**
 * @file
 * Interstellar-like mapper (Section V baseline "INTER"): spatial
 * unrolling is preset to the input/output channel dimensions as the
 * paper prescribes, falling back to other dimensions only when CK cannot
 * fill the PE grid; temporal tilings are enumerated with a
 * high-throughput heuristic. Conv-specific by construction: non-CNN
 * workloads and hierarchical (Simba-like) architectures are unsupported.
 */

#ifndef SUNSTONE_MAPPERS_INTERSTELLAR_MAPPER_HH
#define SUNSTONE_MAPPERS_INTERSTELLAR_MAPPER_HH

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs for the Interstellar-like search. */
struct InterstellarOptions
{
    /** Fall back to other dims when CK utilization is below this. */
    double ckFallbackBelow = 0.5;
    std::int64_t maxEvaluations = 200000;
    bool optimizeEdp = true;

    /** Shared evaluation engine; a private one is created when null. */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;
};

/** The mapper. */
class InterstellarMapper : public Mapper
{
  public:
    explicit InterstellarMapper(InterstellarOptions opts = {},
                                std::string display_name = "INTER");

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    InterstellarOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_INTERSTELLAR_MAPPER_HH
