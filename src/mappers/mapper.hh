/**
 * @file
 * Common interface for all dataflow mappers (Sunstone's baselines from
 * Section V-B): Timeloop-like random search, dMazeRunner-like directed
 * search, Interstellar-like preset-unrolling search, CoSA-like one-shot
 * construction, and an exhaustive oracle for tiny problems. Every mapper
 * is evaluated with the same cost model, as in the paper.
 */

#ifndef SUNSTONE_MAPPERS_MAPPER_HH
#define SUNSTONE_MAPPERS_MAPPER_HH

#include <memory>
#include <string>

#include "model/cost_model.hh"

namespace sunstone {

class EvalEngine;

namespace obs {
class ConvergenceRecorder;
} // namespace obs

/** Outcome of one mapper invocation. */
struct MapperResult
{
    /** A best mapping was produced (it may still be invalid). */
    bool found = false;

    /**
     * The produced mapping violates a constraint (tile does not fit,
     * unsupported workload/architecture, ...). The paper tracks this per
     * tool in Figs. 7-8 and Table I.
     */
    bool invalid = false;
    std::string invalidReason;

    Mapping mapping;
    CostResult cost;

    /** Number of complete mappings evaluated by the search. */
    std::int64_t mappingsEvaluated = 0;
    /** Wall-clock time-to-solution (Figs. 6b, 7b, 8b). */
    double seconds = 0;
};

/** Abstract mapper. */
class Mapper
{
  public:
    virtual ~Mapper() = default;

    /** Runs the tool's search for the bound workload/architecture. */
    virtual MapperResult optimize(const BoundArch &ba) = 0;

    /** @return the tool's display name ("TL-fast", "dMaze-slow", ...). */
    virtual std::string name() const = 0;

    /**
     * @return an analytic estimate of the size of the optimization space
     * the tool would construct for this problem (Table I). The default
     * returns 0 (unknown).
     */
    virtual double
    spaceSizeEstimate(const BoundArch &ba) const
    {
        (void)ba;
        return 0.0;
    }
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_MAPPER_HH
