/**
 * @file
 * Common interface for all dataflow mappers (Sunstone's baselines from
 * Section V-B): Timeloop-like random search, dMazeRunner-like directed
 * search, Interstellar-like preset-unrolling search, CoSA-like one-shot
 * construction, and an exhaustive oracle for tiny problems. Every mapper
 * is evaluated with the same cost model, as in the paper, and every
 * mapper's search runs through the shared SearchDriver (DESIGN.md §12),
 * which owns termination, accounting, and checkpoint/resume.
 */

#ifndef SUNSTONE_MAPPERS_MAPPER_HH
#define SUNSTONE_MAPPERS_MAPPER_HH

#include <memory>
#include <string>

#include "model/cost_model.hh"
#include "search/search_context.hh"
#include "search/search_driver.hh"

namespace sunstone {

class EvalEngine;

namespace obs {
class ConvergenceRecorder;
} // namespace obs

/** Outcome of one mapper invocation. */
struct MapperResult
{
    /** A best mapping was produced (it may still be invalid). */
    bool found = false;

    /**
     * The produced mapping violates a constraint (tile does not fit,
     * unsupported workload/architecture, ...). The paper tracks this per
     * tool in Figs. 7-8 and Table I.
     */
    bool invalid = false;
    std::string invalidReason;

    Mapping mapping;
    CostResult cost;

    /** Number of complete mappings evaluated by the search. */
    std::int64_t mappingsEvaluated = 0;
    /** Wall-clock time-to-solution (Figs. 6b, 7b, 8b). */
    double seconds = 0;

    /**
     * Why the search ended: one of the stable stopReasonName() strings
     * ("exhausted", "deadline", "max-evals", "plateau", "invalid-streak",
     * "cancelled", "unsupported").
     */
    std::string stopReason;
};

/** Abstract mapper. */
class Mapper
{
  public:
    virtual ~Mapper() = default;

    /**
     * Runs the tool's search for the bound workload/architecture under
     * the caller's SearchContext: its StopPolicy (layered over the
     * mapper's legacy knobs as defaults), seed, engine, convergence
     * recorder, and checkpoint/resume configuration.
     */
    virtual MapperResult optimize(SearchContext &sc, const BoundArch &ba) = 0;

    /** Convenience overload running under a fresh default context. */
    MapperResult optimize(const BoundArch &ba);

    /** @return the tool's display name ("TL-fast", "dMaze-slow", ...). */
    virtual std::string name() const = 0;

    /**
     * @return an analytic estimate of the size of the optimization space
     * the tool would construct for this problem (Table I). The default
     * returns 0 (unknown).
     */
    virtual double
    spaceSizeEstimate(const BoundArch &ba) const
    {
        (void)ba;
        return 0.0;
    }

  protected:
    /**
     * Converts a driver outcome into a MapperResult; counters, seconds,
     * and stop reason always come from the driver. When nothing was
     * found, `not_found_reason` (or, if empty, the first invalid
     * diagnostic the driver saw) becomes the invalid reason.
     */
    static MapperResult toMapperResult(const DriverOutcome &o,
                                       const std::string &not_found_reason);

    /**
     * Resolves the engine the search runs on: the context's borrowed
     * engine wins, then the legacy option-struct engine, then a private
     * engine created inside the context with `threads` workers.
     */
    static EvalEngine &resolveEngine(SearchContext &sc, EvalEngine *legacy,
                                     unsigned threads);
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_MAPPER_HH
