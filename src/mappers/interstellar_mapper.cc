#include "mappers/interstellar_mapper.hh"

#include <algorithm>

#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/** Best divisor pair (fc, fk) with fc*fk <= fanout, maximizing product. */
std::pair<std::int64_t, std::int64_t>
bestChannelUnroll(std::int64_t c, std::int64_t k, std::int64_t fanout)
{
    std::int64_t best_fc = 1, best_fk = 1, best = 1;
    for (std::int64_t fc : cachedDivisors(c)) {
        if (fc > fanout)
            break;
        const std::int64_t fk = largestDivisorAtMost(k, fanout / fc);
        if (fc * fk > best) {
            best = fc * fk;
            best_fc = fc;
            best_fk = fk;
        }
    }
    return {best_fc, best_fk};
}

std::vector<DimId>
rotatedOrder(int nd, DimId inner)
{
    std::vector<DimId> order;
    for (DimId d = 0; d < nd; ++d)
        if (d != inner)
            order.push_back(d);
    order.push_back(inner);
    return order;
}

/** Divisor tilings of one level that fit, largest footprint first. */
std::vector<std::vector<std::int64_t>>
fittingTiles(const BoundArch &ba, int level,
             const std::vector<std::int64_t> &base,
             const std::vector<std::int64_t> &remaining, std::size_t cap)
{
    const Workload &wl = ba.workload();
    const int nd = wl.numDims();
    std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> found;
    std::vector<std::int64_t> current(nd, 1);
    std::vector<std::int64_t> fp(ba.numTensors());
    auto fits = [&]() {
        std::vector<std::int64_t> s(base);
        std::int64_t vol = 1;
        for (int d = 0; d < nd; ++d) {
            s[d] = satMul(s[d], current[d]);
            vol = satMul(vol, current[d]);
        }
        for (TensorId t = 0; t < ba.numTensors(); ++t)
            fp[t] = ba.stores(level, t) ? wl.tensor(t).footprint(s) : 0;
        return std::make_pair(ba.fits(level, fp), vol);
    };
    const std::size_t hard_cap = cap * 256;
    std::size_t visited = 0;
    auto rec = [&](auto &&self, int d) -> void {
        if (visited > hard_cap)
            return;
        if (d == nd) {
            ++visited;
            auto [ok, vol] = fits();
            if (ok)
                found.emplace_back(vol, current);
            return;
        }
        for (std::int64_t f : cachedDivisors(remaining[d])) {
            current[d] = f;
            if (!fits().first) {
                current[d] = 1;
                break;
            }
            self(self, d + 1);
        }
        current[d] = 1;
    };
    rec(rec, 0);
    // High-throughput heuristic: larger tiles (more work per refill)
    // first.
    std::sort(found.begin(), found.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    if (found.size() > cap)
        found.resize(cap);
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(found.size());
    for (auto &f : found)
        out.push_back(std::move(f.second));
    return out;
}

} // anonymous namespace

InterstellarMapper::InterstellarMapper(InterstellarOptions o,
                                       std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
InterstellarMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nd = wl.numDims();

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, 1);

    StopPolicy defaults;
    defaults.maxEvals = opts.maxEvaluations;
    sc.setPolicy(sc.policy().withDefaults(defaults));

    SearchDriver drv(sc, eng, ba, displayName, opts.optimizeEdp);

    auto bail = [&](const std::string &why) {
        return toMapperResult(drv.finish(StopReason::Unsupported), why);
    };

    if (ba.numLevels() != 3 || arch.levels[0].fanout != 1 ||
        arch.levels[1].fanout <= 1)
        return bail("architecture not supported (conventional "
                    "L1/L2/DRAM only)");

    // The tool is DNN-specific: it needs the channel dims to preset the
    // unrolling.
    DimId c_dim = -1, k_dim = -1;
    for (DimId d = 0; d < nd; ++d) {
        if (wl.dimName(d) == "c")
            c_dim = d;
        if (wl.dimName(d) == "k")
            k_dim = d;
    }
    if (c_dim < 0 || k_dim < 0)
        return bail("workload not supported (needs convolution-style "
                    "channel dims for the preset CK unrolling)");

    const std::int64_t fanout = arch.levels[1].fanout;
    auto [fc, fk] =
        bestChannelUnroll(wl.dimSize(c_dim), wl.dimSize(k_dim), fanout);
    std::vector<std::int64_t> sp(nd, 1);
    sp[c_dim] = fc;
    sp[k_dim] = fk;

    // Fallback: when CK cannot utilize the grid, unroll other dims into
    // the remaining budget (largest dims first).
    if (static_cast<double>(fc * fk) <
        opts.ckFallbackBelow * static_cast<double>(fanout)) {
        std::int64_t budget = fanout / (fc * fk);
        std::vector<DimId> others;
        for (DimId d = 0; d < nd; ++d)
            if (d != c_dim && d != k_dim)
                others.push_back(d);
        std::sort(others.begin(), others.end(), [&](DimId a, DimId b) {
            return wl.dimSize(a) > wl.dimSize(b);
        });
        for (DimId d : others) {
            if (budget <= 1)
                break;
            const std::int64_t f =
                largestDivisorAtMost(wl.dimSize(d), budget);
            sp[d] = f;
            budget /= f;
        }
    }

    std::vector<std::int64_t> rem = wl.shape();
    for (int d = 0; d < nd; ++d)
        rem[d] /= sp[d];

    std::vector<std::int64_t> base0(nd, 1);
    auto l1_tiles = fittingTiles(ba, 0, base0, rem, 40);
    if (l1_tiles.empty())
        return bail("no L1 tiling compatible with the preset unrolling");

    // Push-style tile enumeration adapted to the driver's pull model;
    // emission order matches the old serial loop exactly.
    auto producer = [&](const GeneratorStream::Sink &sink) {
        for (const auto &t1 : l1_tiles) {
            std::vector<std::int64_t> rem2 = rem;
            std::vector<std::int64_t> base1(nd);
            for (int d = 0; d < nd; ++d) {
                rem2[d] /= t1[d];
                base1[d] = t1[d] * sp[d];
            }
            auto l2_tiles = fittingTiles(ba, 1, base1, rem2, 40);
            for (const auto &t2 : l2_tiles) {
                for (DimId in2 = 0; in2 < nd; ++in2) {
                    for (DimId in3 = 0; in3 < nd; ++in3) {
                        Mapping m(3, nd);
                        for (int d = 0; d < nd; ++d) {
                            m.level(0).temporal[d] = t1[d];
                            m.level(1).spatial[d] = sp[d];
                            m.level(1).temporal[d] = t2[d];
                            m.level(2).temporal[d] = rem2[d] / t2[d];
                        }
                        m.level(1).order = rotatedOrder(nd, in2);
                        m.level(2).order = rotatedOrder(nd, in3);
                        if (!sink(std::move(m)))
                            return;
                    }
                }
            }
        }
    };

    // Preset-dataflow enumeration; batch tails may be pruned.
    GeneratorStream stream(producer, 2048,
                           SurrogatePolicy::RankAndPrune);
    DriverOutcome o = drv.run(stream);
    return toMapperResult(
        o, o.found ? "" : "no valid mapping with the preset unrolling");
}

double
InterstellarMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::interstellarSpace(ba);
}

} // namespace sunstone
