/**
 * @file
 * GAMMA-like mapper (related work, Section VI): a genetic algorithm over
 * complete mappings. Individuals are factor assignments plus per-level
 * orders; crossover swaps whole-dimension assignments between parents,
 * and mutation moves single prime factors between slots or rotates a
 * loop order. Included both as an additional baseline and as a sanity
 * yardstick: black-box search matches Sunstone only when given far more
 * evaluations (the paper's argument against black-box optimizers).
 */

#ifndef SUNSTONE_MAPPERS_GAMMA_MAPPER_HH
#define SUNSTONE_MAPPERS_GAMMA_MAPPER_HH

#include "mappers/mapper.hh"

namespace sunstone {

/** GA knobs. */
struct GammaOptions
{
    int populationSize = 64;
    int generations = 60;
    double mutationRate = 0.3;
    /** Tournament size for parent selection. */
    int tournament = 4;
    std::uint64_t seed = 0xabcd;
    double maxSeconds = 60.0;
    bool optimizeEdp = true;

    /**
     * Shared evaluation engine; a private one is created when null.
     * GA populations converge, so later generations re-evaluate many
     * repeated individuals — memoization absorbs those.
     */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;
};

/** The mapper. */
class GammaMapper : public Mapper
{
  public:
    explicit GammaMapper(GammaOptions opts = {},
                         std::string display_name = "GAMMA");

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    GammaOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_GAMMA_MAPPER_HH
