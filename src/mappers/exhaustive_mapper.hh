/**
 * @file
 * Exhaustive mapper: enumerates every divisor-exact mapping (all factor
 * splits across temporal and spatial slots, all loop permutations at
 * every non-innermost level) and returns the global optimum. Usable only
 * on tiny problems; serves as the ground-truth oracle for the property
 * tests that show Sunstone's pruning does not reject optimal mappings.
 */

#ifndef SUNSTONE_MAPPERS_EXHAUSTIVE_MAPPER_HH
#define SUNSTONE_MAPPERS_EXHAUSTIVE_MAPPER_HH

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs for the exhaustive search. */
struct ExhaustiveOptions
{
    /** Refuse to run when the estimated space exceeds this. */
    double maxSpace = 5e6;
    bool optimizeEdp = true;

    /**
     * Shared evaluation engine; a private one is created when null.
     * Enumerated permutations that differ only in inactive loop dims
     * canonicalize to the same key, so memoization collapses them.
     */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;
};

/** The mapper. */
class ExhaustiveMapper : public Mapper
{
  public:
    explicit ExhaustiveMapper(ExhaustiveOptions opts = {});

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return "exhaustive"; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    ExhaustiveOptions opts;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_EXHAUSTIVE_MAPPER_HH
