#include "mappers/mapper.hh"

namespace sunstone {

MapperResult
Mapper::optimize(const BoundArch &ba)
{
    SearchContext sc;
    return optimize(sc, ba);
}

MapperResult
Mapper::toMapperResult(const DriverOutcome &o,
                       const std::string &not_found_reason)
{
    MapperResult r;
    r.mappingsEvaluated = o.evaluated;
    r.seconds = o.seconds;
    r.stopReason = stopReasonName(o.reason);
    if (o.found) {
        r.found = true;
        r.mapping = o.best;
        r.cost = o.bestCost;
    } else {
        r.invalid = true;
        if (!not_found_reason.empty())
            r.invalidReason = not_found_reason;
        else if (!o.firstInvalidReason.empty())
            r.invalidReason = o.firstInvalidReason;
        else
            r.invalidReason = "no valid mapping found";
    }
    return r;
}

EvalEngine &
Mapper::resolveEngine(SearchContext &sc, EvalEngine *legacy, unsigned threads)
{
    if (sc.engine())
        return *sc.engine();
    if (legacy)
        return *legacy;
    return sc.engineOrPrivate(threads);
}

} // namespace sunstone
