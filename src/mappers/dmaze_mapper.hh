/**
 * @file
 * dMazeRunner-like mapper (Section V baseline "dMaze"): directed
 * enumeration of tilings and unrollings gated by user-specified minimum
 * utilization thresholds (Table V), a restricted analyzed order set, and
 * an optional ban on spatial reduction. Reproduces the tool's documented
 * failure modes: it supports only conventional three-level architectures
 * with one spatial level, assumes symmetric convolutions, and returns
 * *invalid* when no mapping meets the utilization constraints
 * (Section V-B2).
 */

#ifndef SUNSTONE_MAPPERS_DMAZE_MAPPER_HH
#define SUNSTONE_MAPPERS_DMAZE_MAPPER_HH

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs mirroring Table V. */
struct DMazeOptions
{
    double l1Util = 0.8;
    double l2Util = 0.5;
    double peUtil = 0.8;
    bool allowSpatialReduction = false;
    /** Cap on evaluated mappings (the tool enumerates aggressively). */
    std::int64_t maxEvaluations = 300000;
    bool optimizeEdp = true;

    /**
     * Shared evaluation engine; a private one is created when null.
     * Many enumerated order rotations canonicalize to the same cost-model
     * key, so memoization saves real evaluations here.
     */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;

    /** Table V fast/aggressive configuration (repository default). */
    static DMazeOptions
    fast()
    {
        return DMazeOptions{};
    }

    /** Table V slow/conservative configuration. */
    static DMazeOptions
    slow()
    {
        DMazeOptions o;
        o.l1Util = 0.6;
        o.l2Util = 0.4;
        o.peUtil = 0.8;
        o.allowSpatialReduction = true;
        return o;
    }
};

/** The mapper. */
class DMazeMapper : public Mapper
{
  public:
    explicit DMazeMapper(DMazeOptions opts = DMazeOptions::fast(),
                         std::string display_name = "dMaze");

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    DMazeOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_DMAZE_MAPPER_HH
