#include "mappers/gamma_mapper.hh"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/math_utils.hh"
#include "common/timer.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

struct Slot
{
    int level;
    bool spatial;
};

std::vector<Slot>
slotsOf(const BoundArch &ba)
{
    std::vector<Slot> slots;
    for (int l = 0; l < ba.numLevels(); ++l) {
        slots.push_back({l, false});
        if (ba.arch().levels[l].fanout > 1)
            slots.push_back({l, true});
    }
    return slots;
}

/** Randomly distributes one dim's prime factors over the slots. */
void
randomizeDim(Mapping &m, const BoundArch &ba, const std::vector<Slot> &slots,
             DimId d, std::mt19937_64 &rng)
{
    for (int l = 0; l < m.numLevels(); ++l) {
        m.level(l).temporal[d] = 1;
        m.level(l).spatial[d] = 1;
    }
    for (auto [p, e] : cachedPrimeFactors(ba.workload().dimSize(d))) {
        for (int i = 0; i < e; ++i) {
            const Slot &s = slots[rng() % slots.size()];
            auto &lm = m.level(s.level);
            if (s.spatial)
                lm.spatial[d] = satMul(lm.spatial[d], p);
            else
                lm.temporal[d] = satMul(lm.temporal[d], p);
        }
    }
}

Mapping
randomIndividual(const BoundArch &ba, const std::vector<Slot> &slots,
                 std::mt19937_64 &rng)
{
    const int nd = ba.workload().numDims();
    Mapping m(ba.numLevels(), nd);
    for (DimId d = 0; d < nd; ++d)
        randomizeDim(m, ba, slots, d, rng);
    for (int l = 0; l < m.numLevels(); ++l)
        std::shuffle(m.level(l).order.begin(), m.level(l).order.end(),
                     rng);
    return m;
}

/** Copies dim d's factor assignment from src into dst. */
void
copyDim(Mapping &dst, const Mapping &src, DimId d)
{
    for (int l = 0; l < dst.numLevels(); ++l) {
        dst.level(l).temporal[d] = src.level(l).temporal[d];
        dst.level(l).spatial[d] = src.level(l).spatial[d];
    }
}

} // anonymous namespace

GammaMapper::GammaMapper(GammaOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
GammaMapper::optimize(const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);
    Timer timer;
    MapperResult result;
    obs::ConvergenceTrajectory *traj =
        opts.convergence ? &opts.convergence->start(displayName) : nullptr;
    const Workload &wl = ba.workload();
    const int nd = wl.numDims();
    const auto slots = slotsOf(ba);
    std::mt19937_64 rng(opts.seed);

    EvalEngine localEngine;
    EvalEngine &eng = opts.engine ? *opts.engine : localEngine;
    const EvalEngine::Context ctx = eng.context(ba);

    // Every evaluated individual enters a population, and elitism keeps
    // the population's best monotone, so the best fitness seen here is
    // exactly the final answer's fitness.
    double best_seen = std::numeric_limits<double>::infinity();
    auto fitness = [&](const Mapping &m) {
        CostResult cr = eng.evaluate(ctx, m);
        ++result.mappingsEvaluated;
        if (!cr.valid)
            return std::numeric_limits<double>::infinity();
        const double metric = opts.optimizeEdp ? cr.edp : cr.totalEnergyPj;
        if (traj && metric < best_seen) {
            best_seen = metric;
            traj->record(result.mappingsEvaluated, cr.totalEnergyPj,
                         cr.edp, metric);
        }
        return metric;
    };

    struct Individual
    {
        Mapping m;
        double fit;
    };
    std::vector<Individual> pop;
    pop.reserve(opts.populationSize);
    for (int i = 0; i < opts.populationSize; ++i) {
        Mapping m = randomIndividual(ba, slots, rng);
        pop.push_back({m, fitness(m)});
    }

    auto tournamentPick = [&]() -> const Individual & {
        const Individual *best = &pop[rng() % pop.size()];
        for (int i = 1; i < opts.tournament; ++i) {
            const Individual *c = &pop[rng() % pop.size()];
            if (c->fit < best->fit)
                best = c;
        }
        return *best;
    };

    for (int gen = 0; gen < opts.generations; ++gen) {
        if (timer.seconds() > opts.maxSeconds)
            break;
        std::vector<Individual> next;
        next.reserve(pop.size());
        // Elitism: carry the best individual over unchanged.
        const auto best_it = std::min_element(
            pop.begin(), pop.end(),
            [](const auto &a, const auto &b) { return a.fit < b.fit; });
        next.push_back(*best_it);

        while ((int)next.size() < opts.populationSize) {
            const Individual &pa = tournamentPick();
            const Individual &pb = tournamentPick();
            // Uniform per-dim crossover plus per-level order choice.
            Mapping child = pa.m;
            for (DimId d = 0; d < nd; ++d)
                if (rng() & 1)
                    copyDim(child, pb.m, d);
            for (int l = 0; l < child.numLevels(); ++l)
                if (rng() & 1)
                    child.level(l).order = pb.m.level(l).order;

            // Mutation: rerandomize a dim or shuffle an order.
            std::uniform_real_distribution<double> unit(0.0, 1.0);
            if (unit(rng) < opts.mutationRate) {
                const DimId d = static_cast<DimId>(rng() % nd);
                randomizeDim(child, ba, slots, d, rng);
            }
            if (unit(rng) < opts.mutationRate) {
                const int l =
                    static_cast<int>(rng() % child.numLevels());
                std::shuffle(child.level(l).order.begin(),
                             child.level(l).order.end(), rng);
            }
            next.push_back({child, fitness(child)});
        }
        pop = std::move(next);
    }

    const auto best_it = std::min_element(
        pop.begin(), pop.end(),
        [](const auto &a, const auto &b) { return a.fit < b.fit; });
    result.seconds = timer.seconds();
    if (std::isinf(best_it->fit)) {
        result.invalid = true;
        result.invalidReason = "no valid individual evolved";
        return result;
    }
    result.found = true;
    result.mapping = best_it->m;
    result.cost = eng.evaluate(ctx, best_it->m);
    if (traj)
        traj->record(result.mappingsEvaluated,
                     result.cost.totalEnergyPj, result.cost.edp,
                     best_it->fit);
    return result;
}

double
GammaMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
