#include "mappers/gamma_mapper.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"
#include "search/checkpoint.hh"
#include "search/rng.hh"

namespace sunstone {

namespace {

struct Slot
{
    int level;
    bool spatial;
};

std::vector<Slot>
slotsOf(const BoundArch &ba)
{
    std::vector<Slot> slots;
    for (int l = 0; l < ba.numLevels(); ++l) {
        slots.push_back({l, false});
        if (ba.arch().levels[l].fanout > 1)
            slots.push_back({l, true});
    }
    return slots;
}

/** Randomly distributes one dim's prime factors over the slots. */
void
randomizeDim(Mapping &m, const BoundArch &ba, const std::vector<Slot> &slots,
             DimId d, RngStream &rng)
{
    for (int l = 0; l < m.numLevels(); ++l) {
        m.level(l).temporal[d] = 1;
        m.level(l).spatial[d] = 1;
    }
    for (auto [p, e] : cachedPrimeFactors(ba.workload().dimSize(d))) {
        for (int i = 0; i < e; ++i) {
            const Slot &s = slots[rng.below(slots.size())];
            auto &lm = m.level(s.level);
            if (s.spatial)
                lm.spatial[d] = satMul(lm.spatial[d], p);
            else
                lm.temporal[d] = satMul(lm.temporal[d], p);
        }
    }
}

Mapping
randomIndividual(const BoundArch &ba, const std::vector<Slot> &slots,
                 RngStream &rng)
{
    const int nd = ba.workload().numDims();
    Mapping m(ba.numLevels(), nd);
    for (DimId d = 0; d < nd; ++d)
        randomizeDim(m, ba, slots, d, rng);
    for (int l = 0; l < m.numLevels(); ++l)
        rng.shuffle(m.level(l).order);
    return m;
}

/** Copies dim d's factor assignment from src into dst. */
void
copyDim(Mapping &dst, const Mapping &src, DimId d)
{
    for (int l = 0; l < dst.numLevels(); ++l) {
        dst.level(l).temporal[d] = src.level(l).temporal[d];
        dst.level(l).spatial[d] = src.level(l).spatial[d];
    }
}

/**
 * The GA as a stateful candidate stream: nextBatch() grows the current
 * generation (initial population at gen 0, elite + children after),
 * onResult() scores individuals in generation order, and a complete,
 * fully-scored generation is promoted to the parent pool the next time
 * nextBatch() runs. Selection draws from sc.rngStream(0), so the
 * sequence is deterministic and its cursor is the resume point; the
 * populations themselves are the stream's checkpoint payload.
 */
class GammaStream : public CandidateStream
{
  public:
    GammaStream(SearchContext &sc, const BoundArch &ba,
                const GammaOptions &opts)
        : sc_(sc), ba_(ba), opts_(opts), slots_(slotsOf(ba)),
          nd_(ba.workload().numDims())
    {
    }

    bool
    nextBatch(std::size_t max, std::vector<Mapping> &out) override
    {
        std::size_t n = 0;
        while (n < max && !done_) {
            if (pending_.size() ==
                static_cast<std::size_t>(opts_.populationSize)) {
                if (scored_ < pending_.size())
                    break; // scores arrive later in this very batch
                promote();
                continue;
            }
            Mapping m = makeIndividual();
            pending_.push_back({m, std::numeric_limits<double>::infinity()});
            out.push_back(std::move(m));
            ++n;
        }
        return !done_;
    }

    /**
     * The GA scores whole generations: every generated individual's
     * fitness must come back (in generation order) before the
     * population can promote. Batches may be reordered best-first but
     * never truncated.
     */
    SurrogatePolicy
    surrogatePolicy() const override
    {
        return SurrogatePolicy::RankOnly;
    }

    void
    onResult(std::size_t, const Mapping &, const CostResult &cr) override
    {
        double fit = std::numeric_limits<double>::infinity();
        if (cr.valid)
            fit = opts_.optimizeEdp ? cr.edp : cr.totalEnergyPj;
        pending_[scored_].fit = fit;
        ++scored_;
    }

    std::string
    saveState() const override
    {
        auto pool = [](const std::vector<Individual> &v) {
            std::string s = "[";
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (i)
                    s += ", ";
                s += "{\"fit\": " + jsonDouble(v[i].fit) +
                     ", \"m\": " + mappingToJson(v[i].m) + "}";
            }
            return s + "]";
        };
        return "{\"gen\": " + std::to_string(gen_) +
               ", \"done\": " + (done_ ? std::string("true") : "false") +
               ", \"prev\": " + pool(prev_) +
               ", \"pending\": " + pool(pending_) + "}";
    }

    bool
    restoreState(const std::string &payload) override
    {
        JsonValue v;
        if (!parseJson(payload, v) || !v.isObject())
            return false;
        auto pool = [this](const JsonValue *arr,
                           std::vector<Individual> &out) {
            out.clear();
            if (!arr || !arr->isArray())
                return false;
            for (const JsonValue &e : arr->items) {
                Individual ind{Mapping(ba_.numLevels(), nd_),
                               std::numeric_limits<double>::infinity()};
                const JsonValue *m = e.find("m");
                if (!m || !mappingFromJson(*m, ind.m))
                    return false;
                if (const JsonValue *f = e.find("fit"))
                    ind.fit = f->isNull()
                                  ? std::numeric_limits<double>::infinity()
                                  : f->asDouble();
                out.push_back(std::move(ind));
            }
            return true;
        };
        if (!pool(v.find("prev"), prev_) || !pool(v.find("pending"), pending_))
            return false;
        const JsonValue *g = v.find("gen");
        if (!g)
            return false;
        gen_ = static_cast<int>(g->asInt(0));
        if (const JsonValue *d = v.find("done"))
            done_ = d->asBool(false);
        scored_ = pending_.size(); // snapshots only cover scored pools
        return true;
    }

  private:
    struct Individual
    {
        Mapping m;
        double fit;
    };

    Mapping
    makeIndividual()
    {
        RngStream &rng = sc_.rngStream(0);
        if (gen_ == 0)
            return randomIndividual(ba_, slots_, rng);
        if (pending_.empty()) {
            // Elitism: re-submit the parent pool's best unchanged (the
            // memoized engine makes rescoring it a cache hit).
            return bestOf(prev_).m;
        }
        const Individual &pa = tournamentPick(rng);
        const Individual &pb = tournamentPick(rng);
        // Uniform per-dim crossover plus per-level order choice.
        Mapping child = pa.m;
        for (DimId d = 0; d < nd_; ++d)
            if (rng.next() & 1)
                copyDim(child, pb.m, d);
        for (int l = 0; l < child.numLevels(); ++l)
            if (rng.next() & 1)
                child.level(l).order = pb.m.level(l).order;

        // Mutation: rerandomize a dim or shuffle an order.
        if (rng.unit() < opts_.mutationRate) {
            const DimId d = static_cast<DimId>(rng.below(nd_));
            randomizeDim(child, ba_, slots_, d, rng);
        }
        if (rng.unit() < opts_.mutationRate) {
            const int l = static_cast<int>(rng.below(child.numLevels()));
            rng.shuffle(child.level(l).order);
        }
        return child;
    }

    const Individual &
    tournamentPick(RngStream &rng)
    {
        const Individual *best = &prev_[rng.below(prev_.size())];
        for (int i = 1; i < opts_.tournament; ++i) {
            const Individual *c = &prev_[rng.below(prev_.size())];
            if (c->fit < best->fit)
                best = c;
        }
        return *best;
    }

    static const Individual &
    bestOf(const std::vector<Individual> &pool)
    {
        return *std::min_element(pool.begin(), pool.end(),
                                 [](const auto &a, const auto &b) {
                                     return a.fit < b.fit;
                                 });
    }

    void
    promote()
    {
        prev_ = std::move(pending_);
        pending_.clear();
        scored_ = 0;
        ++gen_;
        if (gen_ > opts_.generations)
            done_ = true;
    }

    SearchContext &sc_;
    const BoundArch &ba_;
    const GammaOptions &opts_;
    const std::vector<Slot> slots_;
    const int nd_;

    int gen_ = 0;
    bool done_ = false;
    std::vector<Individual> prev_;
    std::vector<Individual> pending_;
    std::size_t scored_ = 0;
};

} // anonymous namespace

GammaMapper::GammaMapper(GammaOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
GammaMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, 1);
    sc.ensureSeed(opts.seed);

    StopPolicy defaults;
    defaults.deadlineSeconds = opts.maxSeconds;
    sc.setPolicy(sc.policy().withDefaults(defaults));

    SearchDriver drv(sc, eng, ba, displayName, opts.optimizeEdp);
    GammaStream stream(sc, ba, opts);
    DriverOutcome o = drv.run(stream);
    return toMapperResult(o, o.found ? "" : "no valid individual evolved");
}

double
GammaMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
