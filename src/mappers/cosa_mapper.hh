/**
 * @file
 * CoSA-like mapper (Section V baseline "CoSA"): a one-shot constructor
 * in the spirit of CoSA's mixed-integer program. The non-linear tiling
 * problem is relaxed to a real-valued (log-space) allocation that fills
 * each buffer level to a target utilization, then rounded to the nearest
 * integer divisors. The relaxation is what makes the tool fast and
 * one-shot — and, exactly as Section V-B3 reports, the rounding step can
 * overflow a buffer, yielding *invalid* mappings on hierarchical
 * architectures.
 */

#ifndef SUNSTONE_MAPPERS_COSA_MAPPER_HH
#define SUNSTONE_MAPPERS_COSA_MAPPER_HH

#include "mappers/mapper.hh"

namespace sunstone {

/** Knobs for the CoSA-like constructor. */
struct CosaOptions
{
    /** Target buffer fill fraction for the relaxed allocation. */
    double targetUtilization = 0.85;

    /** Shared evaluation engine; a private one is created when null. */
    EvalEngine *engine = nullptr;

    /** Optional convergence telemetry (see obs/convergence.hh). */
    obs::ConvergenceRecorder *convergence = nullptr;
};

/** The mapper. */
class CosaMapper : public Mapper
{
  public:
    explicit CosaMapper(CosaOptions opts = {},
                        std::string display_name = "CoSA");

    using Mapper::optimize;
    MapperResult optimize(SearchContext &sc, const BoundArch &ba) override;
    std::string name() const override { return displayName; }
    double spaceSizeEstimate(const BoundArch &ba) const override;

  private:
    CosaOptions opts;
    std::string displayName;
};

} // namespace sunstone

#endif // SUNSTONE_MAPPERS_COSA_MAPPER_HH
