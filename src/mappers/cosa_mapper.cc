#include "mappers/cosa_mapper.hh"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/** Real-valued tensor footprint for a fractional tile shape. */
double
realFootprint(const TensorSpec &ts, const std::vector<double> &shape)
{
    double fp = 1;
    for (const auto &r : ts.ranks) {
        double e = 1;
        for (const auto &term : r.terms)
            e += term.coeff * (shape[term.dim] - 1.0);
        fp *= e;
    }
    return fp;
}

/**
 * Fill fraction of one level for a fractional shape: the maximum over
 * partitions of used/capacity (unified levels have one "partition").
 */
double
fillFraction(const BoundArch &ba, int level,
             const std::vector<double> &shape)
{
    const Workload &wl = ba.workload();
    const auto &lv = ba.arch().levels[level];
    if (lv.partitions.empty()) {
        double bits = 0;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (ba.stores(level, t))
                bits += realFootprint(wl.tensor(t), shape) *
                        wl.tensor(t).wordBits;
        return bits / static_cast<double>(lv.capacityBits);
    }
    double worst = 0;
    for (const auto &p : lv.partitions) {
        double bits = 0;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (ba.stores(level, t) && ba.partitionOf(t) == p.name)
                bits += realFootprint(wl.tensor(t), shape) *
                        wl.tensor(t).wordBits;
        worst = std::max(worst,
                         bits / static_cast<double>(p.capacityBits));
    }
    return worst;
}

/** Nearest divisor of n to the real target, in log space. */
std::int64_t
nearestDivisor(std::int64_t n, double target)
{
    if (target <= 1)
        return 1;
    std::int64_t best = 1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::int64_t d : cachedDivisors(n)) {
        const double dist = std::abs(std::log(static_cast<double>(d)) -
                                     std::log(target));
        if (dist < best_dist) {
            best_dist = dist;
            best = d;
        }
    }
    return best;
}

/** The one mapping CoSA's relaxation commits to. */
class SingleShotStream : public CandidateStream
{
  public:
    explicit SingleShotStream(Mapping m) : m_(std::move(m)) {}

    bool
    nextBatch(std::size_t max, std::vector<Mapping> &out) override
    {
        if (max > 0 && !emitted_) {
            out.push_back(m_);
            emitted_ = true;
        }
        return false;
    }

    ResumeMode resumeMode() const override { return ResumeMode::Replay; }

    /** One constructed candidate; it must always be evaluated. */
    SurrogatePolicy
    surrogatePolicy() const override
    {
        return SurrogatePolicy::RankOnly;
    }

  private:
    Mapping m_;
    bool emitted_ = false;
};

} // anonymous namespace

CosaMapper::CosaMapper(CosaOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
CosaMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = ba.numLevels();
    const int nd = wl.numDims();

    Mapping m(nl, nd);
    std::vector<std::int64_t> rem = wl.shape();

    // Phase 1: one-shot spatial assignment — fill every fanout with the
    // largest-divisor factors of the largest dims (CoSA's utilization
    // objective, linearized).
    for (int l = 0; l < nl; ++l) {
        std::int64_t budget = arch.levels[l].fanout;
        if (budget <= 1)
            continue;
        std::vector<DimId> dims(nd);
        for (DimId d = 0; d < nd; ++d)
            dims[d] = d;
        std::sort(dims.begin(), dims.end(), [&](DimId a, DimId b) {
            return rem[a] > rem[b];
        });
        for (DimId d : dims) {
            if (budget <= 1)
                break;
            const std::int64_t f = largestDivisorAtMost(rem[d], budget);
            m.level(l).spatial[d] = f;
            rem[d] /= f;
            budget /= f;
        }
    }

    // Phase 2: relaxed temporal allocation, inner to outer. A single
    // real-valued growth multiplier per level fills the buffer to the
    // target utilization; the relaxation is then rounded to the nearest
    // divisors (this is the lossy step).
    for (int l = 0; l + 1 < nl; ++l) {
        auto int_shape = m.tileShape(l);
        std::vector<double> shape(int_shape.begin(), int_shape.end());
        if (fillFraction(ba, l, shape) >= opts.targetUtilization)
            continue; // already full from below

        // Binary search the uniform growth multiplier g until the
        // tightest partition reaches the target fill.
        double lo = 1.0, hi = 1.0;
        auto grown = [&](double g) {
            std::vector<double> s(shape);
            for (DimId d = 0; d < nd; ++d)
                s[d] *= std::min(static_cast<double>(rem[d]), g);
            return s;
        };
        while (fillFraction(ba, l, grown(hi)) < opts.targetUtilization &&
               hi < 1e12) {
            bool can_grow = false;
            for (DimId d = 0; d < nd; ++d)
                if (rem[d] > hi)
                    can_grow = true;
            if (!can_grow)
                break;
            hi *= 2;
        }
        for (int it = 0; it < 60; ++it) {
            const double mid = std::sqrt(lo * hi);
            if (fillFraction(ba, l, grown(mid)) < opts.targetUtilization)
                lo = mid;
            else
                hi = mid;
        }
        for (DimId d = 0; d < nd; ++d) {
            const double target =
                std::min(static_cast<double>(rem[d]), lo);
            const std::int64_t f = nearestDivisor(rem[d], target);
            m.level(l).temporal[d] = f;
            rem[d] /= f;
        }
    }

    // Residual loops to DRAM; canonical orders throughout.
    for (DimId d = 0; d < nd; ++d)
        m.level(nl - 1).temporal[d] = rem[d];

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, 1);

    // One-shot construction: the driver evaluates the single candidate,
    // so the convergence trajectory is the one point the solver commits
    // to and the stop reason is "exhausted".
    SearchDriver drv(sc, eng, ba, displayName, /*optimize_edp=*/true);
    SingleShotStream stream(m);
    DriverOutcome o = drv.run(stream);
    MapperResult result = toMapperResult(o, "");
    if (!o.found) {
        // Keep reporting the committed (invalid) mapping and its cost
        // breakdown — Figs. 7-8 chart CoSA's failures by reason.
        result.mapping = m;
        result.cost = eng.evaluate(eng.context(ba), m);
    }
    return result;
}

double
CosaMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::cosaSpace(ba);
}

} // namespace sunstone
