#include "mappers/timeloop_mapper.hh"

#include <vector>

#include "common/json.hh"
#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"
#include "search/rng.hh"

namespace sunstone {

namespace {

/**
 * Samples a uniformly random mapping: every prime factor of every
 * dimension lands in a random (level, temporal|spatial) slot, and each
 * level gets a random loop permutation. This mirrors Timeloop's
 * unpruned, undirected space (Table I: "pruning methods: nothing").
 */
Mapping
randomMapping(const BoundArch &ba, RngStream &rng)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = ba.numLevels();
    const int nd = wl.numDims();
    Mapping m(nl, nd);

    // Candidate slots: temporal at every level, spatial where fanout > 1.
    struct Slot
    {
        int level;
        bool spatial;
    };
    std::vector<Slot> slots;
    for (int l = 0; l < nl; ++l) {
        slots.push_back({l, false});
        if (arch.levels[l].fanout > 1)
            slots.push_back({l, true});
    }

    for (DimId d = 0; d < nd; ++d) {
        for (auto [p, e] : cachedPrimeFactors(wl.dimSize(d))) {
            for (int i = 0; i < e; ++i) {
                const Slot &s = slots[rng.below(slots.size())];
                auto &lm = m.level(s.level);
                if (s.spatial)
                    lm.spatial[d] = satMul(lm.spatial[d], p);
                else
                    lm.temporal[d] = satMul(lm.temporal[d], p);
            }
        }
    }
    for (int l = 0; l < nl; ++l)
        rng.shuffle(m.level(l).order);
    return m;
}

/**
 * The random-sampling stream. Samples are drawn round-robin from a
 * fixed number of logical RNG shards — a constant, never derived from
 * the thread count — so the candidate sequence (and therefore the whole
 * search) is identical at any --threads value. Resume needs only the
 * shard cursors (restored by the driver) plus the round-robin position.
 */
class TimeloopStream : public CandidateStream
{
  public:
    static constexpr std::size_t kShards = 16;

    TimeloopStream(SearchContext &sc, const BoundArch &ba)
        : sc_(sc), ba_(ba)
    {
    }

    bool
    nextBatch(std::size_t max, std::vector<Mapping> &out) override
    {
        for (std::size_t i = 0; i < max; ++i) {
            out.push_back(
                randomMapping(ba_, sc_.rngStream(cursor_ % kShards)));
            ++cursor_;
        }
        return true; // never exhausts; a StopPolicy bound ends it
    }

    EvalEngine::CachePolicy
    cachePolicy() const override
    {
        // Uniform random samples almost never repeat, so caching them
        // would only churn the shared cache.
        return EvalEngine::CachePolicy::Bypass;
    }

    ResumeMode resumeMode() const override { return ResumeMode::State; }

    /** Uniform random samples are interchangeable; prune freely. */
    SurrogatePolicy
    surrogatePolicy() const override
    {
        return SurrogatePolicy::RankAndPrune;
    }

    std::string
    saveState() const override
    {
        return "{\"cursor\": " + std::to_string(cursor_) + "}";
    }

    bool
    restoreState(const std::string &payload) override
    {
        JsonValue v;
        if (!parseJson(payload, v) || !v.isObject())
            return false;
        const JsonValue *c = v.find("cursor");
        if (!c)
            return false;
        cursor_ = c->asInt(0);
        return cursor_ >= 0;
    }

  private:
    SearchContext &sc_;
    const BoundArch &ba_;
    std::int64_t cursor_ = 0;
};

} // anonymous namespace

TimeloopMapper::TimeloopMapper(TimeloopOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
TimeloopMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, opts.threads);
    sc.ensureSeed(opts.seed);

    StopPolicy defaults;
    defaults.deadlineSeconds = opts.maxSeconds;
    defaults.plateau = opts.victoryCondition;
    defaults.maxConsecutiveInvalid = opts.maxConsecutiveInvalid;
    sc.setPolicy(sc.policy().withDefaults(defaults));

    SearchDriver drv(sc, eng, ba, displayName, opts.optimizeEdp);
    TimeloopStream stream(sc, ba);
    DriverOutcome o = drv.run(stream);
    return toMapperResult(o, o.found ? "" : "no valid mapping sampled");
}

double
TimeloopMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
