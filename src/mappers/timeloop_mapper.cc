#include "mappers/timeloop_mapper.hh"

#include <atomic>
#include <mutex>
#include <random>

#include "common/math_utils.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/**
 * Samples a uniformly random mapping: every prime factor of every
 * dimension lands in a random (level, temporal|spatial) slot, and each
 * level gets a random loop permutation. This mirrors Timeloop's
 * unpruned, undirected space (Table I: "pruning methods: nothing").
 */
Mapping
randomMapping(const BoundArch &ba, std::mt19937_64 &rng)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = ba.numLevels();
    const int nd = wl.numDims();
    Mapping m(nl, nd);

    // Candidate slots: temporal at every level, spatial where fanout > 1.
    struct Slot
    {
        int level;
        bool spatial;
    };
    std::vector<Slot> slots;
    for (int l = 0; l < nl; ++l) {
        slots.push_back({l, false});
        if (arch.levels[l].fanout > 1)
            slots.push_back({l, true});
    }

    for (DimId d = 0; d < nd; ++d) {
        for (auto [p, e] : cachedPrimeFactors(wl.dimSize(d))) {
            for (int i = 0; i < e; ++i) {
                const Slot &s =
                    slots[rng() % slots.size()];
                auto &lm = m.level(s.level);
                if (s.spatial)
                    lm.spatial[d] = satMul(lm.spatial[d], p);
                else
                    lm.temporal[d] = satMul(lm.temporal[d], p);
            }
        }
    }
    for (int l = 0; l < nl; ++l) {
        auto &ord = m.level(l).order;
        std::shuffle(ord.begin(), ord.end(), rng);
    }
    return m;
}

} // anonymous namespace

TimeloopMapper::TimeloopMapper(TimeloopOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
TimeloopMapper::optimize(const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);
    Timer timer;
    MapperResult result;

    obs::ConvergenceTrajectory *traj =
        opts.convergence ? &opts.convergence->start(displayName) : nullptr;

    EvalEngine localEngine(EvalEngineOptions{.threads = opts.threads});
    EvalEngine &eng = opts.engine ? *opts.engine : localEngine;
    const EvalEngine::Context ctx = eng.context(ba);

    std::atomic<std::int64_t> evaluated{0};
    std::atomic<std::int64_t> consecutive_invalid{0};
    std::atomic<std::int64_t> consecutive_stale{0};
    std::atomic<bool> stop{false};

    std::mutex best_mtx;
    double best_metric = std::numeric_limits<double>::infinity();
    Mapping best_mapping;
    CostResult best_cost;
    bool found = false;

    auto worker = [&](unsigned tid) {
        std::mt19937_64 rng(opts.seed + 0x9e3779b97f4a7c15ULL * tid);
        while (!stop.load(std::memory_order_relaxed)) {
            if (consecutive_invalid.load(std::memory_order_relaxed) >=
                    opts.timeout ||
                consecutive_stale.load(std::memory_order_relaxed) >=
                    opts.victoryCondition ||
                timer.seconds() > opts.maxSeconds) {
                stop.store(true, std::memory_order_relaxed);
                break;
            }
            Mapping m = randomMapping(ba, rng);
            // Bypass: uniform random samples almost never repeat, so
            // caching them would only churn the shared cache.
            CostResult cr = eng.evaluate(ctx, m, {},
                                         EvalEngine::CachePolicy::Bypass);
            evaluated.fetch_add(1, std::memory_order_relaxed);
            if (!cr.valid) {
                consecutive_invalid.fetch_add(1,
                                              std::memory_order_relaxed);
                continue;
            }
            consecutive_invalid.store(0, std::memory_order_relaxed);
            const double metric =
                opts.optimizeEdp ? cr.edp : cr.totalEnergyPj;
            std::lock_guard<std::mutex> lk(best_mtx);
            if (metric < best_metric) {
                best_metric = metric;
                best_mapping = m;
                // Improvements are recorded under best_mtx, so the
                // trajectory is strictly decreasing even with many
                // sampling threads.
                if (traj)
                    traj->record(
                        evaluated.load(std::memory_order_relaxed),
                        cr.totalEnergyPj, cr.edp, metric);
                best_cost = std::move(cr);
                found = true;
                consecutive_stale.store(0, std::memory_order_relaxed);
            } else {
                consecutive_stale.fetch_add(1, std::memory_order_relaxed);
            }
        }
    };

    parallelFor(eng.pool(), std::max(1u, opts.threads),
                [&](std::size_t t) { worker((unsigned)t); });

    result.found = found;
    if (found) {
        result.mapping = best_mapping;
        if (traj)
            traj->record(evaluated.load(), best_cost.totalEnergyPj,
                         best_cost.edp,
                         opts.optimizeEdp ? best_cost.edp
                                          : best_cost.totalEnergyPj);
        result.cost = std::move(best_cost);
    } else {
        result.invalid = true;
        result.invalidReason = "no valid mapping sampled";
    }
    result.mappingsEvaluated = evaluated.load();
    result.seconds = timer.seconds();
    return result;
}

double
TimeloopMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
