#include "mappers/dmaze_mapper.hh"

#include <algorithm>
#include <atomic>

#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/** Utilization of a unified or partitioned level by a tile shape. */
double
levelUtilization(const BoundArch &ba, int level,
                 const std::vector<std::int64_t> &shape)
{
    const Workload &wl = ba.workload();
    std::int64_t used_bits = 0;
    std::int64_t cap_bits = 0;
    const auto &lv = ba.arch().levels[level];
    if (lv.partitions.empty()) {
        cap_bits = lv.capacityBits;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (ba.stores(level, t))
                used_bits += wl.tensor(t).footprint(shape) *
                             wl.tensor(t).wordBits;
    } else {
        for (const auto &p : lv.partitions)
            cap_bits += p.capacityBits;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            if (ba.stores(level, t))
                used_bits += wl.tensor(t).footprint(shape) *
                             wl.tensor(t).wordBits;
    }
    if (cap_bits <= 0)
        return 0;
    return static_cast<double>(used_bits) / static_cast<double>(cap_bits);
}

/**
 * Enumerates divisor factor vectors over all dims whose shape (base *
 * factors) keeps utilization of `level` within (lo, 1]; ordered by
 * descending utilization and truncated to `cap` entries.
 */
std::vector<std::vector<std::int64_t>>
enumerateTiles(const BoundArch &ba, int level,
               const std::vector<std::int64_t> &base,
               const std::vector<std::int64_t> &remaining, double lo,
               std::size_t cap)
{
    const int nd = static_cast<int>(remaining.size());
    std::vector<std::pair<double, std::vector<std::int64_t>>> found;
    std::vector<std::int64_t> current(nd, 1);

    // Depth-first over dims; prune a branch as soon as it overflows.
    auto shapeOf = [&](const std::vector<std::int64_t> &f) {
        std::vector<std::int64_t> s(base);
        for (int d = 0; d < nd; ++d)
            s[d] = satMul(s[d], f[d]);
        return s;
    };
    std::vector<std::int64_t> fp(ba.numTensors());
    auto fits = [&](const std::vector<std::int64_t> &s) {
        for (TensorId t = 0; t < ba.numTensors(); ++t)
            fp[t] = ba.stores(level, t)
                        ? ba.workload().tensor(t).footprint(s)
                        : 0;
        return ba.fits(level, fp);
    };

    // Bounded exhaustive recursion.
    const std::size_t hard_cap = cap * 64;
    std::size_t visited = 0;
    auto rec = [&](auto &&self, int d) -> void {
        if (visited > hard_cap)
            return;
        if (d == nd) {
            ++visited;
            auto s = shapeOf(current);
            if (!fits(s))
                return;
            const double util = levelUtilization(ba, level, s);
            if (util >= lo)
                found.emplace_back(util, current);
            return;
        }
        for (std::int64_t f : cachedDivisors(remaining[d])) {
            current[d] = f;
            if (!fits(shapeOf(current))) {
                current[d] = 1;
                break; // footprints are monotone in each factor
            }
            self(self, d + 1);
        }
        current[d] = 1;
    };
    rec(rec, 0);

    std::sort(found.begin(), found.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    if (found.size() > cap)
        found.resize(cap);
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(found.size());
    for (auto &f : found)
        out.push_back(std::move(f.second));
    return out;
}

/** Spatial combos over allowed dims, by descending PE utilization. */
std::vector<std::vector<std::int64_t>>
enumerateSpatial(const Workload &wl, DimSet allowed,
                 const std::vector<std::int64_t> &remaining,
                 std::int64_t fanout, double pe_util, std::size_t cap)
{
    const int nd = wl.numDims();
    std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> found;
    std::vector<std::int64_t> current(nd, 1);
    std::vector<DimId> dims;
    for (DimId d : allowed)
        if (remaining[d] > 1)
            dims.push_back(d);
    auto rec = [&](auto &&self, std::size_t i, std::int64_t prod) -> void {
        if (i == dims.size()) {
            if (static_cast<double>(prod) >=
                pe_util * static_cast<double>(fanout))
                found.emplace_back(prod, current);
            return;
        }
        for (std::int64_t f : cachedDivisors(remaining[dims[i]])) {
            if (satMul(prod, f) > fanout)
                break;
            current[dims[i]] = f;
            self(self, i + 1, prod * f);
        }
        current[dims[i]] = 1;
    };
    rec(rec, 0, 1);
    std::sort(found.begin(), found.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    if (found.size() > cap)
        found.resize(cap);
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(found.size());
    for (auto &f : found)
        out.push_back(std::move(f.second));
    return out;
}

/** Loop order with dim `inner` rotated innermost. */
std::vector<DimId>
rotatedOrder(int nd, DimId inner)
{
    std::vector<DimId> order;
    for (DimId d = 0; d < nd; ++d)
        if (d != inner)
            order.push_back(d);
    order.push_back(inner);
    return order;
}

} // anonymous namespace

DMazeMapper::DMazeMapper(DMazeOptions o, std::string display_name)
    : opts(o), displayName(std::move(display_name))
{
}

MapperResult
DMazeMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper." + displayName);
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nd = wl.numDims();

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, 1);

    StopPolicy defaults;
    defaults.maxEvals = opts.maxEvaluations;
    sc.setPolicy(sc.policy().withDefaults(defaults));

    SearchDriver drv(sc, eng, ba, displayName, opts.optimizeEdp);

    auto bail = [&](const std::string &why) {
        return toMapperResult(drv.finish(StopReason::Unsupported), why);
    };

    // dMazeRunner targets conventional accelerators: exactly three
    // levels (L1, L2, DRAM) with the only fanout at L2.
    if (ba.numLevels() != 3 || arch.levels[0].fanout != 1 ||
        arch.levels[1].fanout <= 1)
        return bail("architecture not supported (needs L1/L2/DRAM with a "
                    "single PE-grid fanout)");

    // The tool assumes symmetric convolution kernels (Section V-B2).
    bool has_r = false, has_s = false;
    std::int64_t r_sz = 0, s_sz = 0;
    for (DimId d = 0; d < nd; ++d) {
        if (wl.dimName(d) == "r") {
            has_r = true;
            r_sz = wl.dimSize(d);
        }
        if (wl.dimName(d) == "s") {
            has_s = true;
            s_sz = wl.dimSize(d);
        }
    }
    if (has_r && has_s && r_sz != s_sz)
        return bail("asymmetric convolution not supported");

    // Spatial candidates: without spatial reduction, only dims indexing
    // every output may be unrolled (others would reduce across PEs).
    DimSet allowed = DimSet::all(nd);
    if (!opts.allowSpatialReduction) {
        for (TensorId t : wl.outputs())
            allowed = allowed.intersect(wl.reuse(t).indexing);
    }
    const std::int64_t fanout = arch.levels[1].fanout;
    auto spatials = enumerateSpatial(wl, allowed, wl.shape(), fanout,
                                     opts.peUtil, 24);
    if (spatials.empty())
        return bail("no unrolling meets the PE utilization threshold");

    // The directed enumeration is a push-style nest; a GeneratorStream
    // adapts it into the driver's pull model. Emission order matches the
    // old serial loop exactly, so eval counts and results are unchanged.
    std::atomic<bool> l1_candidates_seen{false};
    std::atomic<bool> l2_candidates_seen{false};

    auto producer = [&](const GeneratorStream::Sink &sink) {
        for (const auto &sp : spatials) {
            std::vector<std::int64_t> rem = wl.shape();
            for (int d = 0; d < nd; ++d)
                rem[d] /= sp[d];

            std::vector<std::int64_t> base0(nd, 1);
            auto l1_tiles =
                enumerateTiles(ba, 0, base0, rem, opts.l1Util, 48);
            if (l1_tiles.empty())
                continue;
            l1_candidates_seen.store(true, std::memory_order_relaxed);

            for (const auto &t1 : l1_tiles) {
                std::vector<std::int64_t> rem2 = rem;
                std::vector<std::int64_t> base1(nd);
                for (int d = 0; d < nd; ++d) {
                    rem2[d] /= t1[d];
                    base1[d] = t1[d] * sp[d];
                }
                auto l2_tiles =
                    enumerateTiles(ba, 1, base1, rem2, opts.l2Util, 48);
                if (l2_tiles.empty())
                    continue;
                l2_candidates_seen.store(true, std::memory_order_relaxed);

                for (const auto &t2 : l2_tiles) {
                    for (DimId in2 = 0; in2 < nd; ++in2) {
                        for (DimId in3 = 0; in3 < nd; ++in3) {
                            Mapping m(3, nd);
                            for (int d = 0; d < nd; ++d) {
                                m.level(0).temporal[d] = t1[d];
                                m.level(1).spatial[d] = sp[d];
                                m.level(1).temporal[d] = t2[d];
                                m.level(2).temporal[d] =
                                    rem2[d] / t2[d];
                            }
                            m.level(1).order = rotatedOrder(nd, in2);
                            m.level(2).order = rotatedOrder(nd, in3);
                            if (!sink(std::move(m)))
                                return;
                        }
                    }
                }
            }
        }
    };

    DriverOutcome o;
    {
        // A plain enumeration: every candidate is interchangeable, so
        // the surrogate may prune ranked batch tails freely.
        GeneratorStream stream(producer, 2048,
                               SurrogatePolicy::RankAndPrune);
        o = drv.run(stream);
    } // joins the producer before the utilization flags are read

    std::string why;
    if (!o.found) {
        why = "no mapping meets the minimum utilization constraints";
        if (!l1_candidates_seen.load())
            why += " (L1 utilization)";
        else if (!l2_candidates_seen.load())
            why += " (L2 utilization)";
    }
    return toMapperResult(o, why);
}

double
DMazeMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::dmazeSpace(ba);
}

} // namespace sunstone
