/**
 * @file
 * Analytic estimates of the optimization-space sizes different tools
 * construct (Table I). These count the raw spaces *before* each tool's
 * pruning, using the factorization-count identity: the number of ordered
 * k-slot splits of n is multiplicative over prime powers.
 */

#ifndef SUNSTONE_MAPPERS_SPACE_SIZE_HH
#define SUNSTONE_MAPPERS_SPACE_SIZE_HH

#include "arch/arch.hh"
#include "workload/workload.hh"

namespace sunstone {
namespace space {

/** Number of temporal (non-DRAM-only) tiling slots = storage levels. */
int temporalSlots(const ArchSpec &arch);

/** Number of spatial slots = levels with fanout > 1. */
int spatialSlots(const ArchSpec &arch);

/**
 * Full Timeloop-style space: every dim split over every temporal and
 * spatial slot, times a full permutation per level.
 */
double timeloopSpace(const BoundArch &ba);

/** CoSA constructs the same space as Timeloop before relaxation. */
double cosaSpace(const BoundArch &ba);

/**
 * Marvel decouples off-chip from on-chip: split-into-2 (off-chip vs
 * on-chip) times the on-chip space over the remaining slots.
 */
double marvelSpace(const BoundArch &ba);

/**
 * Interstellar fixes spatial unrolling to the channel dims, removing the
 * spatial choice but keeping full temporal splits and orders.
 */
double interstellarSpace(const BoundArch &ba);

/**
 * dMazeRunner enumerates temporal splits with a handful of analyzed
 * orders instead of full permutations.
 */
double dmazeSpace(const BoundArch &ba);

} // namespace space
} // namespace sunstone

#endif // SUNSTONE_MAPPERS_SPACE_SIZE_HH
