#include "mappers/exhaustive_mapper.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "common/timer.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/** Enumerates factor assignments over the (level, temporal|spatial)
 *  slots for every dim, then every loop permutation per level. */
class Enumerator
{
  public:
    Enumerator(const BoundArch &ba, EvalEngine &eng, bool optimize_edp,
               obs::ConvergenceTrajectory *traj)
        : ba(ba), wl(ba.workload()), eng(eng), ctx(eng.context(ba)),
          nl(ba.numLevels()), nd(wl.numDims()), optimizeEdp(optimize_edp),
          traj(traj)
    {
        for (int l = 0; l < nl; ++l) {
            slots.push_back({l, false});
            if (ba.arch().levels[l].fanout > 1)
                slots.push_back({l, true});
        }
    }

    MapperResult
    run()
    {
        m = Mapping(nl, nd);
        assignDim(0);
        flush();
        MapperResult r;
        r.mappingsEvaluated = evaluated;
        if (best_metric < std::numeric_limits<double>::infinity()) {
            r.found = true;
            r.mapping = best;
            if (traj)
                traj->record(evaluated, best_cost.totalEnergyPj,
                             best_cost.edp, best_metric);
            r.cost = std::move(best_cost);
        } else {
            r.invalid = true;
            r.invalidReason = "no valid mapping exists";
        }
        return r;
    }

  private:
    struct Slot
    {
        int level;
        bool spatial;
    };

    void
    assignDim(int d)
    {
        if (d == nd) {
            permuteLevel(1);
            return;
        }
        splitRec(d, 0, wl.dimSize(d));
    }

    void
    splitRec(int d, std::size_t slot, std::int64_t rem)
    {
        if (slot == slots.size() - 1) {
            apply(slots[slot], d, rem);
            assignDim(d + 1);
            apply(slots[slot], d, 1);
            return;
        }
        for (std::int64_t f : cachedDivisors(rem)) {
            apply(slots[slot], d, f);
            splitRec(d, slot + 1, rem / f);
            apply(slots[slot], d, 1);
        }
    }

    void
    apply(const Slot &s, int d, std::int64_t f)
    {
        if (s.spatial)
            m.level(s.level).spatial[d] = f;
        else
            m.level(s.level).temporal[d] = f;
    }

    /** Loop orders: level 0's order never affects cost; permute 1..nl-1. */
    void
    permuteLevel(int l)
    {
        if (l == nl) {
            evaluate();
            return;
        }
        std::vector<DimId> perm(nd);
        for (int d = 0; d < nd; ++d)
            perm[d] = d;
        std::sort(perm.begin(), perm.end());
        do {
            m.level(l).order = perm;
            permuteLevel(l + 1);
        } while (std::next_permutation(perm.begin(), perm.end()));
    }

    /** Buffers the current mapping; batches amortize engine overhead
     *  and let the evaluations run across the shared pool. */
    void
    evaluate()
    {
        pending.push_back(m);
        if (pending.size() >= kBatch)
            flush();
    }

    void
    flush()
    {
        if (pending.empty())
            return;
        eng.evaluateBatch(ctx, pending, {},
                          EvalEngine::CachePolicy::UseCache, pendingRes);
        // Results are consumed in enumeration order, so the running best
        // and the convergence trajectory match the serial scan exactly.
        for (std::size_t i = 0; i < pending.size(); ++i) {
            CostResult &cr = pendingRes[i];
            ++evaluated;
            if (!cr.valid)
                continue;
            const double metric =
                optimizeEdp ? cr.edp : cr.totalEnergyPj;
            if (metric < best_metric) {
                best_metric = metric;
                best = pending[i];
                if (traj)
                    traj->record(evaluated, cr.totalEnergyPj, cr.edp,
                                 metric);
                best_cost = std::move(cr);
            }
        }
        pending.clear();
    }

    const BoundArch &ba;
    const Workload &wl;
    EvalEngine &eng;
    const EvalEngine::Context ctx;
    const int nl;
    const int nd;
    const bool optimizeEdp;
    obs::ConvergenceTrajectory *const traj;
    static constexpr std::size_t kBatch = 64;
    std::vector<Slot> slots;
    std::vector<Mapping> pending;
    std::vector<CostResult> pendingRes;
    Mapping m;
    Mapping best;
    CostResult best_cost;
    double best_metric = std::numeric_limits<double>::infinity();
    std::int64_t evaluated = 0;
};

} // anonymous namespace

ExhaustiveMapper::ExhaustiveMapper(ExhaustiveOptions o) : opts(o) {}

MapperResult
ExhaustiveMapper::optimize(const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper.exhaustive");
    Timer timer;
    const double est = spaceSizeEstimate(ba);
    if (est > opts.maxSpace)
        SUNSTONE_FATAL("exhaustive search space too large (", est,
                       " mappings, cap ", opts.maxSpace, ")");
    EvalEngine localEngine;
    EvalEngine &eng = opts.engine ? *opts.engine : localEngine;
    obs::ConvergenceTrajectory *traj =
        opts.convergence ? &opts.convergence->start("exhaustive")
                         : nullptr;
    Enumerator e(ba, eng, opts.optimizeEdp, traj);
    MapperResult r = e.run();
    r.seconds = timer.seconds();
    return r;
}

double
ExhaustiveMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
