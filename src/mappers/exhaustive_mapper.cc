#include "mappers/exhaustive_mapper.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_utils.hh"
#include "mappers/space_size.hh"
#include "model/eval_engine.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/**
 * Enumerates factor assignments over the (level, temporal|spatial)
 * slots for every dim, then every loop permutation per level, pushing
 * each complete mapping into a GeneratorStream sink. The driver owns
 * batching, best tracking, and accounting; emission order matches the
 * old serial scan exactly.
 */
class ExhaustiveProducer
{
  public:
    explicit ExhaustiveProducer(const BoundArch &ba)
        : ba(ba), wl(ba.workload()), nl(ba.numLevels()), nd(wl.numDims())
    {
        for (int l = 0; l < nl; ++l) {
            slots.push_back({l, false});
            if (ba.arch().levels[l].fanout > 1)
                slots.push_back({l, true});
        }
    }

    void
    run(const GeneratorStream::Sink &sink)
    {
        sink_ = &sink;
        stopped = false;
        m = Mapping(nl, nd);
        assignDim(0);
    }

  private:
    struct Slot
    {
        int level;
        bool spatial;
    };

    void
    assignDim(int d)
    {
        if (stopped)
            return;
        if (d == nd) {
            permuteLevel(1);
            return;
        }
        splitRec(d, 0, wl.dimSize(d));
    }

    void
    splitRec(int d, std::size_t slot, std::int64_t rem)
    {
        if (stopped)
            return;
        if (slot == slots.size() - 1) {
            apply(slots[slot], d, rem);
            assignDim(d + 1);
            apply(slots[slot], d, 1);
            return;
        }
        for (std::int64_t f : cachedDivisors(rem)) {
            apply(slots[slot], d, f);
            splitRec(d, slot + 1, rem / f);
            apply(slots[slot], d, 1);
            if (stopped)
                return;
        }
    }

    void
    apply(const Slot &s, int d, std::int64_t f)
    {
        if (s.spatial)
            m.level(s.level).spatial[d] = f;
        else
            m.level(s.level).temporal[d] = f;
    }

    /** Loop orders: level 0's order never affects cost; permute 1..nl-1. */
    void
    permuteLevel(int l)
    {
        if (stopped)
            return;
        if (l == nl) {
            if (!(*sink_)(Mapping(m)))
                stopped = true;
            return;
        }
        std::vector<DimId> perm(nd);
        for (int d = 0; d < nd; ++d)
            perm[d] = d;
        std::sort(perm.begin(), perm.end());
        do {
            m.level(l).order = perm;
            permuteLevel(l + 1);
            if (stopped)
                return;
        } while (std::next_permutation(perm.begin(), perm.end()));
    }

    const BoundArch &ba;
    const Workload &wl;
    const int nl;
    const int nd;
    std::vector<Slot> slots;
    const GeneratorStream::Sink *sink_ = nullptr;
    bool stopped = false;
    Mapping m;
};

} // anonymous namespace

ExhaustiveMapper::ExhaustiveMapper(ExhaustiveOptions o) : opts(o) {}

MapperResult
ExhaustiveMapper::optimize(SearchContext &sc, const BoundArch &ba)
{
    SUNSTONE_TRACE_SPAN("mapper.exhaustive");
    const double est = spaceSizeEstimate(ba);
    if (est > opts.maxSpace)
        SUNSTONE_FATAL("exhaustive search space too large (", est,
                       " mappings, cap ", opts.maxSpace, ")");

    if (!sc.convergence() && opts.convergence)
        sc.setConvergence(opts.convergence);
    EvalEngine &eng = resolveEngine(sc, opts.engine, 1);

    SearchDriver drv(sc, eng, ba, "exhaustive", opts.optimizeEdp);
    ExhaustiveProducer producer(ba);
    // Exhaustive sweeps stay exhaustive only with the surrogate off;
    // with it on, pruning trades completeness for time-to-quality,
    // which is exactly what the flag requests.
    GeneratorStream stream(
        [&producer](const GeneratorStream::Sink &sink) {
            producer.run(sink);
        },
        2048, SurrogatePolicy::RankAndPrune);
    DriverOutcome o = drv.run(stream);
    return toMapperResult(o, o.found ? "" : "no valid mapping exists");
}

double
ExhaustiveMapper::spaceSizeEstimate(const BoundArch &ba) const
{
    return space::timeloopSpace(ba);
}

} // namespace sunstone
