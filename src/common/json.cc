/**
 * @file
 * Recursive-descent JSON reader backing JsonValue/parseJson. Scope is
 * deliberately small — enough of RFC 8259 for the documents this
 * repository writes itself (checkpoints, stats files): no \uXXXX
 * surrogate pairs (escapes decode to the raw code unit clamped to one
 * byte), no duplicate-key policing, 256-deep nesting cap.
 */

#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/parse.hh"

namespace sunstone {

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;
    int depth = 0;

    static constexpr int kMaxDepth = 256;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (err.empty()) {
            std::ostringstream os;
            os << msg << " at byte " << pos;
            err = os.str();
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                return fail("dangling escape");
            char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos + i];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                pos += 4;
                // We only ever emit \u00XX (jsonEscape); decode the low
                // byte and drop anything wider rather than building a
                // UTF-8 encoder nothing needs.
                out += static_cast<char>(v & 0xff);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos == start || (pos == start + 1 && text[start] == '-'))
            return fail("bad number");
        out.kind = JsonValue::Kind::Number;
        out.raw = text.substr(start, pos - start);
        out.number = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        bool ok = false;
        switch (text[pos]) {
        case '{': {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                ok = true;
                break;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.fields.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (!expect('}'))
                    return false;
                ok = true;
                break;
            }
            break;
        }
        case '[': {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                ok = true;
                break;
            }
            while (true) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (!expect(']'))
                    return false;
                ok = true;
                break;
            }
            break;
        }
        case '"':
            out.kind = JsonValue::Kind::String;
            ok = parseString(out.str);
            break;
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            ok = literal("true", 4);
            break;
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            ok = literal("false", 5);
            break;
        case 'n':
            out.kind = JsonValue::Kind::Null;
            ok = literal("null", 4);
            break;
        default:
            ok = parseNumber(out);
            break;
        }
        --depth;
        return ok;
    }
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : fields)
        if (k == name)
            return &v;
    return nullptr;
}

std::int64_t
JsonValue::asInt(std::int64_t dflt) const
{
    if (kind != Kind::Number)
        return dflt;
    std::int64_t v = 0;
    if (tryParseInt64(raw, v))
        return v;
    return static_cast<std::int64_t>(number);
}

double
JsonValue::asDouble(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

std::string
JsonValue::asString(const std::string &dflt) const
{
    return kind == Kind::String ? str : dflt;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

std::uint64_t
JsonValue::asHexU64(std::uint64_t dflt) const
{
    if (kind != Kind::String || str.size() < 3 || str[0] != '0' ||
        (str[1] != 'x' && str[1] != 'X'))
        return dflt;
    std::uint64_t v = 0;
    for (std::size_t i = 2; i < str.size(); ++i) {
        char c = str[i];
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return dflt;
    }
    return v;
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    switch (kind) {
    case Kind::Null:
        os << "null";
        break;
    case Kind::Bool:
        os << (boolean ? "true" : "false");
        break;
    case Kind::Number:
        os << raw;
        break;
    case Kind::String:
        os << '"' << jsonEscape(str) << '"';
        break;
    case Kind::Array:
        os << "[";
        for (std::size_t i = 0; i < items.size(); ++i)
            os << (i ? ", " : "") << items[i].dump();
        os << "]";
        break;
    case Kind::Object:
        os << "{";
        for (std::size_t i = 0; i < fields.size(); ++i)
            os << (i ? ", " : "") << '"' << jsonEscape(fields[i].first)
               << "\": " << fields[i].second.dump();
        os << "}";
        break;
    }
    return os.str();
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    Parser p(text);
    out = JsonValue{};
    if (!p.parseValue(out)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err) {
            std::ostringstream os;
            os << "trailing content at byte " << p.pos;
            *err = os.str();
        }
        return false;
    }
    return true;
}

std::string
jsonHexU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace sunstone
