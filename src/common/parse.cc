#include "common/parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace sunstone {

bool
tryParseInt64(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE)
        return false;
    if (end != s.c_str() + s.size())
        return false; // trailing garbage (or no digits at all)
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
tryParseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE)
        return false;
    if (end != s.c_str() + s.size())
        return false; // trailing garbage (or no digits at all)
    if (!std::isfinite(v))
        return false; // "inf"/"nan" are never meaningful option values
    out = v;
    return true;
}

} // namespace sunstone
