#include "common/parse.hh"

#include <cerrno>
#include <cstdlib>

namespace sunstone {

bool
tryParseInt64(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE)
        return false;
    if (end != s.c_str() + s.size())
        return false; // trailing garbage (or no digits at all)
    out = static_cast<std::int64_t>(v);
    return true;
}

} // namespace sunstone
