#include "common/math_utils.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/logging.hh"

namespace sunstone {

std::vector<std::int64_t>
divisors(std::int64_t n)
{
    SUNSTONE_ASSERT(n >= 1, "divisors() needs n >= 1, got ", n);
    std::vector<std::int64_t> low, high;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

namespace {

/**
 * Interning table behind cachedDivisors() / cachedPrimeFactors().
 * Entries are unique_ptrs so a returned reference survives rehashing,
 * and nothing is ever evicted, so references stay valid for the process
 * lifetime. A read acquires the shared lock only; the exclusive lock is
 * taken just to insert. Past kMaxEntries distinct keys (adversarial
 * value churn) new results are handed out from a per-thread ring whose
 * depth comfortably exceeds any nesting of factor loops in the codebase
 * (bounded by the dimension count).
 */
template <typename V>
struct InternTable
{
    static constexpr std::size_t kMaxEntries = 1 << 16;

    std::shared_mutex mtx;
    std::unordered_map<std::int64_t, std::unique_ptr<const V>> map;

    template <typename Fn>
    const V &
    get(std::int64_t n, Fn &&compute)
    {
        {
            std::shared_lock<std::shared_mutex> lk(mtx);
            auto it = map.find(n);
            if (it != map.end())
                return *it->second;
        }
        auto computed = std::make_unique<const V>(compute(n));
        {
            std::unique_lock<std::shared_mutex> lk(mtx);
            if (map.size() < kMaxEntries) {
                auto [it, inserted] = map.emplace(n, std::move(computed));
                return *it->second;
            }
        }
        thread_local std::array<V, 64> overflow;
        thread_local std::size_t next = 0;
        auto &slot = overflow[next];
        next = (next + 1) % overflow.size();
        slot = *computed;
        return slot;
    }

    std::size_t
    size()
    {
        std::shared_lock<std::shared_mutex> lk(mtx);
        return map.size();
    }
};

InternTable<std::vector<std::int64_t>> &
divisorCache()
{
    static InternTable<std::vector<std::int64_t>> cache;
    return cache;
}

InternTable<std::vector<std::pair<std::int64_t, int>>> &
primeFactorCache()
{
    static InternTable<std::vector<std::pair<std::int64_t, int>>> cache;
    return cache;
}

} // anonymous namespace

const std::vector<std::int64_t> &
cachedDivisors(std::int64_t n)
{
    return divisorCache().get(n,
                              [](std::int64_t v) { return divisors(v); });
}

std::size_t
divisorCacheSize()
{
    return divisorCache().size();
}

const std::vector<std::pair<std::int64_t, int>> &
cachedPrimeFactors(std::int64_t n)
{
    return primeFactorCache().get(
        n, [](std::int64_t v) { return primeFactors(v); });
}

std::vector<std::pair<std::int64_t, int>>
primeFactors(std::int64_t n)
{
    SUNSTONE_ASSERT(n >= 1, "primeFactors() needs n >= 1, got ", n);
    std::vector<std::pair<std::int64_t, int>> out;
    for (std::int64_t p = 2; p * p <= n; ++p) {
        if (n % p == 0) {
            int e = 0;
            while (n % p == 0) {
                n /= p;
                ++e;
            }
            out.emplace_back(p, e);
        }
    }
    if (n > 1)
        out.emplace_back(n, 1);
    return out;
}

namespace {

void
splitRec(std::int64_t rem, int k, std::vector<std::int64_t> &cur,
         std::vector<std::vector<std::int64_t>> &out)
{
    if (k == 1) {
        cur.push_back(rem);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (std::int64_t d : divisors(rem)) {
        cur.push_back(d);
        splitRec(rem / d, k - 1, cur, out);
        cur.pop_back();
    }
}

} // anonymous namespace

std::vector<std::vector<std::int64_t>>
factorSplits(std::int64_t n, int k)
{
    SUNSTONE_ASSERT(k >= 1, "factorSplits() needs k >= 1, got ", k);
    std::vector<std::vector<std::int64_t>> out;
    std::vector<std::int64_t> cur;
    splitRec(n, k, cur, out);
    return out;
}

std::int64_t
countFactorSplits(std::int64_t n, int k)
{
    // The number of ordered k-splits is multiplicative over prime powers:
    // distributing exponent e over k slots gives C(e + k - 1, k - 1).
    std::int64_t total = 1;
    for (auto [p, e] : primeFactors(n)) {
        (void)p;
        // Compute C(e + k - 1, k - 1) iteratively.
        std::int64_t c = 1;
        for (int i = 1; i <= e; ++i)
            c = c * (k - 1 + i) / i;
        total = satMul(total, c);
    }
    return total;
}

std::int64_t
smallestDivisorAtLeast(std::int64_t n, std::int64_t lo)
{
    for (std::int64_t d : cachedDivisors(n))
        if (d >= lo)
            return d;
    return n;
}

std::int64_t
largestDivisorAtMost(std::int64_t n, std::int64_t hi)
{
    std::int64_t best = 1;
    for (std::int64_t d : cachedDivisors(n)) {
        if (d <= hi)
            best = d;
        else
            break;
    }
    return best;
}

std::int64_t
nextDivisor(std::int64_t n, std::int64_t d)
{
    const auto &divs = cachedDivisors(n);
    auto it = std::upper_bound(divs.begin(), divs.end(), d);
    return it == divs.end() ? 0 : *it;
}

} // namespace sunstone
