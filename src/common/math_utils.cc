#include "common/math_utils.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace sunstone {

std::vector<std::int64_t>
divisors(std::int64_t n)
{
    SUNSTONE_ASSERT(n >= 1, "divisors() needs n >= 1, got ", n);
    std::vector<std::int64_t> low, high;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

std::vector<std::pair<std::int64_t, int>>
primeFactors(std::int64_t n)
{
    SUNSTONE_ASSERT(n >= 1, "primeFactors() needs n >= 1, got ", n);
    std::vector<std::pair<std::int64_t, int>> out;
    for (std::int64_t p = 2; p * p <= n; ++p) {
        if (n % p == 0) {
            int e = 0;
            while (n % p == 0) {
                n /= p;
                ++e;
            }
            out.emplace_back(p, e);
        }
    }
    if (n > 1)
        out.emplace_back(n, 1);
    return out;
}

namespace {

void
splitRec(std::int64_t rem, int k, std::vector<std::int64_t> &cur,
         std::vector<std::vector<std::int64_t>> &out)
{
    if (k == 1) {
        cur.push_back(rem);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (std::int64_t d : divisors(rem)) {
        cur.push_back(d);
        splitRec(rem / d, k - 1, cur, out);
        cur.pop_back();
    }
}

} // anonymous namespace

std::vector<std::vector<std::int64_t>>
factorSplits(std::int64_t n, int k)
{
    SUNSTONE_ASSERT(k >= 1, "factorSplits() needs k >= 1, got ", k);
    std::vector<std::vector<std::int64_t>> out;
    std::vector<std::int64_t> cur;
    splitRec(n, k, cur, out);
    return out;
}

std::int64_t
countFactorSplits(std::int64_t n, int k)
{
    // The number of ordered k-splits is multiplicative over prime powers:
    // distributing exponent e over k slots gives C(e + k - 1, k - 1).
    std::int64_t total = 1;
    for (auto [p, e] : primeFactors(n)) {
        (void)p;
        // Compute C(e + k - 1, k - 1) iteratively.
        std::int64_t c = 1;
        for (int i = 1; i <= e; ++i)
            c = c * (k - 1 + i) / i;
        total = satMul(total, c);
    }
    return total;
}

std::int64_t
smallestDivisorAtLeast(std::int64_t n, std::int64_t lo)
{
    for (std::int64_t d : divisors(n))
        if (d >= lo)
            return d;
    return n;
}

std::int64_t
largestDivisorAtMost(std::int64_t n, std::int64_t hi)
{
    std::int64_t best = 1;
    for (std::int64_t d : divisors(n)) {
        if (d <= hi)
            best = d;
        else
            break;
    }
    return best;
}

std::int64_t
nextDivisor(std::int64_t n, std::int64_t d)
{
    auto divs = divisors(n);
    auto it = std::upper_bound(divs.begin(), divs.end(), d);
    return it == divs.end() ? 0 : *it;
}

std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    SUNSTONE_ASSERT(a >= 0 && b >= 0, "satMul() expects non-negative args");
    if (a == 0 || b == 0)
        return 0;
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();
    if (a > max / b)
        return max;
    return a * b;
}

} // namespace sunstone
