#include "common/thread_pool.hh"

#include <atomic>

namespace sunstone {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvTask.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        queue.push_back(std::move(task));
    }
    cvTask.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvIdle.wait(lk, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvTask.wait(lk, [this] { return stopping || !queue.empty(); });
            if (stopping && queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (pool.size() <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    const unsigned workers = pool.size();
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&next, n, &fn] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    pool.waitIdle();
}

} // namespace sunstone
