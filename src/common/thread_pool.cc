#include "common/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <string>

#include "obs/metrics.hh"
#include "obs/thread_registry.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/** Registry lookups take a mutex; cache the counter reference. */
obs::Counter &
poolTaskCounter()
{
    static obs::Counter &c = obs::metrics().counter("pool.tasks");
    return c;
}

} // anonymous namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvTask.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        queue.push_back(std::move(task));
    }
    cvTask.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvIdle.wait(lk, [this] { return queue.empty() && active == 0; });
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (queue.empty())
            return false;
        task = std::move(queue.front());
        queue.pop_front();
        ++active;
    }
    {
        // Helping waits run stolen tasks on the waiter's own thread, so
        // the span lands on — and is attributed to — that thread.
        SUNSTONE_TRACE_SPAN("pool.task");
        task();
    }
    poolTaskCounter().add(1);
    {
        std::lock_guard<std::mutex> lk(mtx);
        --active;
        if (queue.empty() && active == 0)
            cvIdle.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(unsigned index)
{
    obs::registerThisThread("worker-" + std::to_string(index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvTask.wait(lk, [this] { return stopping || !queue.empty(); });
            if (stopping && queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        {
            SUNSTONE_TRACE_SPAN("pool.task");
            task();
        }
        poolTaskCounter().add(1);
        {
            std::lock_guard<std::mutex> lk(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

void
TaskGroup::run(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        ++pending;
    }
    pool.submit([this, fn = std::move(fn)] {
        fn();
        {
            // Notify while holding mtx: a waiter that observes pending==0
            // may destroy this TaskGroup (e.g. the stack-allocated group in
            // parallelFor) as soon as it can lock mtx, so the cv must not be
            // touched after the lock is released.
            std::lock_guard<std::mutex> lk(mtx);
            --pending;
            cv.notify_all();
        }
    });
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mtx);
            if (pending == 0)
                return;
        }
        // Help: run queued tasks (possibly other groups') while waiting.
        if (pool.tryRunOne())
            continue;
        // Queue empty but our tasks still running elsewhere: nap briefly.
        // The timeout covers the race where a running task enqueues new
        // work between our empty-queue check and the wait.
        std::unique_lock<std::mutex> lk(mtx);
        cv.wait_for(lk, std::chrono::milliseconds(1),
                    [this] { return pending == 0; });
        if (pending == 0)
            return;
    }
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (pool.size() <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto runner = [&next, n, &fn] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            fn(i);
        }
    };
    TaskGroup group(pool);
    const std::size_t helpers =
        std::min<std::size_t>(pool.size(), n - 1);
    for (std::size_t w = 0; w < helpers; ++w)
        group.run(runner);
    runner(); // the caller participates, guaranteeing progress
    group.wait();
}

} // namespace sunstone
