/**
 * @file
 * Checked text-to-number parsing. std::stoll throws on malformed or
 * overflowing input, which turns a typo in a mapping/workload file into
 * an uncaught exception; these helpers report failure through the
 * return value so callers can raise a proper fatal() with context.
 */

#ifndef SUNSTONE_COMMON_PARSE_HH
#define SUNSTONE_COMMON_PARSE_HH

#include <cstdint>
#include <string>

namespace sunstone {

/**
 * Parses a whole string as a signed 64-bit decimal integer.
 *
 * @param s text to parse (leading/trailing whitespace not allowed)
 * @param out receives the value on success
 * @return false when `s` is empty, contains trailing garbage, or does
 *         not fit an int64
 */
bool tryParseInt64(const std::string &s, std::int64_t &out);

/**
 * Parses a whole string as a finite double (decimal or scientific).
 *
 * @param s text to parse (leading/trailing whitespace not allowed)
 * @param out receives the value on success
 * @return false when `s` is empty, contains trailing garbage, overflows,
 *         or spells a non-finite value ("inf", "nan")
 */
bool tryParseDouble(const std::string &s, double &out);

} // namespace sunstone

#endif // SUNSTONE_COMMON_PARSE_HH
