#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sunstone {
namespace simd {

namespace {

/** -1 unset, 0 disabled, 1 enabled. */
std::atomic<int> g_runtime{-1};

bool
envDefault()
{
    // SUNSTONE_SIMD=off|0|scalar|false disables the packed kernels at
    // process startup; anything else (including unset) leaves them on.
    const char *v = std::getenv("SUNSTONE_SIMD");
    if (!v)
        return true;
    return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
             std::strcmp(v, "scalar") == 0 || std::strcmp(v, "false") == 0);
}

} // anonymous namespace

bool
simdRuntimeEnabled()
{
    int s = g_runtime.load(std::memory_order_relaxed);
    if (s < 0) {
        s = envDefault() ? 1 : 0;
        g_runtime.store(s, std::memory_order_relaxed);
    }
    return s == 1;
}

void
setSimdRuntimeEnabled(bool enabled)
{
    g_runtime.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const char *
activeBackendDescription()
{
    return simdRuntimeEnabled() ? vec4d::backendName() : "scalar (runtime)";
}

} // namespace simd
} // namespace sunstone
