/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * panic()  - internal invariant violated; this is a bug in the library.
 *            Aborts (so a debugger or core dump can capture state).
 * fatal()  - the *user* asked for something impossible (bad workload
 *            description, invalid architecture, ...). Exits with code 1.
 * warn()   - something questionable happened but execution continues.
 * inform() - status messages.
 * debug()  - chatty diagnostics, off by default.
 *
 * Verbosity is a global LogLevel, initialized from the SUNSTONE_LOG
 * environment variable ("debug", "info", "warn", or "silent"; default
 * "info") and adjustable at runtime via setLogLevel(). Messages carry a
 * wall-clock [HH:MM:SS.mmm] timestamp. panic/fatal banners always print.
 *
 * setQuiet(true/false) is kept as a shim over setLogLevel(Silent/Info)
 * for the benchmark tools that predate log levels.
 */

#ifndef SUNSTONE_COMMON_LOGGING_HH
#define SUNSTONE_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace sunstone {

/** Global verbosity, most to least verbose. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/**
 * Thrown by fatal() instead of exiting while a ScopedFatalCapture is
 * active on the calling thread. The message includes the source
 * location the banner would have printed.
 */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * While alive on a thread, fatal() on that thread throws FatalError
 * instead of terminating the process. This is how a long-running
 * service (the scheduler session's request loop) turns a bad *request*
 * — unparsable einsum, unknown architecture — into an error response
 * without dying; panic() still aborts, since that is a library bug.
 * Captures nest; the process-exit behavior returns when the outermost
 * scope ends. Thread-local: worker threads spawned inside a captured
 * region keep the default exit-on-fatal behavior.
 */
class ScopedFatalCapture
{
  public:
    ScopedFatalCapture();
    ~ScopedFatalCapture();

    ScopedFatalCapture(const ScopedFatalCapture &) = delete;
    ScopedFatalCapture &operator=(const ScopedFatalCapture &) = delete;

    /** Whether a capture is active on the calling thread. */
    static bool active();
};

namespace detail {

/** Terminates the process after printing a panic banner. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates the process after printing a fatal banner. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning banner. */
void warnImpl(const std::string &msg);

/** Prints an informational message. */
void informImpl(const std::string &msg);

/** Prints a debug diagnostic. */
void debugImpl(const std::string &msg);

/** Folds a parameter pack into a string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Sets the global verbosity threshold. */
void setLogLevel(LogLevel level);

/** @return the global verbosity threshold. */
LogLevel logLevel();

/**
 * Legacy knob: suppress warn()/inform() output (used by benchmarks).
 * Equivalent to setLogLevel(Silent) / setLogLevel(Info).
 */
void setQuiet(bool quiet);

/** @return whether warn()/inform() output is suppressed. */
bool quiet();

} // namespace sunstone

#define SUNSTONE_PANIC(...)                                                 \
    ::sunstone::detail::panicImpl(__FILE__, __LINE__,                       \
                                  ::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_FATAL(...)                                                 \
    ::sunstone::detail::fatalImpl(__FILE__, __LINE__,                       \
                                  ::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_WARN(...)                                                  \
    ::sunstone::detail::warnImpl(::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_INFORM(...)                                                \
    ::sunstone::detail::informImpl(::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_DEBUG(...)                                                 \
    ::sunstone::detail::debugImpl(::sunstone::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define SUNSTONE_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SUNSTONE_PANIC("assertion failed: " #cond " ", __VA_ARGS__);    \
        }                                                                   \
    } while (0)

#endif // SUNSTONE_COMMON_LOGGING_HH
