/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * panic()  - internal invariant violated; this is a bug in the library.
 *            Aborts (so a debugger or core dump can capture state).
 * fatal()  - the *user* asked for something impossible (bad workload
 *            description, invalid architecture, ...). Exits with code 1.
 * warn()   - something questionable happened but execution continues.
 * inform() - status messages.
 */

#ifndef SUNSTONE_COMMON_LOGGING_HH
#define SUNSTONE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace sunstone {

namespace detail {

/** Terminates the process after printing a panic banner. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates the process after printing a fatal banner. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning banner. */
void warnImpl(const std::string &msg);

/** Prints an informational message. */
void informImpl(const std::string &msg);

/** Folds a parameter pack into a string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Global knob: suppress warn()/inform() output (used by benchmarks). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() output is suppressed. */
bool quiet();

} // namespace sunstone

#define SUNSTONE_PANIC(...)                                                 \
    ::sunstone::detail::panicImpl(__FILE__, __LINE__,                       \
                                  ::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_FATAL(...)                                                 \
    ::sunstone::detail::fatalImpl(__FILE__, __LINE__,                       \
                                  ::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_WARN(...)                                                  \
    ::sunstone::detail::warnImpl(::sunstone::detail::concat(__VA_ARGS__))

#define SUNSTONE_INFORM(...)                                                \
    ::sunstone::detail::informImpl(::sunstone::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define SUNSTONE_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SUNSTONE_PANIC("assertion failed: " #cond " ", __VA_ARGS__);    \
        }                                                                   \
    } while (0)

#endif // SUNSTONE_COMMON_LOGGING_HH
