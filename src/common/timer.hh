/**
 * @file
 * Wall-clock stopwatch used to report time-to-solution for every mapper.
 */

#ifndef SUNSTONE_COMMON_TIMER_HH
#define SUNSTONE_COMMON_TIMER_HH

#include <chrono>

namespace sunstone {

/** Simple monotonic stopwatch started at construction. */
class Timer
{
  public:
    Timer() : start(Clock::now()) {}

    /** Resets the stopwatch to now. */
    void reset() { start = Clock::now(); }

    /** @return elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** @return elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace sunstone

#endif // SUNSTONE_COMMON_TIMER_HH
