/**
 * @file
 * A minimal fixed-size thread pool used to parallelize independent mapper
 * evaluations (the paper runs every tool with 8 threads).
 */

#ifndef SUNSTONE_COMMON_THREAD_POOL_HH
#define SUNSTONE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sunstone {

/**
 * Fixed-size worker pool. Tasks are void() callables; waitIdle() blocks
 * until every submitted task has finished. The pool joins its workers on
 * destruction.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Blocks until the queue is empty and all workers are idle. */
    void waitIdle();

    /** @return the number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvIdle;
    unsigned active = 0;
    bool stopping = false;
};

/**
 * Runs fn(i) for i in [0, n) across the pool and waits for completion.
 * Falls back to a serial loop when the pool has a single worker.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace sunstone

#endif // SUNSTONE_COMMON_THREAD_POOL_HH
