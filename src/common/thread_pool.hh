/**
 * @file
 * A minimal fixed-size thread pool used to parallelize independent mapper
 * evaluations (the paper runs every tool with 8 threads), plus a
 * TaskGroup for scoped fork/join on a *shared* pool.
 *
 * The pool is designed to be shared by nested searches (the network
 * scheduler runs one Sunstone search per unique layer, and each search
 * parallelizes its own beam expansion on the same workers). Two rules
 * make that safe:
 *  - waiting on a TaskGroup is a *helping* wait: the waiter drains tasks
 *    from the pool queue while its group is outstanding, so a worker
 *    blocked on a nested join still makes global progress (no deadlock
 *    even with a single worker);
 *  - parallelFor() waits on its own group, never on global pool idleness,
 *    so concurrent submitters do not wait for each other's tasks.
 */

#ifndef SUNSTONE_COMMON_THREAD_POOL_HH
#define SUNSTONE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sunstone {

/**
 * Fixed-size worker pool. Tasks are void() callables; waitIdle() blocks
 * until every submitted task has finished. The pool joins its workers on
 * destruction.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues a task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Blocks until the queue is empty and all workers are idle. Only
     * meaningful when the caller is the sole submitter; scoped joins
     * should use TaskGroup instead.
     */
    void waitIdle();

    /**
     * Pops one queued task and runs it on the *calling* thread.
     * @return false when the queue was empty.
     */
    bool tryRunOne();

    /** @return the number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

  private:
    void workerLoop(unsigned index);

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cvTask;
    std::condition_variable cvIdle;
    unsigned active = 0;
    bool stopping = false;
};

/**
 * A scoped set of tasks on a shared pool. wait() returns when every task
 * run() through this group has finished, independent of other work on the
 * pool. The waiting thread helps execute queued tasks, so nested groups
 * (a pool task that itself creates and waits on a group) cannot deadlock.
 * The destructor waits.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool(pool) {}
    ~TaskGroup() { wait(); }

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submits a task belonging to this group. */
    void run(std::function<void()> fn);

    /** Helping join: blocks until all of this group's tasks finished. */
    void wait();

  private:
    ThreadPool &pool;
    std::mutex mtx;
    std::condition_variable cv;
    std::size_t pending = 0;
};

/**
 * Runs fn(i) for i in [0, n) across the pool and waits for completion.
 * The calling thread participates, the wait is group-scoped (safe with
 * concurrent submitters), and the call nests safely when the caller is
 * itself a pool worker. Falls back to a serial loop when the pool has a
 * single worker.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace sunstone

#endif // SUNSTONE_COMMON_THREAD_POOL_HH
