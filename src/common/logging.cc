#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace sunstone {

namespace {

std::atomic<bool> gQuiet{false};

} // anonymous namespace

void
setQuiet(bool quiet)
{
    gQuiet.store(quiet);
}

bool
quiet()
{
    return gQuiet.load();
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace sunstone
