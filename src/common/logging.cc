#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

namespace sunstone {

namespace {

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("SUNSTONE_LOG");
    if (!env)
        return LogLevel::Info;
    std::string s(env);
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (s == "debug")
        return LogLevel::Debug;
    if (s == "info")
        return LogLevel::Info;
    if (s == "warn" || s == "warning")
        return LogLevel::Warn;
    if (s == "silent" || s == "quiet" || s == "off")
        return LogLevel::Silent;
    // An unrecognized value falls back to the default rather than
    // warning: the logger is not usable while it is being configured.
    return LogLevel::Info;
}

std::atomic<LogLevel> gLevel{levelFromEnv()};

bool
enabled(LogLevel at)
{
    return gLevel.load(std::memory_order_relaxed) <= at;
}

/** Wall-clock "[HH:MM:SS.mmm] " prefix. */
std::string
stamp()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const std::time_t t = system_clock::to_time_t(now);
    const int ms = static_cast<int>(
        duration_cast<milliseconds>(now.time_since_epoch()).count() %
        1000);
    std::tm tm{};
    localtime_r(&t, &tm);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "[%02d:%02d:%02d.%03d] ",
                  tm.tm_hour, tm.tm_min, tm.tm_sec, ms);
    return buf;
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    setLogLevel(quiet ? LogLevel::Silent : LogLevel::Info);
}

bool
quiet()
{
    return logLevel() == LogLevel::Silent;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << stamp() << "panic: " << msg << "\n  at " << file << ":"
              << line << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (ScopedFatalCapture::active())
        throw FatalError(msg + " (at " + file + ":" +
                         std::to_string(line) + ")");
    std::cerr << stamp() << "fatal: " << msg << "\n  at " << file << ":"
              << line << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (enabled(LogLevel::Warn))
        std::cerr << stamp() << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (enabled(LogLevel::Info))
        std::cerr << stamp() << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (enabled(LogLevel::Debug))
        std::cerr << stamp() << "debug: " << msg << std::endl;
}

} // namespace detail

namespace {

/** Nesting depth of ScopedFatalCapture on this thread. */
thread_local int gFatalCaptureDepth = 0;

} // anonymous namespace

ScopedFatalCapture::ScopedFatalCapture() { ++gFatalCaptureDepth; }

ScopedFatalCapture::~ScopedFatalCapture() { --gFatalCaptureDepth; }

bool
ScopedFatalCapture::active()
{
    return gFatalCaptureDepth > 0;
}

} // namespace sunstone
