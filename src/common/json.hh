/**
 * @file
 * Minimal JSON output helpers shared by every component that renders
 * JSON by hand (the tracer, the network scheduler, the evaluation
 * engine). Centralizing the escaping guarantees that a name containing
 * a quote, a backslash, or a control character can never corrupt an
 * emitted document. Header-only so the bottom-most layers (obs) can
 * use it without a link dependency.
 */

#ifndef SUNSTONE_COMMON_JSON_HH
#define SUNSTONE_COMMON_JSON_HH

#include <cstdio>
#include <string>

namespace sunstone {

/**
 * Escapes a string for embedding inside a JSON string literal: quotes,
 * backslashes, and all control characters below 0x20 (newline and tab as
 * the usual two-character sequences, the rest as \\u00XX).
 */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace sunstone

#endif // SUNSTONE_COMMON_JSON_HH
