/**
 * @file
 * Minimal JSON helpers shared by every component that renders JSON by
 * hand (the tracer, the network scheduler, the evaluation engine) and,
 * since the SearchDriver refactor, a small recursive-descent *reader*
 * (JsonValue/parseJson) used to load search checkpoints and stop-policy
 * files. Centralizing the escaping guarantees that a name containing a
 * quote, a backslash, or a control character can never corrupt an
 * emitted document. The escape helper stays header-only so the
 * bottom-most layers (obs) can use it without a link dependency; the
 * reader lives in json.cc.
 */

#ifndef SUNSTONE_COMMON_JSON_HH
#define SUNSTONE_COMMON_JSON_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace sunstone {

/**
 * Escapes a string for embedding inside a JSON string literal: quotes,
 * backslashes, and all control characters below 0x20 (newline and tab as
 * the usual two-character sequences, the rest as \\u00XX).
 */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * A parsed JSON document node. Numbers keep their raw source text so
 * 64-bit integers (RNG cursors, eval counters) round-trip exactly
 * instead of passing through a double.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    /** Raw source text of a Number (for exact integer parsing). */
    std::string raw;
    /** Decoded payload of a String. */
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** @return the named object field, or nullptr when absent. */
    const JsonValue *find(const std::string &name) const;

    /** @return the number as int64 (exact via raw text), else `dflt`. */
    std::int64_t asInt(std::int64_t dflt = 0) const;

    /** @return the number as double, else `dflt`. */
    double asDouble(double dflt = 0) const;

    /** @return the string payload, else `dflt`. */
    std::string asString(const std::string &dflt = {}) const;

    /** @return the bool payload, else `dflt`. */
    bool asBool(bool dflt = false) const;

    /**
     * @return a uint64 parsed from a "0x..." hex string payload (how the
     * checkpoint serializes RNG cursors and fingerprints), else `dflt`.
     */
    std::uint64_t asHexU64(std::uint64_t dflt = 0) const;

    /**
     * Re-renders this value as JSON text. Numbers re-emit their raw
     * source text, so integers and doubles round-trip exactly.
     */
    std::string dump() const;
};

/**
 * Parses one JSON document (trailing whitespace allowed, anything else
 * after the document is an error).
 *
 * @param err optional; receives a message with a byte offset on failure
 * @return false on malformed input
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/** Formats a uint64 as a "0x..." hex JSON string (quotes included). */
std::string jsonHexU64(std::uint64_t v);

/**
 * Formats a double so it round-trips bit-exactly through parseJson
 * (max_digits10 precision; non-finite values become null).
 */
std::string jsonDouble(double v);

} // namespace sunstone

#endif // SUNSTONE_COMMON_JSON_HH
