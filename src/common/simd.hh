/**
 * @file
 * Minimal portable SIMD wrapper for the batch cost evaluator: a
 * four-lane double vector with the handful of operations the hot
 * finalization loops need (load/store, broadcast, add, mul, div, max,
 * sqrt). Backends:
 *
 *   - AVX2 (x86-64, compiled with -mavx2; see SUNSTONE_SIMD in CMake)
 *   - NEON (aarch64; two float64x2_t halves)
 *   - scalar (everything else) — a plain double[4] loop the compiler
 *     unrolls; numerically identical because every wrapped operation
 *     (+, *, /, sqrt, max) is IEEE correctly rounded in every backend,
 *     so a fixed per-lane operation order gives the same bits whether
 *     the lanes run packed or one at a time. FMA contraction is the
 *     only way packed/scalar code could diverge, and the wrapper never
 *     uses FMA.
 *
 * Runtime selection: vec4d::backendName() reports what was compiled
 * in; simdRuntimeEnabled() additionally honours the SUNSTONE_SIMD
 * environment variable ("off"/"0"/"scalar" force the scalar fallback
 * paths) and setSimdRuntimeEnabled() lets tests flip it per-process.
 * Consumers (model/batch_eval.cc) branch on simdRuntimeEnabled() to
 * pick between the SoA kernels and the reference scalar evaluation.
 */

#ifndef SUNSTONE_COMMON_SIMD_HH
#define SUNSTONE_COMMON_SIMD_HH

#include <cmath>
#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#define SUNSTONE_SIMD_AVX2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define SUNSTONE_SIMD_NEON 1
#endif

namespace sunstone {
namespace simd {

/** Lane count of vec4d; also the SoA group width in batch_eval. */
constexpr int kLanes = 4;

/**
 * @return false when the SUNSTONE_SIMD environment variable (read once)
 *         or a prior setSimdRuntimeEnabled(false) forces the scalar
 *         fallback; callers must then take their reference paths.
 */
bool simdRuntimeEnabled();

/** Overrides the environment-derived default (tests, CLI plumbing). */
void setSimdRuntimeEnabled(bool enabled);

/** Four doubles, operated on element-wise. */
struct vec4d
{
#if defined(SUNSTONE_SIMD_AVX2)
    __m256d v;

    static vec4d load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static vec4d broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static vec4d zero() { return {_mm256_setzero_pd()}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }
    friend vec4d operator+(vec4d a, vec4d b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend vec4d operator-(vec4d a, vec4d b)
    {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend vec4d operator*(vec4d a, vec4d b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend vec4d operator/(vec4d a, vec4d b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }
    static vec4d max(vec4d a, vec4d b)
    {
        return {_mm256_max_pd(a.v, b.v)};
    }
    static vec4d sqrt(vec4d a) { return {_mm256_sqrt_pd(a.v)}; }

    static constexpr const char *backendName() { return "avx2"; }
#elif defined(SUNSTONE_SIMD_NEON)
    float64x2_t lo, hi;

    static vec4d
    load(const double *p)
    {
        return {vld1q_f64(p), vld1q_f64(p + 2)};
    }
    static vec4d
    broadcast(double x)
    {
        return {vdupq_n_f64(x), vdupq_n_f64(x)};
    }
    static vec4d zero() { return broadcast(0.0); }
    void
    store(double *p) const
    {
        vst1q_f64(p, lo);
        vst1q_f64(p + 2, hi);
    }
    friend vec4d
    operator+(vec4d a, vec4d b)
    {
        return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
    }
    friend vec4d
    operator-(vec4d a, vec4d b)
    {
        return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
    }
    friend vec4d
    operator*(vec4d a, vec4d b)
    {
        return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
    }
    friend vec4d
    operator/(vec4d a, vec4d b)
    {
        return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
    }
    static vec4d
    max(vec4d a, vec4d b)
    {
        return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
    }
    static vec4d
    sqrt(vec4d a)
    {
        return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)};
    }

    static constexpr const char *backendName() { return "neon"; }
#else
    double v[kLanes];

    static vec4d
    load(const double *p)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = p[i];
        return r;
    }
    static vec4d
    broadcast(double x)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = x;
        return r;
    }
    static vec4d zero() { return broadcast(0.0); }
    void
    store(double *p) const
    {
        for (int i = 0; i < kLanes; ++i)
            p[i] = v[i];
    }
    friend vec4d
    operator+(vec4d a, vec4d b)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }
    friend vec4d
    operator-(vec4d a, vec4d b)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }
    friend vec4d
    operator*(vec4d a, vec4d b)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }
    friend vec4d
    operator/(vec4d a, vec4d b)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] / b.v[i];
        return r;
    }
    static vec4d
    max(vec4d a, vec4d b)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }
    static vec4d
    sqrt(vec4d a)
    {
        vec4d r;
        for (int i = 0; i < kLanes; ++i)
            r.v[i] = std::sqrt(a.v[i]);
        return r;
    }

    static constexpr const char *backendName() { return "scalar"; }
#endif
};

/** @return compile-time backend plus the runtime switch, e.g.
 *          "avx2" or "avx2 (runtime-disabled)". */
const char *activeBackendDescription();

} // namespace simd
} // namespace sunstone

#endif // SUNSTONE_COMMON_SIMD_HH
