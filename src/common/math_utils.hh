/**
 * @file
 * Small integer-math helpers used throughout the scheduler: divisor
 * enumeration, factor splits across hierarchy levels, and safe arithmetic
 * on access counts.
 */

#ifndef SUNSTONE_COMMON_MATH_UTILS_HH
#define SUNSTONE_COMMON_MATH_UTILS_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace sunstone {

/** Ceiling division for non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** @return all positive divisors of n in ascending order. */
std::vector<std::int64_t> divisors(std::int64_t n);

/**
 * Memoized divisor table: like divisors(), but the result is interned in
 * a process-wide thread-safe cache, so hot enumeration loops (tiling
 * trees, mapper factor sweeps) stop refactorizing the same dimension
 * sizes. The returned reference stays valid for the process lifetime.
 * The table is bounded: past ~64k distinct values new queries fall back
 * to a small per-thread ring of scratch entries (still reference-stable
 * across the nesting depths that occur in practice).
 */
const std::vector<std::int64_t> &cachedDivisors(std::int64_t n);

/** @return number of interned entries in the cachedDivisors() table. */
std::size_t divisorCacheSize();

/**
 * @return the prime factorization of n as (prime, exponent) pairs in
 *         ascending prime order.
 */
std::vector<std::pair<std::int64_t, int>> primeFactors(std::int64_t n);

/** Memoized primeFactors() with the same interning/bounding rules as
 *  cachedDivisors(). */
const std::vector<std::pair<std::int64_t, int>> &
cachedPrimeFactors(std::int64_t n);

/**
 * Enumerates every ordered way of writing n as a product of k positive
 * factors (each factor a divisor of n). The count grows quickly; intended
 * for small k (hierarchy depth) and modest n (problem dimensions).
 *
 * @param n value to split
 * @param k number of factors
 * @return list of k-element factor vectors whose product is n
 */
std::vector<std::vector<std::int64_t>> factorSplits(std::int64_t n, int k);

/** @return the number of ordered k-factor splits of n (no enumeration). */
std::int64_t countFactorSplits(std::int64_t n, int k);

/** @return the smallest divisor of n that is >= lo (n if none smaller). */
std::int64_t smallestDivisorAtLeast(std::int64_t n, std::int64_t lo);

/** @return the largest divisor of n that is <= hi (1 if none). */
std::int64_t largestDivisorAtMost(std::int64_t n, std::int64_t hi);

/**
 * @return the next divisor of n strictly greater than d, or 0 when d is
 *         already the largest divisor (i.e., n itself).
 */
std::int64_t nextDivisor(std::int64_t n, std::int64_t d);

/**
 * Saturating multiply guarding against int64 overflow. Inline and
 * branch-cheap (hardware overflow flag, no division) because the cost
 * model folds access counts through it millions of times per search.
 */
inline std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    SUNSTONE_ASSERT(a >= 0 && b >= 0, "satMul() expects non-negative args");
#if defined(__GNUC__) || defined(__clang__)
    std::int64_t r;
    if (__builtin_mul_overflow(a, b, &r))
        return std::numeric_limits<std::int64_t>::max();
    return r;
#else
    if (a == 0 || b == 0)
        return 0;
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();
    if (a > max / b)
        return max;
    return a * b;
#endif
}

} // namespace sunstone

#endif // SUNSTONE_COMMON_MATH_UTILS_HH
