#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sunstone {
namespace obs {

namespace {

void
appendJsonDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // inf/nan are not valid JSON
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // anonymous namespace

double
HistogramSnapshot::percentile(double p) const
{
    if (count <= 0 || bounds.empty())
        return std::numeric_limits<double>::quiet_NaN();
    p = std::min(100.0, std::max(0.0, p));
    // Rank of the requested percentile within the total mass, then the
    // bucket that holds it.
    const double rank = p / 100.0 * static_cast<double>(count);
    std::int64_t below = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double hi = static_cast<double>(below + counts[i]);
        if (rank <= hi || i + 1 == counts.size()) {
            if (i >= bounds.size())
                return bounds.back(); // +inf bucket: clamp
            const double lo_bound = i == 0 ? 0.0 : bounds[i - 1];
            const double hi_bound = bounds[i];
            const double frac =
                std::min(1.0, std::max(0.0, (rank - below) /
                                                static_cast<double>(
                                                    counts[i])));
            return lo_bound + frac * (hi_bound - lo_bound);
        }
        below += counts[i];
    }
    return bounds.back();
}

std::string
HistogramSnapshot::toJson() const
{
    std::string j = "{\"bounds\":[";
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (i)
            j += ",";
        appendJsonDouble(j, bounds[i]);
    }
    j += "],\"counts\":[";
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i)
            j += ",";
        j += std::to_string(counts[i]);
    }
    j += "],\"count\":" + std::to_string(count);
    j += ",\"sum\":";
    appendJsonDouble(j, sum);
    for (const auto &[label, p] :
         {std::pair<const char *, double>{"p50", 50.0},
          {"p90", 90.0},
          {"p99", 99.0}}) {
        j += ",\"";
        j += label;
        j += "\":";
        appendJsonDouble(j, percentile(p)); // NaN renders as null
    }
    j += "}";
    return j;
}

std::vector<double>
defaultLatencyBucketsUs()
{
    return {1,   2,   5,    10,   20,   50,  100,
            200, 500, 1000, 2000, 5000, 10000};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::int64_t>[bounds_.size() + 1])
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t idx =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.bounds = bounds_;
    s.counts.resize(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        s.counts[i] = counts_[i].load(std::memory_order_relaxed);
        s.count += s.counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

std::int64_t
Histogram::count() const
{
    std::int64_t n = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        n += counts_[i].load(std::memory_order_relaxed);
    return n;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    Metric &m = metrics_[name];
    if (!m.counter)
        m.counter = std::make_unique<Counter>();
    return *m.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    Metric &m = metrics_[name];
    if (!m.gauge)
        m.gauge = std::make_unique<Gauge>();
    return *m.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lk(mtx_);
    Metric &m = metrics_[name];
    if (!m.histogram)
        m.histogram = std::make_unique<Histogram>(
            bounds.empty() ? defaultLatencyBucketsUs()
                           : std::move(bounds));
    return *m.histogram;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::string j = "{";
    bool first = true;
    auto key = [&](const std::string &name, const char *suffix) {
        if (!first)
            j += ",";
        first = false;
        j += "\"" + name + suffix + "\":";
    };
    for (const auto &[name, m] : metrics_) {
        // A name can in principle carry several kinds; suffix the
        // non-counter kinds so the JSON keys stay unique.
        if (m.counter) {
            key(name, "");
            j += std::to_string(m.counter->value());
        }
        if (m.gauge) {
            key(name, m.counter ? ".gauge" : "");
            appendJsonDouble(j, m.gauge->value());
        }
        if (m.histogram) {
            key(name, (m.counter || m.gauge) ? ".histogram" : "");
            j += m.histogram->snapshot().toJson();
        }
    }
    j += "}";
    return j;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mtx_);
    for (auto &[name, m] : metrics_) {
        (void)name;
        if (m.counter)
            m.counter->reset();
        if (m.gauge)
            m.gauge->reset();
        if (m.histogram)
            m.histogram->reset();
    }
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry r;
    return r;
}

} // namespace obs
} // namespace sunstone
