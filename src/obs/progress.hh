/**
 * @file
 * Live search-progress telemetry (DESIGN.md §14).
 *
 * Three cooperating pieces:
 *
 *  - SearchStatus / ProgressBoard: a process-wide board of per-search
 *    live state. Every SearchDriver opens one entry and keeps it
 *    current with relaxed atomic stores (evaluations, incumbent,
 *    plateau length, done + stop reason), so readers — the progress
 *    line, the snapshot writer, and eventually a scrape endpoint — can
 *    observe a running search without any coordination with it.
 *    Entries are stable for the process lifetime (like the tracer's
 *    thread buffers); the board additionally carries coarse "unit"
 *    counters the network scheduler uses to report per-layer /
 *    per-fused-chain phase progress.
 *
 *  - computeEta(): the pure ETA math. Each StopPolicy bound (deadline,
 *    max-evals, plateau) projects its own time-to-trip from the current
 *    evaluation rate; the estimate is the minimum and names the
 *    dominant bound. Pure so tests can pin the dominance logic without
 *    clocks or threads.
 *
 *  - ProgressReporter: a background thread rendering a throttled
 *    single-line summary of the board to stderr (overwritten in place
 *    with '\r'). Enabled by the CLI's --progress; costs nothing when
 *    not constructed.
 */

#ifndef SUNSTONE_OBS_PROGRESS_HH
#define SUNSTONE_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sunstone {
namespace obs {

/**
 * Live state of one search. Writers (the owning SearchDriver) use
 * relaxed atomics; readers take an instantaneous, possibly slightly
 * stale view — fine for progress display. The stop-reason pointer must
 * reference a string with static storage duration (stopReasonName()
 * returns exactly that).
 */
class SearchStatus
{
  public:
    SearchStatus(std::string label, std::int64_t max_evals,
                 double deadline_seconds, std::int64_t plateau_bound)
        : label_(std::move(label)), maxEvals_(max_evals),
          deadlineSeconds_(deadline_seconds), plateauBound_(plateau_bound),
          start_(std::chrono::steady_clock::now())
    {
    }

    const std::string &label() const { return label_; }
    std::int64_t maxEvals() const { return maxEvals_; }
    double deadlineSeconds() const { return deadlineSeconds_; }
    std::int64_t plateauBound() const { return plateauBound_; }

    void
    noteEvaluated(std::int64_t n)
    {
        evaluated_.fetch_add(n, std::memory_order_relaxed);
    }

    void
    noteImprovement(double metric)
    {
        bestMetric_.store(metric, std::memory_order_relaxed);
        improvements_.fetch_add(1, std::memory_order_relaxed);
        found_.store(true, std::memory_order_relaxed);
    }

    void
    notePlateau(std::int64_t length)
    {
        plateauLength_.store(length, std::memory_order_relaxed);
    }

    /** @param reason must have static storage duration. */
    void
    finish(const char *reason)
    {
        stopReason_.store(reason, std::memory_order_relaxed);
        done_.store(true, std::memory_order_release);
    }

    std::int64_t
    evaluated() const
    {
        return evaluated_.load(std::memory_order_relaxed);
    }

    bool found() const { return found_.load(std::memory_order_relaxed); }

    double
    bestMetric() const
    {
        return bestMetric_.load(std::memory_order_relaxed);
    }

    std::int64_t
    improvements() const
    {
        return improvements_.load(std::memory_order_relaxed);
    }

    std::int64_t
    plateauLength() const
    {
        return plateauLength_.load(std::memory_order_relaxed);
    }

    bool done() const { return done_.load(std::memory_order_acquire); }

    /** @return "" while running, the final stop reason once done. */
    const char *
    stopReason() const
    {
        const char *r = stopReason_.load(std::memory_order_relaxed);
        return r ? r : "";
    }

    /** Wall-clock seconds since the entry was opened. */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    const std::string label_;
    const std::int64_t maxEvals_;
    const double deadlineSeconds_;
    const std::int64_t plateauBound_;
    const std::chrono::steady_clock::time_point start_;

    std::atomic<std::int64_t> evaluated_{0};
    std::atomic<std::int64_t> improvements_{0};
    std::atomic<std::int64_t> plateauLength_{0};
    std::atomic<double> bestMetric_{
        std::numeric_limits<double>::infinity()};
    std::atomic<bool> found_{false};
    std::atomic<bool> done_{false};
    std::atomic<const char *> stopReason_{nullptr};
};

/**
 * The process-wide board. open() hands out stable references (entries
 * are never destroyed before process exit, so concurrent readers need
 * no lifetime protocol); snapshot() returns the current entry set in
 * open order.
 */
class ProgressBoard
{
  public:
    SearchStatus &open(const std::string &label,
                       std::int64_t max_evals = 0,
                       double deadline_seconds = 0,
                       std::int64_t plateau_bound = 0);

    std::vector<const SearchStatus *> snapshot() const;

    /** Sum of evaluated() over every entry (fast aggregate). */
    std::int64_t totalEvaluated() const;

    // -- Coarse phase units (the net scheduler's layer/chain counts) ---

    /** Announces `n` more schedulable units (unique layers, chains). */
    void addUnits(std::int64_t n);

    /** Marks one unit complete. */
    void noteUnitDone();

    std::int64_t unitsTotal() const
    {
        return unitsTotal_.load(std::memory_order_relaxed);
    }

    std::int64_t unitsDone() const
    {
        return unitsDone_.load(std::memory_order_relaxed);
    }

    /**
     * Drops every entry and zeroes the unit counters. Test-only: any
     * reference previously handed out dangles afterwards.
     */
    void resetForTests();

  private:
    mutable std::mutex mtx_;
    std::deque<std::unique_ptr<SearchStatus>> entries_;
    std::atomic<std::int64_t> unitsTotal_{0};
    std::atomic<std::int64_t> unitsDone_{0};
};

/** @return the process-wide board. */
ProgressBoard &progressBoard();

/** Projected time to the first StopPolicy bound that will trip. */
struct EtaEstimate
{
    /** Seconds until the dominant bound fires; +inf when unbounded. */
    double seconds = std::numeric_limits<double>::infinity();
    /** "deadline", "max-evals", "plateau", or "" when unbounded. */
    const char *bound = "";
};

/**
 * Pure ETA math. Each set bound projects its own time-to-trip:
 *  - deadline: whatever wall-clock remains;
 *  - max-evals: remaining evaluations at the observed rate;
 *  - plateau: remaining non-improving evaluations at the observed rate
 *    (the projection assumes no further improvement, so it is the
 *    earliest the bound can fire).
 * The estimate is the minimum of the projections; ties break in the
 * order deadline, max-evals, plateau (a wall-clock bound is exact, the
 * others extrapolate). A zero/negative rate leaves the eval-denominated
 * bounds unbounded. Already-exceeded bounds project 0 seconds.
 */
EtaEstimate computeEta(std::int64_t evaluated, std::int64_t max_evals,
                       double elapsed_seconds, double deadline_seconds,
                       std::int64_t plateau_length,
                       std::int64_t plateau_bound,
                       double evals_per_second);

/**
 * Renders a throttled one-line progress summary of the board to stderr
 * under its own thread. The line shows completed/total units, total
 * evaluations and their rate, the incumbent metric of the most recent
 * active search, and the dominant-bound ETA. Stop (or destruction)
 * terminates the line with '\n' so subsequent output starts clean.
 */
class ProgressReporter
{
  public:
    /** @param interval_ms redraw period (min 20, default 500). */
    explicit ProgressReporter(int interval_ms = 500);
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    void start();
    void stop();

    /**
     * Composes the progress line from the current board state (also
     * used by stop() for the final render). Exposed for tests.
     */
    std::string renderLine();

  private:
    void loop();

    const int intervalMs_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::mutex mtx_; // guards start/stop transitions

    // Rate window: evaluations seen at the previous render.
    std::int64_t lastEvals_ = 0;
    std::chrono::steady_clock::time_point lastTime_;
    double smoothedRate_ = 0;
    std::size_t lastLineLen_ = 0;
};

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_PROGRESS_HH
