#include "obs/flight_recorder.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>

#include "common/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sunstone {
namespace obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : cap_(std::max<std::size_t>(8, capacity))
{
    ring_.reserve(cap_);
}

void
FlightRecorder::record(const std::string &kind, const std::string &detail)
{
    FlightEvent e;
    e.ns = traceNowNs();
    e.kind = kind;
    e.detail = detail;
    std::lock_guard<std::mutex> lk(mtx_);
    if (ring_.size() < cap_)
        ring_.push_back(std::move(e));
    else
        ring_[recorded_ % cap_] = std::move(e);
    ++recorded_;
}

std::uint64_t
FlightRecorder::eventsRecorded() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return recorded_;
}

std::uint64_t
FlightRecorder::eventsDropped() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return recorded_ > cap_ ? recorded_ - cap_ : 0;
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    // Oldest-first: once wrapped, the slot at recorded_ % cap_ is the
    // oldest retained event.
    const std::size_t n = ring_.size();
    const std::size_t first = recorded_ > cap_ ? recorded_ % cap_ : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(first + i) % n]);
    return out;
}

std::string
FlightRecorder::toJsonl() const
{
    std::string out;
    for (const FlightEvent &e : events()) {
        out += "{\"ns\":" + std::to_string(e.ns) + ",\"kind\":\"" +
               jsonEscape(e.kind) + "\",\"detail\":\"" +
               jsonEscape(e.detail) + "\"}\n";
    }
    return out;
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lk(mtx_);
    ring_.clear();
    recorded_ = 0;
}

FlightRecorder &
flightRecorder()
{
    static FlightRecorder r;
    return r;
}

// ---------------------------------------------------------------------
// Diag bundle
// ---------------------------------------------------------------------

namespace {

std::mutex g_diagMtx;
std::string g_diagDir;
std::function<std::string()> g_diagExtra;

bool
writeFileTo(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << text;
    return os.good();
}

} // anonymous namespace

void
setDiagDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lk(g_diagMtx);
    g_diagDir = dir;
}

std::string
diagDir()
{
    std::lock_guard<std::mutex> lk(g_diagMtx);
    return g_diagDir;
}

void
setDiagExtraProvider(std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lk(g_diagMtx);
    g_diagExtra = std::move(provider);
}

bool
writeDiagBundle(const std::string &reason)
{
    std::string dir;
    std::function<std::string()> extra;
    {
        std::lock_guard<std::mutex> lk(g_diagMtx);
        dir = g_diagDir;
        extra = g_diagExtra;
    }
    if (dir.empty())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path base(dir);

    FlightRecorder &rec = flightRecorder();
    std::string crash = "reason: " + reason + "\n";
    crash += "events_recorded: " + std::to_string(rec.eventsRecorded()) +
             "\n";
    crash +=
        "events_dropped: " + std::to_string(rec.eventsDropped()) + "\n";
    crash += "uptime_ns: " + std::to_string(traceNowNs()) + "\n";
    bool ok = writeFileTo(base / "crash.txt", crash);
    ok &= writeFileTo(base / "events.jsonl", rec.toJsonl());
    ok &= writeFileTo(base / "metrics.json",
                      "{\"registry\": " + metrics().toJson() + "}");
    if (extra)
        ok &= writeFileTo(base / "engine.json", extra());
    if (tracer().spansRecorded() > 0)
        ok &= writeFileTo(base / "trace.json", tracer().toChromeJson());
    return ok;
}

namespace {

void
crashSignalHandler(int sig)
{
    const char *name = "signal";
    switch (sig) {
    case SIGSEGV:
        name = "SIGSEGV";
        break;
    case SIGABRT:
        name = "SIGABRT";
        break;
    case SIGFPE:
        name = "SIGFPE";
        break;
    case SIGILL:
        name = "SIGILL";
        break;
#ifdef SIGBUS
    case SIGBUS:
        name = "SIGBUS";
        break;
#endif
    }
    // Best effort (allocates, takes locks): a crashing process has
    // nothing to lose, and the bundle is the only record of the run.
    writeDiagBundle(std::string("fatal signal ") + name);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

std::terminate_handler g_prevTerminate = nullptr;

[[noreturn]] void
terminateHandler()
{
    writeDiagBundle("std::terminate");
    if (g_prevTerminate)
        g_prevTerminate();
    std::abort();
}

} // anonymous namespace

void
installCrashHandlers()
{
    static bool installed = false;
    std::lock_guard<std::mutex> lk(g_diagMtx);
    if (installed)
        return;
    installed = true;
    std::signal(SIGSEGV, crashSignalHandler);
    std::signal(SIGABRT, crashSignalHandler);
    std::signal(SIGFPE, crashSignalHandler);
    std::signal(SIGILL, crashSignalHandler);
#ifdef SIGBUS
    std::signal(SIGBUS, crashSignalHandler);
#endif
    g_prevTerminate = std::set_terminate(terminateHandler);
}

} // namespace obs
} // namespace sunstone
