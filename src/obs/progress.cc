#include "obs/progress.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sunstone {
namespace obs {

SearchStatus &
ProgressBoard::open(const std::string &label, std::int64_t max_evals,
                    double deadline_seconds, std::int64_t plateau_bound)
{
    std::lock_guard<std::mutex> lk(mtx_);
    entries_.push_back(std::make_unique<SearchStatus>(
        label, max_evals, deadline_seconds, plateau_bound));
    return *entries_.back();
}

std::vector<const SearchStatus *>
ProgressBoard::snapshot() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<const SearchStatus *> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.get());
    return out;
}

std::int64_t
ProgressBoard::totalEvaluated() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::int64_t n = 0;
    for (const auto &e : entries_)
        n += e->evaluated();
    return n;
}

void
ProgressBoard::addUnits(std::int64_t n)
{
    unitsTotal_.fetch_add(n, std::memory_order_relaxed);
}

void
ProgressBoard::noteUnitDone()
{
    unitsDone_.fetch_add(1, std::memory_order_relaxed);
}

void
ProgressBoard::resetForTests()
{
    std::lock_guard<std::mutex> lk(mtx_);
    entries_.clear();
    unitsTotal_.store(0, std::memory_order_relaxed);
    unitsDone_.store(0, std::memory_order_relaxed);
}

ProgressBoard &
progressBoard()
{
    static ProgressBoard b;
    return b;
}

EtaEstimate
computeEta(std::int64_t evaluated, std::int64_t max_evals,
           double elapsed_seconds, double deadline_seconds,
           std::int64_t plateau_length, std::int64_t plateau_bound,
           double evals_per_second)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double deadline = kInf, evals = kInf, plateau = kInf;
    if (deadline_seconds > 0)
        deadline = std::max(0.0, deadline_seconds - elapsed_seconds);
    if (max_evals > 0) {
        if (evaluated >= max_evals)
            evals = 0;
        else if (evals_per_second > 0)
            evals = static_cast<double>(max_evals - evaluated) /
                    evals_per_second;
    }
    if (plateau_bound > 0) {
        if (plateau_length >= plateau_bound)
            plateau = 0;
        else if (evals_per_second > 0)
            plateau = static_cast<double>(plateau_bound - plateau_length) /
                      evals_per_second;
    }
    // Ties break deadline > max-evals > plateau: the wall-clock bound is
    // exact where the eval-denominated ones extrapolate from the rate.
    EtaEstimate e;
    if (deadline <= evals && deadline <= plateau) {
        e.seconds = deadline;
        e.bound = deadline == kInf ? "" : "deadline";
    } else if (evals <= plateau) {
        e.seconds = evals;
        e.bound = "max-evals";
    } else {
        e.seconds = plateau;
        e.bound = "plateau";
    }
    return e;
}

namespace {

/** "1234" -> "1.2k", "5678901" -> "5.7M": compact counts for one line. */
std::string
compactCount(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.1fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
compactSeconds(double s)
{
    char buf[32];
    if (!std::isfinite(s))
        return "-";
    if (s >= 3600)
        std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600);
    else if (s >= 60)
        std::snprintf(buf, sizeof(buf), "%.1fm", s / 60);
    else
        std::snprintf(buf, sizeof(buf), "%.0fs", s);
    return buf;
}

} // anonymous namespace

ProgressReporter::ProgressReporter(int interval_ms)
    : intervalMs_(std::max(20, interval_ms)),
      lastTime_(std::chrono::steady_clock::now())
{
}

ProgressReporter::~ProgressReporter() { stop(); }

void
ProgressReporter::start()
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (running_.load(std::memory_order_relaxed))
        return;
    running_.store(true, std::memory_order_relaxed);
    lastEvals_ = progressBoard().totalEvaluated();
    lastTime_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { loop(); });
}

void
ProgressReporter::stop()
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (!running_.load(std::memory_order_relaxed))
        return;
    running_.store(false, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    // Final render, then release the line.
    const std::string line = renderLine();
    std::fprintf(stderr, "\r%-*s\n", static_cast<int>(lastLineLen_),
                 line.c_str());
    std::fflush(stderr);
}

std::string
ProgressReporter::renderLine()
{
    ProgressBoard &board = progressBoard();
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - lastTime_).count();
    const std::int64_t evals = board.totalEvaluated();
    if (dt > 1e-3) {
        const double inst =
            static_cast<double>(evals - lastEvals_) / dt;
        // EWMA so the rate does not jitter at small redraw intervals.
        smoothedRate_ = smoothedRate_ > 0
                            ? 0.7 * smoothedRate_ + 0.3 * inst
                            : inst;
        lastEvals_ = evals;
        lastTime_ = now;
    }

    // The most recently opened not-yet-done search carries the live
    // incumbent and the ETA; when all are done, fall back to the last.
    const auto entries = board.snapshot();
    const SearchStatus *active = nullptr;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        if (!(*it)->done()) {
            active = *it;
            break;
        }
    if (!active && !entries.empty())
        active = entries.back();

    std::string line = "[sunstone]";
    if (board.unitsTotal() > 0)
        line += " units " + std::to_string(board.unitsDone()) + "/" +
                std::to_string(board.unitsTotal());
    line += " evals " + compactCount(static_cast<double>(evals));
    line += " (" + compactCount(smoothedRate_) + "/s)";
    if (active) {
        if (active->found()) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), " best %.4g",
                          active->bestMetric());
            line += buf;
        }
        const EtaEstimate eta = computeEta(
            active->evaluated(), active->maxEvals(),
            active->elapsedSeconds(), active->deadlineSeconds(),
            active->plateauLength(), active->plateauBound(),
            smoothedRate_);
        if (eta.bound[0] != '\0')
            line += " eta " + compactSeconds(eta.seconds) + " (" +
                    eta.bound + ")";
        if (!active->done())
            line += " | " + active->label();
    }
    return line;
}

void
ProgressReporter::loop()
{
    while (running_.load(std::memory_order_relaxed)) {
        const std::string line = renderLine();
        // Overwrite in place; pad so a shrinking line leaves no tail.
        std::fprintf(stderr, "\r%-*s", static_cast<int>(lastLineLen_),
                     line.c_str());
        std::fflush(stderr);
        lastLineLen_ = std::max(lastLineLen_, line.size());
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs_));
    }
}

} // namespace obs
} // namespace sunstone
