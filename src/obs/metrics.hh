/**
 * @file
 * Process-wide metrics: counters, gauges, and fixed-bucket histograms.
 *
 * The primitives are plain atomic types usable standalone (EvalEngine
 * embeds them for its per-engine telemetry) or owned by the process-wide
 * MetricsRegistry, which hands out stable references by name and renders
 * everything as one JSON document for --metrics-json.
 *
 * Naming convention (DESIGN.md §9): lowercase dotted paths grouped by
 * subsystem — "pool.tasks", "net.dedup_broadcasts",
 * "diannao.instructions". Histogram buckets are fixed at construction;
 * recording is an atomic increment per bucket plus an atomic add to the
 * sum, so concurrent bucket counts are exact.
 */

#ifndef SUNSTONE_OBS_METRICS_HH
#define SUNSTONE_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sunstone {
namespace obs {

/** Monotonic counter. */
class Counter
{
  public:
    void
    add(std::int64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/** Last-write-wins gauge. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Consistent histogram snapshot. */
struct HistogramSnapshot
{
    /** Upper bounds of the finite buckets; a +inf bucket is implicit. */
    std::vector<double> bounds;
    /** Per-bucket counts; size bounds.size() + 1. */
    std::vector<std::int64_t> counts;
    std::int64_t count = 0;
    double sum = 0;

    /**
     * The p-th percentile (p in [0, 100]) interpolated linearly within
     * the owning bucket, treating each bucket's mass as uniformly
     * spread between its bounds (the first bucket spans [0, bounds[0]]).
     * Ranks landing in the +inf bucket clamp to the last finite bound —
     * the histogram cannot resolve beyond it. NaN when the histogram is
     * empty or has no finite buckets.
     */
    double percentile(double p) const;

    /**
     * Renders {"bounds": [...], "counts": [...], "count": n, "sum": x,
     * "p50": ..., "p90": ..., "p99": ...}; the percentile summaries are
     * null for empty histograms so consumers stop re-deriving them from
     * the buckets.
     */
    std::string toJson() const;
};

/** Default bucket bounds for microsecond latencies (1 µs .. 10 ms). */
std::vector<double> defaultLatencyBucketsUs();

/**
 * Fixed-bucket histogram. A value lands in the first bucket whose upper
 * bound is >= value; values above every bound land in the +inf bucket.
 */
class Histogram
{
  public:
    /** @param bounds ascending finite upper bounds (may be empty). */
    explicit Histogram(std::vector<double> bounds =
                           defaultLatencyBucketsUs());

    void record(double value);

    HistogramSnapshot snapshot() const;

    std::int64_t count() const;

    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
    std::atomic<double> sum_{0.0};
};

/**
 * Process-wide registry. Lookups take a mutex; callers on hot paths
 * should cache the returned reference (it is stable for the process
 * lifetime). Requesting an existing name with a mismatched kind panics
 * via std::terminate — names are namespaced per kind to avoid that.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** `bounds` applies only when the histogram does not exist yet. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = {});

    /** Renders every registered metric as one JSON object. */
    std::string toJson() const;

    /** Zeroes every metric (for tests); registrations are kept. */
    void reset();

  private:
    struct Metric
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mtx_;
    std::map<std::string, Metric> metrics_;
};

/** @return the process-wide registry. */
MetricsRegistry &metrics();

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_METRICS_HH
