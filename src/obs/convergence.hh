/**
 * @file
 * Search-convergence telemetry: per-search trajectories of
 * (wall-clock, evaluations, incumbent energy/EDP) sampled whenever a
 * search improves its incumbent.
 *
 * The paper's headline claim is about *search behavior* — near-optimal
 * EDP after orders of magnitude fewer evaluations than the baselines
 * (Tables I and V, Figs. 7–8). A ConvergenceRecorder passed through
 * SunstoneOptions / the mapper option structs captures exactly that:
 * each search opens a named trajectory and records a point per incumbent
 * improvement plus one final point, so trajectories are monotonically
 * non-increasing in the optimized metric and always end on the reported
 * result. The JSON dump (--convergence-json) holds one trajectory per
 * search, directly plottable as a sample-efficiency curve.
 */

#ifndef SUNSTONE_OBS_CONVERGENCE_HH
#define SUNSTONE_OBS_CONVERGENCE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sunstone {
namespace obs {

/** One incumbent sample. */
struct ConvergencePoint
{
    /** Wall-clock seconds since the trajectory started. */
    double seconds = 0;
    /** Search-local evaluation count at sample time. */
    std::int64_t evaluations = 0;
    double energyPj = 0;
    double edp = 0;
    /** The objective the search minimizes (EDP or energy). */
    double metric = 0;
};

/** One search's incumbent history. Thread-safe appends. */
class ConvergenceTrajectory
{
  public:
    explicit ConvergenceTrajectory(std::string name);

    /** Appends a sample stamped with the elapsed wall-clock. */
    void record(std::int64_t evaluations, double energy_pj, double edp,
                double metric);

    const std::string &name() const { return name_; }

    std::vector<ConvergencePoint> points() const;

  private:
    const std::string name_;
    const std::chrono::steady_clock::time_point start_;
    mutable std::mutex mtx_;
    std::vector<ConvergencePoint> points_;
};

/**
 * Time-to-quality summary of one trajectory: how much search effort it
 * took to first come within 1% / 5% of the trajectory's final metric.
 * The sample-efficiency scalar behind the paper's convergence figures,
 * and the quantity the surrogate ranker is meant to shrink.
 */
struct TimeToQuality
{
    /** Final (best) metric; 0 when the trajectory is empty. */
    double finalMetric = 0;
    std::int64_t finalEvaluations = 0;

    /** -1 when the band was never reached (empty trajectory). */
    std::int64_t evalsTo1pct = -1;
    double secondsTo1pct = -1;
    std::int64_t evalsTo5pct = -1;
    double secondsTo5pct = -1;
};

/**
 * Computes the time-to-quality summary of a trajectory (points in
 * record order; the last point is the final result, as recorders
 * guarantee).
 */
TimeToQuality timeToQuality(const std::vector<ConvergencePoint> &points);

/**
 * Collects trajectories from any number of concurrent searches. Pass a
 * recorder through the search options; each search calls start() once
 * and records into its own trajectory.
 */
class ConvergenceRecorder
{
  public:
    /** Opens a new trajectory (names may repeat across searches). */
    ConvergenceTrajectory &start(const std::string &name);

    std::size_t trajectoryCount() const;

    /** Snapshot of every trajectory, in start order. */
    std::vector<const ConvergenceTrajectory *> trajectories() const;

    /** Renders {"trajectories": [{name, points: [...]}, ...]}. */
    std::string toJson() const;

    /**
     * Writes toJson() to a file.
     * @return false when the file cannot be written.
     */
    bool writeJson(const std::string &path) const;

  private:
    mutable std::mutex mtx_;
    std::vector<std::unique_ptr<ConvergenceTrajectory>> trajectories_;
};

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_CONVERGENCE_HH
