/**
 * @file
 * Process-wide registry of stable thread names and indices.
 *
 * Every thread that touches the observability layer gets a small dense
 * index (0, 1, 2, ...) assigned on first contact and, optionally, a
 * human-readable name ("main", "worker-3"). The tracer keys its
 * per-thread ring buffers and its Chrome-trace `tid` rows on the index,
 * so a worker's spans land on the same named row across the whole run —
 * and future debugging can attribute work to the right worker instead
 * of an opaque pthread id.
 *
 * Indices are never reused, even after a thread exits; a registered
 * name sticks until overwritten by another registerThisThread() call
 * from the same thread.
 */

#ifndef SUNSTONE_OBS_THREAD_REGISTRY_HH
#define SUNSTONE_OBS_THREAD_REGISTRY_HH

#include <string>

namespace sunstone {
namespace obs {

/**
 * Names the calling thread, registering it first if needed.
 * @return the thread's stable index.
 */
int registerThisThread(const std::string &name);

/** @return the calling thread's index, registering with a default name
 *  ("thread-<index>") on first contact. */
int currentThreadIndex();

/** @return the calling thread's registered name. */
std::string currentThreadName();

/** @return how many threads have ever registered. */
int registeredThreadCount();

/** @return the name of thread `index`, or "" when out of range. */
std::string threadName(int index);

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_THREAD_REGISTRY_HH
