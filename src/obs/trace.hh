/**
 * @file
 * Low-overhead span tracer emitting Chrome `trace_event` JSON.
 *
 * Design (see DESIGN.md §9):
 *  - each thread owns a fixed-capacity ring buffer of completed spans;
 *    recording is one (uncontended) mutex, a clock read, and a memcpy —
 *    no allocation, no cross-thread contention on the hot path;
 *  - a span is recorded on scope exit as a Chrome "X" (complete) event,
 *    so nesting falls out of the timestamps and Perfetto /
 *    chrome://tracing render the stacks directly;
 *  - when a ring fills, the oldest spans are overwritten (and counted as
 *    dropped): a trace always holds the most recent window of work;
 *  - the whole layer is off by default at runtime (one relaxed atomic
 *    load per SUNSTONE_TRACE_SPAN when disabled) and can be compiled
 *    out entirely with -DSUNSTONE_TRACING=OFF, which turns the macros
 *    into no-ops that do not evaluate their arguments.
 *
 * Thread rows are keyed by the stable indices of obs/thread_registry.hh
 * and carry the registered names as Chrome thread_name metadata.
 */

#ifndef SUNSTONE_OBS_TRACE_HH
#define SUNSTONE_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SUNSTONE_TRACING_ENABLED
#define SUNSTONE_TRACING_ENABLED 1
#endif

namespace sunstone {
namespace obs {

/** Longest span name kept (longer names are truncated, not rejected). */
constexpr std::size_t kSpanNameMax = 47;

/** One completed span, as exposed to tests and exporters. */
struct SpanRecord
{
    std::string name;
    int threadIndex = 0;
    /** Start, nanoseconds since the tracer epoch (process start). */
    std::int64_t startNs = 0;
    /** Duration in nanoseconds. */
    std::int64_t durNs = 0;
};

/** @return true when the span macros were compiled in. */
constexpr bool
tracingCompiledIn()
{
    return SUNSTONE_TRACING_ENABLED != 0;
}

/** @return nanoseconds since the tracer epoch (monotonic). */
std::int64_t traceNowNs();

/**
 * The process-wide tracer. Spans are only recorded while enabled();
 * enable before the work of interest, then export once it quiesces.
 */
class Tracer
{
  public:
    /** Turns recording on or off (off by default). */
    void setEnabled(bool enabled);
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Ring capacity (spans per thread) applied to new thread buffers. */
    void setRingCapacity(std::size_t spans);

    /** Records one completed span for the calling thread. */
    void record(const char *name, std::int64_t start_ns,
                std::int64_t end_ns);

    /** Drops all recorded spans (buffers stay registered). */
    void clear();

    /** @return every retained span, oldest first per thread. */
    std::vector<SpanRecord> spans() const;

    /** @return spans recorded since the last clear (drops included). */
    std::uint64_t spansRecorded() const;

    /** @return spans overwritten by ring wrap-around. */
    std::uint64_t spansDropped() const;

    /** Renders the retained spans as Chrome trace_event JSON. */
    std::string toChromeJson() const;

    /**
     * Writes toChromeJson() to a file.
     * @return false when the file cannot be written.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    struct ThreadBuffer;

    ThreadBuffer &buffer();

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> ringCapacity_{16384};

    mutable std::mutex registryMtx_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/** @return the process-wide tracer. */
Tracer &tracer();

/**
 * RAII span: stamps the start on construction and records the completed
 * span on destruction. Construction is a no-op while the tracer is
 * disabled. The name is captured by pointer and copied at record time,
 * so string temporaries must outlive the scope — both constructors
 * guarantee that by copying into the member buffer up front.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    /** Dynamic-name overload ("layer:conv3"); the name is copied. */
    explicit TraceSpan(const std::string &name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    char name_[kSpanNameMax + 1];
    /** -1 marks an inactive span (tracer disabled at construction). */
    std::int64_t startNs_ = -1;
};

} // namespace obs
} // namespace sunstone

#if SUNSTONE_TRACING_ENABLED
#define SUNSTONE_TRACE_CONCAT2(a, b) a##b
#define SUNSTONE_TRACE_CONCAT(a, b) SUNSTONE_TRACE_CONCAT2(a, b)
/** Scoped span covering the rest of the enclosing block. */
#define SUNSTONE_TRACE_SPAN(name)                                           \
    ::sunstone::obs::TraceSpan SUNSTONE_TRACE_CONCAT(sunstone_trace_span_,  \
                                                     __LINE__)(name)
#else
/** Compiled out: the name expression is never evaluated. */
#define SUNSTONE_TRACE_SPAN(name) ((void)0)
#endif

#endif // SUNSTONE_OBS_TRACE_HH
