#include "obs/thread_registry.hh"

#include <mutex>
#include <vector>

namespace sunstone {
namespace obs {

namespace {

std::mutex gMtx;
std::vector<std::string> gNames;

/** Per-thread cached index; -1 until the thread first registers. */
thread_local int tIndex = -1;

int
registerLocked(const std::string &name)
{
    if (tIndex < 0) {
        tIndex = static_cast<int>(gNames.size());
        gNames.push_back(name);
    } else {
        gNames[static_cast<std::size_t>(tIndex)] = name;
    }
    return tIndex;
}

} // anonymous namespace

int
registerThisThread(const std::string &name)
{
    std::lock_guard<std::mutex> lk(gMtx);
    return registerLocked(name);
}

int
currentThreadIndex()
{
    if (tIndex >= 0)
        return tIndex;
    std::lock_guard<std::mutex> lk(gMtx);
    return registerLocked("thread-" + std::to_string(gNames.size()));
}

std::string
currentThreadName()
{
    const int idx = currentThreadIndex();
    std::lock_guard<std::mutex> lk(gMtx);
    return gNames[static_cast<std::size_t>(idx)];
}

int
registeredThreadCount()
{
    std::lock_guard<std::mutex> lk(gMtx);
    return static_cast<int>(gNames.size());
}

std::string
threadName(int index)
{
    std::lock_guard<std::mutex> lk(gMtx);
    if (index < 0 || index >= static_cast<int>(gNames.size()))
        return "";
    return gNames[static_cast<std::size_t>(index)];
}

} // namespace obs
} // namespace sunstone
