/**
 * @file
 * Periodic telemetry snapshots (DESIGN.md §14): a background thread
 * serializing the metrics registry plus the live search-progress board
 * into an append-only JSONL time series.
 *
 * Each record is one JSON object on one line. A record is rendered
 * fully in memory and appended with a single write(2) on an O_APPEND
 * descriptor, so a crashing or killed process can tear at most the
 * final line — every complete line is a well-formed document, and the
 * file as a whole is a parseable prefix of the run. That is the
 * property the long-running serve daemon needs: a reader tailing the
 * file never has to coordinate with the writer.
 *
 * Record schema (stable keys, additive evolution):
 *   {"seq": N,                     // 0-based record index
 *    "elapsed_seconds": S,        // since the writer started
 *    "units": {"done": D, "total": T},
 *    "searches": [{"label": L, "evaluated": E, "found": B,
 *                  "best_metric": M|null, "improvements": I,
 *                  "elapsed_seconds": S, "done": B,
 *                  "stop_reason": R}, ...],
 *    "registry": { ...MetricsRegistry::toJson()... },
 *    "extra": { ... }}            // optional caller document
 */

#ifndef SUNSTONE_OBS_SNAPSHOT_HH
#define SUNSTONE_OBS_SNAPSHOT_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace sunstone {
namespace obs {

/** Background JSONL snapshot writer. */
class SnapshotWriter
{
  public:
    /**
     * @param path JSONL file to append to (created when missing)
     * @param interval_ms period between records (min 10, default 1000)
     */
    explicit SnapshotWriter(std::string path, int interval_ms = 1000);
    ~SnapshotWriter();

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /**
     * Registers a callback whose JSON document is embedded under the
     * record's "extra" key (typically engine stats). Set before start().
     */
    void setExtraProvider(std::function<std::string()> provider);

    /**
     * Opens the file and starts the periodic thread. An immediate
     * record is written so even sub-interval runs leave a time series.
     * @return false when the file cannot be opened.
     */
    bool start();

    /** Writes one final record and stops the thread. Idempotent. */
    void stop();

    /**
     * Renders and appends one record immediately (also what the
     * periodic thread calls). Thread-safe. @return false on I/O error
     * or when the writer is not started.
     */
    bool writeNow();

    /** Records appended so far. */
    std::int64_t recordsWritten() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    const std::string &path() const { return path_; }

    /** Renders the next record body (exposed for tests). */
    std::string renderRecord();

  private:
    void loop();

    const std::string path_;
    const int intervalMs_;
    std::function<std::string()> extra_;

    int fd_ = -1;
    std::atomic<std::int64_t> seq_{0};
    std::chrono::steady_clock::time_point start_;

    std::thread thread_;
    std::mutex mtx_;
    std::condition_variable cv_;
    bool running_ = false;
    std::mutex writeMtx_; // serializes writeNow() renders + appends
};

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_SNAPSHOT_HH
