#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/json.hh"
#include "obs/thread_registry.hh"

namespace sunstone {
namespace obs {

namespace {

std::chrono::steady_clock::time_point
epoch()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

} // anonymous namespace

std::int64_t
traceNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch())
        .count();
}

/** One thread's span ring. The owning thread writes under `mtx`; the
 *  exporter reads under the same mutex after the work quiesced. */
struct Tracer::ThreadBuffer
{
    mutable std::mutex mtx;
    int threadIndex = 0;
    std::size_t capacity = 0;
    std::vector<SpanRecord> ring;
    /** Total spans recorded since the last clear (drops included). */
    std::uint64_t written = 0;
};

Tracer::ThreadBuffer &
Tracer::buffer()
{
    thread_local ThreadBuffer *buf = nullptr;
    if (buf)
        return *buf;
    auto owned = std::make_unique<ThreadBuffer>();
    owned->threadIndex = currentThreadIndex();
    owned->capacity = ringCapacity_.load(std::memory_order_relaxed);
    owned->ring.reserve(owned->capacity);
    buf = owned.get();
    std::lock_guard<std::mutex> lk(registryMtx_);
    buffers_.push_back(std::move(owned));
    return *buf;
}

void
Tracer::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
Tracer::setRingCapacity(std::size_t spans)
{
    ringCapacity_.store(spans == 0 ? 1 : spans,
                        std::memory_order_relaxed);
}

void
Tracer::record(const char *name, std::int64_t start_ns,
               std::int64_t end_ns)
{
    ThreadBuffer &buf = buffer();
    std::lock_guard<std::mutex> lk(buf.mtx);
    SpanRecord *slot;
    if (buf.ring.size() < buf.capacity) {
        buf.ring.emplace_back();
        slot = &buf.ring.back();
    } else {
        // Ring full: overwrite the oldest retained span.
        slot = &buf.ring[buf.written % buf.capacity];
    }
    slot->name.assign(name);
    slot->threadIndex = buf.threadIndex;
    slot->startNs = start_ns;
    slot->durNs = end_ns - start_ns;
    ++buf.written;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lk(registryMtx_);
    for (auto &buf : buffers_) {
        std::lock_guard<std::mutex> blk(buf->mtx);
        buf->ring.clear();
        buf->written = 0;
    }
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lk(registryMtx_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> blk(buf->mtx);
        const std::size_t n = buf->ring.size();
        // Oldest-first: when the ring has wrapped, the oldest retained
        // span sits at written % capacity.
        const std::size_t start =
            buf->written > n ? buf->written % buf->capacity : 0;
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(buf->ring[(start + i) % n]);
    }
    return out;
}

std::uint64_t
Tracer::spansRecorded() const
{
    std::uint64_t n = 0;
    std::lock_guard<std::mutex> lk(registryMtx_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> blk(buf->mtx);
        n += buf->written;
    }
    return n;
}

std::uint64_t
Tracer::spansDropped() const
{
    std::uint64_t n = 0;
    std::lock_guard<std::mutex> lk(registryMtx_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> blk(buf->mtx);
        n += buf->written - buf->ring.size();
    }
    return n;
}

std::string
Tracer::toChromeJson() const
{
    const std::vector<SpanRecord> all = spans();
    std::string j = "{\"traceEvents\":[";
    bool first = true;

    // Thread-name metadata rows, from the thread registry.
    const int nthreads = registeredThreadCount();
    for (int t = 0; t < nthreads; ++t) {
        if (!first)
            j += ",";
        first = false;
        j += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(t) + ",\"args\":{\"name\":\"" +
             jsonEscape(threadName(t)) + "\"}}";
    }

    char buf[160];
    for (const SpanRecord &s : all) {
        if (!first)
            j += ",";
        first = false;
        // Chrome trace timestamps are microseconds.
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"dur\":%.3f}",
                      s.threadIndex,
                      static_cast<double>(s.startNs) / 1e3,
                      static_cast<double>(s.durNs) / 1e3);
        j += "{\"name\":\"" + jsonEscape(s.name) + "\",\"cat\":\"sunstone\",";
        j += buf;
    }
    j += "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    j += "\"spans_recorded\":" + std::to_string(spansRecorded());
    j += ",\"spans_dropped\":" + std::to_string(spansDropped());
    j += ",\"tracing_compiled_in\":";
    j += tracingCompiledIn() ? "true" : "false";
    j += "}}";
    return j;
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toChromeJson() << "\n";
    return os.good();
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

namespace {

void
copyName(char (&dst)[kSpanNameMax + 1], const char *src, std::size_t len)
{
    if (len > kSpanNameMax)
        len = kSpanNameMax;
    std::memcpy(dst, src, len);
    dst[len] = '\0';
}

} // anonymous namespace

TraceSpan::TraceSpan(const char *name)
{
    if (!tracer().enabled())
        return;
    copyName(name_, name, std::strlen(name));
    startNs_ = traceNowNs();
}

TraceSpan::TraceSpan(const std::string &name)
{
    if (!tracer().enabled())
        return;
    copyName(name_, name.data(), name.size());
    startNs_ = traceNowNs();
}

TraceSpan::~TraceSpan()
{
    if (startNs_ < 0)
        return;
    tracer().record(name_, startNs_, traceNowNs());
}

} // namespace obs
} // namespace sunstone
