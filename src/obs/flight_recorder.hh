/**
 * @file
 * Flight recorder and crash-time diagnostics (DESIGN.md §14).
 *
 * The FlightRecorder keeps a fixed-size ring of recent structured
 * events — search started/finished, incumbent improved, checkpoint
 * written, fusion chain accepted/rejected, cache epoch resets. Events
 * are rare (nothing per-evaluation), so recording takes one short
 * mutex; when the ring is full the oldest event is overwritten, so the
 * recorder always holds the most recent window of history at a fixed
 * memory cost. That window is what a crash dump ships.
 *
 * The diag-bundle half turns the recorder into a crash-time artifact:
 * setDiagDir() names a directory, writeDiagBundle() flushes the event
 * ring, the metrics registry (plus an optional caller-provided extra
 * JSON document, e.g. engine stats), and the trace buffer into it, and
 * installCrashHandlers() arranges for fatal signals (SIGSEGV, SIGABRT,
 * SIGFPE, SIGILL, SIGBUS) and std::terminate to write the bundle
 * before the process dies. The handlers are best-effort by nature:
 * they allocate and take locks, which is not async-signal-safe, but a
 * crashing process has nothing to lose — the alternative is no
 * diagnostics at all. The cooperative SIGINT/SIGTERM path does not go
 * through them; the CLI flushes the same bundle cleanly on exit.
 */

#ifndef SUNSTONE_OBS_FLIGHT_RECORDER_HH
#define SUNSTONE_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace sunstone {
namespace obs {

/** One recorded event. */
struct FlightEvent
{
    /** Nanoseconds since the tracer epoch (process start). */
    std::int64_t ns = 0;
    /** Dotted event kind ("search.started", "chain.rejected", ...). */
    std::string kind;
    /** Free-form detail ("sunstone:conv3 evals=1200", ...). */
    std::string detail;
};

/** Fixed-capacity ring of recent events. Thread-safe. */
class FlightRecorder
{
  public:
    /** @param capacity ring size in events (min 8). */
    explicit FlightRecorder(std::size_t capacity = 512);

    /** Appends an event stamped with the current time. */
    void record(const std::string &kind, const std::string &detail = "");

    /** Ring capacity in events. */
    std::size_t capacity() const { return cap_; }

    /** Events recorded since construction (overwritten included). */
    std::uint64_t eventsRecorded() const;

    /** Events lost to ring overwrite. */
    std::uint64_t eventsDropped() const;

    /** The retained events, oldest first. */
    std::vector<FlightEvent> events() const;

    /** One JSON object per line: {"ns":..,"kind":"..","detail":".."}. */
    std::string toJsonl() const;

    /** Empties the ring (counters reset too). */
    void clear();

  private:
    const std::size_t cap_;
    mutable std::mutex mtx_;
    std::vector<FlightEvent> ring_; // ring_[recorded_ % cap_] is next
    std::uint64_t recorded_ = 0;
};

/** @return the process-wide recorder. */
FlightRecorder &flightRecorder();

// -- Diag bundle -------------------------------------------------------

/**
 * Names the directory diag bundles are written to (created on demand).
 * An empty path (the default) disables bundle writing entirely.
 */
void setDiagDir(const std::string &dir);

/** @return the configured diag directory ("" when unset). */
std::string diagDir();

/**
 * Registers a callback rendering an extra JSON document (typically the
 * evaluation engine's stats) stored as `engine.json` in the bundle.
 */
void setDiagExtraProvider(std::function<std::string()> provider);

/**
 * Writes the bundle into the configured directory:
 *   crash.txt     - `reason` plus the flight-event count
 *   events.jsonl  - the flight recorder ring
 *   metrics.json  - the process-wide metrics registry
 *   engine.json   - the extra provider's document (when registered)
 *   trace.json    - the span tracer's retained window (when any)
 * No-op when no directory is configured. Safe to call more than once;
 * later calls overwrite (the latest state wins).
 *
 * @return true when a bundle was written.
 */
bool writeDiagBundle(const std::string &reason);

/**
 * Installs fatal-signal (SIGSEGV/SIGABRT/SIGFPE/SIGILL/SIGBUS) and
 * std::terminate handlers that write the diag bundle and then re-raise
 * with default disposition, so exit codes and core dumps are preserved.
 * Idempotent.
 */
void installCrashHandlers();

} // namespace obs
} // namespace sunstone

#endif // SUNSTONE_OBS_FLIGHT_RECORDER_HH
