#include "obs/convergence.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace sunstone {
namespace obs {

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null"; // inf/nan are not valid JSON
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // anonymous namespace

ConvergenceTrajectory::ConvergenceTrajectory(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
}

void
ConvergenceTrajectory::record(std::int64_t evaluations, double energy_pj,
                              double edp, double metric)
{
    ConvergencePoint p;
    p.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    p.evaluations = evaluations;
    p.energyPj = energy_pj;
    p.edp = edp;
    p.metric = metric;
    std::lock_guard<std::mutex> lk(mtx_);
    points_.push_back(p);
}

std::vector<ConvergencePoint>
ConvergenceTrajectory::points() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return points_;
}

ConvergenceTrajectory &
ConvergenceRecorder::start(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    trajectories_.push_back(
        std::make_unique<ConvergenceTrajectory>(name));
    return *trajectories_.back();
}

std::size_t
ConvergenceRecorder::trajectoryCount() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return trajectories_.size();
}

std::vector<const ConvergenceTrajectory *>
ConvergenceRecorder::trajectories() const
{
    std::vector<const ConvergenceTrajectory *> out;
    std::lock_guard<std::mutex> lk(mtx_);
    out.reserve(trajectories_.size());
    for (const auto &t : trajectories_)
        out.push_back(t.get());
    return out;
}

TimeToQuality
timeToQuality(const std::vector<ConvergencePoint> &points)
{
    TimeToQuality t;
    if (points.empty())
        return t;
    const ConvergencePoint &last = points.back();
    t.finalMetric = last.metric;
    t.finalEvaluations = last.evaluations;
    const double band1 = last.metric * 1.01;
    const double band5 = last.metric * 1.05;
    for (const ConvergencePoint &p : points) {
        if (t.evalsTo5pct < 0 && p.metric <= band5) {
            t.evalsTo5pct = p.evaluations;
            t.secondsTo5pct = p.seconds;
        }
        if (t.evalsTo1pct < 0 && p.metric <= band1) {
            t.evalsTo1pct = p.evaluations;
            t.secondsTo1pct = p.seconds;
            break;
        }
    }
    return t;
}

std::string
ConvergenceRecorder::toJson() const
{
    const auto trajs = trajectories();
    std::string j = "{\"trajectories\":[";
    for (std::size_t i = 0; i < trajs.size(); ++i) {
        if (i)
            j += ",";
        j += "{\"name\":\"" + jsonEscape(trajs[i]->name()) +
             "\",\"points\":[";
        const auto pts = trajs[i]->points();
        for (std::size_t k = 0; k < pts.size(); ++k) {
            const ConvergencePoint &p = pts[k];
            if (k)
                j += ",";
            j += "{\"seconds\":" + num(p.seconds);
            j += ",\"evaluations\":" + std::to_string(p.evaluations);
            j += ",\"energy_pj\":" + num(p.energyPj);
            j += ",\"edp\":" + num(p.edp);
            j += ",\"metric\":" + num(p.metric);
            j += "}";
        }
        j += "]}";
    }
    j += "]}";
    return j;
}

bool
ConvergenceRecorder::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << toJson() << "\n";
    return os.good();
}

} // namespace obs
} // namespace sunstone
