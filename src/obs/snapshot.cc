#include "obs/snapshot.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"

namespace sunstone {
namespace obs {

SnapshotWriter::SnapshotWriter(std::string path, int interval_ms)
    : path_(std::move(path)), intervalMs_(std::max(10, interval_ms)),
      start_(std::chrono::steady_clock::now())
{
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void
SnapshotWriter::setExtraProvider(std::function<std::string()> provider)
{
    extra_ = std::move(provider);
}

bool
SnapshotWriter::start()
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (running_)
        return true;
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        return false;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
    lk.unlock();
    writeNow(); // even a sub-interval run leaves at least one record
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
SnapshotWriter::stop()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        if (!running_)
            return;
        running_ = false;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    writeNow(); // final record reflecting the finished state
    std::lock_guard<std::mutex> lk(mtx_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::string
SnapshotWriter::renderRecord()
{
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    ProgressBoard &board = progressBoard();

    std::string j = "{\"seq\":" +
                    std::to_string(seq_.load(std::memory_order_relaxed));
    j += ",\"elapsed_seconds\":" + jsonDouble(elapsed);
    j += ",\"units\":{\"done\":" + std::to_string(board.unitsDone()) +
         ",\"total\":" + std::to_string(board.unitsTotal()) + "}";
    j += ",\"searches\":[";
    bool first = true;
    for (const SearchStatus *s : board.snapshot()) {
        if (!first)
            j += ",";
        first = false;
        j += "{\"label\":\"" + jsonEscape(s->label()) + "\"";
        j += ",\"evaluated\":" + std::to_string(s->evaluated());
        j += ",\"found\":" + std::string(s->found() ? "true" : "false");
        const double best = s->bestMetric();
        j += ",\"best_metric\":" +
             (std::isfinite(best) ? jsonDouble(best)
                                  : std::string("null"));
        j += ",\"improvements\":" + std::to_string(s->improvements());
        j += ",\"elapsed_seconds\":" + jsonDouble(s->elapsedSeconds());
        j += ",\"done\":" + std::string(s->done() ? "true" : "false");
        j += ",\"stop_reason\":\"" + jsonEscape(s->stopReason()) + "\"";
        j += "}";
    }
    j += "]";
    j += ",\"registry\":" + metrics().toJson();
    if (extra_)
        j += ",\"extra\":" + extra_();
    j += "}";
    return j;
}

bool
SnapshotWriter::writeNow()
{
    std::lock_guard<std::mutex> wlk(writeMtx_);
    int fd;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        fd = fd_;
    }
    if (fd < 0)
        return false;
    std::string line = renderRecord();
    line += "\n";
    seq_.fetch_add(1, std::memory_order_relaxed);
    // One write(2) per record on an O_APPEND descriptor: a kill can
    // tear at most the final line; complete lines are complete records.
    const char *p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

void
SnapshotWriter::loop()
{
    std::unique_lock<std::mutex> lk(mtx_);
    while (running_) {
        if (cv_.wait_for(lk, std::chrono::milliseconds(intervalMs_),
                         [this] { return !running_; }))
            break;
        lk.unlock();
        writeNow();
        lk.lock();
    }
}

} // namespace obs
} // namespace sunstone
