/**
 * @file
 * Persistent cross-layer warm-start store (DESIGN.md §15). Relaxes the
 * net scheduler's exact structural fingerprints to a similarity metric:
 * two layers belong to the same *shape class* when their architecture
 * and einsum access structure match (dimension extents excluded), and
 * within a class similarity is the L2 distance between log2 dimension
 * extents. The store keeps the best mapping seen per exact shape and
 * answers "give me seeds for this layer" with the nearest stored bests,
 * each adapted divisor-exactly to the query's extents. Versioned JSON
 * on disk (like SearchCheckpoint), byte-stable across load/save round
 * trips. This is the first brick of the ROADMAP item-1 cross-request
 * mapping cache.
 */

#ifndef SUNSTONE_SEARCH_WARMSTART_HH
#define SUNSTONE_SEARCH_WARMSTART_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hh"
#include "mapping/mapping.hh"

namespace sunstone {

/**
 * Adapts a mapping found for one set of dimension extents to a workload
 * with different extents: per dimension, each level keeps the largest
 * divisor of the remaining extent not exceeding the stored factor
 * (spatial slots first, innermost levels first), and any leftover lands
 * in the outermost level's temporal factor. Loop orders copy verbatim.
 * The result is always divisor-exact; spatial fanout bounds hold
 * because adapted factors never exceed the stored ones.
 */
Mapping adaptMapping(const Mapping &m, const BoundArch &ba);

/** Best-mapping store keyed by shape class + exact extents. */
class WarmStartStore
{
  public:
    struct Entry
    {
        std::uint64_t shapeClass = 0;
        std::string name;
        std::vector<std::int64_t> extents;
        /** Best EDP (pJ*s) realized by mapping on this shape. */
        double metric = 0;
        Mapping mapping;
    };

    /**
     * Structural hash of a binding: architecture levels (capacity,
     * fanout, mesh, bypass per tensor) and workload access structure
     * (tensor ranks as (dim, coeff) terms, word widths, output flags),
     * with dimension extents deliberately excluded.
     */
    static std::uint64_t shapeClassKey(const BoundArch &ba);

    /** Loads path; @return false (store untouched) if unreadable. */
    bool load(const std::string &path, std::string *err = nullptr);

    /** Saves atomically (temp + rename). @return false on IO error. */
    bool save(const std::string &path) const;

    std::string toJson() const;
    bool fromJson(const std::string &text, std::string *err = nullptr);

    /**
     * Records a realized best. Keeps the better metric when an entry
     * with the same class and extents exists. @return true when the
     * store changed.
     */
    bool record(const BoundArch &ba, const std::string &name,
                double metric, const Mapping &mapping);

    /**
     * @return up to k seed mappings for ba, adapted to its extents,
     * nearest stored shape first (exact-extent matches sort first at
     * distance zero; ties keep insertion order).
     */
    std::vector<Mapping> query(const BoundArch &ba,
                               std::size_t k = 2) const;

    std::size_t size() const { return entries_.size(); }
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

} // namespace sunstone

#endif // SUNSTONE_SEARCH_WARMSTART_HH
