/**
 * @file
 * The one audited search loop (DESIGN.md §12). Every search in the
 * repository — Sunstone's per-level beam, the refine hill-climb, and
 * all six baseline mappers — runs through a SearchDriver, which owns,
 * in exactly one place:
 *
 *  - batching candidates into EvalEngine::evaluateBatch (parallel
 *    evaluation, *serial* in-order result consumption, so outcomes are
 *    bit-identical regardless of thread count);
 *  - best-so-far tracking and the convergence trajectory;
 *  - StopPolicy enforcement (deadline, max-evals, plateau, invalid
 *    streak, cooperative cancellation) with a recorded StopReason;
 *  - the monotonic clock and the evaluation counters every
 *    MapperResult reports;
 *  - checkpoint save/resume at candidate-batch boundaries.
 *
 * Two usage modes:
 *  - Stream mode: the search implements CandidateStream (a pull-model
 *    `nextBatch()`) and calls run(). Used by all six mappers.
 *  - Manual mode: structured searches (the beam, the hill-climb) keep
 *    their own loop shape and use shouldStop()/noteEvaluated()/offer()
 *    plus checkpointNow() so accounting and termination still live
 *    here.
 */

#ifndef SUNSTONE_SEARCH_SEARCH_DRIVER_HH
#define SUNSTONE_SEARCH_SEARCH_DRIVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.hh"
#include "model/eval_engine.hh"
#include "obs/progress.hh"
#include "search/search_context.hh"

namespace sunstone {

/**
 * A pull-model source of candidate mappings. Implementations are only
 * ever called from the driver thread (generation and result observation
 * are serial by design — that is what makes results independent of
 * --threads).
 */
class CandidateStream
{
  public:
    virtual ~CandidateStream() = default;

    /** How a resumed run repositions this stream. */
    enum class ResumeMode {
        /** restoreState() consumes the checkpoint payload. */
        State,
        /** skip(consumed) replays and discards the prefix. */
        Replay,
        /** Nothing to do; restored RNG cursors reposition it. */
        RngCursor,
    };

    /**
     * Appends up to `max` candidates to `out`.
     * @return false when the stream is exhausted (an empty append with
     *         a true return is also treated as exhaustion).
     */
    virtual bool nextBatch(std::size_t max, std::vector<Mapping> &out) = 0;

    /**
     * Serial, in-generation-order observation of every consumed result
     * (stateful streams — the GA — build their next round from these).
     */
    virtual void
    onResult(std::size_t index_in_batch, const Mapping &m,
             const CostResult &cr)
    {
        (void)index_in_batch;
        (void)m;
        (void)cr;
    }

    virtual EvalEngine::CachePolicy
    cachePolicy() const
    {
        return EvalEngine::CachePolicy::UseCache;
    }

    virtual CostModelOptions costOptions() const { return {}; }

    virtual ResumeMode resumeMode() const { return ResumeMode::State; }

    /**
     * Whether the surrogate ranker may truncate this stream's batches.
     * Streams that must see a result for every generated candidate
     * (the GA scores whole generations) return RankOnly.
     */
    virtual SurrogatePolicy
    surrogatePolicy() const
    {
        return SurrogatePolicy::RankAndPrune;
    }

    /** Opaque checkpoint payload (a JSON object rendered to text). */
    virtual std::string saveState() const { return "{}"; }

    /** @return false when the payload is malformed. */
    virtual bool
    restoreState(const std::string &payload)
    {
        (void)payload;
        return true;
    }

    /**
     * Generates and discards `n` candidates (ResumeMode::Replay). The
     * default implementation pulls through nextBatch().
     */
    virtual void skip(std::int64_t n);
};

/**
 * Adapts a push-style enumeration (nested loops, recursion) into a
 * CandidateStream: the producer runs on a dedicated thread and blocks
 * on a bounded queue; nextBatch() pops in production order, so the
 * stream is deterministic. Resume is by replay (generation is cheap for
 * enumerations; no RNG involved).
 */
class GeneratorStream : public CandidateStream
{
  public:
    /** Pushes one candidate; returns false when producing must stop. */
    using Sink = std::function<bool(Mapping &&)>;
    using Producer = std::function<void(const Sink &)>;

    explicit GeneratorStream(
        Producer producer, std::size_t queue_capacity = 2048,
        SurrogatePolicy policy = SurrogatePolicy::RankAndPrune);
    ~GeneratorStream() override;

    bool nextBatch(std::size_t max, std::vector<Mapping> &out) override;
    void skip(std::int64_t n) override;
    ResumeMode resumeMode() const override { return ResumeMode::Replay; }
    SurrogatePolicy surrogatePolicy() const override { return policy_; }

  private:
    void ensureStarted();

    Producer producer_;
    const std::size_t cap_;
    const SurrogatePolicy policy_;
    std::thread worker_;
    std::mutex mtx_;
    std::condition_variable cv_;
    std::deque<Mapping> queue_;
    bool started_ = false;
    bool done_ = false;
    bool stopRequested_ = false;
};

/** What a SearchDriver hands back. */
struct DriverOutcome
{
    bool found = false;
    Mapping best;
    CostResult bestCost;
    double bestMetric = std::numeric_limits<double>::infinity();

    /** Candidates consumed by the driver (== MapperResult count). */
    std::int64_t evaluated = 0;

    /** Wall-clock of the search, resumed time included. */
    double seconds = 0;

    StopReason reason = StopReason::Exhausted;

    /** Diagnostic from the first invalid evaluation ("" when none). */
    std::string firstInvalidReason;
};

class SearchDriver
{
  public:
    /**
     * @param label search name for checkpoints/telemetry/convergence
     * @param optimize_edp minimize EDP when true, energy otherwise
     */
    SearchDriver(SearchContext &sc, EvalEngine &engine, const BoundArch &ba,
                 std::string label, bool optimize_edp);

    SearchDriver(const SearchDriver &) = delete;
    SearchDriver &operator=(const SearchDriver &) = delete;

    /** Runs the stream to a stop condition (stream mode). */
    DriverOutcome run(CandidateStream &stream);

    // -- Manual mode ----------------------------------------------------

    /**
     * Thread-safe stop check for structured searches: deadline, hard
     * deadline, cancellation, and max-evals. The first reason to trip
     * is latched.
     */
    bool shouldStop();

    /** Thread-safe evaluation accounting (manual mode). */
    void
    noteEvaluated(std::int64_t n = 1)
    {
        evaluated_.fetch_add(n, std::memory_order_relaxed);
        status_->noteEvaluated(n);
    }

    /**
     * Offers a candidate to the incumbent (serial calls only).
     * @return true when it improved the incumbent.
     */
    bool offer(const Mapping &m, const CostResult &cr);

    /**
     * Consumes the context's pending resume snapshot: validates label /
     * fingerprint / seed, restores RNG cursors, counters, and the
     * incumbent (re-evaluating its cost through the engine).
     * @return the opaque stream payload, or "" when there is nothing
     *         to resume.
     */
    std::string consumeResumePayload();

    /** Writes a checkpoint immediately with the given payload. */
    void checkpointNow(const std::string &payload);

    /**
     * Evaluates the context's warm-start seed mappings (serially, once,
     * at a fresh start — run() calls this itself; manual-mode searches
     * call it before building their initial population/beam). Seeds
     * count as evaluations and may set the incumbent, but never advance
     * the plateau or invalid-streak windows.
     */
    void seedWarmStarts();

    /**
     * The online surrogate ranker, or nullptr when --surrogate is off.
     * Serial contexts only (the driver loop, refine's hill-climb).
     */
    SurrogateModel *surrogate() { return surrogate_.get(); }

    /** Accounts candidates skipped on the surrogate's verdict. */
    void noteSurrogatePruned(std::int64_t n) { prunedTotal_ += n; }

    /** Surrogate-pruned candidates (never fully evaluated) so far. */
    std::int64_t surrogatePruned() const { return prunedTotal_; }

    /**
     * Finalizes accounting and telemetry; records the final convergence
     * point. `natural` is the reason reported when no StopPolicy bound
     * fired. @return the outcome.
     */
    DriverOutcome finish(StopReason natural = StopReason::Exhausted);

    // -- Accessors ------------------------------------------------------

    std::int64_t
    evaluated() const
    {
        return evaluated_.load(std::memory_order_relaxed);
    }

    /** Elapsed seconds, including time from resumed runs. */
    double seconds() const { return baseSeconds_ + timer_.seconds(); }

    StopReason
    reason() const
    {
        return static_cast<StopReason>(
            reason_.load(std::memory_order_relaxed));
    }

    EvalEngine &engine() { return engine_; }
    const EvalEngine::Context &evalContext() const { return evalCtx_; }
    SearchContext &context() { return sc_; }
    const std::string &label() const { return label_; }
    bool optimizeEdp() const { return optimizeEdp_; }
    bool found() const { return found_; }
    double bestMetric() const { return bestMetric_; }
    const Mapping &bestMapping() const { return bestMapping_; }

  private:
    double metricOf(const CostResult &cr) const;
    /** Latches `r` as the stop reason if none is set yet. */
    bool latchReason(StopReason r);
    void maybeCheckpoint(const CandidateStream *stream, bool force);
    void writeCheckpoint(const std::string &payload);
    /** Surrogate-ranked batch path. @return true on a mid-batch stop. */
    bool runRankedBatch(CandidateStream &stream,
                        const std::vector<Mapping> &batch,
                        std::vector<CostResult> &results);

    SearchContext &sc_;
    EvalEngine &engine_;
    EvalEngine::Context evalCtx_;
    const std::string label_;
    const bool optimizeEdp_;

    Timer timer_;
    double baseSeconds_ = 0;
    std::atomic<std::int64_t> evaluated_{0};
    std::atomic<int> reason_{static_cast<int>(StopReason::None)};

    // Incumbent state; mutated only from the (serial) driver thread.
    bool found_ = false;
    double bestMetric_ = std::numeric_limits<double>::infinity();
    Mapping bestMapping_;
    CostResult bestCost_;
    std::string firstInvalidReason_;

    // Stream-mode streak counters (serial).
    std::int64_t plateauLength_ = 0;
    std::int64_t invalidStreak_ = 0;

    // Surrogate ranking state (serial). consumed_ counts stream
    // positions generated — it exceeds evaluated_ once pruning starts,
    // and Replay resume repositions by it.
    std::unique_ptr<SurrogateModel> surrogate_;
    std::int64_t consumed_ = 0;
    std::int64_t prunedTotal_ = 0;
    bool streamMode_ = false;
    std::vector<double> featRow_, rankPreds_, gatePreds_, gateMetrics_;
    std::vector<std::size_t> rankOrder_;
    std::vector<Mapping> keptBatch_;
    std::vector<std::pair<std::size_t, std::size_t>> deliver_;

    obs::ConvergenceTrajectory *traj_ = nullptr;
    obs::SearchStatus *status_ = nullptr; // board entry; never null
    double lastCheckpointSeconds_ = -1;
    bool finished_ = false;
};

} // namespace sunstone

#endif // SUNSTONE_SEARCH_SEARCH_DRIVER_HH
