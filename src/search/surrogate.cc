#include "search/surrogate.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace sunstone {

namespace {

/** Relative ridge strength: lambda = kRidge * mean feature variance. */
constexpr double kRidge = 1e-3;

/** EWMA smoothing for the per-batch Kendall-tau estimates. */
constexpr double kTauAlpha = 0.2;

/** Minimum comparable pairs before a batch contributes a tau sample. */
constexpr int kMinTauPairs = 16;

double
log2Clamped(double v)
{
    return std::log2(std::max(v, 1.0));
}

/** Upper-triangle packed index (i <= j) for an f x f matrix. */
std::size_t
triIndex(std::size_t i, std::size_t j, std::size_t f)
{
    return i * f - i * (i - 1) / 2 + (j - i);
}

} // namespace

SurrogateModel::SurrogateModel(const BoundArch &ba,
                               const SurrogateOptions &opts)
    : ba_(ba), opts_(opts)
{
    const int nl = ba.numLevels();
    const int nd = ba.workload().numDims();
    const int nt = ba.numTensors();
    // Per level: log2 temporal volume, log2 spatial volume, log2 stored
    // footprint bits, log2 footprint/capacity pressure, its positive
    // part (the overflow hinge — lets a linear model carve out the
    // sharp validity boundary), log2 spatial/fanout pressure, a
    // one-hot innermost nontrivial temporal dim (nd slots), and per
    // tensor the log2 temporal volume of dims that do not index it
    // (the refetch multiplier the level imposes on that tensor — the
    // main driver of traffic below it). Plus one global: log2 total
    // spatial unrolling.
    featureCount_ = nl * (6 + nd + nt) + 1;
    tensorDims_.reserve(nt);
    for (int t = 0; t < nt; ++t)
        tensorDims_.push_back(ba.workload().tensor(t).indexingDims());
    const std::size_t f = static_cast<std::size_t>(featureCount_);
    reg_.init(f);
    cls_.init(f);
    wReg_.assign(f, 0.0);
    wCls_.assign(f, 0.0);
}

void
SurrogateModel::Accum::init(std::size_t f)
{
    sumX.assign(f, 0.0);
    xtx.assign(f * (f + 1) / 2, 0.0);
    xty.assign(f, 0.0);
}

void
SurrogateModel::Accum::add(const std::vector<double> &x, double y)
{
    const std::size_t f = sumX.size();
    ++count;
    sumY += y;
    for (std::size_t i = 0; i < f; ++i) {
        sumX[i] += x[i];
        xty[i] += x[i] * y;
        const double xi = x[i];
        double *row = &xtx[triIndex(i, i, f)];
        for (std::size_t j = i; j < f; ++j)
            row[j - i] += xi * x[j];
    }
}

void
SurrogateModel::featurize(const Mapping &m, std::vector<double> &out) const
{
    const Workload &wl = ba_.workload();
    const int nl = ba_.numLevels();
    const int nd = wl.numDims();
    out.assign(featureCount_, 0.0);

    std::size_t k = 0;
    for (int l = 0; l < nl; ++l) {
        const LevelMapping &lm = m.level(l);
        double tvol = 1, svol = 1;
        for (int d = 0; d < nd; ++d) {
            tvol *= static_cast<double>(lm.temporal[d]);
            svol *= static_cast<double>(lm.spatial[d]);
        }
        out[k++] = log2Clamped(tvol);
        out[k++] = log2Clamped(svol);

        const std::vector<std::int64_t> fps = m.footprints(l, wl);
        double bits = 0;
        for (int t = 0; t < ba_.numTensors(); ++t)
            if (ba_.stores(l, t))
                bits += static_cast<double>(fps[t])
                        * wl.tensor(t).wordBits;
        out[k++] = log2Clamped(1.0 + bits);

        // Capacity pressure: log2 of the effective footprint over the
        // level's budget, mirroring BoundArch::fits (double-buffer
        // shrink, per-partition budgets, DRAM unbounded). Negative
        // means it fits; the hinge isolates the overflow regime.
        const LevelSpec &lv = ba_.arch().levels[l];
        double pressure = 0;
        if (!lv.isDram) {
            const double shrink = lv.doubleBuffered ? 2.0 : 1.0;
            if (lv.partitions.empty()) {
                pressure = std::log2((1.0 + bits * shrink)
                                     / (1.0 + static_cast<double>(
                                                  lv.capacityBits)));
            } else {
                pressure = -64.0;
                for (const auto &p : lv.partitions) {
                    double pbits = 0;
                    for (int t = 0; t < ba_.numTensors(); ++t)
                        if (ba_.stores(l, t)
                            && ba_.partitionOf(t) == p.name)
                            pbits += static_cast<double>(fps[t])
                                     * wl.tensor(t).wordBits;
                    pressure = std::max(
                        pressure,
                        std::log2((1.0 + pbits * shrink)
                                  / (1.0 + static_cast<double>(
                                               p.capacityBits))));
                }
            }
        }
        out[k++] = pressure;
        out[k++] = std::max(0.0, pressure);

        // Spatial pressure: unrolling relative to the level's fanout
        // (0 when svol == fanout, i.e. perfectly utilized).
        const double fanout
            = static_cast<double>(std::max(1, lv.fanout));
        out[k++] = log2Clamped(svol) - std::log2(fanout);

        // Innermost nontrivial temporal loop: the last entry of the
        // order permutation whose factor exceeds 1 (orders run
        // outermost-first). Captures the stationarity class.
        int inner = -1;
        for (int pos = static_cast<int>(lm.order.size()) - 1; pos >= 0;
             --pos) {
            const DimId d = lm.order[pos];
            if (lm.temporal[d] > 1) {
                inner = d;
                break;
            }
        }
        for (int d = 0; d < nd; ++d)
            out[k + d] = (d == inner) ? 1.0 : 0.0;
        k += nd;

        for (int t = 0; t < ba_.numTensors(); ++t) {
            double refetch = 0;
            for (int d = 0; d < nd; ++d)
                if (!tensorDims_[t].contains(d))
                    refetch += log2Clamped(
                        static_cast<double>(lm.temporal[d]));
            out[k++] = refetch;
        }
    }
    out[k++] = log2Clamped(static_cast<double>(m.totalSpatial()));
    SUNSTONE_ASSERT(k == static_cast<std::size_t>(featureCount_),
                    "surrogate feature layout mismatch");
}

/** Tier separation for predicted-invalid candidates; far larger than
 *  any clamped log-metric yet finite (order stays total). */
constexpr double kTierPenalty = 1e6;

double
SurrogateModel::predict(const std::vector<double> &features) const
{
    double r = bReg_;
    double c = bCls_;
    for (std::size_t i = 0; i < features.size(); ++i) {
        r += wReg_[i] * features[i];
        c += wCls_[i] * features[i];
    }
    // Clamp the regression to the realized valid range: extrapolations
    // into the overflow regime are meaningless and must not let a
    // predicted-invalid candidate outrank the penalty tier.
    r = std::clamp(r, clampLo_, clampHi_);
    return (c > 0.5 ? kTierPenalty : 0.0) + r;
}

void
SurrogateModel::observe(const std::vector<double> &features, double metric)
{
    const bool valid = std::isfinite(metric) && metric > 0;
    if (valid) {
        const double y = std::log(metric);
        if (reg_.count == 0) {
            vMin_ = y;
            vMax_ = y;
        } else {
            vMin_ = std::min(vMin_, y);
            vMax_ = std::max(vMax_, y);
        }
        reg_.add(features, y);
        sumYYv_ += y * y;
    }
    cls_.add(features, valid ? 0.0 : 1.0);
    dirty_ = true;
    ++observed_;
}

bool
SurrogateModel::solve(const Accum &a, std::vector<double> &w, double &b)
{
    if (a.count < 2)
        return false;

    // Solve the centered ridge normal equations (Cov + lambda I) w = c
    // by Cholesky. Centering removes the intercept from the system;
    // the ridge keeps it solvable long before count reaches the
    // feature count and absorbs constant (zero-variance) features.
    const std::size_t f = a.sumX.size();
    const double n = static_cast<double>(a.count);
    const double ymean = a.sumY / n;

    solveScratch_.assign(f * f + 2 * f, 0.0);
    double *m = solveScratch_.data();      // f*f, row-major, symmetric
    double *rhs = m + f * f;               // f
    double *mean = rhs + f;                // f
    for (std::size_t i = 0; i < f; ++i)
        mean[i] = a.sumX[i] / n;
    double trace = 0;
    for (std::size_t i = 0; i < f; ++i) {
        for (std::size_t j = i; j < f; ++j) {
            const double cov
                = a.xtx[triIndex(i, j, f)] / n - mean[i] * mean[j];
            m[i * f + j] = cov;
            m[j * f + i] = cov;
        }
        trace += m[i * f + i];
        rhs[i] = a.xty[i] / n - mean[i] * ymean;
    }
    double lambda = kRidge * std::max(trace / static_cast<double>(f),
                                      1e-9);

    // In-place Cholesky with deterministic restarts at 10x the ridge
    // whenever a pivot degenerates (possible with heavily duplicated
    // rows); give up and keep the previous weights after a few tries.
    for (int attempt = 0; attempt < 6; ++attempt) {
        for (std::size_t i = 0; i < f; ++i)
            m[i * f + i] += lambda;
        bool ok = true;
        for (std::size_t i = 0; i < f && ok; ++i) {
            for (std::size_t j = i; j < f; ++j) {
                double s = m[i * f + j];
                for (std::size_t k = 0; k < i; ++k)
                    s -= m[i * f + k] * m[j * f + k];
                if (i == j) {
                    if (s <= 1e-15) {
                        ok = false;
                        break;
                    }
                    m[i * f + i] = std::sqrt(s);
                } else {
                    m[j * f + i] = s / m[i * f + i];
                }
            }
        }
        if (!ok) {
            // Rebuild the upper triangle trampled by the failed
            // factorization, bump the ridge, retry.
            for (std::size_t i = 0; i < f; ++i)
                for (std::size_t j = i; j < f; ++j) {
                    const double cov = a.xtx[triIndex(i, j, f)] / n
                                       - mean[i] * mean[j];
                    m[i * f + j] = cov;
                    m[j * f + i] = cov;
                }
            lambda *= 10.0;
            continue;
        }
        // Forward then back substitution into w.
        w.resize(f);
        for (std::size_t i = 0; i < f; ++i) {
            double s = rhs[i];
            for (std::size_t k = 0; k < i; ++k)
                s -= m[i * f + k] * w[k];
            w[i] = s / m[i * f + i];
        }
        for (std::size_t ii = f; ii-- > 0;) {
            double s = w[ii];
            for (std::size_t k = ii + 1; k < f; ++k)
                s -= m[k * f + ii] * w[k];
            w[ii] = s / m[ii * f + ii];
        }
        b = ymean;
        for (std::size_t i = 0; i < f; ++i)
            b -= w[i] * mean[i];
        return true;
    }
    return false;
}

void
SurrogateModel::refit()
{
    if (!dirty_)
        return;
    dirty_ = false;

    solve(reg_, wReg_, bReg_);
    solve(cls_, wCls_, bCls_);

    // Clamp band for the regression score: the realized valid range
    // padded by one standard deviation (so confident "worse than
    // anything seen" predictions still order behind the seen range).
    if (reg_.count >= 2) {
        const double n = static_cast<double>(reg_.count);
        const double mean = reg_.sumY / n;
        const double var
            = std::max(0.0, (sumYYv_ - n * mean * mean)
                                / static_cast<double>(reg_.count - 1));
        const double sd = var > 1e-12 ? std::sqrt(var) : 1.0;
        clampLo_ = vMin_ - sd;
        clampHi_ = vMax_ + sd;
    }
}

void
SurrogateModel::updateGate(const std::vector<double> &preds,
                           const std::vector<double> &metrics)
{
    SUNSTONE_ASSERT(preds.size() == metrics.size(),
                    "gate update size mismatch");
    // Kendall tau-a over the batch, skipping pairs tied in either
    // ranking (infinities compare as equal to each other).
    std::int64_t concordant = 0, discordant = 0;
    for (std::size_t i = 0; i + 1 < preds.size(); ++i) {
        for (std::size_t j = i + 1; j < preds.size(); ++j) {
            if (preds[i] == preds[j])
                continue;
            const double mi = metrics[i], mj = metrics[j];
            if (mi == mj || (!std::isfinite(mi) && !std::isfinite(mj)))
                continue;
            const bool predLess = preds[i] < preds[j];
            const bool metricLess
                = !std::isfinite(mj) || (std::isfinite(mi) && mi < mj);
            (predLess == metricLess) ? ++concordant : ++discordant;
        }
    }
    const std::int64_t pairs = concordant + discordant;
    if (pairs >= kMinTauPairs) {
        const double tau = static_cast<double>(concordant - discordant)
                           / static_cast<double>(pairs);
        tauEwma_ = tauInit_ ? (1.0 - kTauAlpha) * tauEwma_ + kTauAlpha * tau
                            : tau;
        tauInit_ = true;
    }
    if (!gateOpen_) {
        if (observed_ >= opts_.minSamples && tauEwma_ >= opts_.tauOpen)
            gateOpen_ = true;
    } else if (tauEwma_ < opts_.tauClose) {
        gateOpen_ = false;
    }
}

void
SurrogateModel::rankBatch(const std::vector<Mapping> &batch,
                          std::vector<std::size_t> &order,
                          std::vector<double> &preds)
{
    refit();
    const std::size_t n = batch.size();
    preds.resize(n);
    std::vector<double> local;
    for (std::size_t i = 0; i < n; ++i) {
        featurize(batch[i], local);
        preds[i] = predict(local);
    }
    order.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&preds](std::size_t a, std::size_t b) {
                         return preds[a] < preds[b];
                     });
}

std::string
SurrogateModel::saveState() const
{
    std::ostringstream os;
    os << "{\"version\": 1";
    os << ", \"observed\": " << observed_;
    os << ", \"tau\": " << jsonDouble(tauEwma_);
    os << ", \"tau_init\": " << (tauInit_ ? "true" : "false");
    os << ", \"gate_open\": " << (gateOpen_ ? "true" : "false");
    os << ", \"sum_yyv\": " << jsonDouble(sumYYv_);
    os << ", \"v_min\": " << jsonDouble(vMin_);
    os << ", \"v_max\": " << jsonDouble(vMax_);
    auto arr = [&os](const char *name, const std::vector<double> &v) {
        os << ", \"" << name << "\": [";
        for (std::size_t i = 0; i < v.size(); ++i)
            os << (i ? ", " : "") << jsonDouble(v[i]);
        os << "]";
    };
    // Weights and biases are derived state: refit() reproduces them
    // bit-exactly from these sums, so they are deliberately omitted.
    auto accum = [&os, &arr](const char *prefix, const Accum &a) {
        os << ", \"" << prefix << "_count\": " << a.count;
        os << ", \"" << prefix << "_sum_y\": " << jsonDouble(a.sumY);
        arr((std::string(prefix) + "_sum_x").c_str(), a.sumX);
        arr((std::string(prefix) + "_xty").c_str(), a.xty);
        arr((std::string(prefix) + "_xtx").c_str(), a.xtx);
    };
    accum("reg", reg_);
    accum("cls", cls_);
    os << "}";
    return os.str();
}

bool
SurrogateModel::restoreState(const std::string &payload)
{
    JsonValue v;
    std::string err;
    if (!parseJson(payload, v, &err))
        return false;
    const JsonValue *ver = v.find("version");
    if (!ver || ver->asInt() != 1)
        return false;
    auto loadArr = [&v](const char *name, std::size_t want,
                        std::vector<double> &out) {
        const JsonValue *a = v.find(name);
        if (!a || !a->isArray() || a->items.size() != want)
            return false;
        out.resize(a->items.size());
        for (std::size_t i = 0; i < a->items.size(); ++i)
            out[i] = a->items[i].asDouble();
        return true;
    };
    const std::size_t fc = static_cast<std::size_t>(featureCount_);
    auto loadAccum = [&](const char *prefix, Accum &a) {
        const std::string p(prefix);
        std::vector<double> sx, xy, xx;
        if (!loadArr((p + "_sum_x").c_str(), fc, sx)
            || !loadArr((p + "_xty").c_str(), fc, xy)
            || !loadArr((p + "_xtx").c_str(), fc * (fc + 1) / 2, xx))
            return false;
        const JsonValue *c = v.find(p + "_count");
        const JsonValue *s = v.find(p + "_sum_y");
        if (!c || !s)
            return false;
        a.count = c->asInt();
        a.sumY = s->asDouble();
        a.sumX = std::move(sx);
        a.xty = std::move(xy);
        a.xtx = std::move(xx);
        return true;
    };
    Accum reg, cls;
    if (!loadAccum("reg", reg) || !loadAccum("cls", cls))
        return false;
    reg_ = std::move(reg);
    cls_ = std::move(cls);
    const JsonValue *f = nullptr;
    observed_ = (f = v.find("observed")) ? f->asInt() : 0;
    tauEwma_ = (f = v.find("tau")) ? f->asDouble() : 0;
    tauInit_ = (f = v.find("tau_init")) && f->asBool();
    gateOpen_ = (f = v.find("gate_open")) && f->asBool();
    sumYYv_ = (f = v.find("sum_yyv")) ? f->asDouble() : 0;
    vMin_ = (f = v.find("v_min")) ? f->asDouble() : 0;
    vMax_ = (f = v.find("v_max")) ? f->asDouble() : 0;
    // Weights are rebuilt lazily from the restored sums; refit() is a
    // pure function of them, so the resumed run ranks identically.
    wReg_.assign(fc, 0.0);
    wCls_.assign(fc, 0.0);
    bReg_ = bCls_ = clampLo_ = clampHi_ = 0;
    dirty_ = observed_ > 0;
    return true;
}

} // namespace sunstone
