#include "search/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sunstone {

namespace {

std::string
intArrayToJson(const std::vector<std::int64_t> &v)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << v[i];
    os << "]";
    return os.str();
}

bool
intArrayFromJson(const JsonValue &v, std::vector<std::int64_t> &out)
{
    if (!v.isArray())
        return false;
    out.clear();
    out.reserve(v.items.size());
    for (const JsonValue &e : v.items) {
        if (e.kind != JsonValue::Kind::Number)
            return false;
        out.push_back(e.asInt());
    }
    return true;
}

} // anonymous namespace

std::string
mappingToJson(const Mapping &m)
{
    std::ostringstream os;
    os << "{\"levels\": [";
    for (int l = 0; l < m.numLevels(); ++l) {
        const LevelMapping &lm = m.level(l);
        std::vector<std::int64_t> order(lm.order.begin(), lm.order.end());
        os << (l ? ", " : "") << "{\"t\": " << intArrayToJson(lm.temporal)
           << ", \"s\": " << intArrayToJson(lm.spatial)
           << ", \"o\": " << intArrayToJson(order) << "}";
    }
    os << "]}";
    return os.str();
}

bool
mappingFromJson(const JsonValue &v, Mapping &out)
{
    const JsonValue *levels = v.find("levels");
    if (!levels || !levels->isArray())
        return false;
    const int nl = static_cast<int>(levels->items.size());
    int nd = 0;
    if (nl > 0) {
        const JsonValue *t0 = levels->items[0].find("t");
        if (!t0 || !t0->isArray())
            return false;
        nd = static_cast<int>(t0->items.size());
    }
    out = Mapping(nl, nd);
    for (int l = 0; l < nl; ++l) {
        const JsonValue &jl = levels->items[l];
        const JsonValue *t = jl.find("t");
        const JsonValue *s = jl.find("s");
        const JsonValue *o = jl.find("o");
        if (!t || !s || !o)
            return false;
        std::vector<std::int64_t> order;
        if (!intArrayFromJson(*t, out.level(l).temporal) ||
            !intArrayFromJson(*s, out.level(l).spatial) ||
            !intArrayFromJson(*o, order))
            return false;
        if (static_cast<int>(out.level(l).temporal.size()) != nd ||
            static_cast<int>(out.level(l).spatial.size()) != nd ||
            static_cast<int>(order.size()) != nd)
            return false;
        out.level(l).order.assign(order.begin(), order.end());
    }
    return true;
}

std::string
SearchCheckpoint::toJson() const
{
    std::ostringstream os;
    os << "{\"version\": " << version
       << ", \"search\": \"" << jsonEscape(search) << "\""
       << ", \"fingerprint\": " << jsonHexU64(workloadFingerprint)
       << ", \"seed\": " << jsonHexU64(seed)
       << ", \"stop_reason\": \"" << jsonEscape(stopReason) << "\""
       << ", \"rng_states\": [";
    for (std::size_t i = 0; i < rngStates.size(); ++i)
        os << (i ? ", " : "") << jsonHexU64(rngStates[i]);
    os << "]"
       << ", \"evaluated\": " << evaluated
       << ", \"plateau_length\": " << plateauLength
       << ", \"invalid_streak\": " << invalidStreak;
    if (consumed >= 0 && consumed != evaluated)
        os << ", \"consumed\": " << consumed;
    os << ", \"seconds\": " << jsonDouble(seconds)
       << ", \"found\": " << (found ? "true" : "false")
       << ", \"best_metric\": " << jsonDouble(bestMetric);
    if (found)
        os << ", \"best_mapping\": " << mappingToJson(bestMapping);
    if (!surrogateState.empty())
        os << ", \"surrogate\": " << surrogateState;
    os << ", \"stream\": " << streamState << "}";
    return os.str();
}

bool
SearchCheckpoint::fromJson(const std::string &text, SearchCheckpoint &out,
                           std::string *err)
{
    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    if (!root.isObject()) {
        if (err)
            *err = "checkpoint is not a JSON object";
        return false;
    }
    out = SearchCheckpoint{};
    const JsonValue *v = root.find("version");
    out.version = v ? static_cast<int>(v->asInt(-1)) : -1;
    if (out.version != kSearchCheckpointVersion) {
        if (err) {
            std::ostringstream os;
            os << "unsupported checkpoint version " << out.version
               << " (expected " << kSearchCheckpointVersion << ")";
            *err = os.str();
        }
        return false;
    }
    if (const JsonValue *f = root.find("search"))
        out.search = f->asString();
    if (const JsonValue *f = root.find("fingerprint"))
        out.workloadFingerprint = f->asHexU64();
    if (const JsonValue *f = root.find("seed"))
        out.seed = f->asHexU64();
    if (const JsonValue *f = root.find("stop_reason"))
        out.stopReason = f->asString("none");
    if (const JsonValue *f = root.find("rng_states"); f && f->isArray())
        for (const JsonValue &e : f->items)
            out.rngStates.push_back(e.asHexU64());
    if (const JsonValue *f = root.find("evaluated"))
        out.evaluated = f->asInt();
    if (const JsonValue *f = root.find("plateau_length"))
        out.plateauLength = f->asInt();
    if (const JsonValue *f = root.find("invalid_streak"))
        out.invalidStreak = f->asInt();
    if (const JsonValue *f = root.find("consumed"))
        out.consumed = f->asInt(-1);
    if (const JsonValue *f = root.find("seconds"))
        out.seconds = f->asDouble();
    if (const JsonValue *f = root.find("found"))
        out.found = f->asBool();
    if (const JsonValue *f = root.find("best_metric"))
        out.bestMetric = f->isNull()
                             ? std::numeric_limits<double>::infinity()
                             : f->asDouble();
    if (out.found) {
        const JsonValue *bm = root.find("best_mapping");
        if (!bm || !mappingFromJson(*bm, out.bestMapping)) {
            if (err)
                *err = "malformed best_mapping";
            return false;
        }
    }
    if (const JsonValue *f = root.find("surrogate")) {
        if (!f->isObject()) {
            if (err)
                *err = "surrogate payload is not an object";
            return false;
        }
        out.surrogateState = f->dump();
    }
    if (const JsonValue *f = root.find("stream")) {
        if (!f->isObject()) {
            if (err)
                *err = "stream payload is not an object";
            return false;
        }
        // Keep the payload as text; the owning stream re-parses it.
        out.streamState = f->dump();
    }
    return true;
}

bool
SearchCheckpoint::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << toJson() << "\n";
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool
SearchCheckpoint::load(const std::string &path, SearchCheckpoint &out,
                       std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return fromJson(buf.str(), out, err);
}

} // namespace sunstone
