/**
 * @file
 * The unified termination contract for every search in the repository
 * (DESIGN.md §12). Before the SearchDriver refactor each of the seven
 * search loops invented its own knobs — TimeloopMapper counted
 * consecutive invalid samples in a field named `timeout`, dMaze and
 * Interstellar truncated on ad-hoc eval budgets, Sunstone core and
 * refine had no wall-clock bound at all. A StopPolicy expresses all of
 * them in one place; the SearchDriver is the only code that enforces
 * them, and a StopReason records which bound fired.
 */

#ifndef SUNSTONE_SEARCH_STOP_POLICY_HH
#define SUNSTONE_SEARCH_STOP_POLICY_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace sunstone {

/** Why a search ended. */
enum class StopReason {
    /** Still running (the zero value inside the driver). */
    None,
    /** The candidate stream ran out of candidates. */
    Exhausted,
    /** StopPolicy::deadlineSeconds (or a context hard deadline) fired. */
    Deadline,
    /** StopPolicy::maxEvals consumed. */
    MaxEvals,
    /** StopPolicy::plateau consecutive valid non-improving evals. */
    Plateau,
    /** StopPolicy::maxConsecutiveInvalid invalid evals in a row. */
    InvalidStreak,
    /** The cooperative cancellation flag was raised (e.g. SIGTERM). */
    Cancelled,
    /** The search rejected the problem before evaluating (mapper bail). */
    Unsupported,
};

/** @return a stable lowercase name ("max-evals", "cancelled", ...). */
const char *stopReasonName(StopReason r);

/**
 * Declarative termination bounds. A zero (or negative) field means "no
 * bound of this kind". All fields compose: the first bound to trip ends
 * the search.
 */
struct StopPolicy
{
    /**
     * Wall-clock budget for the search, in seconds. 0 means no bound; a
     * negative value is an already-expired deadline — the search stops
     * before evaluating anything (the CLI's "--budget -0.5").
     */
    double deadlineSeconds = 0;

    /** Total candidate evaluations the driver may consume. */
    std::int64_t maxEvals = 0;

    /**
     * Consecutive *valid* evaluations without improving the incumbent
     * (Timeloop's "victory condition").
     */
    std::int64_t plateau = 0;

    /**
     * Consecutive *invalid* evaluations (Timeloop's misnamed legacy
     * `timeout` knob).
     */
    std::int64_t maxConsecutiveInvalid = 0;

    /**
     * Cooperative cancellation flag, polled by the driver at batch
     * boundaries. Not owned; may be null. The CLI points this at the
     * SIGTERM/SIGINT flag so an interrupted run checkpoints and exits
     * cleanly.
     */
    std::atomic<bool> *cancel = nullptr;

    /** @return true when no field bounds the search. */
    bool unbounded() const;

    /**
     * @return this policy with every unset (<= 0) field filled from
     * `defaults`. Used by mappers to layer their legacy per-mapper knobs
     * under whatever the caller set explicitly.
     */
    StopPolicy withDefaults(const StopPolicy &defaults) const;

    /** @return the tighter of each bound (min of the set values). */
    static StopPolicy combine(const StopPolicy &a, const StopPolicy &b);
};

/**
 * Parses a stop-policy text config: one `key value` (or `key = value`)
 * pair per line, '#' comments. Keys: deadline_ms, deadline_s, max_evals,
 * plateau (alias: victory), max_consecutive_invalid, seed. The legacy
 * key `timeout` is accepted as a deprecated alias for
 * max_consecutive_invalid with a warning (it was never a time).
 *
 * @param seed optional; set to the `seed` key's value when present
 * @param err optional; receives a message naming the offending line
 * @return false on malformed input
 */
bool parseStopPolicyText(const std::string &text, StopPolicy &out,
                         std::optional<std::uint64_t> *seed = nullptr,
                         std::string *err = nullptr);

/** File-loading wrapper over parseStopPolicyText. */
bool loadStopPolicyFile(const std::string &path, StopPolicy &out,
                        std::optional<std::uint64_t> *seed = nullptr,
                        std::string *err = nullptr);

} // namespace sunstone

#endif // SUNSTONE_SEARCH_STOP_POLICY_HH
