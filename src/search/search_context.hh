/**
 * @file
 * The per-invocation bundle every search receives (DESIGN.md §12): the
 * evaluation engine, the seeded RNG streams, the convergence recorder,
 * the StopPolicy, and the checkpoint/resume configuration. A
 * SearchContext is cheap to construct and not thread-safe; concurrent
 * searches (the net scheduler's per-layer fan-out) each get their own,
 * sharing the engine and the cancellation flag through it.
 *
 * Engine resolution: a context either borrows an engine or lazily
 * creates a private one sized by the caller's thread count — this keeps
 * the legacy `optimize(const BoundArch&)` convenience overloads and the
 * option-struct `engine` fields working unchanged.
 */

#ifndef SUNSTONE_SEARCH_SEARCH_CONTEXT_HH
#define SUNSTONE_SEARCH_SEARCH_CONTEXT_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "search/checkpoint.hh"
#include "search/rng.hh"
#include "search/stop_policy.hh"
#include "search/surrogate.hh"

namespace sunstone {

class SearchContext
{
  public:
    SearchContext() = default;

    explicit SearchContext(EvalEngine *engine, StopPolicy policy = {},
                           obs::ConvergenceRecorder *convergence = nullptr)
        : engine_(engine), policy_(policy), convergence_(convergence)
    {
    }

    /** The borrowed engine, or nullptr when none was attached. */
    EvalEngine *engine() const { return engine_; }

    void setEngine(EvalEngine *engine) { engine_ = engine; }

    /**
     * @return the borrowed engine, or (creating it on first call) a
     * private engine with `threads` workers. The private engine lives as
     * long as the context.
     */
    EvalEngine &engineOrPrivate(unsigned threads);

    StopPolicy &policy() { return policy_; }
    const StopPolicy &policy() const { return policy_; }
    void setPolicy(const StopPolicy &p) { policy_ = p; }

    obs::ConvergenceRecorder *convergence() const { return convergence_; }
    void setConvergence(obs::ConvergenceRecorder *c) { convergence_ = c; }

    /** Whether the cooperative cancellation flag is raised. */
    bool
    cancelled() const
    {
        return policy_.cancel &&
               policy_.cancel->load(std::memory_order_relaxed);
    }

    // -- Seed and RNG streams ------------------------------------------

    /** True once a seed was set explicitly or adopted via ensureSeed. */
    bool hasSeed() const { return seed_.has_value(); }

    std::uint64_t seed() const { return seed_ ? *seed_ : 0; }

    void setSeed(std::uint64_t s) { seed_ = s; }

    /**
     * Adopts `fallback` when no seed was set yet.
     * @return the effective seed. Call before the first rngStream().
     */
    std::uint64_t ensureSeed(std::uint64_t fallback);

    /**
     * @return the SplitMix64 stream for logical shard `shard`, created
     * deterministically from the seed on first use. Streams must be
     * drawn from a single thread (the driver's generation loop).
     */
    RngStream &rngStream(std::size_t shard);

    /** Cursors of every created stream, indexed by shard. */
    std::vector<std::uint64_t> rngStates() const;

    /** Restores cursors saved by rngStates() (resume path). */
    void restoreRngStates(const std::vector<std::uint64_t> &states);

    // -- Checkpoint / resume -------------------------------------------

    /** Path the driver checkpoints to; empty disables checkpointing. */
    const std::string &checkpointPath() const { return checkpointPath_; }
    void setCheckpointPath(std::string path)
    {
        checkpointPath_ = std::move(path);
    }

    /** Attaches a loaded checkpoint for the next driver to consume. */
    void setResume(SearchCheckpoint ck) { resume_ = std::move(ck); }

    /** The pending resume snapshot, or nullptr. */
    const SearchCheckpoint *resume() const
    {
        return resume_ ? &*resume_ : nullptr;
    }

    /** Consumes the pending resume snapshot (driver-internal). */
    std::optional<SearchCheckpoint> takeResume();

    // -- Surrogate ranking / warm starts -------------------------------

    /** Surrogate ranker configuration (disabled by default). */
    const SurrogateOptions &surrogate() const { return surrogate_; }
    void setSurrogate(const SurrogateOptions &o) { surrogate_ = o; }

    /**
     * Seed mappings evaluated once at a fresh search start (warm
     * starting from structurally similar layers). Ignored on resume.
     */
    const std::vector<Mapping> &warmStarts() const { return warmStarts_; }
    void setWarmStarts(std::vector<Mapping> w)
    {
        warmStarts_ = std::move(w);
    }

    // -- Hard deadline -------------------------------------------------

    /**
     * An absolute deadline shared across searches (the net scheduler
     * converts its wall-clock budget into one point in time so layers
     * launched late do not each get a fresh budget).
     */
    void
    setHardDeadline(std::chrono::steady_clock::time_point t)
    {
        hardDeadline_ = t;
    }

    const std::optional<std::chrono::steady_clock::time_point> &
    hardDeadline() const
    {
        return hardDeadline_;
    }

  private:
    EvalEngine *engine_ = nullptr;
    std::unique_ptr<EvalEngine> ownedEngine_;
    StopPolicy policy_;
    obs::ConvergenceRecorder *convergence_ = nullptr;
    std::optional<std::uint64_t> seed_;
    std::vector<RngStream> streams_;
    std::string checkpointPath_;
    std::optional<SearchCheckpoint> resume_;
    SurrogateOptions surrogate_;
    std::vector<Mapping> warmStarts_;
    std::optional<std::chrono::steady_clock::time_point> hardDeadline_;
};

} // namespace sunstone

#endif // SUNSTONE_SEARCH_SEARCH_CONTEXT_HH
