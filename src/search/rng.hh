/**
 * @file
 * Deterministic random streams for searches (DESIGN.md §12).
 *
 * Every randomized search draws from SplitMix64 streams owned by its
 * SearchContext, one stream per *logical shard* rather than per worker
 * thread. Candidate generation walks the shards round-robin on the
 * (serial) driver thread, so the sampled sequence — and therefore the
 * search result — is bit-identical regardless of --threads; parallelism
 * only accelerates evaluation.
 *
 * SplitMix64 advances its state by a fixed odd gamma per draw, so the
 * raw 64-bit state *is* the resumable cursor: a SearchCheckpoint
 * serializes the states verbatim and a resumed run continues the exact
 * sequence. (This is why searches must not use std::mt19937_64, whose
 * 2.5 KB state has no portable serialization in this codebase.)
 */

#ifndef SUNSTONE_SEARCH_RNG_HH
#define SUNSTONE_SEARCH_RNG_HH

#include <cstdint>
#include <vector>

namespace sunstone {

/** One SplitMix64 stream. The state doubles as the serialized cursor. */
class RngStream
{
  public:
    RngStream() = default;
    explicit RngStream(std::uint64_t state) : state_(state) {}

    /** @return the next 64 uniform bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /**
     * @return a uniform value in [0, bound); bound 0 yields 0. Uses the
     * fixed-point multiply reduction (one draw per call, tiny bias at
     * 2^64 scale — irrelevant for search sampling, and crucially a
     * *fixed* draw count so cursors stay in lockstep with the sequence).
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fisher-Yates shuffle (deterministic given the cursor). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Serializable cursor (see file header). */
    std::uint64_t state() const { return state_; }
    void setState(std::uint64_t s) { state_ = s; }

  private:
    std::uint64_t state_ = 0;
};

/**
 * @return the initial state for shard `shard` of a seed. Mixes the
 * shard index through SplitMix64's finalizer so neighboring shards land
 * far apart in the sequence space.
 */
inline std::uint64_t
rngShardInit(std::uint64_t seed, std::uint64_t shard)
{
    std::uint64_t z = seed + (shard + 1) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace sunstone

#endif // SUNSTONE_SEARCH_RNG_HH
