/**
 * @file
 * Online surrogate ranker for candidate mappings (DESIGN.md §15). An
 * incrementally refit linear ridge regression over cheap structural
 * features — per-level log tile volumes, stored-footprint sizes,
 * capacity and fanout pressure, innermost-loop class, total spatial
 * unrolling — learns the log-metric
 * from the (features, metric) pairs the SearchDriver already streams
 * through the full cost model.
 * Once the model's streaming rank correlation (Kendall-tau against
 * realized metrics, EWMA-smoothed) clears a confidence gate, each batch
 * is reordered best-predicted-first and its tail pruned before the full
 * model is paid; until then ranking is pass-through, so cold-start
 * behavior is unchanged.
 *
 * Everything here is serial and deterministic: the driver featurizes,
 * predicts, and trains only on its bookkeeping thread, in consumption
 * order, so a fixed seed stays bit-identical at any thread count. State
 * round-trips through saveState()/restoreState() exactly (doubles are
 * printed at max_digits10, which re-parses to the same bits), giving
 * bit-identical checkpoint/resume.
 */

#ifndef SUNSTONE_SEARCH_SURROGATE_HH
#define SUNSTONE_SEARCH_SURROGATE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hh"
#include "mapping/mapping.hh"

namespace sunstone {

/** Tuning knobs for the surrogate ranker (CLI: --surrogate*). */
struct SurrogateOptions
{
    /** Master switch; off leaves every search path byte-identical. */
    bool enabled = false;

    /**
     * Fraction of each batch pruned (never evaluated by the full model)
     * once the confidence gate is open. Clamped to [0, 0.95]; at least
     * one candidate per batch always survives.
     */
    double pruneFraction = 0.5;

    /** Full-model observations required before the gate may open. */
    std::int64_t minSamples = 256;

    /** Observations required before ranking reorders anything. */
    std::int64_t rankWarmup = 64;

    /** EWMA Kendall-tau at/above which the prune gate opens. */
    double tauOpen = 0.45;

    /** EWMA Kendall-tau below which an open gate closes (hysteresis). */
    double tauClose = 0.20;
};

/**
 * What a CandidateStream permits the surrogate to do with its batches.
 * Streams whose bookkeeping requires a result for every generated
 * candidate (e.g. the GA, which scores whole generations) declare
 * RankOnly: batches are still reordered best-first — improving
 * time-to-quality and mid-batch stop decisions — but never truncated.
 */
enum class SurrogatePolicy { RankAndPrune, RankOnly };

/**
 * The online ranker. One instance per SearchDriver, bound to the
 * driver's BoundArch (feature layout depends on level and dim counts).
 */
class SurrogateModel
{
  public:
    SurrogateModel(const BoundArch &ba, const SurrogateOptions &opts);

    const SurrogateOptions &options() const { return opts_; }
    int featureCount() const { return featureCount_; }

    /** Extracts the feature vector of m into out (resized). */
    void featurize(const Mapping &m, std::vector<double> &out) const;

    /** Predicted log-metric (monotone rank score). */
    double predict(const std::vector<double> &features) const;

    /**
     * Refits the ridge weights from the accumulated normal equations
     * when observations arrived since the last fit. rankBatch() calls
     * this itself; callers using predict() directly (the refinement
     * hill-climb) should call it once per ranked group.
     */
    void refit();

    /**
     * Trains on one realized outcome. @param metric the search metric
     * (EDP or energy); +infinity for invalid mappings, which are taught
     * as "several sigma worse than average" so the ranker learns to
     * sink them. Must be called serially, in consumption order.
     */
    void observe(const std::vector<double> &features, double metric);

    /**
     * Folds one batch's (prediction, realized metric) pairs into the
     * streaming Kendall-tau estimate and updates the gate. Predictions
     * must predate the batch's observe() calls.
     */
    void updateGate(const std::vector<double> &preds,
                    const std::vector<double> &metrics);

    /**
     * Computes order (indices into batch, best-predicted first, stable
     * on ties) and preds (per original index). Deterministic.
     */
    void rankBatch(const std::vector<Mapping> &batch,
                   std::vector<std::size_t> &order,
                   std::vector<double> &preds);

    /** @return whether enough observations exist to rank batches. */
    bool ranking() const { return observed_ >= opts_.rankWarmup; }

    /** @return whether the prune gate is currently open. */
    bool gateOpen() const { return gateOpen_; }

    /** @return full-model observations consumed so far. */
    std::int64_t observed() const { return observed_; }

    /** @return current EWMA Kendall-tau (0 before any estimate). */
    double tau() const { return tauEwma_; }

    /** Serializes all mutable state as JSON (bit-exact doubles). */
    std::string saveState() const;

    /** Restores saveState() output. @return false on malformed input. */
    bool restoreState(const std::string &payload);

  private:
    const BoundArch &ba_;
    SurrogateOptions opts_;
    int featureCount_ = 0;
    /** Cached per-tensor indexing-dim sets (feature extraction). */
    std::vector<DimSet> tensorDims_;

    // Two linear ridge models over raw features, both refit from
    // accumulated normal equations (centered, Cholesky) once per ranked
    // batch — exact regularized least squares on everything observed so
    // far, O(f^2) per observe / O(f^3) per batch for f ~ tens.
    //
    //  - The *regression* fits the log-metric of VALID observations
    //    only. Folding invalid samples in with synthetic targets
    //    poisons the fit (the regressor burns its capacity separating
    //    the two populations and ranks valid candidates no better than
    //    chance); keeping them out preserves within-valid rank quality.
    //  - The *classifier* fits a 0/1 invalidity indicator over ALL
    //    observations (a linear probability model; only its ordering
    //    matters).
    //
    // predict() combines them as a two-tier score: candidates the
    // classifier flags as invalid rank strictly after the rest, and
    // each tier orders by the regression clamped to the realized
    // valid-target range (extrapolations into the overflow regime are
    // meaningless and must not outrank the penalty tier).
    struct Accum
    {
        std::int64_t count = 0;
        std::vector<double> sumX;
        double sumY = 0;
        std::vector<double> xtx; // upper triangle, row-major
        std::vector<double> xty;

        void init(std::size_t f);
        void add(const std::vector<double> &x, double y);
    };
    /** Solves the centered ridge system of a into w (size f) and b. */
    bool solve(const Accum &a, std::vector<double> &w, double &b);

    bool dirty_ = false;
    Accum reg_;  // valid samples, target log(metric)
    Accum cls_;  // all samples, target 1.0 invalid / 0.0 valid
    double sumYYv_ = 0;               // Sum y^2 over valid samples
    double vMin_ = 0, vMax_ = 0;      // realized valid-target range

    std::vector<double> wReg_, wCls_;
    double bReg_ = 0, bCls_ = 0;
    double clampLo_ = 0, clampHi_ = 0;

    std::int64_t observed_ = 0;
    double tauEwma_ = 0;
    bool tauInit_ = false;
    bool gateOpen_ = false;

    // refit() scratch (full matrix + rhs), kept to avoid reallocation.
    std::vector<double> solveScratch_;
};

} // namespace sunstone

#endif // SUNSTONE_SEARCH_SURROGATE_HH
