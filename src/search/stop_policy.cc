#include "search/stop_policy.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/parse.hh"

namespace sunstone {

const char *
stopReasonName(StopReason r)
{
    switch (r) {
    case StopReason::None: return "none";
    case StopReason::Exhausted: return "exhausted";
    case StopReason::Deadline: return "deadline";
    case StopReason::MaxEvals: return "max-evals";
    case StopReason::Plateau: return "plateau";
    case StopReason::InvalidStreak: return "invalid-streak";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Unsupported: return "unsupported";
    }
    return "unknown";
}

bool
StopPolicy::unbounded() const
{
    // A negative deadline bounds the search (it is already expired).
    return deadlineSeconds == 0 && maxEvals <= 0 && plateau <= 0 &&
           maxConsecutiveInvalid <= 0 && cancel == nullptr;
}

StopPolicy
StopPolicy::withDefaults(const StopPolicy &defaults) const
{
    StopPolicy p = *this;
    if (p.deadlineSeconds == 0)
        p.deadlineSeconds = defaults.deadlineSeconds;
    if (p.maxEvals <= 0)
        p.maxEvals = defaults.maxEvals;
    if (p.plateau <= 0)
        p.plateau = defaults.plateau;
    if (p.maxConsecutiveInvalid <= 0)
        p.maxConsecutiveInvalid = defaults.maxConsecutiveInvalid;
    if (!p.cancel)
        p.cancel = defaults.cancel;
    return p;
}

StopPolicy
StopPolicy::combine(const StopPolicy &a, const StopPolicy &b)
{
    const auto tighter = [](auto x, auto y) {
        if (x <= 0)
            return y;
        if (y <= 0)
            return x;
        return std::min(x, y);
    };
    // For the deadline only 0 means "unset"; negative values are valid
    // (already expired) and are the tightest bound of all.
    const auto tighterDeadline = [](double x, double y) {
        if (x == 0)
            return y;
        if (y == 0)
            return x;
        return std::min(x, y);
    };
    StopPolicy p;
    p.deadlineSeconds = tighterDeadline(a.deadlineSeconds,
                                        b.deadlineSeconds);
    p.maxEvals = tighter(a.maxEvals, b.maxEvals);
    p.plateau = tighter(a.plateau, b.plateau);
    p.maxConsecutiveInvalid =
        tighter(a.maxConsecutiveInvalid, b.maxConsecutiveInvalid);
    p.cancel = a.cancel ? a.cancel : b.cancel;
    return p;
}

bool
parseStopPolicyText(const std::string &text, StopPolicy &out,
                    std::optional<std::uint64_t> *seed, std::string *err)
{
    const auto failLine = [&](int lineno, const std::string &msg) {
        if (err) {
            std::ostringstream os;
            os << "line " << lineno << ": " << msg;
            *err = os.str();
        }
        return false;
    };

    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (auto h = line.find('#'); h != std::string::npos)
            line.erase(h);
        std::string key, value, extra;
        std::istringstream ls(line);
        if (!(ls >> key))
            continue; // blank / comment-only line
        if (!(ls >> value))
            return failLine(lineno, "missing value for '" + key + "'");
        if (value == "=" && !(ls >> value))
            return failLine(lineno, "missing value for '" + key + "'");
        if (ls >> extra)
            return failLine(lineno, "trailing content '" + extra + "'");

        std::int64_t n = 0;
        if (!tryParseInt64(value, n))
            return failLine(lineno, "'" + value + "' is not an integer");

        if (key == "deadline_ms") {
            out.deadlineSeconds = static_cast<double>(n) / 1000.0;
        } else if (key == "deadline_s") {
            out.deadlineSeconds = static_cast<double>(n);
        } else if (key == "max_evals") {
            out.maxEvals = n;
        } else if (key == "plateau" || key == "victory") {
            out.plateau = n;
        } else if (key == "max_consecutive_invalid") {
            out.maxConsecutiveInvalid = n;
        } else if (key == "timeout") {
            SUNSTONE_WARN("stop-policy key 'timeout' is deprecated; it "
                          "bounds consecutive invalid evaluations, not "
                          "time — use 'max_consecutive_invalid'");
            out.maxConsecutiveInvalid = n;
        } else if (key == "seed") {
            if (seed)
                *seed = static_cast<std::uint64_t>(n);
        } else {
            return failLine(lineno, "unknown key '" + key + "'");
        }
    }
    return true;
}

bool
loadStopPolicyFile(const std::string &path, StopPolicy &out,
                   std::optional<std::uint64_t> *seed, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseStopPolicyText(buf.str(), out, seed, err);
}

} // namespace sunstone
