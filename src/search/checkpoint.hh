/**
 * @file
 * Serializable search state (DESIGN.md §12). A SearchCheckpoint is the
 * JSON snapshot the SearchDriver writes at candidate-batch boundaries
 * (and on exit) when a checkpoint path is configured: schema version,
 * search label, workload fingerprint, RNG cursors, driver counters,
 * the incumbent mapping, and an opaque per-stream payload (beam
 * contents, enumeration indices, GA population, ...). Resuming restores
 * all of it, so an interrupted run finishes bit-identically to an
 * uninterrupted one.
 *
 * Format invariants:
 *  - "version" (kSearchCheckpointVersion) gates parsing; loaders reject
 *    other versions rather than guessing.
 *  - 64-bit values that must round-trip exactly (RNG cursors, the
 *    fingerprint, the seed) are "0x..." hex *strings*, because JSON
 *    numbers only carry 53 bits.
 *  - Doubles are written at max_digits10 so metrics compare bit-equal
 *    after a resume.
 *  - Writes are atomic (temp file + rename), so a kill mid-write leaves
 *    the previous checkpoint intact.
 */

#ifndef SUNSTONE_SEARCH_CHECKPOINT_HH
#define SUNSTONE_SEARCH_CHECKPOINT_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/json.hh"
#include "mapping/mapping.hh"

namespace sunstone {

/** Current checkpoint schema version. */
constexpr int kSearchCheckpointVersion = 1;

/** Snapshot of one search's resumable state. */
struct SearchCheckpoint
{
    int version = kSearchCheckpointVersion;

    /** Which search wrote this ("timeloop", "sunstone", "net", ...). */
    std::string search;

    /** EvalEngine context fingerprint; guards cross-workload resumes. */
    std::uint64_t workloadFingerprint = 0;

    /** Effective RNG seed of the run. */
    std::uint64_t seed = 0;

    /** SplitMix64 cursors, indexed by logical shard. */
    std::vector<std::uint64_t> rngStates;

    /** Stop reason at snapshot time ("none" while still running). */
    std::string stopReason = "none";

    // Driver counters at the snapshot point. Everything the driver had
    // generated was already consumed (snapshots happen at batch
    // boundaries), so these are exact sequence positions.
    std::int64_t evaluated = 0;
    std::int64_t plateauLength = 0;
    std::int64_t invalidStreak = 0;
    double seconds = 0;

    /**
     * Stream positions consumed, which exceeds `evaluated` when the
     * surrogate pruned candidates or warm-start seeds were evaluated
     * outside the stream. Serialized only when it differs from
     * `evaluated` (so legacy checkpoints stay byte-identical); -1 on
     * load means "same as evaluated".
     */
    std::int64_t consumed = -1;

    /** Incumbent, when any valid candidate has been seen. */
    bool found = false;
    double bestMetric = std::numeric_limits<double>::infinity();
    Mapping bestMapping;

    /**
     * Surrogate model state (SurrogateModel::saveState() text), empty
     * when the surrogate is off; omitted from the JSON when empty so
     * surrogate-off checkpoints keep their pre-surrogate byte layout.
     */
    std::string surrogateState;

    /** Opaque per-stream payload (a JSON object rendered to text). */
    std::string streamState = "{}";

    std::string toJson() const;

    /** @param err optional failure message. */
    static bool fromJson(const std::string &text, SearchCheckpoint &out,
                         std::string *err = nullptr);

    /** Atomic write (path + ".tmp", then rename). @return success. */
    bool save(const std::string &path) const;

    static bool load(const std::string &path, SearchCheckpoint &out,
                     std::string *err = nullptr);
};

/** Renders a mapping as {"levels": [{"t": [...], "s": [...], "o": [...]}]}. */
std::string mappingToJson(const Mapping &m);

/** Inverse of mappingToJson. @return false on malformed input. */
bool mappingFromJson(const JsonValue &v, Mapping &out);

} // namespace sunstone

#endif // SUNSTONE_SEARCH_CHECKPOINT_HH
