#include "search/search_driver.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace sunstone {

namespace {

/**
 * Candidates pulled per driver iteration. Fixed (never derived from the
 * thread count): batch boundaries decide when deadlines/cancellation
 * are polled and when checkpoints are written, and per-item streak
 * logic is serial anyway, so outcomes stay thread-count independent.
 */
constexpr std::size_t kBatchSize = 128;

/** Minimum seconds between periodic checkpoint writes. */
constexpr double kCheckpointIntervalSeconds = 0.25;

} // anonymous namespace

// ---------------------------------------------------------------------
// CandidateStream
// ---------------------------------------------------------------------

void
CandidateStream::skip(std::int64_t n)
{
    std::vector<Mapping> scratch;
    while (n > 0) {
        scratch.clear();
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::int64_t>(n, 256));
        const bool more = nextBatch(want, scratch);
        if (scratch.empty())
            return;
        n -= static_cast<std::int64_t>(scratch.size());
        if (!more)
            return;
    }
}

// ---------------------------------------------------------------------
// GeneratorStream
// ---------------------------------------------------------------------

GeneratorStream::GeneratorStream(Producer producer,
                                 std::size_t queue_capacity,
                                 SurrogatePolicy policy)
    : producer_(std::move(producer)),
      cap_(std::max<std::size_t>(1, queue_capacity)), policy_(policy)
{
}

GeneratorStream::~GeneratorStream()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stopRequested_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

void
GeneratorStream::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    worker_ = std::thread([this] {
        const Sink sink = [this](Mapping &&m) {
            std::unique_lock<std::mutex> lk(mtx_);
            cv_.wait(lk, [this] {
                return queue_.size() < cap_ || stopRequested_;
            });
            if (stopRequested_)
                return false;
            queue_.push_back(std::move(m));
            lk.unlock();
            cv_.notify_all();
            return true;
        };
        producer_(sink);
        {
            std::lock_guard<std::mutex> lk(mtx_);
            done_ = true;
        }
        cv_.notify_all();
    });
}

bool
GeneratorStream::nextBatch(std::size_t max, std::vector<Mapping> &out)
{
    ensureStarted();
    std::unique_lock<std::mutex> lk(mtx_);
    cv_.wait(lk, [this] { return !queue_.empty() || done_; });
    std::size_t taken = 0;
    while (taken < max && !queue_.empty()) {
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
        ++taken;
    }
    const bool exhausted = done_ && queue_.empty();
    lk.unlock();
    cv_.notify_all(); // wake the producer: queue has room again
    return !exhausted;
}

void
GeneratorStream::skip(std::int64_t n)
{
    ensureStarted();
    std::unique_lock<std::mutex> lk(mtx_);
    while (n > 0) {
        cv_.wait(lk, [this] { return !queue_.empty() || done_; });
        while (n > 0 && !queue_.empty()) {
            queue_.pop_front();
            --n;
        }
        cv_.notify_all();
        if (done_ && queue_.empty())
            return;
    }
}

// ---------------------------------------------------------------------
// SearchDriver
// ---------------------------------------------------------------------

SearchDriver::SearchDriver(SearchContext &sc, EvalEngine &engine,
                           const BoundArch &ba, std::string label,
                           bool optimize_edp)
    : sc_(sc), engine_(engine), evalCtx_(engine.context(ba)),
      label_(std::move(label)), optimizeEdp_(optimize_edp)
{
    if (sc_.surrogate().enabled)
        surrogate_ = std::make_unique<SurrogateModel>(ba, sc_.surrogate());
    if (sc_.convergence())
        traj_ = &sc_.convergence()->start(label_);
    const StopPolicy &pol = sc_.policy();
    status_ = &obs::progressBoard().open(label_, pol.maxEvals,
                                         pol.deadlineSeconds, pol.plateau);
    obs::flightRecorder().record("search.started", label_);
}

double
SearchDriver::metricOf(const CostResult &cr) const
{
    return optimizeEdp_ ? cr.edp : cr.totalEnergyPj;
}

bool
SearchDriver::latchReason(StopReason r)
{
    int expected = static_cast<int>(StopReason::None);
    reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                    std::memory_order_relaxed);
    return true;
}

bool
SearchDriver::shouldStop()
{
    if (reason() != StopReason::None)
        return true;
    const StopPolicy &pol = sc_.policy();
    if (pol.cancel && pol.cancel->load(std::memory_order_relaxed))
        return latchReason(StopReason::Cancelled);
    // A negative deadline is already expired (see StopPolicy).
    if (pol.deadlineSeconds != 0 && seconds() >= pol.deadlineSeconds)
        return latchReason(StopReason::Deadline);
    if (sc_.hardDeadline() &&
        std::chrono::steady_clock::now() >= *sc_.hardDeadline())
        return latchReason(StopReason::Deadline);
    if (pol.maxEvals > 0 && evaluated() >= pol.maxEvals)
        return latchReason(StopReason::MaxEvals);
    return false;
}

bool
SearchDriver::offer(const Mapping &m, const CostResult &cr)
{
    if (!cr.valid) {
        if (firstInvalidReason_.empty())
            firstInvalidReason_ = cr.invalidReason;
        return false;
    }
    const double met = metricOf(cr);
    if (!found_ || met < bestMetric_) {
        found_ = true;
        bestMetric_ = met;
        bestMapping_ = m;
        bestCost_ = cr;
        if (traj_)
            traj_->record(evaluated(), cr.totalEnergyPj, cr.edp, met);
        status_->noteImprovement(met);
        obs::flightRecorder().record(
            "incumbent.improved",
            label_ + " metric=" + std::to_string(met) +
                " evals=" + std::to_string(evaluated()));
        return true;
    }
    return false;
}

std::string
SearchDriver::consumeResumePayload()
{
    std::optional<SearchCheckpoint> ck = sc_.takeResume();
    if (!ck)
        return "";
    if (ck->search != label_)
        SUNSTONE_FATAL("checkpoint was written by search '", ck->search,
                       "', cannot resume '", label_, "' from it");
    if (ck->workloadFingerprint != evalCtx_.fingerprint())
        SUNSTONE_FATAL("checkpoint fingerprint ",
                       ck->workloadFingerprint, " does not match this "
                       "workload/architecture (", evalCtx_.fingerprint(),
                       ") — it was taken for a different problem");
    if (sc_.hasSeed() && sc_.seed() != ck->seed)
        SUNSTONE_FATAL("checkpoint seed ", ck->seed,
                       " differs from the requested seed ", sc_.seed());
    sc_.setSeed(ck->seed);
    sc_.restoreRngStates(ck->rngStates);
    evaluated_.store(ck->evaluated, std::memory_order_relaxed);
    plateauLength_ = ck->plateauLength;
    invalidStreak_ = ck->invalidStreak;
    consumed_ = ck->consumed >= 0 ? ck->consumed : ck->evaluated;
    if (surrogate_ && !ck->surrogateState.empty() &&
        !surrogate_->restoreState(ck->surrogateState))
        SUNSTONE_FATAL("malformed surrogate state in '", label_,
                       "' checkpoint");
    baseSeconds_ = ck->seconds;
    if (ck->found) {
        found_ = true;
        bestMetric_ = ck->bestMetric;
        bestMapping_ = ck->bestMapping;
        // Rebuild the full cost record; deterministic, and the extra
        // engine evaluation is not counted in the driver's counters.
        bestCost_ = engine_.evaluate(evalCtx_, bestMapping_);
    }
    return ck->streamState.empty() ? "{}" : ck->streamState;
}

void
SearchDriver::checkpointNow(const std::string &payload)
{
    if (sc_.checkpointPath().empty())
        return;
    lastCheckpointSeconds_ = seconds();
    writeCheckpoint(payload);
}

void
SearchDriver::maybeCheckpoint(const CandidateStream *stream, bool force)
{
    if (sc_.checkpointPath().empty())
        return;
    const double now = seconds();
    if (!force && lastCheckpointSeconds_ >= 0 &&
        now - lastCheckpointSeconds_ < kCheckpointIntervalSeconds)
        return;
    lastCheckpointSeconds_ = now;
    writeCheckpoint(stream ? stream->saveState() : "{}");
}

void
SearchDriver::writeCheckpoint(const std::string &payload)
{
    SearchCheckpoint ck;
    ck.search = label_;
    ck.workloadFingerprint = evalCtx_.fingerprint();
    ck.seed = sc_.seed();
    ck.rngStates = sc_.rngStates();
    ck.stopReason = stopReasonName(reason());
    ck.evaluated = evaluated();
    ck.plateauLength = plateauLength_;
    ck.invalidStreak = invalidStreak_;
    // Manual-mode searches do not pull from a stream, so their consumed
    // position is by definition the evaluation count (and the field is
    // then omitted from the JSON, keeping legacy byte layout).
    ck.consumed = streamMode_ ? consumed_ : evaluated();
    if (surrogate_)
        ck.surrogateState = surrogate_->saveState();
    ck.seconds = seconds();
    ck.found = found_;
    ck.bestMetric = bestMetric_;
    if (found_)
        ck.bestMapping = bestMapping_;
    ck.streamState = payload.empty() ? "{}" : payload;
    if (!ck.save(sc_.checkpointPath()))
        SUNSTONE_WARN("failed to write checkpoint '",
                      sc_.checkpointPath(), "'");
    else
        obs::flightRecorder().record(
            "checkpoint.written",
            label_ + " evals=" + std::to_string(ck.evaluated) + " -> " +
                sc_.checkpointPath());
}

DriverOutcome
SearchDriver::run(CandidateStream &stream)
{
    SUNSTONE_TRACE_SPAN("search.drive." + label_);
    streamMode_ = true;

    const std::string payload = consumeResumePayload();
    if (!payload.empty()) {
        switch (stream.resumeMode()) {
        case CandidateStream::ResumeMode::State:
            if (!stream.restoreState(payload))
                SUNSTONE_FATAL("malformed '", label_,
                               "' checkpoint stream payload");
            break;
        case CandidateStream::ResumeMode::Replay:
            // consumed_, not evaluated(): pruned candidates were
            // generated too and must be replayed past.
            stream.skip(consumed_);
            break;
        case CandidateStream::ResumeMode::RngCursor:
            break;
        }
    } else {
        seedWarmStarts();
    }

    const StopPolicy &pol = sc_.policy();
    std::vector<Mapping> batch;
    std::vector<CostResult> results;
    bool midBatchStop = false;

    while (true) {
        if (shouldStop())
            break;
        std::size_t room = kBatchSize;
        if (pol.maxEvals > 0) {
            const std::int64_t left = pol.maxEvals - evaluated();
            if (left <= 0) {
                latchReason(StopReason::MaxEvals);
                break;
            }
            room = std::min(room, static_cast<std::size_t>(left));
        }
        batch.clear();
        const bool more = stream.nextBatch(room, batch);
        if (batch.empty())
            break; // exhausted
        consumed_ += static_cast<std::int64_t>(batch.size());

        if (surrogate_ && surrogate_->ranking()) {
            midBatchStop = runRankedBatch(stream, batch, results);
            if (midBatchStop)
                break;
            if (pol.maxEvals > 0 && evaluated() >= pol.maxEvals) {
                latchReason(StopReason::MaxEvals);
                break;
            }
            maybeCheckpoint(&stream, false);
            if (!more)
                break; // exhausted
            continue;
        }

        engine_.evaluateBatch(evalCtx_, batch, stream.costOptions(),
                              stream.cachePolicy(), results);

        // Serial, in-order consumption: this loop is the only place
        // stream-mode incumbent/streak state advances, which is what
        // makes results independent of the evaluation thread count.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            noteEvaluated(1);
            const CostResult &cr = results[i];
            if (surrogate_) {
                // Cold start: keep training pass-through until the
                // ranking warmup is met; the search itself is
                // byte-identical to surrogate-off in this phase.
                surrogate_->featurize(batch[i], featRow_);
                surrogate_->observe(
                    featRow_,
                    cr.valid ? metricOf(cr)
                             : std::numeric_limits<double>::infinity());
            }
            stream.onResult(i, batch[i], cr);
            if (!cr.valid) {
                if (firstInvalidReason_.empty())
                    firstInvalidReason_ = cr.invalidReason;
                ++invalidStreak_;
                if (pol.maxConsecutiveInvalid > 0 &&
                    invalidStreak_ >= pol.maxConsecutiveInvalid) {
                    latchReason(StopReason::InvalidStreak);
                    midBatchStop = true;
                    break;
                }
                continue;
            }
            invalidStreak_ = 0;
            if (offer(batch[i], cr)) {
                plateauLength_ = 0;
                status_->notePlateau(0);
            } else {
                ++plateauLength_;
                status_->notePlateau(plateauLength_);
                if (pol.plateau > 0 && plateauLength_ >= pol.plateau) {
                    latchReason(StopReason::Plateau);
                    midBatchStop = true;
                    break;
                }
            }
        }
        if (midBatchStop)
            break;
        if (pol.maxEvals > 0 && evaluated() >= pol.maxEvals) {
            latchReason(StopReason::MaxEvals);
            break;
        }
        maybeCheckpoint(&stream, false);
        if (!more)
            break; // exhausted
    }

    // A final checkpoint is only consistent when everything the stream
    // generated was consumed; mid-batch stops (plateau/invalid streak)
    // are terminal, so we keep the last boundary snapshot instead.
    if (!midBatchStop)
        maybeCheckpoint(&stream, true);

    return finish(StopReason::Exhausted);
}

bool
SearchDriver::runRankedBatch(CandidateStream &stream,
                             const std::vector<Mapping> &batch,
                             std::vector<CostResult> &results)
{
    const StopPolicy &pol = sc_.policy();
    const std::size_t n = batch.size();
    surrogate_->rankBatch(batch, rankOrder_, rankPreds_);

    std::size_t keep = n;
    if (stream.surrogatePolicy() == SurrogatePolicy::RankAndPrune &&
        surrogate_->gateOpen()) {
        const double pf = std::clamp(
            surrogate_->options().pruneFraction, 0.0, 0.95);
        keep = std::max<std::size_t>(
            1, n - static_cast<std::size_t>(pf * static_cast<double>(n)));
    }
    if (keep < n)
        noteSurrogatePruned(static_cast<std::int64_t>(n - keep));

    keptBatch_.clear();
    for (std::size_t j = 0; j < keep; ++j)
        keptBatch_.push_back(batch[rankOrder_[j]]);
    engine_.evaluateBatch(evalCtx_, keptBatch_, stream.costOptions(),
                          stream.cachePolicy(), results);

    // Rank-correlation gate: this batch's predictions (made with the
    // pre-batch weights) against realized metrics.
    gatePreds_.clear();
    gateMetrics_.clear();
    for (std::size_t j = 0; j < keep; ++j) {
        gatePreds_.push_back(rankPreds_[rankOrder_[j]]);
        gateMetrics_.push_back(
            results[j].valid ? metricOf(results[j])
                             : std::numeric_limits<double>::infinity());
    }
    surrogate_->updateGate(gatePreds_, gateMetrics_);

    // Serial bookkeeping in ranked (consumption) order. Pruned
    // candidates never reach this loop: only full-model evaluations
    // advance the plateau and invalid-streak windows.
    bool midBatchStop = false;
    std::size_t done = 0;
    for (std::size_t j = 0; j < keep; ++j) {
        noteEvaluated(1);
        const CostResult &cr = results[j];
        surrogate_->featurize(keptBatch_[j], featRow_);
        surrogate_->observe(featRow_, gateMetrics_[j]);
        ++done;
        if (!cr.valid) {
            if (firstInvalidReason_.empty())
                firstInvalidReason_ = cr.invalidReason;
            ++invalidStreak_;
            if (pol.maxConsecutiveInvalid > 0 &&
                invalidStreak_ >= pol.maxConsecutiveInvalid) {
                latchReason(StopReason::InvalidStreak);
                midBatchStop = true;
                break;
            }
            continue;
        }
        invalidStreak_ = 0;
        if (offer(keptBatch_[j], cr)) {
            plateauLength_ = 0;
            status_->notePlateau(0);
        } else {
            ++plateauLength_;
            status_->notePlateau(plateauLength_);
            if (pol.plateau > 0 && plateauLength_ >= pol.plateau) {
                latchReason(StopReason::Plateau);
                midBatchStop = true;
                break;
            }
        }
    }

    // The stream observes results in generation order, exactly like
    // the pass-through path (the GA attributes fitness by arrival
    // order, so delivery order is part of the stream contract).
    deliver_.clear();
    for (std::size_t j = 0; j < done; ++j)
        deliver_.emplace_back(rankOrder_[j], j);
    std::sort(deliver_.begin(), deliver_.end());
    for (const auto &[orig, res] : deliver_)
        stream.onResult(orig, batch[orig], results[res]);
    return midBatchStop;
}

void
SearchDriver::seedWarmStarts()
{
    const std::vector<Mapping> &seeds = sc_.warmStarts();
    if (seeds.empty())
        return;
    obs::MetricsRegistry &reg = obs::metrics();
    for (const Mapping &m : seeds) {
        if (shouldStop())
            break;
        const CostResult cr = engine_.evaluate(evalCtx_, m);
        noteEvaluated(1);
        if (surrogate_) {
            surrogate_->featurize(m, featRow_);
            surrogate_->observe(
                featRow_,
                cr.valid ? metricOf(cr)
                         : std::numeric_limits<double>::infinity());
        }
        reg.counter("search." + label_ + ".warmstart.seeds").add(1);
        obs::flightRecorder().record(
            "warmstart.seeded",
            label_ + (cr.valid ? " valid" : " invalid"));
        if (cr.valid && offer(m, cr))
            reg.counter("search." + label_ + ".warmstart.hits").add(1);
    }
}

DriverOutcome
SearchDriver::finish(StopReason natural)
{
    if (!finished_) {
        finished_ = true;
        latchReason(natural);
        if (traj_ && found_)
            traj_->record(evaluated(), bestCost_.totalEnergyPj,
                          bestCost_.edp, bestMetric_);
        status_->finish(stopReasonName(reason()));
        obs::flightRecorder().record(
            "search.finished",
            label_ + " reason=" + stopReasonName(reason()) +
                " evals=" + std::to_string(evaluated()));
        obs::MetricsRegistry &reg = obs::metrics();
        reg.counter("search." + label_ + ".stop." +
                    stopReasonName(reason()))
            .add(1);
        reg.gauge("search." + label_ + ".rng_shards")
            .set(static_cast<double>(sc_.rngStates().size()));
        if (surrogate_) {
            reg.counter("search." + label_ + ".surrogate.pruned")
                .add(prunedTotal_);
            reg.counter("search." + label_ + ".surrogate.observed")
                .add(surrogate_->observed());
            reg.gauge("search." + label_ + ".surrogate.tau")
                .set(surrogate_->tau());
            reg.gauge("search." + label_ + ".surrogate.gate_open")
                .set(surrogate_->gateOpen() ? 1.0 : 0.0);
        }
    }
    DriverOutcome o;
    o.found = found_;
    o.best = bestMapping_;
    o.bestCost = bestCost_;
    o.bestMetric = bestMetric_;
    o.evaluated = evaluated();
    o.seconds = seconds();
    o.reason = reason();
    o.firstInvalidReason = firstInvalidReason_;
    return o;
}

} // namespace sunstone
