#include "search/search_context.hh"

namespace sunstone {

EvalEngine &
SearchContext::engineOrPrivate(unsigned threads)
{
    if (engine_)
        return *engine_;
    if (!ownedEngine_)
        ownedEngine_ = std::make_unique<EvalEngine>(
            EvalEngineOptions{.threads = threads});
    return *ownedEngine_;
}

std::uint64_t
SearchContext::ensureSeed(std::uint64_t fallback)
{
    if (!seed_)
        seed_ = fallback;
    return *seed_;
}

RngStream &
SearchContext::rngStream(std::size_t shard)
{
    while (streams_.size() <= shard) {
        streams_.emplace_back(
            rngShardInit(seed(), streams_.size()));
    }
    return streams_[shard];
}

std::vector<std::uint64_t>
SearchContext::rngStates() const
{
    std::vector<std::uint64_t> out;
    out.reserve(streams_.size());
    for (const RngStream &s : streams_)
        out.push_back(s.state());
    return out;
}

void
SearchContext::restoreRngStates(const std::vector<std::uint64_t> &states)
{
    streams_.clear();
    streams_.reserve(states.size());
    for (std::uint64_t s : states)
        streams_.emplace_back(s);
}

std::optional<SearchCheckpoint>
SearchContext::takeResume()
{
    std::optional<SearchCheckpoint> ck = std::move(resume_);
    resume_.reset();
    return ck;
}

} // namespace sunstone
