#include "search/warmstart.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/math_utils.hh"
#include "search/checkpoint.hh"

namespace sunstone {

namespace {

/** FNV-1a over 64-bit chunks; plenty for a structural class key. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffULL;
            h *= 1099511628211ULL;
        }
    }
};

std::string
intArrayToJson(const std::vector<std::int64_t> &v)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? ", " : "") << v[i];
    os << "]";
    return os.str();
}

double
logDistance(const std::vector<std::int64_t> &a,
            const std::vector<std::int64_t> &b)
{
    double d2 = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = std::log2(static_cast<double>(a[i]))
                         - std::log2(static_cast<double>(b[i]));
        d2 += d * d;
    }
    return std::sqrt(d2);
}

} // anonymous namespace

Mapping
adaptMapping(const Mapping &m, const BoundArch &ba)
{
    const int nl = ba.numLevels();
    const int nd = ba.workload().numDims();
    Mapping out(nl, nd);
    for (int l = 0; l < nl; ++l)
        out.level(l).order = m.level(l).order;
    for (int d = 0; d < nd; ++d) {
        std::int64_t remaining = ba.workload().dimSize(d);
        for (int l = 0; l < nl; ++l) {
            // Spatial slots first so parallelism survives the shrink.
            const std::int64_t s
                = largestDivisorAtMost(remaining, m.level(l).spatial[d]);
            out.level(l).spatial[d] = s;
            remaining /= s;
            const std::int64_t t
                = largestDivisorAtMost(remaining, m.level(l).temporal[d]);
            out.level(l).temporal[d] = t;
            remaining /= t;
        }
        // Whatever the donor's factors could not cover iterates at the
        // outermost (DRAM) level, keeping the mapping divisor-exact.
        out.level(nl - 1).temporal[d] *= remaining;
    }
    return out;
}

std::uint64_t
WarmStartStore::shapeClassKey(const BoundArch &ba)
{
    Fnv f;
    const ArchSpec &arch = ba.arch();
    f.mix(static_cast<std::uint64_t>(arch.numLevels()));
    f.mix(static_cast<std::uint64_t>(arch.macBits));
    for (const LevelSpec &lv : arch.levels) {
        f.mix(static_cast<std::uint64_t>(lv.capacityBits));
        f.mix(static_cast<std::uint64_t>(lv.fanout));
        f.mix(static_cast<std::uint64_t>(lv.meshX));
        f.mix(static_cast<std::uint64_t>(lv.meshY));
        f.mix(lv.isDram ? 1 : 0);
        f.mix(lv.doubleBuffered ? 1 : 0);
        f.mix(static_cast<std::uint64_t>(lv.partitions.size()));
    }
    const Workload &wl = ba.workload();
    f.mix(static_cast<std::uint64_t>(wl.numDims()));
    f.mix(static_cast<std::uint64_t>(wl.numTensors()));
    for (int t = 0; t < wl.numTensors(); ++t) {
        const TensorSpec &ts = wl.tensor(t);
        f.mix(ts.isOutput ? 1 : 0);
        f.mix(static_cast<std::uint64_t>(ts.wordBits));
        f.mix(static_cast<std::uint64_t>(ts.ranks.size()));
        for (const IndexExpr &r : ts.ranks) {
            f.mix(static_cast<std::uint64_t>(r.terms.size()));
            for (const IndexTerm &term : r.terms) {
                f.mix(static_cast<std::uint64_t>(term.dim));
                f.mix(static_cast<std::uint64_t>(term.coeff));
            }
        }
        // Storage membership per level (bypass patterns change which
        // mappings transfer).
        for (int l = 0; l < ba.numLevels(); ++l)
            f.mix(ba.stores(l, t) ? 1 : 0);
    }
    return f.h;
}

bool
WarmStartStore::load(const std::string &path, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return fromJson(buf.str(), err);
}

bool
WarmStartStore::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        os << toJson() << "\n";
        if (!os)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::string
WarmStartStore::toJson() const
{
    std::ostringstream os;
    os << "{\"version\": 1, \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        os << (i ? ", " : "") << "{\"class\": " << jsonHexU64(e.shapeClass)
           << ", \"name\": \"" << jsonEscape(e.name) << "\""
           << ", \"extents\": " << intArrayToJson(e.extents)
           << ", \"metric\": " << jsonDouble(e.metric)
           << ", \"mapping\": " << mappingToJson(e.mapping) << "}";
    }
    os << "]}";
    return os.str();
}

bool
WarmStartStore::fromJson(const std::string &text, std::string *err)
{
    JsonValue v;
    std::string perr;
    if (!parseJson(text, v, &perr)) {
        if (err)
            *err = "warmstart store parse error: " + perr;
        return false;
    }
    const JsonValue *ver = v.find("version");
    if (!ver || ver->asInt() != 1) {
        if (err)
            *err = "warmstart store: unsupported version";
        return false;
    }
    const JsonValue *es = v.find("entries");
    if (!es || !es->isArray()) {
        if (err)
            *err = "warmstart store: missing entries";
        return false;
    }
    std::vector<Entry> loaded;
    loaded.reserve(es->items.size());
    for (const JsonValue &je : es->items) {
        Entry e;
        const JsonValue *f = je.find("class");
        if (!f) {
            if (err)
                *err = "warmstart store: entry missing class";
            return false;
        }
        e.shapeClass = f->asHexU64();
        if ((f = je.find("name")))
            e.name = f->asString();
        f = je.find("extents");
        if (!f || !f->isArray()) {
            if (err)
                *err = "warmstart store: entry missing extents";
            return false;
        }
        for (const JsonValue &x : f->items)
            e.extents.push_back(x.asInt());
        if ((f = je.find("metric")))
            e.metric = f->asDouble();
        f = je.find("mapping");
        if (!f || !mappingFromJson(*f, e.mapping)) {
            if (err)
                *err = "warmstart store: bad mapping in entry";
            return false;
        }
        loaded.push_back(std::move(e));
    }
    entries_ = std::move(loaded);
    return true;
}

bool
WarmStartStore::record(const BoundArch &ba, const std::string &name,
                       double metric, const Mapping &mapping)
{
    if (!std::isfinite(metric))
        return false;
    const std::uint64_t cls = shapeClassKey(ba);
    const std::vector<std::int64_t> &extents = ba.workload().shape();
    for (Entry &e : entries_) {
        if (e.shapeClass != cls || e.extents != extents)
            continue;
        if (metric < e.metric) {
            e.name = name;
            e.metric = metric;
            e.mapping = mapping;
            return true;
        }
        return false;
    }
    entries_.push_back(
        {cls, name, extents, metric, mapping});
    return true;
}

std::vector<Mapping>
WarmStartStore::query(const BoundArch &ba, std::size_t k) const
{
    const std::uint64_t cls = shapeClassKey(ba);
    const std::vector<std::int64_t> &extents = ba.workload().shape();
    std::vector<std::pair<double, std::size_t>> cands;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (e.shapeClass != cls || e.extents.size() != extents.size())
            continue;
        cands.emplace_back(logDistance(e.extents, extents), i);
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<Mapping> seeds;
    for (std::size_t i = 0; i < cands.size() && seeds.size() < k; ++i)
        seeds.push_back(adaptMapping(entries_[cands[i].second].mapping, ba));
    return seeds;
}

} // namespace sunstone
