#include "model/batch_eval.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sunstone {

using simd::vec4d;

BatchEvaluator::BatchEvaluator(const BoundArch &ba,
                               const CostModelOptions &opts)
    : ba_(&ba), opts_(opts)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    nl_ = ba.numLevels();
    nt_ = ba.numTensors();

    readPj_.resize(static_cast<std::size_t>(nl_) * nt_);
    writePj_.resize(static_cast<std::size_t>(nl_) * nt_);
    for (int l = 0; l < nl_; ++l)
        for (TensorId t = 0; t < nt_; ++t) {
            readPj_[static_cast<std::size_t>(l) * nt_ + t] =
                ba.readEnergyPj(l, t);
            writePj_[static_cast<std::size_t>(l) * nt_ + t] =
                ba.writeEnergyPj(l, t);
        }
    readBw_.resize(nl_);
    writeBw_.resize(nl_);
    for (int l = 0; l < nl_; ++l) {
        readBw_[l] = arch.levels[l].readBwWordsPerCycle;
        writeBw_[l] = arch.levels[l].writeBwWordsPerCycle;
    }

    const std::int64_t ops = wl.totalOps();
    // Same expressions the scalar finalization evaluates per call;
    // hoisting them is bit-preserving (pure functions of the pair).
    macEnergyPj_ = (double)ops * ba.macEnergyPj() * wl.multipliesPerOp();
    opsD_ = (double)ops;
    clockHz_ = arch.clockGhz * 1e9;
    fanoutD_ = (double)std::max<std::int64_t>(1, arch.totalFanout());

    const std::size_t cells = static_cast<std::size_t>(nl_) * nt_ * kW;
    soaWordsR_.assign(cells, 0.0);
    soaWordsW_.assign(cells, 0.0);
    soaSpatial_.assign(static_cast<std::size_t>(nl_ + 1) * kW, 1);
    laneLevelE_.assign(static_cast<std::size_t>(nl_) * kW, 0.0);
}

const char *
BatchEvaluator::backendName()
{
    return vec4d::backendName();
}

bool
BatchEvaluator::simdActive()
{
    return simd::simdRuntimeEnabled();
}

void
BatchEvaluator::evaluate(std::span<const Mapping> ms, CostResult *out)
{
    if (!simd::simdRuntimeEnabled()) {
        // Runtime scalar fallback: the historical serial batch path,
        // bit-identical to evaluateMapping() per element.
        for (std::size_t i = 0; i < ms.size(); ++i)
            evaluateMappingInto(*ba_, ms[i], opts_, scratch_, out[i]);
        return;
    }
    const Mapping *lanes[kW];
    CostResult *res[kW];
    for (std::size_t base = 0; base < ms.size(); base += kW) {
        const int n =
            static_cast<int>(std::min<std::size_t>(kW, ms.size() - base));
        for (int k = 0; k < n; ++k) {
            lanes[k] = &ms[base + k];
            res[k] = &out[base + k];
        }
        evaluateGroup(lanes, n, res);
    }
}

void
BatchEvaluator::evaluate(const Mapping *const *ms, std::size_t n,
                         CostResult *const *out)
{
    if (!simd::simdRuntimeEnabled()) {
        for (std::size_t i = 0; i < n; ++i)
            evaluateMappingInto(*ba_, *ms[i], opts_, scratch_, *out[i]);
        return;
    }
    for (std::size_t base = 0; base < n; base += kW) {
        const int g =
            static_cast<int>(std::min<std::size_t>(kW, n - base));
        evaluateGroup(ms + base, g, out + base);
    }
}

void
BatchEvaluator::evaluateGroup(const Mapping *const *ms, int n,
                              CostResult *const *out)
{
    scratch_.prepare(*ba_);

    for (int k = 0; k < kW; ++k) {
        laneNoc_[k] = 0;
        laneValid_[k] = false;
    }

    // Integer phase, one lane at a time: validity through the shared
    // allocation-free scratch (sharing its tile footprints with the
    // access counts), then the scalar access-count kernel. Counters are
    // emitted into the caller's CostResult immediately; only the double
    // word sums the packed kernels consume are gathered into SoA cells.
    for (int k = 0; k < n; ++k) {
        const Mapping &m = *ms[k];
        CostResult &res = *out[k];
        if (!opts_.assumeValid &&
            !detail::checkValid(*ba_, m, scratch_, &laneWhy_[k])) {
            detail::resetCostResult(res, nl_, nt_);
            res.invalidReason = laneWhy_[k];
            res.edp = std::numeric_limits<double>::infinity();
            res.totalEnergyPj = std::numeric_limits<double>::infinity();
            continue;
        }
        if (opts_.assumeValid)
            detail::fillTables(m, scratch_);
        laneValid_[k] = true;
        laneNoc_[k] = detail::countAccess(*ba_, m, opts_, nullptr,
                                          scratch_);

        // Shape the result buffers without the full clear: every cell
        // below and every scalar field in emitLane() is overwritten.
        res.invalidReason.clear();
        res.access.resize(nl_);
        res.levelEnergyPj.resize(nl_);
        for (int l = 0; l < nl_; ++l) {
            auto &row = res.access[l];
            row.resize(nt_);
            for (int t = 0; t < nt_; ++t) {
                const std::size_t i = static_cast<std::size_t>(l) * nt_ + t;
                const AccessCounts &a = scratch_.access[i];
                row[t] = a;
                const std::size_t j = i * kW + k;
                soaWordsR_[j] = (double)a.totalReads();
                soaWordsW_[j] = (double)a.totalWrites();
            }
        }
        for (int l = 0; l <= nl_; ++l)
            soaSpatial_[static_cast<std::size_t>(l) * kW + k] =
                scratch_.spatialSuffix[l];
    }

    // Neutral state for padding and invalid lanes only (valid lanes were
    // fully gathered above): zero word sums and unit spatial products
    // keep the packed arithmetic finite.
    for (int k = 0; k < kW; ++k) {
        if (k < n && laneValid_[k])
            continue;
        const std::size_t cells = static_cast<std::size_t>(nl_) * nt_;
        for (std::size_t i = 0; i < cells; ++i) {
            soaWordsR_[i * kW + k] = 0.0;
            soaWordsW_[i * kW + k] = 0.0;
        }
        for (int l = 0; l <= nl_; ++l)
            soaSpatial_[static_cast<std::size_t>(l) * kW + k] = 1;
    }

    finalizeLanes();

    for (int k = 0; k < n; ++k)
        if (laneValid_[k])
            emitLane(k, *out[k]);
}

void
BatchEvaluator::finalizeLanes()
{
    static_assert(kW == 4, "packed kernels assume 4 lanes");

    // Latency seed: compute cycles per lane (the level loop below
    // raises it to any bandwidth bottleneck it finds).
    double lanesD[kW];
    for (int k = 0; k < kW; ++k) {
        const std::int64_t lanes =
            std::max<std::int64_t>(1, soaSpatial_[k]);
        lanesD[k] = (double)lanes;
        laneUtil_[k] = (double)lanes / fanoutD_;
        laneBottleneck_[k] = -1;
    }
    (vec4d::broadcast(opsD_) / vec4d::load(lanesD)).store(laneCycles_);

    // One pass per level loads the pre-converted lane word sums once and
    // feeds both consumers: the energy accumulation (acc += totalReads *
    // readPj + totalWrites * writePj over tensors in order — the scalar
    // loop, lane-packed) and the bandwidth word sums for the (cheap,
    // branchy) per-lane bottleneck comparison.
    vec4d totalE = vec4d::zero();
    double rsum[kW], wsum[kW];
    for (int l = 0; l < nl_; ++l) {
        vec4d acc = vec4d::zero();
        vec4d rs = vec4d::zero();
        vec4d ws = vec4d::zero();
        for (int t = 0; t < nt_; ++t) {
            const std::size_t j =
                (static_cast<std::size_t>(l) * nt_ + t) * kW;
            const vec4d trv = vec4d::load(&soaWordsR_[j]);
            const vec4d twv = vec4d::load(&soaWordsW_[j]);
            const vec4d rp = vec4d::broadcast(
                readPj_[static_cast<std::size_t>(l) * nt_ + t]);
            const vec4d wp = vec4d::broadcast(
                writePj_[static_cast<std::size_t>(l) * nt_ + t]);
            acc = acc + (trv * rp + twv * wp);
            rs = rs + trv;
            ws = ws + twv;
        }
        acc.store(&laneLevelE_[static_cast<std::size_t>(l) * kW]);
        totalE = totalE + acc;
        rs.store(rsum);
        ws.store(wsum);
        for (int k = 0; k < kW; ++k) {
            const double inst =
                (double)soaSpatial_[static_cast<std::size_t>(l + 1) * kW +
                                    k];
            auto dir_cycles = [inst](double words, double bw) {
                if (words <= 0)
                    return 0.0;
                if (bw <= 0)
                    return std::numeric_limits<double>::infinity();
                return words / (bw * inst);
            };
            const double level_cycles =
                std::max(dir_cycles(rsum[k], readBw_[l]),
                         dir_cycles(wsum[k], writeBw_[l]));
            if (level_cycles > laneCycles_[k]) {
                laneCycles_[k] = level_cycles;
                laneBottleneck_[k] = l;
            }
        }
    }

    totalE = totalE + vec4d::broadcast(macEnergyPj_);
    if (opts_.modelNoc)
        totalE = totalE + vec4d::load(laneNoc_);
    totalE.store(laneTotalE_);
}

void
BatchEvaluator::emitLane(int k, CostResult &res) const
{
    res.valid = true;
    for (int l = 0; l < nl_; ++l)
        res.levelEnergyPj[l] =
            laneLevelE_[static_cast<std::size_t>(l) * kW + k];
    res.macEnergyPj = macEnergyPj_;
    res.nocEnergyPj = laneNoc_[k];
    res.totalEnergyPj = laneTotalE_[k];
    res.cycles = laneCycles_[k];
    res.delaySeconds = laneCycles_[k] / clockHz_;
    res.utilization = laneUtil_[k];
    res.edp = res.totalEnergyPj * 1e-12 * res.delaySeconds;
    const int b = laneBottleneck_[k];
    if (b < 0) {
        res.bottleneck = "compute";
    } else {
        const auto &lv = ba_->arch().levels[b];
        res.bottleneck = std::isinf(laneCycles_[k])
                             ? lv.name + " (zero bandwidth)"
                             : lv.name;
    }
}

} // namespace sunstone
