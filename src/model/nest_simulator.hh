/**
 * @file
 * Reference ("oracle") nest simulator: instead of closed-form products,
 * it literally walks the temporal loop nest of a mapping, tracks the tile
 * of each tensor resident at each consumer level, and counts the fetch /
 * drain events that the analytical cost model predicts with its
 * stationarity formula. Property tests and the `sunstone check`
 * differential fuzzer assert both agree on randomized mappings, which
 * pins down the trickiest logic in the repository.
 *
 * The oracle is multicast aware: when every fanout network between two
 * storing levels supports multicast, the words delivered per tile-change
 * event are counted by *enumerating the actual rank coordinates* each
 * spatial child tile touches and collecting them into a set, so halo
 * sharing between neighbouring consumers (and the gaps of strided
 * sliding windows) emerge from brute force rather than from the model's
 * closed form. Ranks are combined as a product — the same dense
 * per-rank box convention TensorSpec::footprint() uses — so a tensor
 * that indexes one problem dimension in two different ranks is counted
 * under the storage convention, not as the exact multidimensional
 * union.
 *
 * accumReads is not independently derived here (it uses the same
 * arriving-minus-footprint rule as the model, clamped at zero), so
 * comparisons of that field check wiring rather than the formula.
 */

#ifndef SUNSTONE_MODEL_NEST_SIMULATOR_HH
#define SUNSTONE_MODEL_NEST_SIMULATOR_HH

#include "model/cost_model.hh"

namespace sunstone {

/** Budgets for the oracle's brute-force enumerations. */
struct NestOracleOptions
{
    /** Panic if the temporal walk above any level exceeds this. */
    std::int64_t maxSteps = 20'000'000;

    /**
     * Panic if a single multicast group's coordinate enumeration would
     * mark more than this many (instance, word) pairs.
     */
    std::int64_t maxWordMarks = 50'000'000;
};

/**
 * Walks the loop nest and returns per-(level, tensor) access counters
 * with the same semantics as evaluateMapping(), including multicast
 * halo sharing. Intended for small problems; panics when a budget in
 * `opts` is exceeded.
 */
std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     const NestOracleOptions &opts);

/** Convenience overload with default budgets (optionally overriding
 *  the temporal-walk bound only). */
std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     std::int64_t max_steps = 20'000'000);

} // namespace sunstone

#endif // SUNSTONE_MODEL_NEST_SIMULATOR_HH
