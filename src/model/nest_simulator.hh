/**
 * @file
 * Reference ("oracle") nest simulator: instead of closed-form products,
 * it literally walks the temporal loop nest of a mapping, tracks the tile
 * of each tensor resident at each consumer level, and counts the fetch /
 * drain events that the analytical cost model predicts with its
 * stationarity formula. Property tests assert both agree on randomized
 * mappings, which pins down the trickiest logic in the repository.
 *
 * The simulator counts with per-instance tiles (no multicast halo
 * sharing), so comparisons should use architectures whose networks have
 * multicast disabled. accumReads is not independently derived here and is
 * excluded from comparisons.
 */

#ifndef SUNSTONE_MODEL_NEST_SIMULATOR_HH
#define SUNSTONE_MODEL_NEST_SIMULATOR_HH

#include "model/cost_model.hh"

namespace sunstone {

/**
 * Walks the loop nest and returns per-(level, tensor) access counters
 * with the same semantics as evaluateMapping() under multicast-free
 * networks. Intended for small problems; panics if the temporal
 * iteration space above any storing level exceeds `max_steps`.
 */
std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     std::int64_t max_steps = 20'000'000);

} // namespace sunstone

#endif // SUNSTONE_MODEL_NEST_SIMULATOR_HH
