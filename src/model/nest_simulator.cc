#include "model/nest_simulator.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

namespace {

/** A temporal loop, outermost first in the linearized nest. */
struct Loop
{
    DimId dim;
    std::int64_t factor;
};

/**
 * Linearizes all temporal loops of levels strictly above `consumer`,
 * outermost first: top level first, each level in its mapping order.
 */
std::vector<Loop>
loopsAboveOuterFirst(const Mapping &m, int consumer)
{
    std::vector<Loop> loops;
    for (int l = m.numLevels() - 1; l > consumer; --l) {
        const auto &lm = m.level(l);
        for (DimId d : lm.order)
            if (lm.temporal[d] > 1)
                loops.push_back({d, lm.temporal[d]});
    }
    return loops;
}

/**
 * Counts tile-change events for a tensor by walking the nest: the tile
 * identity is the tuple of loop indices over the tensor's indexing
 * dimensions; every step whose identity differs from the previous step
 * (including the very first) is one event.
 */
std::int64_t
walkEvents(const std::vector<Loop> &loops, DimSet idx,
           std::int64_t max_steps)
{
    std::int64_t total_steps = 1;
    for (const auto &l : loops)
        total_steps = satMul(total_steps, l.factor);
    SUNSTONE_ASSERT(total_steps <= max_steps,
                    "nest simulator iteration space too large: ",
                    total_steps);

    const int n = static_cast<int>(loops.size());
    std::vector<std::int64_t> index(n, 0);
    std::vector<std::int64_t> prev_identity;
    bool have_prev = false;
    std::int64_t events = 0;

    for (std::int64_t step = 0; step < total_steps; ++step) {
        std::vector<std::int64_t> identity;
        identity.reserve(n);
        for (int i = 0; i < n; ++i)
            if (idx.contains(loops[i].dim))
                identity.push_back(index[i]);
        if (!have_prev || identity != prev_identity) {
            ++events;
            prev_identity = std::move(identity);
            have_prev = true;
        }
        // Odometer increment, innermost (last) fastest.
        for (int i = n - 1; i >= 0; --i) {
            if (++index[i] < loops[i].factor)
                break;
            index[i] = 0;
        }
    }
    return events;
}

std::int64_t
spatialProductRange(const Mapping &m, int lo, int hi)
{
    std::int64_t p = 1;
    for (int l = lo + 1; l <= hi; ++l)
        p = satMul(p, m.level(l).spatialProduct());
    return p;
}

/** True when every fanout network in (lo, hi] supports multicast. */
bool
multicastRange(const ArchSpec &arch, int lo, int hi)
{
    for (int l = lo + 1; l <= hi; ++l)
        if (arch.levels[l].fanout > 1 && !arch.levels[l].multicast)
            return false;
    return true;
}

/**
 * Distinct words one multicast delivery carries to the whole spatial
 * group, found by brute force: for every combination of per-dim spatial
 * instance indices in (c, l], every rank coordinate of the instance's
 * dense tile box is marked in a set; rank set sizes multiply (the dense
 * per-rank box storage convention of footprint()).
 *
 * The per-dim instance offset is i_d * shape_c[d] with i_d running over
 * the combined spatial factor of the range — spatial distribution is
 * innermost at every level, so at a fixed temporal instant the group
 * covers per-dim-contiguous consumer tiles. Event (temporal) changes
 * translate every instance identically and cannot change the union's
 * cardinality, so one enumeration serves all events.
 */
std::int64_t
enumerateDistinctWords(const TensorSpec &ts,
                       const std::vector<std::int64_t> &shape_c,
                       const std::vector<std::int64_t> &spatial_up,
                       std::int64_t max_marks)
{
    std::int64_t words = 1;
    std::int64_t marks = 0;
    for (const auto &rank : ts.ranks) {
        // Dims of this rank that are spatially split, with the summed
        // coefficient a dim contributes to the rank coordinate.
        std::vector<std::int64_t> strides, counts;
        for (DimId d : rank.dims()) {
            if (spatial_up[d] <= 1)
                continue;
            std::int64_t coeff = 0;
            for (const auto &term : rank.terms)
                if (term.dim == d)
                    coeff += term.coeff;
            strides.push_back(satMul(coeff, shape_c[d]));
            counts.push_back(spatial_up[d]);
        }
        const std::int64_t ext = rank.extent(shape_c);

        std::int64_t instances = 1;
        for (std::int64_t c : counts)
            instances = satMul(instances, c);
        marks += satMul(instances, ext);
        SUNSTONE_ASSERT(marks <= max_marks,
                        "oracle multicast enumeration too large: ",
                        marks);

        std::unordered_set<std::int64_t> coords;
        const int n = static_cast<int>(counts.size());
        std::vector<std::int64_t> idx(n, 0);
        for (std::int64_t inst = 0; inst < instances; ++inst) {
            std::int64_t start = 0;
            for (int i = 0; i < n; ++i)
                start += idx[i] * strides[i];
            for (std::int64_t x = 0; x < ext; ++x)
                coords.insert(start + x);
            for (int i = n - 1; i >= 0; --i) {
                if (++idx[i] < counts[i])
                    break;
                idx[i] = 0;
            }
        }
        words = satMul(words,
                       static_cast<std::int64_t>(coords.size()));
    }
    return words;
}

/** Clamped accumulation reads (same rule as the analytical model). */
std::int64_t
accumReadsFor(std::int64_t arriving, std::int64_t distinct)
{
    return std::max<std::int64_t>(0, arriving - distinct);
}

} // anonymous namespace

std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     const NestOracleOptions &opts)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = ba.numLevels();
    const int nt = ba.numTensors();
    std::vector<std::vector<AccessCounts>> access(
        nl, std::vector<AccessCounts>(nt));

    const std::int64_t ops = wl.totalOps();

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        std::vector<int> chain;
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);

        auto &inner = access[chain[0]][t];
        if (!ts.isOutput) {
            inner.reads += ops;
        } else {
            inner.updates += ops;
            inner.accumReads +=
                accumReadsFor(ops, ts.footprint(wl.shape()));
        }

        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];
            const auto loops = loopsAboveOuterFirst(m, c);
            const std::int64_t ev =
                walkEvents(loops, wl.reuse(t).indexing, opts.maxSteps);
            const std::int64_t spatial_in = spatialProductRange(m, c, l);
            const std::int64_t n_above =
                spatialProductRange(m, l, nl - 1);
            const auto shape_c = m.tileShape(c);
            const std::int64_t tile_c = ts.footprint(shape_c);
            const std::int64_t per_instance =
                satMul(satMul(ev, satMul(spatial_in, tile_c)), n_above);
            if (!ts.isOutput) {
                std::int64_t reads_l;
                if (multicastRange(arch, c, l)) {
                    std::vector<std::int64_t> spatial_up(wl.numDims(),
                                                         1);
                    for (int j = c + 1; j <= l; ++j)
                        for (DimId d = 0; d < wl.numDims(); ++d)
                            spatial_up[d] =
                                satMul(spatial_up[d],
                                       m.level(j).spatial[d]);
                    const std::int64_t distinct = enumerateDistinctWords(
                        ts, shape_c, spatial_up, opts.maxWordMarks);
                    reads_l = satMul(satMul(ev, distinct), n_above);
                } else {
                    reads_l = per_instance;
                }
                access[l][t].reads += reads_l;
                access[c][t].fills += per_instance;
            } else {
                access[l][t].updates += per_instance;
                access[c][t].drains += per_instance;
                access[l][t].accumReads += accumReadsFor(
                    per_instance, ts.footprint(wl.shape()));
            }
        }
    }
    return access;
}

std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     std::int64_t max_steps)
{
    NestOracleOptions opts;
    opts.maxSteps = max_steps;
    return simulateAccessCounts(ba, m, opts);
}

} // namespace sunstone
