#include "model/nest_simulator.hh"

#include <vector>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

namespace {

/** A temporal loop, outermost first in the linearized nest. */
struct Loop
{
    DimId dim;
    std::int64_t factor;
};

/**
 * Linearizes all temporal loops of levels strictly above `consumer`,
 * outermost first: top level first, each level in its mapping order.
 */
std::vector<Loop>
loopsAboveOuterFirst(const Mapping &m, int consumer)
{
    std::vector<Loop> loops;
    for (int l = m.numLevels() - 1; l > consumer; --l) {
        const auto &lm = m.level(l);
        for (DimId d : lm.order)
            if (lm.temporal[d] > 1)
                loops.push_back({d, lm.temporal[d]});
    }
    return loops;
}

/**
 * Counts tile-change events for a tensor by walking the nest: the tile
 * identity is the tuple of loop indices over the tensor's indexing
 * dimensions; every step whose identity differs from the previous step
 * (including the very first) is one event.
 */
std::int64_t
walkEvents(const std::vector<Loop> &loops, DimSet idx,
           std::int64_t max_steps)
{
    std::int64_t total_steps = 1;
    for (const auto &l : loops)
        total_steps = satMul(total_steps, l.factor);
    SUNSTONE_ASSERT(total_steps <= max_steps,
                    "nest simulator iteration space too large: ",
                    total_steps);

    const int n = static_cast<int>(loops.size());
    std::vector<std::int64_t> index(n, 0);
    std::vector<std::int64_t> prev_identity;
    bool have_prev = false;
    std::int64_t events = 0;

    for (std::int64_t step = 0; step < total_steps; ++step) {
        std::vector<std::int64_t> identity;
        identity.reserve(n);
        for (int i = 0; i < n; ++i)
            if (idx.contains(loops[i].dim))
                identity.push_back(index[i]);
        if (!have_prev || identity != prev_identity) {
            ++events;
            prev_identity = std::move(identity);
            have_prev = true;
        }
        // Odometer increment, innermost (last) fastest.
        for (int i = n - 1; i >= 0; --i) {
            if (++index[i] < loops[i].factor)
                break;
            index[i] = 0;
        }
    }
    return events;
}

std::int64_t
spatialProductRange(const Mapping &m, int lo, int hi)
{
    std::int64_t p = 1;
    for (int l = lo + 1; l <= hi; ++l)
        p = satMul(p, m.level(l).spatialProduct());
    return p;
}

} // anonymous namespace

std::vector<std::vector<AccessCounts>>
simulateAccessCounts(const BoundArch &ba, const Mapping &m,
                     std::int64_t max_steps)
{
    const Workload &wl = ba.workload();
    const int nl = ba.numLevels();
    const int nt = ba.numTensors();
    std::vector<std::vector<AccessCounts>> access(
        nl, std::vector<AccessCounts>(nt));

    const std::int64_t ops = wl.totalOps();

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        std::vector<int> chain;
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);

        auto &inner = access[chain[0]][t];
        if (!ts.isOutput) {
            inner.reads += ops;
        } else {
            inner.updates += ops;
            inner.accumReads += ops - ts.footprint(wl.shape());
        }

        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];
            const auto loops = loopsAboveOuterFirst(m, c);
            const std::int64_t ev =
                walkEvents(loops, wl.reuse(t).indexing, max_steps);
            const std::int64_t instances =
                satMul(spatialProductRange(m, c, l),
                       spatialProductRange(m, l, nl - 1));
            const std::int64_t tile_c = ts.footprint(m.tileShape(c));
            const std::int64_t words =
                satMul(satMul(ev, instances), tile_c);
            if (!ts.isOutput) {
                access[l][t].reads += words;
                access[c][t].fills += words;
            } else {
                access[l][t].updates += words;
                access[c][t].drains += words;
                access[l][t].accumReads +=
                    words - ts.footprint(wl.shape());
            }
        }
    }
    return access;
}

} // namespace sunstone
