/**
 * @file
 * Analytical cost model in the style of Timeloop (the paper's evaluation
 * platform, Section V-A): for a (workload, architecture, mapping) triple
 * it derives per-level, per-tensor access counts in closed form, converts
 * them to energy via the BoundArch energies, models latency as
 * max(compute, per-level bandwidth) under double buffering, and reports
 * the energy-delay product.
 *
 * Access-count semantics (validated against the literal loop-nest walker
 * in nest_simulator.hh):
 *
 *  - A tensor's *storage chain* is the list of levels that store it
 *    (bypass-aware). Data moves only between consecutive chain levels.
 *  - Reads from provider L serving consumer C use the stationarity rule
 *    of the paper's Eqs. 1-3: the number of tile-change events is the
 *    product of all temporal loop factors above C, skipping the trailing
 *    run of loops over non-indexing dimensions.
 *  - Spatial factors between C and L multicast (when every fanout
 *    network in the range supports it): the distinct data per event is
 *    the exact union of the consumer-tile boxes across the spatial
 *    instances, computed per rank by merging start intervals. For
 *    contiguous tilings this equals the footprint of the spatially
 *    enlarged tile (Eq. 5); for strided sliding windows whose consumer
 *    tile carries no halo the merge also accounts for the gaps the
 *    enlarged-tile formula would overcount. Every consumer instance is
 *    still *filled*. Validated against the multicast-aware oracle in
 *    nest_simulator.hh, which derives the same counts by enumerating
 *    coordinates.
 *  - Outputs flow upward: every consumer drains its partial tile per
 *    event (spatial reduction sends every partial), and each arriving
 *    partial beyond the first visit of a distinct word performs a
 *    read-modify-write at the provider.
 */

#ifndef SUNSTONE_MODEL_COST_MODEL_HH
#define SUNSTONE_MODEL_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/mapping.hh"

namespace sunstone {

/** Per-(level, tensor) access counters (words). */
struct AccessCounts
{
    /** Reads serving consumers below (incl. MAC operand fetches). */
    std::int64_t reads = 0;
    /** Writes arriving from the level above (input tensors). */
    std::int64_t fills = 0;
    /** Writes of partial results arriving from below (outputs). */
    std::int64_t updates = 0;
    /** Reads performed to accumulate into an existing partial. */
    std::int64_t accumReads = 0;
    /** Reads that drain partial results toward the level above. */
    std::int64_t drains = 0;

    std::int64_t
    totalReads() const
    {
        return reads + accumReads + drains;
    }
    std::int64_t totalWrites() const { return fills + updates; }
};

/** Full evaluation result for one mapping. */
struct CostResult
{
    bool valid = false;
    std::string invalidReason;

    /** access[level][tensor] counters. */
    std::vector<std::vector<AccessCounts>> access;

    /** Energy broken out per level (pJ), plus compute and network. */
    std::vector<double> levelEnergyPj;
    double macEnergyPj = 0;
    double nocEnergyPj = 0;

    double totalEnergyPj = 0;
    /** Execution cycles under double buffering. */
    double cycles = 0;
    double delaySeconds = 0;
    /** Energy-delay product in pJ*s (the paper's figure of merit). */
    double edp = 0;

    /** Utilization of the MAC array in [0, 1]. */
    double utilization = 0;

    /**
     * What binds the delay: "compute" or the name of the bandwidth-
     * limited level (useful when tuning an architecture).
     */
    std::string bottleneck;
};

/** Evaluation knobs. */
struct CostModelOptions
{
    /** Skip the validity check (caller guarantees validity). */
    bool assumeValid = false;
    /** Include NoC wire + tag-check energy (Section V-A). */
    bool modelNoc = true;
};

/**
 * Per-thread scratch arena for the cost model's hot path. All temporaries
 * the model needs (linearized temporal loops, cumulative tile shapes,
 * per-level spatial products, flattened access counters, multicast
 * interval-merge buffers) live here, so repeated evaluations against the
 * same (workload, arch) pair allocate nothing in steady state.
 *
 * Lifetime rules: a scratch may be reused across different bound pairs
 * (prepare() rebuilds when the BoundArch changes) but must not be shared
 * between threads; use threadEvalScratch() for the common case. Buffers
 * are only valid during a single evaluateMappingInto() call — nothing in
 * here outlives the call it serves.
 *
 * Reuse keying: prepare() keys on BoundArch::uid(), not on the buffer
 * dimensions. Two bindings with identical (levels, tensors, dims) — e.g.
 * a bypass or residency variant of the same architecture — never share
 * the cached per-binding invariants below, because uids are process
 * unique and never recycled (see tests/test_batch_eval.cc,
 * ScratchRekeysAcrossBoundArchVariants).
 */
struct EvalScratch
{
    /**
     * Rebuilds every buffer and per-binding invariant for the bound
     * pair; cheap (counter bump only) when the binding is unchanged.
     */
    void prepare(const BoundArch &ba);

    /** @return evaluations served without rebuilding (telemetry). */
    std::int64_t reuseCount() const { return reuses; }

    // Binding the buffers and invariants are built for.
    std::uint64_t baUid = 0;
    int nl = -1;
    int nt = -1;
    int nd = -1;
    std::int64_t reuses = 0;

    /** Flattened access[l * nt + t] counters (SoA-style single block). */
    std::vector<AccessCounts> access;
    /** Cumulative tile shape per level (rows reused across evals). */
    std::vector<std::vector<std::int64_t>> shapes;
    /** Per-level spatial factor product. */
    std::vector<std::int64_t> levelSpatial;
    /** Linearized temporal loops, innermost first, grouped by level. */
    std::vector<DimId> loopDim;
    std::vector<std::int64_t> loopFactor;
    /** loopBegin[l]..loopBegin[l+1] delimit level l's loops (size nl+1). */
    std::vector<int> loopBegin;
    /** Per-dim spatial product of a (c, l] range (multicast helper). */
    std::vector<std::int64_t> spatialUp;
    /** Storage-chain scratch for the tensor being processed. */
    std::vector<int> chain;
    /** Multicast interval-merge buffers. */
    std::vector<std::pair<std::int64_t, std::int64_t>> split;
    std::vector<std::int64_t> starts;
    std::vector<std::int64_t> startsNext;

    /** Buffers for the allocation-free Mapping::valid() overload. */
    ValidityScratch validity;

    /**
     * Suffix products over the linearized loops and the per-level
     * spatial factors, rebuilt per mapping by fillTables. satMul over
     * operands >= 1 is fold-order independent (including saturation),
     * so replacing the historical per-pair walks with suffix lookups is
     * bit-exact — see DESIGN.md §11.
     */
    std::vector<std::int64_t> loopSuffix;   // [i] = prod factor[i..); L+1
    std::vector<std::int64_t> spatialSuffix; // [l] = prod spatial[l..); nl+1
    /** Per-tensor: first linearized loop at >= i over an indexing dim
     *  (-1 sentinel), rebuilt per (mapping, tensor). */
    std::vector<int> firstIdx;

    /**
     * Per-binding invariants, computed once per prepare() instead of per
     * evaluation: total operation count, per-tensor problem footprints
     * and indexing-dim sets, and the bypass-aware storage chains
     * (chainFlat[chainBegin[t]..chainBegin[t+1]) lists the levels
     * storing t, innermost first). All are residency-independent, which
     * is what makes uid sharing across BoundArch copies safe.
     */
    std::int64_t totalOps = 0;
    std::vector<std::int64_t> problemFp; // [t]
    std::vector<DimSet> idxDims;         // [t]
    std::vector<int> chainFlat;
    std::vector<int> chainBegin;         // [nt + 1]

    /**
     * Physical fanout product of the networks in (c, l] and its
     * sqrt-hop factor for every storage-chain pair, aligned with
     * chainFlat: pair (chain[i-1], chain[i]) of tensor t lives at index
     * chainBegin[t] + i (index chainBegin[t] itself is unused). Pure
     * binding invariants — the NoC model reads them instead of walking
     * the level range per evaluation.
     */
    std::vector<std::int64_t> chainFan;
    std::vector<double> chainHops;

    /**
     * Flattened per-(tensor, rank) index structure with per-dim merged
     * coefficients: tensor t's ranks are rankBegin[t]..rankBegin[t+1),
     * rank r's (dim, summed coeff) pairs are termBegin[r]..termBegin[r+1)
     * of termDim/termCoeff. Extents and footprints computed from the
     * merged pairs are bit-identical to IndexExpr::extent() /
     * TensorSpec::footprint() (coefficient merging distributes over the
     * shared (shape[d] - 1) factor; the satMul fold order over ranks is
     * preserved), but never rescan TensorSpec term lists per evaluation.
     */
    std::vector<int> rankBegin;           // [nt + 1]
    std::vector<int> termBegin;           // [numRanks + 1]
    std::vector<DimId> termDim;
    std::vector<std::int64_t> termCoeff;

    /**
     * nonMcPrefix[l] counts levels < l whose fanout network cannot
     * multicast, so "every network in (c, l] multicasts" is the O(1)
     * test nonMcPrefix[l + 1] == nonMcPrefix[c + 1].
     */
    std::vector<int> nonMcPrefix;         // [nl + 1]

    /**
     * Per-(level, tensor) tile footprints of the current mapping,
     * filled by detail::checkValid() as a side product of the fits
     * checks and consumed by detail::countAccess() so the tile
     * footprint of a chain pair is never computed twice. Only valid for
     * non-DRAM levels, and only when tileFpReady (checkValid ran and
     * passed for this mapping).
     */
    std::vector<std::int64_t> tileFp;    // [l * nt + t]
    bool tileFpReady = false;

    /**
     * Per-(level, rank) tile extents recorded by the same fits pass
     * (rank indices are the flattened rankBegin space). The multicast
     * union recomputes per-rank extents of a consumer tile otherwise;
     * like tileFp, entries are valid for non-DRAM levels when
     * tileFpReady.
     */
    std::vector<std::int64_t> rankExt;   // [l * numRanks + r]
};

/** @return this thread's lazily constructed scratch arena. */
EvalScratch &threadEvalScratch();

/**
 * Cached per-(tensor, chain-pair) contribution terms of a decided-level
 * prefix. For every storage-chain pair (consumer c, provider l) that lies
 * entirely below `prefixLevels` the mapping-dependent factors of the
 * access-count formulas are precomputed, so an evaluation against a
 * mapping sharing that prefix only walks the undecided suffix.
 *
 * The terms are a pure function of the canonical prefix: the temporal and
 * spatial factors of levels [0, prefixLevels) plus the relative order of
 * their factor>1 temporal loops (level 0's order never matters — no
 * consumer sits below it). Two mappings that agree on those fields may
 * share one PrefixTerms; this is the same canonicalization rule the
 * EvalEngine memo cache uses.
 */
struct PrefixTerms
{
    int prefixLevels = 0;

    /** Terms for chain pair i (consumer chain[i-1], provider chain[i]). */
    struct Pair
    {
        /** True when the provider level lies below prefixLevels. */
        bool cached = false;
        /** Tile-change skip-rule state after the decided levels. */
        bool evStarted = false;
        /** Counted loop-factor product within levels (c, prefixLevels). */
        std::int64_t evPrefix = 1;
        /** Spatial product of levels (l, prefixLevels). */
        std::int64_t nAbovePrefix = 1;
        /** satMul(spatial product of (c, l], consumer tile footprint). */
        std::int64_t fillUnit = 1;
        /** Distinct words delivered per event (inputs; 0 for outputs). */
        std::int64_t distinct = 0;
        /** Physical fanout product of the networks in (c, l]. */
        std::int64_t fan = 1;
    };

    struct TensorTerms
    {
        std::vector<Pair> pairs;
    };

    std::vector<TensorTerms> tensors;
};

/**
 * Evaluates a mapping. Invalid mappings return valid=false with a reason
 * and infinite EDP so searches can rank them last.
 */
CostResult evaluateMapping(const BoundArch &ba, const Mapping &m,
                           const CostModelOptions &opts = {});

/**
 * Allocation-free variant of evaluateMapping(): writes the result into
 * `res` (reusing its buffers) using the caller-provided scratch arena.
 * Bit-identical to evaluateMapping() — same arithmetic in the same order.
 */
void evaluateMappingInto(const BoundArch &ba, const Mapping &m,
                         const CostModelOptions &opts, EvalScratch &scratch,
                         CostResult &res);

/**
 * Precomputes the contribution terms of levels [0, prefix_levels) of
 * `base` into `out`. The result is only valid for mappings whose
 * canonical prefix (see PrefixTerms) equals base's.
 */
void buildPrefixTerms(const BoundArch &ba, const Mapping &base,
                      int prefix_levels, EvalScratch &scratch,
                      PrefixTerms &out);

/**
 * Like evaluateMappingInto() but combines the cached prefix terms with
 * freshly computed terms for the undecided levels. Bit-identical to the
 * full evaluation for any mapping sharing the prefix's canonical form.
 */
void evaluateMappingWithPrefixInto(const BoundArch &ba,
                                   const PrefixTerms &prefix,
                                   const Mapping &m,
                                   const CostModelOptions &opts,
                                   EvalScratch &scratch, CostResult &res);

/**
 * Cheap partial objective used by searches: total access energy of levels
 * <= max_level only (pJ), assuming the mapping prefix below is final.
 * This is the alpha-beta lower-bound surrogate of Section V-C.
 */
double partialEnergyPj(const BoundArch &ba, const Mapping &m, int max_level);

namespace detail {

/**
 * Internal stages of evaluateMappingInto(), exported so the SoA batch
 * evaluator (model/batch_eval.hh) can reuse the exact integer kernels
 * and share the scalar path's bit-identity guarantees. Not a public API.
 */

/** Resets `res` to a freshly constructed state, reusing capacity. */
void resetCostResult(CostResult &res, int nl, int nt);

/**
 * Builds the per-mapping tables (cumulative tile shapes, per-level
 * spatial products, linearized loop nest, suffix products) into the
 * scratch. Requires a prepared scratch and a mapping whose level/dim
 * counts and per-level orders are well formed (checkValid() runs it
 * only after establishing that; assumeValid callers vouch for it).
 */
void fillTables(const Mapping &m, EvalScratch &s);

/**
 * Validity check of the evaluation fast path: same checks, in the same
 * order, producing byte-identical failure messages as the public
 * Mapping::valid() (pinned by tests/test_batch_eval.cc,
 * CheckValidMatchesMappingValid — keep the two in sync). On the fits
 * pass it runs fillTables() and reuses the cumulative shapes, storing
 * every per-(level, tensor) footprint into s.tileFp for countAccess()
 * to consume. On success the scratch tables are fully built.
 */
bool checkValid(const BoundArch &ba, const Mapping &m, EvalScratch &s,
                std::string *why);

/**
 * Computes every per-(level, tensor) access counter of `m` into
 * scratch.access. Requires the scratch tables to be built for `m`
 * (by checkValid() or fillTables()). Assumes the mapping is valid.
 *
 * @return the NoC energy (pJ) accumulated in chain-pair order — exactly
 *         the res.nocEnergyPj the monolithic evaluation produced
 */
double countAccess(const BoundArch &ba, const Mapping &m,
                   const CostModelOptions &opts, const PrefixTerms *prefix,
                   EvalScratch &s);

/**
 * Scalar finalization: copies the scratch counters into res.access and
 * derives energy, latency, utilization, and EDP, in the historical
 * accumulation order.
 */
void finalizeResult(const BoundArch &ba, const CostModelOptions &opts,
                    const EvalScratch &s, double noc_energy_pj,
                    CostResult &res);

} // namespace detail

} // namespace sunstone

#endif // SUNSTONE_MODEL_COST_MODEL_HH
