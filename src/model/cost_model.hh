/**
 * @file
 * Analytical cost model in the style of Timeloop (the paper's evaluation
 * platform, Section V-A): for a (workload, architecture, mapping) triple
 * it derives per-level, per-tensor access counts in closed form, converts
 * them to energy via the BoundArch energies, models latency as
 * max(compute, per-level bandwidth) under double buffering, and reports
 * the energy-delay product.
 *
 * Access-count semantics (validated against the literal loop-nest walker
 * in nest_simulator.hh):
 *
 *  - A tensor's *storage chain* is the list of levels that store it
 *    (bypass-aware). Data moves only between consecutive chain levels.
 *  - Reads from provider L serving consumer C use the stationarity rule
 *    of the paper's Eqs. 1-3: the number of tile-change events is the
 *    product of all temporal loop factors above C, skipping the trailing
 *    run of loops over non-indexing dimensions.
 *  - Spatial factors between C and L multicast (when every fanout
 *    network in the range supports it): the distinct data per event is
 *    the exact union of the consumer-tile boxes across the spatial
 *    instances, computed per rank by merging start intervals. For
 *    contiguous tilings this equals the footprint of the spatially
 *    enlarged tile (Eq. 5); for strided sliding windows whose consumer
 *    tile carries no halo the merge also accounts for the gaps the
 *    enlarged-tile formula would overcount. Every consumer instance is
 *    still *filled*. Validated against the multicast-aware oracle in
 *    nest_simulator.hh, which derives the same counts by enumerating
 *    coordinates.
 *  - Outputs flow upward: every consumer drains its partial tile per
 *    event (spatial reduction sends every partial), and each arriving
 *    partial beyond the first visit of a distinct word performs a
 *    read-modify-write at the provider.
 */

#ifndef SUNSTONE_MODEL_COST_MODEL_HH
#define SUNSTONE_MODEL_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/mapping.hh"

namespace sunstone {

/** Per-(level, tensor) access counters (words). */
struct AccessCounts
{
    /** Reads serving consumers below (incl. MAC operand fetches). */
    std::int64_t reads = 0;
    /** Writes arriving from the level above (input tensors). */
    std::int64_t fills = 0;
    /** Writes of partial results arriving from below (outputs). */
    std::int64_t updates = 0;
    /** Reads performed to accumulate into an existing partial. */
    std::int64_t accumReads = 0;
    /** Reads that drain partial results toward the level above. */
    std::int64_t drains = 0;

    std::int64_t
    totalReads() const
    {
        return reads + accumReads + drains;
    }
    std::int64_t totalWrites() const { return fills + updates; }
};

/** Full evaluation result for one mapping. */
struct CostResult
{
    bool valid = false;
    std::string invalidReason;

    /** access[level][tensor] counters. */
    std::vector<std::vector<AccessCounts>> access;

    /** Energy broken out per level (pJ), plus compute and network. */
    std::vector<double> levelEnergyPj;
    double macEnergyPj = 0;
    double nocEnergyPj = 0;

    double totalEnergyPj = 0;
    /** Execution cycles under double buffering. */
    double cycles = 0;
    double delaySeconds = 0;
    /** Energy-delay product in pJ*s (the paper's figure of merit). */
    double edp = 0;

    /** Utilization of the MAC array in [0, 1]. */
    double utilization = 0;

    /**
     * What binds the delay: "compute" or the name of the bandwidth-
     * limited level (useful when tuning an architecture).
     */
    std::string bottleneck;
};

/** Evaluation knobs. */
struct CostModelOptions
{
    /** Skip the validity check (caller guarantees validity). */
    bool assumeValid = false;
    /** Include NoC wire + tag-check energy (Section V-A). */
    bool modelNoc = true;
};

/**
 * Evaluates a mapping. Invalid mappings return valid=false with a reason
 * and infinite EDP so searches can rank them last.
 */
CostResult evaluateMapping(const BoundArch &ba, const Mapping &m,
                           const CostModelOptions &opts = {});

/**
 * Cheap partial objective used by searches: total access energy of levels
 * <= max_level only (pJ), assuming the mapping prefix below is final.
 * This is the alpha-beta lower-bound surrogate of Section V-C.
 */
double partialEnergyPj(const BoundArch &ba, const Mapping &m, int max_level);

} // namespace sunstone

#endif // SUNSTONE_MODEL_COST_MODEL_HH
