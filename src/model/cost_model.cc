#include "model/cost_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "arch/energy_model.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

namespace {

/** One temporal loop in the linearized (inner-to-outer) nest. */
struct TemporalLoop
{
    int level;
    DimId dim;
    std::int64_t factor;
};

/**
 * Linearizes the temporal loops of every level strictly above
 * `consumer_level`, innermost first (ascending levels; within a level the
 * mapping order is outermost-first, so it is walked in reverse).
 */
std::vector<TemporalLoop>
loopsAbove(const Mapping &m, int consumer_level)
{
    std::vector<TemporalLoop> loops;
    for (int l = consumer_level + 1; l < m.numLevels(); ++l) {
        const auto &lm = m.level(l);
        for (auto it = lm.order.rbegin(); it != lm.order.rend(); ++it) {
            DimId d = *it;
            if (lm.temporal[d] > 1)
                loops.push_back({l, d, lm.temporal[d]});
        }
    }
    return loops;
}

/**
 * Tile-change events for tensor t: product of all counted temporal loop
 * factors above the consumer, where the trailing (innermost) run of loops
 * over non-indexing dimensions is skipped (paper Eqs. 1-3).
 */
std::int64_t
tileChangeEvents(const Workload &wl, TensorId t,
                 const std::vector<TemporalLoop> &loops)
{
    const DimSet idx = wl.reuse(t).indexing;
    std::int64_t events = 1;
    bool counting = false;
    for (const auto &loop : loops) {
        if (!counting && !idx.contains(loop.dim))
            continue; // reused across this loop
        counting = true;
        events = satMul(events, loop.factor);
    }
    return events;
}

/** Product of all spatial factors at levels in (lo, hi]. */
std::int64_t
spatialProductRange(const Mapping &m, int lo, int hi)
{
    std::int64_t p = 1;
    for (int l = lo + 1; l <= hi; ++l)
        p = satMul(p, m.level(l).spatialProduct());
    return p;
}

/** Number of parallel instances of (the subtree rooted at) level l. */
std::int64_t
instancesOf(const Mapping &m, int level)
{
    return spatialProductRange(m, level, m.numLevels() - 1);
}

/** True when every fanout network in (lo, hi] supports multicast. */
bool
multicastRange(const ArchSpec &arch, int lo, int hi)
{
    for (int l = lo + 1; l <= hi; ++l)
        if (arch.levels[l].fanout > 1 && !arch.levels[l].multicast)
            return false;
    return true;
}

/**
 * Clamped accumulation-read count: `arriving` partials minus the
 * `distinct` words that absorb a first write for free. Exotic output
 * chains (e.g. strided output ranks whose dense footprint exceeds the
 * operation count) can make the difference negative; clamping keeps an
 * underflow from ever *reducing* the energy sum.
 */
std::int64_t
accumReadsFor(std::int64_t arriving, std::int64_t distinct)
{
    // Negative inputs would mean an upstream counter already
    // underflowed; catch that loudly in debug builds.
    assert(arriving >= 0 && distinct >= 0);
    return std::max<std::int64_t>(0, arriving - distinct);
}

/**
 * Distinct words of tensor `ts` delivered per tile-change event to the
 * whole multicast group: the union, over every spatial instance in
 * (c, l], of the dense per-rank tile boxes (Eq. 5 with exact halo
 * sharing).
 *
 * Per rank the child boxes are intervals of length extent(shape_c)
 * whose starts form the lattice {sum_d coeff_d * i_d * shape_c[d]}
 * with i_d < spatial_up[d]. When adjacent starts are no further apart
 * than the interval length the union is contiguous and this reproduces
 * the paper's enlarged-tile footprint exactly; when a stride opens gaps
 * (e.g. strided convolution with no halo in the consumer tile) the
 * enlarged-tile formula overcounts and the interval merge below is the
 * correct count. Ranks are combined as a product, mirroring the dense
 * per-rank box storage convention used by footprint().
 */
std::int64_t
multicastDistinctWords(const TensorSpec &ts,
                       const std::vector<std::int64_t> &shape_c,
                       const std::vector<std::int64_t> &spatial_up)
{
    std::int64_t words = 1;
    for (const auto &rank : ts.ranks) {
        const std::int64_t ext = rank.extent(shape_c);

        // Per-dim start stride within this rank (a dim may appear in
        // several terms; their coefficients add).
        std::vector<std::pair<std::int64_t, std::int64_t>> split;
        for (DimId d : rank.dims()) {
            if (spatial_up[d] <= 1)
                continue;
            std::int64_t coeff = 0;
            for (const auto &term : rank.terms)
                if (term.dim == d)
                    coeff += term.coeff;
            split.emplace_back(satMul(coeff, shape_c[d]), spatial_up[d]);
        }

        std::int64_t rank_words;
        if (split.empty()) {
            // Every instance holds the same interval along this rank.
            rank_words = ext;
        } else if (split.size() == 1) {
            // Arithmetic progression of starts: closed-form merge.
            const auto [stride, count] = split[0];
            rank_words = stride <= ext
                             ? satMul(stride, count - 1) + ext
                             : satMul(ext, count);
        } else {
            // Several spatially split dims feed one rank: enumerate the
            // start lattice and merge intervals. The lattice size is
            // bounded by the spatial product of the range, which is at
            // most the machine's total fanout.
            std::vector<std::int64_t> starts{0};
            for (const auto &[stride, count] : split) {
                std::vector<std::int64_t> next;
                next.reserve(starts.size() *
                             static_cast<std::size_t>(count));
                for (std::int64_t s : starts)
                    for (std::int64_t i = 0; i < count; ++i)
                        next.push_back(s + satMul(i, stride));
                starts = std::move(next);
            }
            std::sort(starts.begin(), starts.end());
            rank_words = 0;
            std::int64_t covered_to =
                std::numeric_limits<std::int64_t>::min();
            for (std::int64_t s : starts) {
                const std::int64_t b = std::max(s, covered_to);
                const std::int64_t e = s + ext;
                if (e > b) {
                    rank_words += e - b;
                    covered_to = e;
                }
            }
        }
        words = satMul(words, rank_words);
    }
    return words;
}

/** Physical fanout product of the networks in (lo, hi]. */
std::int64_t
physicalFanRange(const ArchSpec &arch, int lo, int hi)
{
    std::int64_t f = 1;
    for (int l = lo + 1; l <= hi; ++l)
        f = satMul(f, arch.levels[l].fanout);
    return f;
}

} // anonymous namespace

CostResult
evaluateMapping(const BoundArch &ba, const Mapping &m,
                const CostModelOptions &opts)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = ba.numLevels();
    const int nt = ba.numTensors();

    CostResult res;
    res.access.assign(nl, std::vector<AccessCounts>(nt));
    res.levelEnergyPj.assign(nl, 0.0);

    if (!opts.assumeValid && !m.valid(ba, &res.invalidReason)) {
        res.valid = false;
        res.edp = std::numeric_limits<double>::infinity();
        res.totalEnergyPj = std::numeric_limits<double>::infinity();
        return res;
    }
    res.valid = true;

    const std::int64_t ops = wl.totalOps();

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        const std::int64_t problem_fp = ts.footprint(wl.shape());

        // Storage chain, innermost first.
        std::vector<int> chain;
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);
        SUNSTONE_ASSERT(!chain.empty(), "tensor stored nowhere");

        // MAC-level consumption at the innermost storing level: one word
        // per operand per operation; outputs are read-modify-written.
        auto &inner = res.access[chain[0]][t];
        if (!ts.isOutput) {
            inner.reads += ops;
        } else {
            inner.updates += ops;
            inner.accumReads += accumReadsFor(ops, problem_fp);
        }

        // Transfers between consecutive storing levels.
        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];
            const auto loops = loopsAbove(m, c);
            const std::int64_t ev = tileChangeEvents(wl, t, loops);
            const std::int64_t n_above = instancesOf(m, l);
            const std::int64_t spatial_all = spatialProductRange(m, c, l);

            auto shape_c = m.tileShape(c);
            const std::int64_t tile_c = ts.footprint(shape_c);

            if (!ts.isOutput) {
                std::int64_t distinct;
                if (multicastRange(arch, c, l)) {
                    // Union of the consumer tiles across the spatial
                    // instances in (c, l]: halo overlap is shared, and
                    // strided gaps are not charged (Eq. 5, exact).
                    std::vector<std::int64_t> spatial_up(wl.numDims(), 1);
                    for (int j = c + 1; j <= l; ++j)
                        for (DimId d = 0; d < wl.numDims(); ++d)
                            spatial_up[d] = satMul(spatial_up[d],
                                                   m.level(j).spatial[d]);
                    distinct =
                        multicastDistinctWords(ts, shape_c, spatial_up);
                } else {
                    distinct = satMul(spatial_all, tile_c);
                }
                const std::int64_t reads_l =
                    satMul(satMul(ev, distinct), n_above);
                const std::int64_t fills_c = satMul(
                    satMul(ev, satMul(spatial_all, tile_c)), n_above);
                res.access[l][t].reads += reads_l;
                res.access[c][t].fills += fills_c;

                if (opts.modelNoc) {
                    const std::int64_t fan = physicalFanRange(arch, c, l);
                    if (fan > 1) {
                        const double hops = std::sqrt((double)fan);
                        res.nocEnergyPj += (double)reads_l * ts.wordBits *
                                           energy::nocHopPjPerBit() * hops;
                        res.nocEnergyPj += (double)fills_c *
                                           energy::tagCheckPjPerWord();
                    }
                }
            } else {
                // Partial-sum drain: every consumer instance sends its
                // tile per event; the provider read-modify-writes.
                const std::int64_t upd_l = satMul(
                    satMul(ev, satMul(spatial_all, tile_c)), n_above);
                res.access[l][t].updates += upd_l;
                res.access[c][t].drains += upd_l;
                res.access[l][t].accumReads +=
                    accumReadsFor(upd_l, problem_fp);

                if (opts.modelNoc) {
                    const std::int64_t fan = physicalFanRange(arch, c, l);
                    if (fan > 1) {
                        const double hops = std::sqrt((double)fan);
                        res.nocEnergyPj += (double)upd_l * ts.wordBits *
                                           energy::nocHopPjPerBit() * hops;
                    }
                }
            }
        }
    }

    // Energy.
    for (int l = 0; l < nl; ++l) {
        for (TensorId t = 0; t < nt; ++t) {
            const auto &a = res.access[l][t];
            res.levelEnergyPj[l] +=
                (double)a.totalReads() * ba.readEnergyPj(l, t) +
                (double)a.totalWrites() * ba.writeEnergyPj(l, t);
        }
        res.totalEnergyPj += res.levelEnergyPj[l];
    }
    res.macEnergyPj =
        (double)ops * ba.macEnergyPj() * wl.multipliesPerOp();
    res.totalEnergyPj += res.macEnergyPj;
    if (opts.modelNoc)
        res.totalEnergyPj += res.nocEnergyPj;

    // Latency: double buffering overlaps compute with every level's
    // transfers, so delay is the max of all of them.
    const std::int64_t lanes = std::max<std::int64_t>(1, m.totalSpatial());
    double cycles = (double)ops / (double)lanes;
    res.bottleneck = "compute";
    for (int l = 0; l < nl; ++l) {
        const auto &lv = arch.levels[l];
        const double inst = (double)instancesOf(m, l);
        double reads = 0, writes = 0;
        for (TensorId t = 0; t < nt; ++t) {
            reads += (double)res.access[l][t].totalReads();
            writes += (double)res.access[l][t].totalWrites();
        }
        // A non-positive bandwidth with pending traffic is an infinite
        // bottleneck, not a division hazard: 0/0 would yield NaN, and a
        // NaN never compares greater, silently hiding the stall.
        auto dir_cycles = [inst](double words, double bw) {
            if (words <= 0)
                return 0.0;
            if (bw <= 0)
                return std::numeric_limits<double>::infinity();
            return words / (bw * inst);
        };
        const double level_cycles =
            std::max(dir_cycles(reads, lv.readBwWordsPerCycle),
                     dir_cycles(writes, lv.writeBwWordsPerCycle));
        if (level_cycles > cycles) {
            cycles = level_cycles;
            res.bottleneck = std::isinf(level_cycles)
                                 ? lv.name + " (zero bandwidth)"
                                 : lv.name;
        }
    }
    res.cycles = cycles;
    res.delaySeconds = cycles / (arch.clockGhz * 1e9);
    res.utilization =
        (double)lanes / (double)std::max<std::int64_t>(1,
                                                       arch.totalFanout());
    res.edp = res.totalEnergyPj * 1e-12 * res.delaySeconds;
    return res;
}

double
partialEnergyPj(const BoundArch &ba, const Mapping &m, int max_level)
{
    CostModelOptions opts;
    opts.assumeValid = true;
    opts.modelNoc = false;
    CostResult r = evaluateMapping(ba, m, opts);
    double e = r.macEnergyPj;
    for (int l = 0; l <= max_level && l < (int)r.levelEnergyPj.size(); ++l)
        e += r.levelEnergyPj[l];
    return e;
}

} // namespace sunstone
