#include "model/cost_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "arch/energy_model.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

void
EvalScratch::prepare(const BoundArch &ba)
{
    const int want_nl = ba.numLevels();
    const int want_nt = ba.numTensors();
    const int want_nd = ba.workload().numDims();
    if (want_nl == nl && want_nt == nt && want_nd == nd) {
        ++reuses;
        return;
    }
    nl = want_nl;
    nt = want_nt;
    nd = want_nd;
    access.assign(static_cast<std::size_t>(nl) * nt, AccessCounts{});
    shapes.resize(nl);
    for (auto &row : shapes)
        row.assign(nd, 1);
    levelSpatial.assign(nl, 1);
    loopBegin.assign(nl + 1, 0);
    spatialUp.assign(nd, 1);
    loopDim.clear();
    loopFactor.clear();
    chain.clear();
    chain.reserve(nl);
}

EvalScratch &
threadEvalScratch()
{
    thread_local EvalScratch scratch;
    return scratch;
}

namespace {

/**
 * Fills the per-mapping tables: cumulative tile shapes, per-level spatial
 * products, and the linearized temporal loop nest (innermost first;
 * within a level the mapping order is outermost-first, so it is walked
 * in reverse, exactly like the historical loopsAbove()).
 */
void
fillTables(const Mapping &m, EvalScratch &s)
{
    s.loopDim.clear();
    s.loopFactor.clear();
    for (int l = 0; l < s.nl; ++l) {
        const auto &lm = m.level(l);
        auto &row = s.shapes[l];
        for (DimId d = 0; d < s.nd; ++d) {
            const std::int64_t own = satMul(lm.temporal[d], lm.spatial[d]);
            row[d] = l == 0 ? satMul(std::int64_t{1}, own)
                            : satMul(s.shapes[l - 1][d], own);
        }
        s.levelSpatial[l] = lm.spatialProduct();
        s.loopBegin[l] = static_cast<int>(s.loopDim.size());
        for (auto it = lm.order.rbegin(); it != lm.order.rend(); ++it) {
            DimId d = *it;
            if (lm.temporal[d] > 1) {
                s.loopDim.push_back(d);
                s.loopFactor.push_back(lm.temporal[d]);
            }
        }
    }
    s.loopBegin[s.nl] = static_cast<int>(s.loopDim.size());
}

/**
 * Tile-change events for a tensor (paper Eqs. 1-3): continues the
 * counted-loop product from `events`/`counting` over the linearized
 * loops of levels [from_level, nl), skipping the trailing (innermost)
 * run of loops over non-indexing dimensions.
 */
std::int64_t
tileChangeEventsFrom(const EvalScratch &s, DimSet idx, int from_level,
                     std::int64_t events, bool counting)
{
    const int begin = s.loopBegin[from_level];
    const int end = s.loopBegin[s.nl];
    for (int i = begin; i < end; ++i) {
        if (!counting && !idx.contains(s.loopDim[i]))
            continue; // reused across this loop
        counting = true;
        events = satMul(events, s.loopFactor[i]);
    }
    return events;
}

/** Continues the spatial-factor product over levels [from, hi]. */
std::int64_t
spatialRangeFrom(const EvalScratch &s, int from, int hi, std::int64_t p)
{
    for (int l = from; l <= hi; ++l)
        p = satMul(p, s.levelSpatial[l]);
    return p;
}

/** Product of all spatial factors at levels in (lo, hi]. */
std::int64_t
spatialRange(const EvalScratch &s, int lo, int hi)
{
    return spatialRangeFrom(s, lo + 1, hi, 1);
}

/** True when every fanout network in (lo, hi] supports multicast. */
bool
multicastRange(const ArchSpec &arch, int lo, int hi)
{
    for (int l = lo + 1; l <= hi; ++l)
        if (arch.levels[l].fanout > 1 && !arch.levels[l].multicast)
            return false;
    return true;
}

/**
 * Clamped accumulation-read count: `arriving` partials minus the
 * `distinct` words that absorb a first write for free. Exotic output
 * chains (e.g. strided output ranks whose dense footprint exceeds the
 * operation count) can make the difference negative; clamping keeps an
 * underflow from ever *reducing* the energy sum.
 */
std::int64_t
accumReadsFor(std::int64_t arriving, std::int64_t distinct)
{
    // Negative inputs would mean an upstream counter already
    // underflowed; catch that loudly in debug builds.
    assert(arriving >= 0 && distinct >= 0);
    return std::max<std::int64_t>(0, arriving - distinct);
}

/**
 * Distinct words of tensor `ts` delivered per tile-change event to the
 * whole multicast group: the union, over every spatial instance in
 * (c, l], of the dense per-rank tile boxes (Eq. 5 with exact halo
 * sharing).
 *
 * Per rank the child boxes are intervals of length extent(shape_c)
 * whose starts form the lattice {sum_d coeff_d * i_d * shape_c[d]}
 * with i_d < spatial_up[d]. When adjacent starts are no further apart
 * than the interval length the union is contiguous and this reproduces
 * the paper's enlarged-tile footprint exactly; when a stride opens gaps
 * (e.g. strided convolution with no halo in the consumer tile) the
 * enlarged-tile formula overcounts and the interval merge below is the
 * correct count. Ranks are combined as a product, mirroring the dense
 * per-rank box storage convention used by footprint().
 */
std::int64_t
multicastDistinctWords(const TensorSpec &ts,
                       const std::vector<std::int64_t> &shape_c,
                       const std::vector<std::int64_t> &spatial_up,
                       EvalScratch &s)
{
    std::int64_t words = 1;
    for (const auto &rank : ts.ranks) {
        const std::int64_t ext = rank.extent(shape_c);

        // Per-dim start stride within this rank (a dim may appear in
        // several terms; their coefficients add).
        auto &split = s.split;
        split.clear();
        for (DimId d : rank.dims()) {
            if (spatial_up[d] <= 1)
                continue;
            std::int64_t coeff = 0;
            for (const auto &term : rank.terms)
                if (term.dim == d)
                    coeff += term.coeff;
            split.emplace_back(satMul(coeff, shape_c[d]), spatial_up[d]);
        }

        std::int64_t rank_words;
        if (split.empty()) {
            // Every instance holds the same interval along this rank.
            rank_words = ext;
        } else if (split.size() == 1) {
            // Arithmetic progression of starts: closed-form merge.
            const auto [stride, count] = split[0];
            rank_words = stride <= ext
                             ? satMul(stride, count - 1) + ext
                             : satMul(ext, count);
        } else {
            // Several spatially split dims feed one rank: enumerate the
            // start lattice and merge intervals. The lattice size is
            // bounded by the spatial product of the range, which is at
            // most the machine's total fanout.
            auto &starts = s.starts;
            starts.assign(1, 0);
            for (const auto &[stride, count] : split) {
                auto &next = s.startsNext;
                next.clear();
                next.reserve(starts.size() *
                             static_cast<std::size_t>(count));
                for (std::int64_t st : starts)
                    for (std::int64_t i = 0; i < count; ++i)
                        next.push_back(st + satMul(i, stride));
                starts.swap(next);
            }
            std::sort(starts.begin(), starts.end());
            rank_words = 0;
            std::int64_t covered_to =
                std::numeric_limits<std::int64_t>::min();
            for (std::int64_t st : starts) {
                const std::int64_t b = std::max(st, covered_to);
                const std::int64_t e = st + ext;
                if (e > b) {
                    rank_words += e - b;
                    covered_to = e;
                }
            }
        }
        words = satMul(words, rank_words);
    }
    return words;
}

/** Physical fanout product of the networks in (lo, hi]. */
std::int64_t
physicalFanRange(const ArchSpec &arch, int lo, int hi)
{
    std::int64_t f = 1;
    for (int l = lo + 1; l <= hi; ++l)
        f = satMul(f, arch.levels[l].fanout);
    return f;
}

/** Resets `res` to the state a freshly constructed CostResult holds,
 *  reusing its buffer capacity (sized for nl levels x nt tensors). */
void
resetResult(CostResult &res, int nl, int nt)
{
    res.valid = false;
    res.invalidReason.clear();
    res.access.resize(nl);
    for (auto &row : res.access)
        row.assign(nt, AccessCounts{});
    res.levelEnergyPj.assign(nl, 0.0);
    res.macEnergyPj = 0;
    res.nocEnergyPj = 0;
    res.totalEnergyPj = 0;
    res.cycles = 0;
    res.delaySeconds = 0;
    res.edp = 0;
    res.utilization = 0;
    res.bottleneck.clear();
}

/**
 * The one true evaluation: computes every per-(level, tensor) access
 * contribution into the scratch arena and finalizes energy/latency/EDP
 * into `res`. When `prefix` is non-null, chain pairs lying entirely
 * below prefix->prefixLevels reuse the cached contribution terms and
 * only the undecided suffix is walked.
 *
 * Bit-identity contract: both paths execute the same satMul chains on
 * the same operands (satMul is a left-fold over factors >= 1, so a
 * cached prefix product continued over the suffix reproduces the full
 * fold exactly), and all floating-point accumulation (level energy,
 * NoC energy, latency) happens in finalization loops shared verbatim
 * with the historical evaluateMapping(), in the same order.
 */
void
evaluateCore(const BoundArch &ba, const Mapping &m,
             const CostModelOptions &opts, const PrefixTerms *prefix,
             EvalScratch &s, CostResult &res)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();

    s.prepare(ba);
    const int nl = s.nl;
    const int nt = s.nt;
    const int nd = s.nd;
    resetResult(res, nl, nt);

    if (!opts.assumeValid && !m.valid(ba, &res.invalidReason)) {
        res.valid = false;
        res.edp = std::numeric_limits<double>::infinity();
        res.totalEnergyPj = std::numeric_limits<double>::infinity();
        return;
    }
    res.valid = true;

    fillTables(m, s);
    std::fill(s.access.begin(), s.access.end(), AccessCounts{});
    SUNSTONE_ASSERT(prefix == nullptr ||
                        static_cast<int>(prefix->tensors.size()) == nt,
                    "prefix terms built for a different workload");

    const std::int64_t ops = wl.totalOps();
    const int prefix_levels = prefix ? prefix->prefixLevels : 0;

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        const std::int64_t problem_fp = ts.footprint(wl.shape());
        const DimSet idx = wl.reuse(t).indexing;

        // Storage chain, innermost first.
        auto &chain = s.chain;
        chain.clear();
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);
        SUNSTONE_ASSERT(!chain.empty(), "tensor stored nowhere");

        // MAC-level consumption at the innermost storing level: one word
        // per operand per operation; outputs are read-modify-written.
        auto &inner = s.access[static_cast<std::size_t>(chain[0]) * nt + t];
        if (!ts.isOutput) {
            inner.reads += ops;
        } else {
            inner.updates += ops;
            inner.accumReads += accumReadsFor(ops, problem_fp);
        }

        // Transfers between consecutive storing levels.
        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];

            // Fused-subgraph residency (DESIGN.md §13): an Ephemeral
            // tensor whose level-c tile spans the whole tensor is handed
            // off on chip — the producer's drain to DRAM and the
            // consumer's fill from DRAM never happen, so the entire
            // (c, DRAM) pair contributes nothing. Without full coverage
            // the tensor would be re-streamed and the DRAM leg is
            // charged exactly like a boundary tensor's.
            if (arch.levels[l].isDram &&
                ba.residency(t) == Residency::Ephemeral) {
                bool covered = true;
                for (DimId d : idx)
                    covered &= s.shapes[c][d] == wl.dimSize(d);
                if (covered)
                    continue;
            }

            const PrefixTerms::Pair *pp = nullptr;
            if (prefix && l < prefix_levels) {
                pp = &prefix->tensors[t].pairs[i - 1];
                SUNSTONE_ASSERT(pp->cached, "prefix pair not cached");
            }

            std::int64_t ev, n_above, fill_unit, fan;
            if (pp) {
                ev = tileChangeEventsFrom(s, idx, prefix_levels,
                                          pp->evPrefix, pp->evStarted);
                n_above = spatialRangeFrom(s, prefix_levels, nl - 1,
                                           pp->nAbovePrefix);
                fill_unit = pp->fillUnit;
                fan = pp->fan;
            } else {
                ev = tileChangeEventsFrom(s, idx, c + 1, 1, false);
                n_above = spatialRange(s, l, nl - 1);
                const std::int64_t spatial_all = spatialRange(s, c, l);
                const std::int64_t tile_c = ts.footprint(s.shapes[c]);
                fill_unit = satMul(spatial_all, tile_c);
                fan = opts.modelNoc ? physicalFanRange(arch, c, l) : 1;
            }

            auto &at_l = s.access[static_cast<std::size_t>(l) * nt + t];
            auto &at_c = s.access[static_cast<std::size_t>(c) * nt + t];

            if (!ts.isOutput) {
                std::int64_t distinct;
                if (pp) {
                    distinct = pp->distinct;
                } else if (multicastRange(arch, c, l)) {
                    // Union of the consumer tiles across the spatial
                    // instances in (c, l]: halo overlap is shared, and
                    // strided gaps are not charged (Eq. 5, exact).
                    auto &spatial_up = s.spatialUp;
                    std::fill(spatial_up.begin(), spatial_up.end(),
                              std::int64_t{1});
                    for (int j = c + 1; j <= l; ++j)
                        for (DimId d = 0; d < nd; ++d)
                            spatial_up[d] = satMul(spatial_up[d],
                                                   m.level(j).spatial[d]);
                    distinct = multicastDistinctWords(ts, s.shapes[c],
                                                      spatial_up, s);
                } else {
                    distinct = fill_unit;
                }
                const std::int64_t reads_l =
                    satMul(satMul(ev, distinct), n_above);
                const std::int64_t fills_c =
                    satMul(satMul(ev, fill_unit), n_above);
                at_l.reads += reads_l;
                at_c.fills += fills_c;

                if (opts.modelNoc && fan > 1) {
                    const double hops = std::sqrt((double)fan);
                    res.nocEnergyPj += (double)reads_l * ts.wordBits *
                                       energy::nocHopPjPerBit() * hops;
                    res.nocEnergyPj +=
                        (double)fills_c * energy::tagCheckPjPerWord();
                }
            } else {
                // Partial-sum drain: every consumer instance sends its
                // tile per event; the provider read-modify-writes.
                const std::int64_t upd_l =
                    satMul(satMul(ev, fill_unit), n_above);
                at_l.updates += upd_l;
                at_c.drains += upd_l;
                at_l.accumReads += accumReadsFor(upd_l, problem_fp);

                if (opts.modelNoc && fan > 1) {
                    const double hops = std::sqrt((double)fan);
                    res.nocEnergyPj += (double)upd_l * ts.wordBits *
                                       energy::nocHopPjPerBit() * hops;
                }
            }
        }
    }

    // Energy (copying the flat counters into the public nested layout in
    // the same (level, tensor) order the accumulation has always used).
    for (int l = 0; l < nl; ++l) {
        auto &row = res.access[l];
        for (TensorId t = 0; t < nt; ++t) {
            const auto &a = s.access[static_cast<std::size_t>(l) * nt + t];
            row[t] = a;
            res.levelEnergyPj[l] +=
                (double)a.totalReads() * ba.readEnergyPj(l, t) +
                (double)a.totalWrites() * ba.writeEnergyPj(l, t);
        }
        res.totalEnergyPj += res.levelEnergyPj[l];
    }
    res.macEnergyPj =
        (double)ops * ba.macEnergyPj() * wl.multipliesPerOp();
    res.totalEnergyPj += res.macEnergyPj;
    if (opts.modelNoc)
        res.totalEnergyPj += res.nocEnergyPj;

    // Latency: double buffering overlaps compute with every level's
    // transfers, so delay is the max of all of them.
    const std::int64_t lanes =
        std::max<std::int64_t>(1, spatialRangeFrom(s, 0, nl - 1, 1));
    double cycles = (double)ops / (double)lanes;
    res.bottleneck = "compute";
    for (int l = 0; l < nl; ++l) {
        const auto &lv = arch.levels[l];
        const double inst = (double)spatialRange(s, l, nl - 1);
        double reads = 0, writes = 0;
        for (TensorId t = 0; t < nt; ++t) {
            reads += (double)res.access[l][t].totalReads();
            writes += (double)res.access[l][t].totalWrites();
        }
        // A non-positive bandwidth with pending traffic is an infinite
        // bottleneck, not a division hazard: 0/0 would yield NaN, and a
        // NaN never compares greater, silently hiding the stall.
        auto dir_cycles = [inst](double words, double bw) {
            if (words <= 0)
                return 0.0;
            if (bw <= 0)
                return std::numeric_limits<double>::infinity();
            return words / (bw * inst);
        };
        const double level_cycles =
            std::max(dir_cycles(reads, lv.readBwWordsPerCycle),
                     dir_cycles(writes, lv.writeBwWordsPerCycle));
        if (level_cycles > cycles) {
            cycles = level_cycles;
            res.bottleneck = std::isinf(level_cycles)
                                 ? lv.name + " (zero bandwidth)"
                                 : lv.name;
        }
    }
    res.cycles = cycles;
    res.delaySeconds = cycles / (arch.clockGhz * 1e9);
    res.utilization =
        (double)lanes / (double)std::max<std::int64_t>(1,
                                                       arch.totalFanout());
    res.edp = res.totalEnergyPj * 1e-12 * res.delaySeconds;
}

} // anonymous namespace

CostResult
evaluateMapping(const BoundArch &ba, const Mapping &m,
                const CostModelOptions &opts)
{
    CostResult res;
    evaluateCore(ba, m, opts, nullptr, threadEvalScratch(), res);
    return res;
}

void
evaluateMappingInto(const BoundArch &ba, const Mapping &m,
                    const CostModelOptions &opts, EvalScratch &scratch,
                    CostResult &res)
{
    evaluateCore(ba, m, opts, nullptr, scratch, res);
}

void
evaluateMappingWithPrefixInto(const BoundArch &ba, const PrefixTerms &prefix,
                              const Mapping &m,
                              const CostModelOptions &opts,
                              EvalScratch &scratch, CostResult &res)
{
    evaluateCore(ba, m, opts, &prefix, scratch, res);
}

void
buildPrefixTerms(const BoundArch &ba, const Mapping &base, int prefix_levels,
                 EvalScratch &scratch, PrefixTerms &out)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    EvalScratch &s = scratch;
    s.prepare(ba);
    fillTables(base, s);

    const int nl = s.nl;
    const int nt = s.nt;
    const int nd = s.nd;
    SUNSTONE_ASSERT(prefix_levels >= 0 && prefix_levels <= nl,
                    "prefix_levels out of range");
    out.prefixLevels = prefix_levels;
    out.tensors.resize(nt);

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        const DimSet idx = wl.reuse(t).indexing;

        auto &chain = s.chain;
        chain.clear();
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);
        SUNSTONE_ASSERT(!chain.empty(), "tensor stored nowhere");

        auto &pairs = out.tensors[t].pairs;
        pairs.assign(chain.size() > 1 ? chain.size() - 1 : 0,
                     PrefixTerms::Pair{});
        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];
            auto &p = pairs[i - 1];
            p.cached = l < prefix_levels;
            if (!p.cached)
                continue;

            // Tile-change skip-rule state over the decided levels
            // (c, prefix_levels): same walk the full evaluation does,
            // truncated at the prefix boundary.
            std::int64_t events = 1;
            bool counting = false;
            const int begin = s.loopBegin[c + 1];
            const int end = s.loopBegin[prefix_levels];
            for (int j = begin; j < end; ++j) {
                if (!counting && !idx.contains(s.loopDim[j]))
                    continue;
                counting = true;
                events = satMul(events, s.loopFactor[j]);
            }
            p.evPrefix = events;
            p.evStarted = counting;

            p.nAbovePrefix = spatialRangeFrom(s, l + 1, prefix_levels - 1, 1);

            const std::int64_t spatial_all = spatialRange(s, c, l);
            const std::int64_t tile_c = ts.footprint(s.shapes[c]);
            p.fillUnit = satMul(spatial_all, tile_c);
            p.fan = physicalFanRange(arch, c, l);

            if (!ts.isOutput) {
                if (multicastRange(arch, c, l)) {
                    auto &spatial_up = s.spatialUp;
                    std::fill(spatial_up.begin(), spatial_up.end(),
                              std::int64_t{1});
                    for (int j = c + 1; j <= l; ++j)
                        for (DimId d = 0; d < nd; ++d)
                            spatial_up[d] =
                                satMul(spatial_up[d],
                                       base.level(j).spatial[d]);
                    p.distinct = multicastDistinctWords(ts, s.shapes[c],
                                                        spatial_up, s);
                } else {
                    p.distinct = p.fillUnit;
                }
            } else {
                p.distinct = 0;
            }
        }
    }
}

double
partialEnergyPj(const BoundArch &ba, const Mapping &m, int max_level)
{
    CostModelOptions opts;
    opts.assumeValid = true;
    opts.modelNoc = false;
    CostResult r = evaluateMapping(ba, m, opts);
    double e = r.macEnergyPj;
    for (int l = 0; l <= max_level && l < (int)r.levelEnergyPj.size(); ++l)
        e += r.levelEnergyPj[l];
    return e;
}

} // namespace sunstone
