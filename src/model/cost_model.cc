#include "model/cost_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "arch/energy_model.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

void
EvalScratch::prepare(const BoundArch &ba)
{
    // Keyed on the binding's process-unique uid, not on the buffer
    // dimensions: bypass/residency variants of one architecture share
    // (nl, nt, nd) but must never share the per-binding invariants.
    if (ba.uid() == baUid) {
        ++reuses;
        return;
    }
    baUid = ba.uid();
    const Workload &wl = ba.workload();
    const int want_nl = ba.numLevels();
    const int want_nt = ba.numTensors();
    const int want_nd = wl.numDims();
    if (want_nl != nl || want_nt != nt || want_nd != nd) {
        // Size-keyed buffers; when only the binding changed (same
        // dimensions) they are kept — every one of them is rebuilt or
        // overwritten per evaluation, so no per-binding state survives
        // in them. Only the invariants below carry binding state, and
        // those are recomputed on every uid change.
        nl = want_nl;
        nt = want_nt;
        nd = want_nd;
        access.assign(static_cast<std::size_t>(nl) * nt, AccessCounts{});
        shapes.resize(nl);
        for (auto &row : shapes)
            row.assign(nd, 1);
        levelSpatial.assign(nl, 1);
        loopBegin.assign(nl + 1, 0);
        spatialUp.assign(nd, 1);
        // fillLoops() and fillFirstIdx() write these through raw
        // pointers up to the nl * nd maximum; loopBegin[nl] carries the
        // live count, so the tails are never read.
        loopDim.assign(static_cast<std::size_t>(nl) * nd, 0);
        loopFactor.assign(static_cast<std::size_t>(nl) * nd, 1);
        loopSuffix.assign(static_cast<std::size_t>(nl) * nd + 1, 1);
        firstIdx.assign(static_cast<std::size_t>(nl) * nd + 1, -1);
        chain.clear();
        chain.reserve(nl);
        spatialSuffix.assign(nl + 1, 1);
        tileFp.assign(static_cast<std::size_t>(nl) * nt, 0);
    }
    tileFpReady = false;

    // countAccess() re-zeroes only the cells on some storage chain (the
    // only ones it ever writes); cells off every chain must read zero,
    // so they are cleared here whenever the binding — and with it the
    // chain structure — changes.
    std::fill(access.begin(), access.end(), AccessCounts{});

    // Per-binding invariants, hoisted out of the per-evaluation path.
    totalOps = wl.totalOps();
    problemFp.resize(nt);
    idxDims.resize(nt);
    chainFlat.clear();
    chainBegin.assign(nt + 1, 0);
    rankBegin.assign(nt + 1, 0);
    termBegin.assign(1, 0);
    termDim.clear();
    termCoeff.clear();
    for (TensorId t = 0; t < nt; ++t) {
        problemFp[t] = wl.tensor(t).footprint(wl.shape());
        idxDims[t] = wl.reuse(t).indexing;
        chainBegin[t] = static_cast<int>(chainFlat.size());
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chainFlat.push_back(l);

        // Flatten the tensor's index structure with per-dim merged
        // coefficients (a dim may appear in several terms; their
        // coefficients add, distributing over the shared (shape - 1)).
        rankBegin[t] = static_cast<int>(termBegin.size()) - 1;
        for (const IndexExpr &rank : wl.tensor(t).ranks) {
            const std::size_t base = termDim.size();
            for (const IndexTerm &term : rank.terms) {
                std::size_t i = base;
                while (i < termDim.size() && termDim[i] != term.dim)
                    ++i;
                if (i == termDim.size()) {
                    termDim.push_back(term.dim);
                    termCoeff.push_back(term.coeff);
                } else {
                    termCoeff[i] += term.coeff;
                }
            }
            termBegin.push_back(static_cast<int>(termDim.size()));
        }
    }
    chainBegin[nt] = static_cast<int>(chainFlat.size());
    rankBegin[nt] = static_cast<int>(termBegin.size()) - 1;
    rankExt.assign(static_cast<std::size_t>(nl) * rankBegin[nt], 0);

    chainFan.assign(chainFlat.size(), 1);
    chainHops.assign(chainFlat.size(), 1.0);
    for (TensorId t = 0; t < nt; ++t)
        for (int i = chainBegin[t] + 1; i < chainBegin[t + 1]; ++i) {
            std::int64_t fan = 1;
            for (int l = chainFlat[i - 1] + 1; l <= chainFlat[i]; ++l)
                fan = satMul(fan, ba.arch().levels[l].fanout);
            chainFan[i] = fan;
            chainHops[i] = std::sqrt((double)fan);
        }

    nonMcPrefix.assign(nl + 1, 0);
    for (int l = 0; l < nl; ++l) {
        const auto &lv = ba.arch().levels[l];
        nonMcPrefix[l + 1] =
            nonMcPrefix[l] + (lv.fanout > 1 && !lv.multicast ? 1 : 0);
    }
}

EvalScratch &
threadEvalScratch()
{
    thread_local EvalScratch scratch;
    return scratch;
}

namespace {

/**
 * Rebuilds s.firstIdx for a tensor: firstIdx[i] is the position of the
 * first linearized loop at >= i over one of the tensor's indexing dims
 * (-1 when none). With it, the tile-change events of paper Eqs. 1-3 —
 * "skip the trailing run of non-indexing loops, then count everything
 * above" — become a single loopSuffix lookup.
 */
void
fillFirstIdx(EvalScratch &s, DimSet idx)
{
    const int nloops = s.loopBegin[s.nl];
    s.firstIdx[nloops] = -1;
    for (int i = nloops - 1; i >= 0; --i)
        s.firstIdx[i] = idx.contains(s.loopDim[i]) ? i : s.firstIdx[i + 1];
}

/** Continues the spatial-factor product over levels [from, hi]. */
std::int64_t
spatialRangeFrom(const EvalScratch &s, int from, int hi, std::int64_t p)
{
    for (int l = from; l <= hi; ++l)
        p = satMul(p, s.levelSpatial[l]);
    return p;
}

/** Product of all spatial factors at levels in (lo, hi]. */
std::int64_t
spatialRange(const EvalScratch &s, int lo, int hi)
{
    return spatialRangeFrom(s, lo + 1, hi, 1);
}

/** True when every fanout network in (lo, hi] supports multicast. */
bool
multicastRange(const ArchSpec &arch, int lo, int hi)
{
    for (int l = lo + 1; l <= hi; ++l)
        if (arch.levels[l].fanout > 1 && !arch.levels[l].multicast)
            return false;
    return true;
}

/**
 * Clamped accumulation-read count: `arriving` partials minus the
 * `distinct` words that absorb a first write for free. Exotic output
 * chains (e.g. strided output ranks whose dense footprint exceeds the
 * operation count) can make the difference negative; clamping keeps an
 * underflow from ever *reducing* the energy sum.
 */
std::int64_t
accumReadsFor(std::int64_t arriving, std::int64_t distinct)
{
    // Negative inputs would mean an upstream counter already
    // underflowed; catch that loudly in debug builds.
    assert(arriving >= 0 && distinct >= 0);
    return std::max<std::int64_t>(0, arriving - distinct);
}

/**
 * Extent of scratch rank `r` (merged (dim, coeff) pairs, see
 * EvalScratch::termDim) over a cumulative shape row: bit-identical to
 * IndexExpr::extent() because coefficient merging distributes over the
 * shared (shape[d] - 1) factor.
 */
inline std::int64_t
rankExtent(const EvalScratch &s, int r, const std::int64_t *shape)
{
    std::int64_t e = 1;
    for (int i = s.termBegin[r]; i < s.termBegin[r + 1]; ++i)
        e += s.termCoeff[i] * (shape[s.termDim[i]] - 1);
    return e;
}

/**
 * TensorSpec::footprint() over the scratch's flattened index structure:
 * the same satMul fold over the same rank extents, without rescanning
 * the TensorSpec term lists per evaluation.
 */
inline std::int64_t
scratchFootprint(const EvalScratch &s, TensorId t,
                 const std::int64_t *shape)
{
    std::int64_t fp = 1;
    for (int r = s.rankBegin[t]; r < s.rankBegin[t + 1]; ++r)
        fp = satMul(fp, rankExtent(s, r, shape));
    return fp;
}

/**
 * Distinct words of tensor `t` delivered per tile-change event to the
 * whole multicast group: the union, over every spatial instance in
 * (c, l], of the dense per-rank tile boxes (Eq. 5 with exact halo
 * sharing).
 *
 * Per rank the child boxes are intervals of length extent(shape_c)
 * whose starts form the lattice {sum_d coeff_d * i_d * shape_c[d]}
 * with i_d < spatial_up[d]. When adjacent starts are no further apart
 * than the interval length the union is contiguous and this reproduces
 * the paper's enlarged-tile footprint exactly; when a stride opens gaps
 * (e.g. strided convolution with no halo in the consumer tile) the
 * enlarged-tile formula overcounts and the interval merge below is the
 * correct count. Ranks are combined as a product, mirroring the dense
 * per-rank box storage convention used by footprint(). The rank/term
 * structure comes from the scratch's per-binding flattened index tables
 * (coefficients already merged per dim), so no TensorSpec scan happens
 * here; the interval-union result is order-independent, so walking
 * pairs in first-appearance instead of ascending-dim order changes
 * nothing.
 */
std::int64_t
multicastDistinctWords(EvalScratch &s, TensorId t,
                       const std::int64_t *shape_c,
                       const std::int64_t *spatial_up, int ext_row)
{
    // ext_row >= 0 selects a row of per-rank extents the fits pass
    // already computed for shape_c (bit-identical values); -1 recomputes
    // (DRAM consumer, or validity was skipped).
    const std::int64_t *cached =
        ext_row >= 0 ? s.rankExt.data() +
                           static_cast<std::size_t>(ext_row) *
                               s.rankBegin[s.nt]
                     : nullptr;
    std::int64_t words = 1;
    for (int r = s.rankBegin[t]; r < s.rankBegin[t + 1]; ++r) {
        const std::int64_t ext =
            cached ? cached[r] : rankExtent(s, r, shape_c);

        // Per-dim start stride within this rank.
        auto &split = s.split;
        split.clear();
        for (int i = s.termBegin[r]; i < s.termBegin[r + 1]; ++i) {
            const DimId d = s.termDim[i];
            if (spatial_up[d] <= 1)
                continue;
            split.emplace_back(satMul(s.termCoeff[i], shape_c[d]),
                               spatial_up[d]);
        }

        std::int64_t rank_words;
        if (split.empty()) {
            // Every instance holds the same interval along this rank.
            rank_words = ext;
        } else if (split.size() == 1) {
            // Arithmetic progression of starts: closed-form merge.
            const auto [stride, count] = split[0];
            rank_words = stride <= ext
                             ? satMul(stride, count - 1) + ext
                             : satMul(ext, count);
        } else {
            // Several spatially split dims feed one rank: enumerate the
            // start lattice and merge intervals. The lattice size is
            // bounded by the spatial product of the range, which is at
            // most the machine's total fanout.
            auto &starts = s.starts;
            starts.assign(1, 0);
            for (const auto &[stride, count] : split) {
                auto &next = s.startsNext;
                next.clear();
                next.reserve(starts.size() *
                             static_cast<std::size_t>(count));
                for (std::int64_t st : starts)
                    for (std::int64_t i = 0; i < count; ++i)
                        next.push_back(st + satMul(i, stride));
                starts.swap(next);
            }
            std::sort(starts.begin(), starts.end());
            rank_words = 0;
            std::int64_t covered_to =
                std::numeric_limits<std::int64_t>::min();
            for (std::int64_t st : starts) {
                const std::int64_t b = std::max(st, covered_to);
                const std::int64_t e = st + ext;
                if (e > b) {
                    rank_words += e - b;
                    covered_to = e;
                }
            }
        }
        words = satMul(words, rank_words);
    }
    return words;
}

/** Physical fanout product of the networks in (lo, hi]. */
std::int64_t
physicalFanRange(const ArchSpec &arch, int lo, int hi)
{
    std::int64_t f = 1;
    for (int l = lo + 1; l <= hi; ++l)
        f = satMul(f, arch.levels[l].fanout);
    return f;
}

/**
 * Shape half of detail::fillTables(): cumulative tile shapes and
 * per-level spatial products. Reads only the factor arrays (never
 * lm.order), so it is safe to run before order validation; the column
 * folds are the exact satMul chains the per-dim factor-product check
 * accumulates, and the spatial fold matches LevelMapping::
 * spatialProduct(), so both checks can read the tables instead of
 * recomputing.
 */
void
fillShapes(const Mapping &m, EvalScratch &s)
{
    s.tileFpReady = false;
    const std::int64_t *prev = nullptr;
    for (int l = 0; l < s.nl; ++l) {
        const auto &lm = m.level(l);
        const std::int64_t *tf = lm.temporal.data();
        const std::int64_t *sf = lm.spatial.data();
        std::int64_t *row = s.shapes[l].data();
        std::int64_t sp = 1;
        for (DimId d = 0; d < s.nd; ++d) {
            const std::int64_t own = satMul(tf[d], sf[d]);
            row[d] = prev ? satMul(prev[d], own) : own;
            sp = satMul(sp, sf[d]);
        }
        prev = row;
        s.levelSpatial[l] = sp;
    }
}

/**
 * Loop half of detail::fillTables(): the linearized temporal nest and
 * the suffix products. Walks lm.order with the DimIds as indices, so
 * orders must be validated (or trusted via assumeValid) first.
 */
/**
 * Appends level l's temporal loops (innermost first: lm.order is
 * outermost-first, so it is walked in reverse) to the linearized nest.
 * The loop tables are pre-sized to the nl * nd maximum by prepare();
 * writing through raw pointers with a running count keeps this off the
 * allocator and out of push_back's capacity checks (this is the hottest
 * fixed cost of every evaluation). Split per level so checkValid() can
 * collect loops inside the level walk it already does for validation.
 *
 * @return the running loop count after this level.
 */
inline int
fillLoopsLevel(const LevelMapping &lm, EvalScratch &s, int l, int n)
{
    DimId *ld = s.loopDim.data();
    std::int64_t *lf = s.loopFactor.data();
    const std::int64_t *tf = lm.temporal.data();
    const DimId *ord = lm.order.data();
    s.loopBegin[l] = n;
    for (std::size_t i = lm.order.size(); i-- > 0;) {
        const DimId d = ord[i];
        if (tf[d] > 1) {
            ld[n] = d;
            lf[n] = tf[d];
            ++n;
        }
    }
    return n;
}

/**
 * Suffix products over the collected nest. These make every
 * tile-change-event and spatial-range query O(1) per chain pair: the
 * per-pair walks the paper's Eqs. 1-3 describe always run to the
 * outermost loop, so they are suffixes of one shared product (fold-order
 * independence of satMul over operands >= 1 keeps this bit-exact,
 * saturation included).
 */
inline void
finishLoopTables(EvalScratch &s, int nloops)
{
    s.loopBegin[s.nl] = nloops;
    s.loopSuffix[nloops] = 1;
    for (int i = nloops - 1; i >= 0; --i)
        s.loopSuffix[i] = satMul(s.loopFactor[i], s.loopSuffix[i + 1]);
    s.spatialSuffix[s.nl] = 1;
    for (int l = s.nl - 1; l >= 0; --l)
        s.spatialSuffix[l] = satMul(s.levelSpatial[l],
                                    s.spatialSuffix[l + 1]);
}

void
fillLoops(const Mapping &m, EvalScratch &s)
{
    int n = 0;
    for (int l = 0; l < s.nl; ++l)
        n = fillLoopsLevel(m.level(l), s, l, n);
    finishLoopTables(s, n);
}

} // anonymous namespace

namespace detail {

void
resetCostResult(CostResult &res, int nl, int nt)
{
    res.valid = false;
    res.invalidReason.clear();
    res.access.resize(nl);
    for (auto &row : res.access)
        row.assign(nt, AccessCounts{});
    res.levelEnergyPj.assign(nl, 0.0);
    res.macEnergyPj = 0;
    res.nocEnergyPj = 0;
    res.totalEnergyPj = 0;
    res.cycles = 0;
    res.delaySeconds = 0;
    res.edp = 0;
    res.utilization = 0;
    res.bottleneck.clear();
}

/**
 * Fills the per-mapping tables: cumulative tile shapes, per-level spatial
 * products, and the linearized temporal loop nest (innermost first;
 * within a level the mapping order is outermost-first, so it is walked
 * in reverse, exactly like the historical loopsAbove()). The two halves
 * (fillShapes / fillLoops) are split so checkValid() can build the shape
 * tables before order validation and the loop tables after.
 */
void
fillTables(const Mapping &m, EvalScratch &s)
{
    fillShapes(m, s);
    fillLoops(m, s);
}

/**
 * Mirror of Mapping::valid() for the evaluation fast path: identical
 * checks, order, and failure strings (pinned by the batch-eval test
 * suite — any edit here must be mirrored in mapping.cc and vice versa).
 * The difference is purely mechanical: the shape tables are built once
 * up front (fillShapes reads only the factor arrays, which are safe
 * before order validation) and every product the standalone check folds
 * per dim or per level is read back out of them — the outermost
 * cumulative shape row IS the per-dim factor product, levelSpatial IS
 * the per-level spatial product, both by the identical satMul chains —
 * and the fits pass records the per-(level, tensor) footprints in
 * s.tileFp, so a subsequent countAccess() never recomputes a tile
 * footprint the fits checks already priced.
 */
bool
checkValid(const BoundArch &ba, const Mapping &m, EvalScratch &s,
           std::string *why)
{
    const Workload &wl = ba.workload();
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (m.numLevels() != ba.numLevels())
        return fail("level count mismatch");
    if (m.numDims() != wl.numDims())
        return fail("dimension count mismatch");

    fillShapes(m, s);

    // Factor products must reconstruct the problem exactly: the
    // outermost cumulative shape is the same satMul fold (same pairing,
    // same inner-to-outer order, saturation included) the standalone
    // check accumulates per dim.
    const std::int64_t *outer =
        s.nl > 0 ? s.shapes[s.nl - 1].data() : nullptr;
    for (DimId d = 0; d < wl.numDims(); ++d) {
        const std::int64_t prod = outer ? outer[d] : 1;
        if (prod != wl.dimSize(d))
            return fail("factors of dim '" + wl.dimName(d) +
                        "' multiply to " + std::to_string(prod) +
                        ", expected " + std::to_string(wl.dimSize(d)));
    }

    // Orders must be permutations; spatial products must fit fanouts.
    // The same walk collects the level's temporal loops (safe once the
    // permutation check has vetted the order entries), so the nest build
    // needs no second pass over the levels.
    auto &seen = s.validity.seen;
    if ((int)seen.size() != wl.numDims())
        seen.resize(wl.numDims());
    int nloops = 0;
    for (int l = 0; l < m.numLevels(); ++l) {
        const auto &lm = m.level(l);
        if ((int)lm.order.size() != wl.numDims())
            return fail("bad order length at level " + std::to_string(l));
        char *seen_p = seen.data();
        for (DimId d = 0; d < wl.numDims(); ++d)
            seen_p[d] = 0;
        for (DimId d : lm.order) {
            if (d < 0 || d >= wl.numDims() || seen_p[d])
                return fail("order at level " + std::to_string(l) +
                            " is not a permutation");
            seen_p[d] = 1;
        }
        nloops = fillLoopsLevel(lm, s, l, nloops);
        const auto &lv = ba.arch().levels[l];
        if (s.levelSpatial[l] > lv.fanout)
            return fail("spatial product exceeds fanout at level '" +
                        lv.name + "'");
        if (lv.meshX > 0) {
            // The spatial factors must pack onto the physical X x Y
            // mesh: some subset's product <= meshX with the complement's
            // product <= meshY. Dimension counts are tiny, so subsets
            // are enumerated directly.
            auto &factors = s.validity.meshFactors;
            factors.clear();
            for (DimId d = 0; d < wl.numDims(); ++d)
                if (lm.spatial[d] > 1)
                    factors.push_back(lm.spatial[d]);
            bool packable = false;
            const std::size_t n = factors.size();
            for (std::size_t mask = 0; mask < (std::size_t(1) << n);
                 ++mask) {
                std::int64_t x = 1, y = 1;
                for (std::size_t i = 0; i < n; ++i) {
                    if (mask & (std::size_t(1) << i))
                        x = satMul(x, factors[i]);
                    else
                        y = satMul(y, factors[i]);
                }
                if (x <= lv.meshX && y <= lv.meshY) {
                    packable = true;
                    break;
                }
            }
            if (!packable)
                return fail("spatial factors do not pack onto the " +
                            std::to_string(lv.meshX) + "x" +
                            std::to_string(lv.meshY) +
                            " mesh at level '" + lv.name + "'");
        }
    }

    // Every stored tile must fit its level. The loop collection above
    // covered every level, so only the suffix products remain.
    finishLoopTables(s, nloops);
    auto &fp_row = s.validity.footprints;
    fp_row.resize(wl.numTensors());
    const int nranks = s.rankBegin[s.nt];
    for (int l = 0; l < m.numLevels(); ++l) {
        if (ba.arch().levels[l].isDram)
            continue;
        const std::int64_t *shape = s.shapes[l].data();
        std::int64_t *ext_row =
            s.rankExt.data() + static_cast<std::size_t>(l) * nranks;
        for (TensorId t = 0; t < wl.numTensors(); ++t) {
            // scratchFootprint()'s fold, recording each rank extent for
            // the multicast union to reuse (same values, same order).
            std::int64_t fp = 1;
            for (int r = s.rankBegin[t]; r < s.rankBegin[t + 1]; ++r) {
                const std::int64_t e = rankExtent(s, r, shape);
                ext_row[r] = e;
                fp = satMul(fp, e);
            }
            fp_row[t] = fp;
            s.tileFp[static_cast<std::size_t>(l) * s.nt + t] = fp;
        }
        if (!ba.fits(l, fp_row))
            return fail("tile does not fit level '" +
                        ba.arch().levels[l].name + "'");
    }
    s.tileFpReady = true;
    return true;
}

/**
 * The integer half of the one true evaluation: computes every
 * per-(level, tensor) access contribution into the scratch arena. When
 * `prefix` is non-null, chain pairs lying entirely below
 * prefix->prefixLevels reuse the cached contribution terms and only the
 * undecided suffix is walked.
 *
 * Bit-identity contract: both paths execute the same satMul chains on
 * the same operands (satMul is a fold over factors >= 1, so a cached
 * prefix product continued over the suffix — or a precomputed suffix
 * product — reproduces the full fold exactly), and the NoC energy is
 * accumulated in chain-pair order, exactly as the historical monolithic
 * evaluateMapping() did.
 */
double
countAccess(const BoundArch &ba, const Mapping &m,
            const CostModelOptions &opts, const PrefixTerms *prefix,
            EvalScratch &s)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nt = s.nt;
    const int nd = s.nd;
    double noc_energy_pj = 0;
    // Hoisted out of the per-pair loops: these are cross-TU constant
    // fetches, and the pair loops below otherwise re-call them for
    // every (tensor, chain-pair) of every evaluation.
    const double noc_hop_pj_per_bit = energy::nocHopPjPerBit();
    const double tag_check_pj_per_word = energy::tagCheckPjPerWord();

    // Zero only the chain-member cells: countAccess() writes nothing
    // else, and prepare() cleared the off-chain cells when the binding
    // was installed (they stay zero across evaluations).
    for (TensorId t = 0; t < nt; ++t)
        for (int i = s.chainBegin[t]; i < s.chainBegin[t + 1]; ++i)
            s.access[static_cast<std::size_t>(s.chainFlat[i]) * nt + t] =
                AccessCounts{};
    SUNSTONE_ASSERT(prefix == nullptr ||
                        static_cast<int>(prefix->tensors.size()) == nt,
                    "prefix terms built for a different workload");

    const std::int64_t ops = s.totalOps;
    const int prefix_levels = prefix ? prefix->prefixLevels : 0;

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        const std::int64_t problem_fp = s.problemFp[t];
        const DimSet idx = s.idxDims[t];

        // Storage chain, innermost first (cached per binding).
        const int *chain = s.chainFlat.data() + s.chainBegin[t];
        const std::size_t chain_len =
            static_cast<std::size_t>(s.chainBegin[t + 1] - s.chainBegin[t]);
        SUNSTONE_ASSERT(chain_len > 0, "tensor stored nowhere");

        // MAC-level consumption at the innermost storing level: one word
        // per operand per operation; outputs are read-modify-written.
        auto &inner = s.access[static_cast<std::size_t>(chain[0]) * nt + t];
        if (!ts.isOutput) {
            inner.reads += ops;
        } else {
            inner.updates += ops;
            inner.accumReads += accumReadsFor(ops, problem_fp);
        }

        if (chain_len > 1)
            fillFirstIdx(s, idx);

        // Transfers between consecutive storing levels.
        for (std::size_t i = 1; i < chain_len; ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];

            // Fused-subgraph residency (DESIGN.md §13): an Ephemeral
            // tensor whose level-c tile spans the whole tensor is handed
            // off on chip — the producer's drain to DRAM and the
            // consumer's fill from DRAM never happen, so the entire
            // (c, DRAM) pair contributes nothing. Without full coverage
            // the tensor would be re-streamed and the DRAM leg is
            // charged exactly like a boundary tensor's.
            if (arch.levels[l].isDram &&
                ba.residency(t) == Residency::Ephemeral) {
                bool covered = true;
                for (DimId d : idx)
                    covered &= s.shapes[c][d] == wl.dimSize(d);
                if (covered)
                    continue;
            }

            const PrefixTerms::Pair *pp = nullptr;
            if (prefix && l < prefix_levels) {
                pp = &prefix->tensors[t].pairs[i - 1];
                SUNSTONE_ASSERT(pp->cached, "prefix pair not cached");
            }

            std::int64_t ev, n_above, fill_unit, fan;
            std::int64_t spatial_all = 1;
            bool tile_cached = false;
            if (pp) {
                // Continue the cached prefix products over the suffix
                // tables: when the skip rule already started counting
                // inside the prefix, every remaining loop counts;
                // otherwise the first indexing loop at or above the
                // boundary restarts the product.
                if (pp->evStarted) {
                    ev = satMul(pp->evPrefix,
                                s.loopSuffix[s.loopBegin[prefix_levels]]);
                } else {
                    const int f = s.firstIdx[s.loopBegin[prefix_levels]];
                    ev = f < 0 ? pp->evPrefix
                               : satMul(pp->evPrefix, s.loopSuffix[f]);
                }
                n_above = satMul(pp->nAbovePrefix,
                                 s.spatialSuffix[prefix_levels]);
                fill_unit = pp->fillUnit;
                fan = pp->fan;
            } else {
                const int f = s.firstIdx[s.loopBegin[c + 1]];
                ev = f < 0 ? 1 : s.loopSuffix[f];
                n_above = s.spatialSuffix[l + 1];
                spatial_all = spatialRange(s, c, l);
                // The consumer tile footprint was already computed by
                // the fits checks (same shapes, same satMul folds);
                // recompute only when validity was skipped or the
                // consumer is an exotic mid-stack DRAM level.
                tile_cached = s.tileFpReady && !arch.levels[c].isDram;
                const std::int64_t tile_c =
                    tile_cached
                        ? s.tileFp[static_cast<std::size_t>(c) * nt + t]
                        : scratchFootprint(s, t, s.shapes[c].data());
                fill_unit = satMul(spatial_all, tile_c);
                fan = opts.modelNoc
                          ? s.chainFan[s.chainBegin[t] + static_cast<int>(i)]
                          : 1;
            }

            auto &at_l = s.access[static_cast<std::size_t>(l) * nt + t];
            auto &at_c = s.access[static_cast<std::size_t>(c) * nt + t];

            if (!ts.isOutput) {
                std::int64_t distinct;
                if (pp) {
                    distinct = pp->distinct;
                } else if (spatial_all == 1) {
                    // A single spatial instance in (c, l]: the union is
                    // that instance's own tile box, whose per-rank
                    // extent product is exactly fill_unit (= satMul(1,
                    // tile_c) = tile_c, the same fold the interval
                    // merge degenerates to) — with or without multicast
                    // support.
                    distinct = fill_unit;
                } else if (s.nonMcPrefix[l + 1] == s.nonMcPrefix[c + 1]) {
                    // Every network in (c, l] multicasts (O(1) prefix
                    // test): union of the consumer tiles across the
                    // spatial instances in the range — halo overlap is
                    // shared, and strided gaps are not charged (Eq. 5,
                    // exact).
                    // Adjacent pairs (the whole chain when nothing is
                    // bypassed) read the level's own spatial factors
                    // directly; only multi-hop pairs fold the range
                    // product (satMul over a one-element range is the
                    // factor itself, so this is bit-preserving).
                    const std::int64_t *sup;
                    if (l == c + 1) {
                        sup = m.level(l).spatial.data();
                    } else {
                        auto &spatial_up = s.spatialUp;
                        std::fill(spatial_up.begin(), spatial_up.end(),
                                  std::int64_t{1});
                        for (int j = c + 1; j <= l; ++j)
                            for (DimId d = 0; d < nd; ++d)
                                spatial_up[d] = satMul(
                                    spatial_up[d], m.level(j).spatial[d]);
                        sup = spatial_up.data();
                    }
                    distinct = multicastDistinctWords(
                        s, t, s.shapes[c].data(), sup,
                        tile_cached ? c : -1);
                } else {
                    distinct = fill_unit;
                }
                const std::int64_t reads_l =
                    satMul(satMul(ev, distinct), n_above);
                const std::int64_t fills_c =
                    satMul(satMul(ev, fill_unit), n_above);
                at_l.reads += reads_l;
                at_c.fills += fills_c;

                if (opts.modelNoc && fan > 1) {
                    // chainHops caches sqrt((double)fan) — sqrt is
                    // correctly rounded, so the cached value is the one
                    // the historical inline computation produced.
                    const double hops =
                        pp ? std::sqrt((double)fan)
                           : s.chainHops[s.chainBegin[t] +
                                         static_cast<int>(i)];
                    noc_energy_pj += (double)reads_l * ts.wordBits *
                                     noc_hop_pj_per_bit * hops;
                    noc_energy_pj +=
                        (double)fills_c * tag_check_pj_per_word;
                }
            } else {
                // Partial-sum drain: every consumer instance sends its
                // tile per event; the provider read-modify-writes.
                const std::int64_t upd_l =
                    satMul(satMul(ev, fill_unit), n_above);
                at_l.updates += upd_l;
                at_c.drains += upd_l;
                at_l.accumReads += accumReadsFor(upd_l, problem_fp);

                if (opts.modelNoc && fan > 1) {
                    const double hops =
                        pp ? std::sqrt((double)fan)
                           : s.chainHops[s.chainBegin[t] +
                                         static_cast<int>(i)];
                    noc_energy_pj += (double)upd_l * ts.wordBits *
                                     noc_hop_pj_per_bit * hops;
                }
            }
        }
    }
    return noc_energy_pj;
}

/**
 * The floating-point half: energy, latency, utilization, and EDP from
 * the scratch counters. Accumulation order (levels outer, tensors inner,
 * then MAC, then NoC) is the historical one, so results stay bitwise
 * stable across the refactor.
 */
void
finalizeResult(const BoundArch &ba, const CostModelOptions &opts,
               const EvalScratch &s, double noc_energy_pj, CostResult &res)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    const int nl = s.nl;
    const int nt = s.nt;
    const std::int64_t ops = s.totalOps;
    res.nocEnergyPj = noc_energy_pj;

    // Energy (copying the flat counters into the public nested layout in
    // the same (level, tensor) order the accumulation has always used).
    for (int l = 0; l < nl; ++l) {
        auto &row = res.access[l];
        for (TensorId t = 0; t < nt; ++t) {
            const auto &a = s.access[static_cast<std::size_t>(l) * nt + t];
            row[t] = a;
            res.levelEnergyPj[l] +=
                (double)a.totalReads() * ba.readEnergyPj(l, t) +
                (double)a.totalWrites() * ba.writeEnergyPj(l, t);
        }
        res.totalEnergyPj += res.levelEnergyPj[l];
    }
    res.macEnergyPj =
        (double)ops * ba.macEnergyPj() * wl.multipliesPerOp();
    res.totalEnergyPj += res.macEnergyPj;
    if (opts.modelNoc)
        res.totalEnergyPj += res.nocEnergyPj;

    // Latency: double buffering overlaps compute with every level's
    // transfers, so delay is the max of all of them.
    const std::int64_t lanes =
        std::max<std::int64_t>(1, s.spatialSuffix[0]);
    double cycles = (double)ops / (double)lanes;
    res.bottleneck = "compute";
    for (int l = 0; l < nl; ++l) {
        const auto &lv = arch.levels[l];
        const double inst = (double)s.spatialSuffix[l + 1];
        double reads = 0, writes = 0;
        for (TensorId t = 0; t < nt; ++t) {
            reads += (double)res.access[l][t].totalReads();
            writes += (double)res.access[l][t].totalWrites();
        }
        // A non-positive bandwidth with pending traffic is an infinite
        // bottleneck, not a division hazard: 0/0 would yield NaN, and a
        // NaN never compares greater, silently hiding the stall.
        auto dir_cycles = [inst](double words, double bw) {
            if (words <= 0)
                return 0.0;
            if (bw <= 0)
                return std::numeric_limits<double>::infinity();
            return words / (bw * inst);
        };
        const double level_cycles =
            std::max(dir_cycles(reads, lv.readBwWordsPerCycle),
                     dir_cycles(writes, lv.writeBwWordsPerCycle));
        if (level_cycles > cycles) {
            cycles = level_cycles;
            res.bottleneck = std::isinf(level_cycles)
                                 ? lv.name + " (zero bandwidth)"
                                 : lv.name;
        }
    }
    res.cycles = cycles;
    res.delaySeconds = cycles / (arch.clockGhz * 1e9);
    res.utilization =
        (double)lanes / (double)std::max<std::int64_t>(1,
                                                       arch.totalFanout());
    res.edp = res.totalEnergyPj * 1e-12 * res.delaySeconds;
}

} // namespace detail

namespace {

/**
 * The one true evaluation, staged: prepare and reset, validity (through
 * the scratch's allocation-free buffers), integer access counting, then
 * floating-point finalization. The stages live in detail:: so the SoA
 * batch evaluator can drive them per lane with identical semantics.
 */
void
evaluateCore(const BoundArch &ba, const Mapping &m,
             const CostModelOptions &opts, const PrefixTerms *prefix,
             EvalScratch &s, CostResult &res)
{
    s.prepare(ba);
    detail::resetCostResult(res, s.nl, s.nt);

    if (!opts.assumeValid) {
        if (!detail::checkValid(ba, m, s, &res.invalidReason)) {
            res.valid = false;
            res.edp = std::numeric_limits<double>::infinity();
            res.totalEnergyPj = std::numeric_limits<double>::infinity();
            return;
        }
    } else {
        detail::fillTables(m, s); // checkValid would have built them
    }
    res.valid = true;

    const double noc = detail::countAccess(ba, m, opts, prefix, s);
    detail::finalizeResult(ba, opts, s, noc, res);
}

} // anonymous namespace

CostResult
evaluateMapping(const BoundArch &ba, const Mapping &m,
                const CostModelOptions &opts)
{
    CostResult res;
    evaluateCore(ba, m, opts, nullptr, threadEvalScratch(), res);
    return res;
}

void
evaluateMappingInto(const BoundArch &ba, const Mapping &m,
                    const CostModelOptions &opts, EvalScratch &scratch,
                    CostResult &res)
{
    evaluateCore(ba, m, opts, nullptr, scratch, res);
}

void
evaluateMappingWithPrefixInto(const BoundArch &ba, const PrefixTerms &prefix,
                              const Mapping &m,
                              const CostModelOptions &opts,
                              EvalScratch &scratch, CostResult &res)
{
    evaluateCore(ba, m, opts, &prefix, scratch, res);
}

void
buildPrefixTerms(const BoundArch &ba, const Mapping &base, int prefix_levels,
                 EvalScratch &scratch, PrefixTerms &out)
{
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    EvalScratch &s = scratch;
    s.prepare(ba);
    detail::fillTables(base, s);

    const int nl = s.nl;
    const int nt = s.nt;
    const int nd = s.nd;
    SUNSTONE_ASSERT(prefix_levels >= 0 && prefix_levels <= nl,
                    "prefix_levels out of range");
    out.prefixLevels = prefix_levels;
    out.tensors.resize(nt);

    for (TensorId t = 0; t < nt; ++t) {
        const TensorSpec &ts = wl.tensor(t);
        const DimSet idx = wl.reuse(t).indexing;

        auto &chain = s.chain;
        chain.clear();
        for (int l = 0; l < nl; ++l)
            if (ba.stores(l, t))
                chain.push_back(l);
        SUNSTONE_ASSERT(!chain.empty(), "tensor stored nowhere");

        auto &pairs = out.tensors[t].pairs;
        pairs.assign(chain.size() > 1 ? chain.size() - 1 : 0,
                     PrefixTerms::Pair{});
        for (std::size_t i = 1; i < chain.size(); ++i) {
            const int c = chain[i - 1];
            const int l = chain[i];
            auto &p = pairs[i - 1];
            p.cached = l < prefix_levels;
            if (!p.cached)
                continue;

            // Tile-change skip-rule state over the decided levels
            // (c, prefix_levels): same walk the full evaluation does,
            // truncated at the prefix boundary.
            std::int64_t events = 1;
            bool counting = false;
            const int begin = s.loopBegin[c + 1];
            const int end = s.loopBegin[prefix_levels];
            for (int j = begin; j < end; ++j) {
                if (!counting && !idx.contains(s.loopDim[j]))
                    continue;
                counting = true;
                events = satMul(events, s.loopFactor[j]);
            }
            p.evPrefix = events;
            p.evStarted = counting;

            p.nAbovePrefix = spatialRangeFrom(s, l + 1, prefix_levels - 1, 1);

            const std::int64_t spatial_all = spatialRange(s, c, l);
            const std::int64_t tile_c = ts.footprint(s.shapes[c]);
            p.fillUnit = satMul(spatial_all, tile_c);
            p.fan = physicalFanRange(arch, c, l);

            if (!ts.isOutput) {
                if (multicastRange(arch, c, l)) {
                    auto &spatial_up = s.spatialUp;
                    std::fill(spatial_up.begin(), spatial_up.end(),
                              std::int64_t{1});
                    for (int j = c + 1; j <= l; ++j)
                        for (DimId d = 0; d < nd; ++d)
                            spatial_up[d] =
                                satMul(spatial_up[d],
                                       base.level(j).spatial[d]);
                    // Once-per-prefix construction: no cached extent row
                    // is guaranteed to match here, so recompute.
                    p.distinct = multicastDistinctWords(
                        s, t, s.shapes[c].data(), spatial_up.data(), -1);
                } else {
                    p.distinct = p.fillUnit;
                }
            } else {
                p.distinct = 0;
            }
        }
    }
}

double
partialEnergyPj(const BoundArch &ba, const Mapping &m, int max_level)
{
    CostModelOptions opts;
    opts.assumeValid = true;
    opts.modelNoc = false;
    CostResult r = evaluateMapping(ba, m, opts);
    double e = r.macEnergyPj;
    for (int l = 0; l <= max_level && l < (int)r.levelEnergyPj.size(); ++l)
        e += r.levelEnergyPj[l];
    return e;
}

} // namespace sunstone
