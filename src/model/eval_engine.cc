#include "model/eval_engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/json.hh"
#include "model/batch_eval.hh"
#include "obs/flight_recorder.hh"

namespace sunstone {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t
fnvStep(std::uint64_t h, std::uint64_t x)
{
    // Mix all eight bytes of x into the running FNV-1a state.
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

inline std::uint64_t
fnvDouble(std::uint64_t h, double d)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return fnvStep(h, bits);
}

inline std::uint64_t
fnvString(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return fnvStep(h, s.size());
}

unsigned
roundUpPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

void
appendJsonDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // "%g" would emit inf/nan, which is not valid JSON
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

/**
 * Per-thread cache of BatchEvaluators, keyed by the engine context's
 * (BoundArch address, structural fingerprint) plus the option bits the
 * evaluator bakes in. The fingerprint guards the address: if a BoundArch
 * is destroyed and a structurally different one lands at the same
 * address, the fingerprints differ and a fresh evaluator is built; if
 * the fingerprints match, every coefficient the cached evaluator
 * precomputed is identical by construction. Small LRU-ish cap — search
 * drivers alternate between at most a handful of contexts.
 */
BatchEvaluator &
threadBatchEvaluator(const EvalEngine::Context &ctx,
                     const CostModelOptions &opts)
{
    struct CacheEntry {
        const void *ba;
        std::uint64_t fp;
        int bits;
        std::unique_ptr<BatchEvaluator> be;
    };
    thread_local std::vector<CacheEntry> cache;
    const int bits = (opts.assumeValid ? 1 : 0) | (opts.modelNoc ? 2 : 0);
    const void *ba = &ctx.boundArch();
    for (auto &e : cache)
        if (e.ba == ba && e.fp == ctx.fingerprint() && e.bits == bits)
            return *e.be;
    constexpr std::size_t kMaxEvaluators = 8;
    if (cache.size() >= kMaxEvaluators)
        cache.erase(cache.begin());
    cache.push_back({ba, ctx.fingerprint(), bits,
                     std::make_unique<BatchEvaluator>(ctx.boundArch(),
                                                      opts)});
    return *cache.back().be;
}

} // anonymous namespace

std::uint64_t
hashFactors(const std::vector<std::int64_t> &v, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::int64_t x : v)
        h = fnvStep(h, static_cast<std::uint64_t>(x));
    return h;
}

SearchStats
SearchStats::deltaSince(const SearchStats &earlier) const
{
    SearchStats d = *this;
    d.evaluations -= earlier.evaluations;
    d.cacheHits -= earlier.cacheHits;
    d.cacheMisses -= earlier.cacheMisses;
    d.invalidMappings -= earlier.invalidMappings;
    d.prunes -= earlier.prunes;
    d.evictions -= earlier.evictions;
    d.prefixHits -= earlier.prefixHits;
    d.prefixMisses -= earlier.prefixMisses;
    d.scratchReuses -= earlier.scratchReuses;
    d.batches -= earlier.batches;
    return d;
}

double
SearchStats::hitRate() const
{
    const std::int64_t lookups = cacheHits + cacheMisses;
    if (lookups <= 0)
        return 1.0;
    return static_cast<double>(cacheHits) / static_cast<double>(lookups);
}

std::string
SearchStats::toJson() const
{
    std::string out = "{";
    auto field = [&](const char *name, std::int64_t v, bool comma = true) {
        out += "\"";
        out += name;
        out += "\": " + std::to_string(v);
        if (comma)
            out += ", ";
    };
    field("evaluations", evaluations);
    field("cache_hits", cacheHits);
    field("cache_misses", cacheMisses);
    field("invalid_mappings", invalidMappings);
    field("prunes", prunes);
    field("evictions", evictions);
    field("prefix_hits", prefixHits);
    field("prefix_misses", prefixMisses);
    field("scratch_reuses", scratchReuses);
    field("batches", batches);
    out += "\"eval_latency_us\": " + evalLatencyUs.toJson() + ", ";
    out += "\"batch_size\": " + batchSize.toJson() + ", ";
    out += "\"phase_seconds\": {";
    for (std::size_t i = 0; i < phaseSeconds.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + jsonEscape(phaseSeconds[i].first) + "\": ";
        appendJsonDouble(out, phaseSeconds[i].second);
    }
    out += "}}";
    return out;
}

EvalEngine::EvalEngine(EvalEngineOptions opts) : opts_(opts)
{
    const unsigned n = roundUpPow2(std::max(1u, opts_.shards));
    opts_.shards = n;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

EvalEngine::~EvalEngine() = default;

EvalEngine::Context
EvalEngine::context(const BoundArch &ba) const
{
    // Structural fingerprint of everything the cost model and validity
    // check read: architecture levels, compute specs, per-tensor shape
    // structure, storage membership, and access energies. Display names
    // are deliberately excluded so identical layers fingerprint alike.
    const Workload &wl = ba.workload();
    const ArchSpec &arch = ba.arch();
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    h = fnvStep(h, static_cast<std::uint64_t>(ba.numLevels()));
    h = fnvStep(h, static_cast<std::uint64_t>(wl.numDims()));
    h = fnvStep(h, static_cast<std::uint64_t>(ba.numTensors()));
    h = fnvStep(h, static_cast<std::uint64_t>(arch.macBits));
    h = fnvDouble(h, arch.clockGhz);
    h = fnvDouble(h, ba.macEnergyPj());
    for (DimId d = 0; d < wl.numDims(); ++d)
        h = fnvStep(h, static_cast<std::uint64_t>(wl.dimSize(d)));
    for (const auto &lv : arch.levels) {
        h = fnvStep(h, static_cast<std::uint64_t>(lv.capacityBits));
        h = fnvStep(h, static_cast<std::uint64_t>(lv.fanout));
        h = fnvDouble(h, lv.readBwWordsPerCycle);
        h = fnvDouble(h, lv.writeBwWordsPerCycle);
        h = fnvStep(h, (lv.multicast ? 1u : 0u) |
                           (lv.doubleBuffered ? 2u : 0u) |
                           (lv.isDram ? 4u : 0u));
        h = fnvStep(h, static_cast<std::uint64_t>(lv.meshX) << 32 |
                           static_cast<std::uint64_t>(lv.meshY));
        for (const auto &p : lv.partitions) {
            h = fnvString(h, p.name);
            h = fnvStep(h, static_cast<std::uint64_t>(p.capacityBits));
        }
    }
    for (TensorId t = 0; t < ba.numTensors(); ++t) {
        const TensorSpec &ts = wl.tensor(t);
        h = fnvStep(h, (ts.isOutput ? 1u : 0u));
        h = fnvStep(h, static_cast<std::uint64_t>(ts.wordBits));
        h = fnvString(h, ba.partitionOf(t));
        for (const auto &r : ts.ranks) {
            h = fnvStep(h, static_cast<std::uint64_t>(r.terms.size()));
            for (const auto &term : r.terms) {
                h = fnvStep(h, static_cast<std::uint64_t>(term.dim));
                h = fnvStep(h, static_cast<std::uint64_t>(term.coeff));
            }
        }
        for (int l = 0; l < ba.numLevels(); ++l) {
            h = fnvStep(h, ba.stores(l, t) ? 1u : 0u);
            if (ba.stores(l, t)) {
                h = fnvDouble(h, ba.readEnergyPj(l, t));
                h = fnvDouble(h, ba.writeEnergyPj(l, t));
            }
        }
        // Residency classes change evaluation semantics, so a fused
        // (ephemeral) variant of an op must never share cache entries
        // or dedup groups with its per-layer twin. Folded only when an
        // ephemeral tensor exists so every pre-fusion fingerprint (and
        // any checkpoint carrying one) is preserved verbatim.
        if (ba.anyEphemeral())
            h = fnvStep(h, 0x45504845u ^
                               static_cast<std::uint64_t>(
                                   static_cast<int>(ba.residency(t))));
    }
    return Context(&ba, h);
}

void
EvalEngine::canonicalKey(const Mapping &m, const CostModelOptions &opts,
                         std::vector<std::int64_t> &out) const
{
    const int nl = m.numLevels();
    const int nd = m.numDims();
    out.clear();
    out.reserve(static_cast<std::size_t>(nl) * (3 * nd + 1) + 1);
    out.push_back((opts.assumeValid ? 1 : 0) | (opts.modelNoc ? 2 : 0));
    for (int l = 0; l < nl; ++l) {
        const auto &lm = m.level(l);
        for (DimId d = 0; d < nd; ++d)
            out.push_back(lm.temporal[d]);
        for (DimId d = 0; d < nd; ++d)
            out.push_back(lm.spatial[d]);
        // Orders: level 0's is never consumed by the cost model, and
        // factor-1 loops are skipped wherever orders are walked, so only
        // the relative order of active loops above level 0 is keyed.
        if (l == 0)
            continue;
        out.push_back(-1); // separator keeps the key unambiguous
        for (DimId d : lm.order)
            if (lm.temporal[d] > 1)
                out.push_back(d);
    }
}

void
EvalEngine::canonicalPrefixKey(const Mapping &m, int prefix_levels,
                               std::vector<std::int64_t> &out) const
{
    // Same canonicalization rules as canonicalKey(), restricted to the
    // decided levels and without the options bit (prefix terms are a
    // pure function of factors and reduced orders — see PrefixTerms).
    const int nd = m.numDims();
    out.clear();
    out.reserve(static_cast<std::size_t>(prefix_levels) * (3 * nd + 1) + 1);
    out.push_back(prefix_levels);
    for (int l = 0; l < prefix_levels; ++l) {
        const auto &lm = m.level(l);
        for (DimId d = 0; d < nd; ++d)
            out.push_back(lm.temporal[d]);
        for (DimId d = 0; d < nd; ++d)
            out.push_back(lm.spatial[d]);
        if (l == 0)
            continue;
        out.push_back(-1);
        for (DimId d : lm.order)
            if (lm.temporal[d] > 1)
                out.push_back(d);
    }
}

CostResult
EvalEngine::evaluateImpl(const Context &ctx, const Mapping &m,
                         const CostModelOptions &opts, CachePolicy policy,
                         const PrefixTerms *prefix)
{
    // Time only analytical-model invocations (cache hits return in
    // nanoseconds and would swamp the histogram's low buckets).
    auto timedEval = [&](CostResult &out) {
        const auto t0 = std::chrono::steady_clock::now();
        EvalScratch &scratch = threadEvalScratch();
        const std::int64_t reuse0 = scratch.reuseCount();
        if (prefix)
            evaluateMappingWithPrefixInto(ctx.boundArch(), *prefix, m,
                                          opts, scratch, out);
        else
            evaluateMappingInto(ctx.boundArch(), m, opts, scratch, out);
        scratchReuses_.add(scratch.reuseCount() - reuse0);
        evalLatencyUs_.record(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };

    evaluations_.add(1);
    if (!opts_.enableCache || policy == CachePolicy::Bypass) {
        CostResult r;
        timedEval(r);
        if (!r.valid)
            invalid_.add(1);
        return r;
    }

    // The lookup key lives in a per-thread buffer so cache hits (the
    // common case in ranking and hill-climb revisits) allocate nothing.
    thread_local std::vector<std::int64_t> key;
    canonicalKey(m, opts, key);
    const std::uint64_t h = hashFactors(key, ctx.fingerprint());
    Shard &shard = *shards_[h & (shards_.size() - 1)];

    {
        std::lock_guard<std::mutex> lk(shard.mtx);
        auto it = shard.map.find(h);
        if (it != shard.map.end() && it->second.key == key) {
            hits_.add(1);
            return it->second.result;
        }
    }

    misses_.add(1);
    CostResult r;
    timedEval(r);
    if (!r.valid)
        invalid_.add(1);

    {
        std::lock_guard<std::mutex> lk(shard.mtx);
        if (shard.map.size() >= opts_.maxEntriesPerShard) {
            evictions_.add(static_cast<std::int64_t>(shard.map.size()));
            obs::flightRecorder().record(
                "cache.epoch_reset",
                "entries=" + std::to_string(shard.map.size()));
            shard.map.clear();
        }
        Entry &e = shard.map[h];
        e.key = key; // copy: the thread-local buffer is reused next call
        e.result = r;
    }
    return r;
}

CostResult
EvalEngine::evaluate(const Context &ctx, const Mapping &m,
                     const CostModelOptions &opts, CachePolicy policy)
{
    return evaluateImpl(ctx, m, opts, policy, nullptr);
}

CostResult
EvalEngine::evaluate(const BoundArch &ba, const Mapping &m,
                     const CostModelOptions &opts, CachePolicy policy)
{
    return evaluate(context(ba), m, opts, policy);
}

EvalEngine::PrefixHandle
EvalEngine::prefix(const Context &ctx, const Mapping &base,
                   int prefix_levels)
{
    PrefixHandle handle;
    if (prefix_levels <= 0)
        return handle; // empty handle: nothing decided, plain path

    thread_local std::vector<std::int64_t> key;
    canonicalPrefixKey(base, prefix_levels, key);
    const std::uint64_t h = hashFactors(key, ctx.fingerprint());

    {
        std::lock_guard<std::mutex> lk(prefixMtx_);
        auto it = prefixCache_.find(h);
        if (it != prefixCache_.end() && it->second.key == key) {
            prefixHits_.add(1);
            handle.terms_ = it->second.terms;
            return handle;
        }
    }

    prefixMisses_.add(1);
    auto terms = std::make_shared<PrefixTerms>();
    buildPrefixTerms(ctx.boundArch(), base, prefix_levels,
                     threadEvalScratch(), *terms);
    handle.terms_ = terms;

    {
        std::lock_guard<std::mutex> lk(prefixMtx_);
        if (prefixCache_.size() >= kMaxPrefixEntries)
            prefixCache_.clear();
        PrefixEntry &e = prefixCache_[h];
        e.key = key;
        e.terms = std::move(terms);
    }
    return handle;
}

CostResult
EvalEngine::evaluateWithPrefix(const Context &ctx, const PrefixHandle &ph,
                               const Mapping &m,
                               const CostModelOptions &opts,
                               CachePolicy policy)
{
    return evaluateImpl(ctx, m, opts, policy, ph.terms_.get());
}

double
EvalEngine::scoreEnergy(const Context &ctx, const PrefixHandle &ph,
                        const Mapping &m, const CostModelOptions &opts)
{
    evaluations_.add(1);
    const auto t0 = std::chrono::steady_clock::now();
    EvalScratch &scratch = threadEvalScratch();
    const std::int64_t reuse0 = scratch.reuseCount();
    thread_local CostResult res;
    if (ph.terms_)
        evaluateMappingWithPrefixInto(ctx.boundArch(), *ph.terms_, m, opts,
                                      scratch, res);
    else
        evaluateMappingInto(ctx.boundArch(), m, opts, scratch, res);
    scratchReuses_.add(scratch.reuseCount() - reuse0);
    evalLatencyUs_.record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
    if (!res.valid) {
        invalid_.add(1);
        return std::numeric_limits<double>::infinity();
    }
    return res.totalEnergyPj;
}

void
EvalEngine::evaluateBatch(const Context &ctx, std::span<const Mapping> ms,
                          const CostModelOptions &opts, CachePolicy policy,
                          std::vector<CostResult> &out)
{
    out.resize(ms.size());
    if (ms.empty())
        return;
    batches_.add(1);
    batchSize_.record(static_cast<double>(ms.size()));

    // Fixed-size chunks independent of the pool geometry: chunk c always
    // covers the same index range, so out[] and the cache contents are
    // reproducible for any thread count.
    constexpr std::size_t kChunk = 64;
    const std::size_t nChunks = (ms.size() + kChunk - 1) / kChunk;
    auto runChunk = [&](std::size_t c) {
        const std::size_t lo = c * kChunk;
        const std::size_t hi = std::min(ms.size(), lo + kChunk);
        evaluateChunk(ctx, ms, opts, policy, out, lo, hi);
    };
    if (nChunks == 1 || opts_.threads == 1) {
        for (std::size_t c = 0; c < nChunks; ++c)
            runChunk(c);
        return;
    }
    parallelFor(pool(), nChunks, runChunk);
}

void
EvalEngine::evaluateChunk(const Context &ctx, std::span<const Mapping> ms,
                          const CostModelOptions &opts, CachePolicy policy,
                          std::vector<CostResult> &out, std::size_t lo,
                          std::size_t hi)
{
    BatchEvaluator &be = threadBatchEvaluator(ctx, opts);
    evaluations_.add(static_cast<std::int64_t>(hi - lo));
    const bool useCache = opts_.enableCache && policy != CachePolicy::Bypass;

    // Gather the evaluations the cache cannot serve. Per-thread buffers:
    // steady-state batches allocate nothing beyond string churn.
    thread_local std::vector<const Mapping *> missM;
    thread_local std::vector<CostResult *> missR;
    thread_local std::vector<std::uint64_t> missHash;
    thread_local std::vector<std::size_t> missKeyOff;
    thread_local std::vector<std::int64_t> keysFlat;
    missM.clear();
    missR.clear();
    missHash.clear();
    missKeyOff.clear();
    keysFlat.clear();

    if (!useCache) {
        for (std::size_t i = lo; i < hi; ++i) {
            missM.push_back(&ms[i]);
            missR.push_back(&out[i]);
        }
    } else {
        thread_local std::vector<std::int64_t> key;
        for (std::size_t i = lo; i < hi; ++i) {
            canonicalKey(ms[i], opts, key);
            const std::uint64_t h = hashFactors(key, ctx.fingerprint());
            Shard &shard = *shards_[h & (shards_.size() - 1)];
            bool hit = false;
            {
                std::lock_guard<std::mutex> lk(shard.mtx);
                auto it = shard.map.find(h);
                if (it != shard.map.end() && it->second.key == key) {
                    out[i] = it->second.result;
                    hit = true;
                }
            }
            if (hit) {
                hits_.add(1);
                continue;
            }
            misses_.add(1);
            missM.push_back(&ms[i]);
            missR.push_back(&out[i]);
            missHash.push_back(h);
            missKeyOff.push_back(keysFlat.size());
            keysFlat.insert(keysFlat.end(), key.begin(), key.end());
        }
        missKeyOff.push_back(keysFlat.size()); // end sentinel
    }

    if (missM.empty())
        return;

    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t reuse0 = be.scratchReuses();
    be.evaluate(missM.data(), missM.size(), missR.data());
    scratchReuses_.add(be.scratchReuses() - reuse0);
    // One histogram sample per chunk at the per-eval mean: cache hits
    // stay excluded and the distribution stays comparable to the
    // per-call path without a clock read per mapping.
    evalLatencyUs_.record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count() /
                          static_cast<double>(missM.size()));

    for (std::size_t j = 0; j < missM.size(); ++j) {
        if (!missR[j]->valid)
            invalid_.add(1);
        if (!useCache)
            continue;
        Shard &shard = *shards_[missHash[j] & (shards_.size() - 1)];
        std::lock_guard<std::mutex> lk(shard.mtx);
        if (shard.map.size() >= opts_.maxEntriesPerShard) {
            evictions_.add(static_cast<std::int64_t>(shard.map.size()));
            obs::flightRecorder().record(
                "cache.epoch_reset",
                "entries=" + std::to_string(shard.map.size()));
            shard.map.clear();
        }
        Entry &e = shard.map[missHash[j]];
        e.key.assign(keysFlat.begin() + missKeyOff[j],
                     keysFlat.begin() + missKeyOff[j + 1]);
        e.result = *missR[j];
    }
}

std::vector<CostResult>
EvalEngine::evaluateBatch(const Context &ctx, std::span<const Mapping> ms,
                          const CostModelOptions &opts, CachePolicy policy)
{
    std::vector<CostResult> out;
    evaluateBatch(ctx, ms, opts, policy, out);
    return out;
}

ThreadPool &
EvalEngine::pool()
{
    std::lock_guard<std::mutex> lk(poolMtx_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(opts_.threads);
    return *pool_;
}

void
EvalEngine::addPhaseSeconds(const std::string &phase, double seconds)
{
    std::lock_guard<std::mutex> lk(phaseMtx_);
    phases_[phase] += seconds;
}

SearchStats
EvalEngine::stats() const
{
    SearchStats s;
    s.evaluations = evaluations_.value();
    s.cacheHits = hits_.value();
    s.cacheMisses = misses_.value();
    s.invalidMappings = invalid_.value();
    s.prunes = prunes_.value();
    s.evictions = evictions_.value();
    s.prefixHits = prefixHits_.value();
    s.prefixMisses = prefixMisses_.value();
    s.scratchReuses = scratchReuses_.value();
    s.batches = batches_.value();
    s.evalLatencyUs = evalLatencyUs_.snapshot();
    s.batchSize = batchSize_.snapshot();
    {
        std::lock_guard<std::mutex> lk(phaseMtx_);
        s.phaseSeconds.assign(phases_.begin(), phases_.end());
    }
    return s;
}

void
EvalEngine::resetStats()
{
    evaluations_.reset();
    hits_.reset();
    misses_.reset();
    invalid_.reset();
    prunes_.reset();
    evictions_.reset();
    prefixHits_.reset();
    prefixMisses_.reset();
    scratchReuses_.reset();
    batches_.reset();
    evalLatencyUs_.reset();
    batchSize_.reset();
    std::lock_guard<std::mutex> lk(phaseMtx_);
    phases_.clear();
}

void
EvalEngine::clearCache()
{
    for (auto &s : shards_) {
        std::lock_guard<std::mutex> lk(s->mtx);
        s->map.clear();
    }
    std::lock_guard<std::mutex> lk(prefixMtx_);
    prefixCache_.clear();
}

std::size_t
EvalEngine::cacheSize() const
{
    std::size_t n = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lk(s->mtx);
        n += s->map.size();
    }
    return n;
}

} // namespace sunstone
