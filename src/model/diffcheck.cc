#include "model/diffcheck.hh"

#include <algorithm>
#include <optional>
#include <random>
#include <sstream>
#include <utility>

#include "arch/arch_config.hh"
#include "mapping/serialize.hh"
#include "model/nest_simulator.hh"

namespace sunstone {

namespace {

/** Stateless mixer so per-trial streams are independent of each other. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::int64_t
pickSize(std::mt19937_64 &rng)
{
    // Smooth sizes keep factorizations rich and the oracle's
    // brute-force walk cheap.
    static const std::int64_t sizes[] = {1, 2, 3, 4, 6, 8};
    return sizes[rng() % (sizeof(sizes) / sizeof(sizes[0]))];
}

Workload
randomWorkload(std::mt19937_64 &rng)
{
    const auto s = [&] { return pickSize(rng); };
    switch (rng() % 5) {
    case 0:
        return parseEinsum("fuzz-gemm", "out[m,n] = a[m,k] * b[k,n]",
                           {{"m", s()}, {"n", s()}, {"k", s()}});
    case 1:
        return parseEinsum("fuzz-conv1d",
                           "out[k,p] = w[k,c,r] * in[c,p+r]",
                           {{"k", s()}, {"c", s()}, {"p", s()},
                            {"r", 1 + static_cast<std::int64_t>(rng() % 3)}});
    case 2:
        // Strided sliding window: the case where the enlarged-tile
        // closed form historically overcounted multicast words.
        return parseEinsum("fuzz-strided-conv1d",
                           "out[k,p] = w[k,c,r] * in[c,2*p+r]",
                           {{"k", s()}, {"c", s()}, {"p", s()},
                            {"r", 1 + static_cast<std::int64_t>(rng() % 3)}});
    case 3:
        return parseEinsum("fuzz-mttkrp",
                           "out[i,j] = A[i,k,l] * B[k,j] * C[l,j]",
                           {{"i", s()}, {"j", s()}, {"k", s()},
                            {"l", s()}});
    default:
        return parseEinsum("fuzz-depthwise",
                           "out[c,p] = w[c,r] * in[c,p+r]",
                           {{"c", s()}, {"p", s()},
                            {"r", 1 + static_cast<std::int64_t>(rng() % 3)}});
    }
}

/**
 * Random three-level machine. Partition names equal tensor names, so
 * bypass lists and the binding rules behave identically for unified
 * and partitioned variants.
 */
ArchSpec
randomArch(const Workload &wl, std::mt19937_64 &rng)
{
    const auto partitioned = [&](LevelSpec &lv, std::int64_t bits,
                                 const std::string &skip) {
        for (const auto &t : wl.tensors())
            if (t.name != skip)
                lv.partitions.push_back({t.name, bits});
    };

    ArchSpec a;
    a.name = "fuzz-arch";

    LevelSpec l1;
    l1.name = "L1";
    l1.fanout = 16;
    l1.multicast = rng() % 2 == 0;
    const bool l1_partitioned = rng() % 2 == 0;
    if (l1_partitioned)
        partitioned(l1, 1 << 20, "");
    else
        l1.capacityBits = 1 << 20;

    LevelSpec glb;
    glb.name = "GLB";
    glb.fanout = 8;
    glb.multicast = rng() % 2 == 0;
    // Optionally bypass one input tensor at the middle level so the
    // storage chain DRAM -> L1 skips it.
    std::string skip;
    if (rng() % 2 == 0) {
        std::vector<std::string> inputs;
        for (const auto &t : wl.tensors())
            if (!t.isOutput)
                inputs.push_back(t.name);
        skip = inputs[rng() % inputs.size()];
    }
    if (rng() % 2 == 0) {
        // A partitioned level may skip a tensor either implicitly (no
        // partition for it) or via the bypass list. The implicit form
        // requires the tensor's partition name to exist elsewhere in
        // the hierarchy, else auto-binding has nothing to match.
        if (!skip.empty() && l1_partitioned && rng() % 2 == 0) {
            partitioned(glb, 1 << 26, skip);
        } else {
            partitioned(glb, 1 << 26, "");
            if (!skip.empty())
                glb.bypass.push_back(skip);
        }
    } else {
        glb.capacityBits = 1 << 26;
        if (!skip.empty())
            glb.bypass.push_back(skip);
    }

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;

    a.levels = {l1, glb, dram};
    return a;
}

/** Valid-by-construction random factorization (fanout respected). */
Mapping
randomMapping(const BoundArch &ba, std::mt19937_64 &rng)
{
    const Workload &wl = ba.workload();
    const int nl = ba.numLevels();
    const int nd = wl.numDims();
    Mapping m(nl, nd);
    struct Slot
    {
        int level;
        bool spatial;
    };
    std::vector<Slot> slots;
    for (int l = 0; l < nl; ++l) {
        slots.push_back({l, false});
        if (ba.arch().levels[l].fanout > 1)
            slots.push_back({l, true});
    }
    const auto place = [&](DimId d, std::int64_t f) {
        const auto &s = slots[rng() % slots.size()];
        auto &lm = m.level(s.level);
        if (s.spatial &&
            lm.spatialProduct() * f <= ba.arch().levels[s.level].fanout)
            lm.spatial[d] *= f;
        else
            lm.temporal[d] *= f;
    };
    for (DimId d = 0; d < nd; ++d) {
        std::int64_t rem = wl.dimSize(d);
        for (std::int64_t f = 2; f * f <= rem; ++f)
            while (rem % f == 0) {
                place(d, f);
                rem /= f;
            }
        if (rem > 1)
            place(d, rem);
    }
    for (int l = 0; l < nl; ++l)
        std::shuffle(m.level(l).order.begin(), m.level(l).order.end(),
                     rng);
    return m;
}

/** One candidate reproducer. */
struct Repro
{
    Workload wl;
    ArchSpec arch;
    Mapping m;
};

struct CoreMismatch
{
    int level;
    int tensor;
    std::string field;
    std::int64_t model;
    std::int64_t oracle;
};

/** Evaluates both sides and returns the first diverging counter. */
std::optional<CoreMismatch>
compareOnce(const Repro &r, DiffcheckOptions::Fault fault)
{
    BoundArch ba(r.arch, r.wl);
    CostModelOptions opts;
    opts.assumeValid = true; // capacity/fanout play no role in counts
    opts.modelNoc = false;
    CostResult res = evaluateMapping(ba, r.m, opts);
    if (fault == DiffcheckOptions::Fault::TopLevelReads)
        res.access[ba.numLevels() - 1][0].reads += 1;
    const auto sim = simulateAccessCounts(ba, r.m, NestOracleOptions{});
    for (int l = 0; l < ba.numLevels(); ++l) {
        for (TensorId t = 0; t < ba.numTensors(); ++t) {
            const AccessCounts &a = res.access[l][t];
            const AccessCounts &b = sim[l][t];
            const std::pair<const char *, std::pair<std::int64_t,
                                                    std::int64_t>>
                fields[] = {
                    {"reads", {a.reads, b.reads}},
                    {"fills", {a.fills, b.fills}},
                    {"updates", {a.updates, b.updates}},
                    {"accumReads", {a.accumReads, b.accumReads}},
                    {"drains", {a.drains, b.drains}},
                };
            for (const auto &[name, v] : fields)
                if (v.first != v.second)
                    return CoreMismatch{l, t, name, v.first, v.second};
        }
    }
    return std::nullopt;
}

/**
 * Greedy lock-step shrinking: divide a problem dimension and one
 * mapping factor by the same prime while the disagreement persists,
 * then try structural architecture simplifications. Every accepted
 * step strictly reduces the reproducer, so the loop terminates.
 */
Repro
shrinkRepro(Repro r, DiffcheckOptions::Fault fault)
{
    const auto fails = [&](const Repro &cand) {
        return compareOnce(cand, fault).has_value();
    };

    bool changed = true;
    while (changed) {
        changed = false;

        // Dimension / factor shrinking.
        for (DimId d = 0; d < r.wl.numDims() && !changed; ++d) {
            const std::int64_t size = r.wl.dimSize(d);
            for (std::int64_t p = 2; p <= size && !changed; ++p) {
                if (size % p != 0)
                    continue;
                for (int l = 0; l < r.m.numLevels() && !changed; ++l) {
                    for (int sp = 0; sp < 2 && !changed; ++sp) {
                        auto &fac = sp ? r.m.level(l).spatial
                                       : r.m.level(l).temporal;
                        if (fac[d] % p != 0)
                            continue;
                        Repro cand = r;
                        auto shape = r.wl.shape();
                        shape[d] /= p;
                        cand.wl = r.wl.withShape(shape);
                        auto &cf = sp ? cand.m.level(l).spatial
                                      : cand.m.level(l).temporal;
                        cf[d] /= p;
                        if (fails(cand)) {
                            r = std::move(cand);
                            changed = true;
                        }
                    }
                }
            }
        }

        // Architecture simplifications (accepted only when the
        // disagreement survives them).
        for (std::size_t l = 0;
             l + 1 < r.arch.levels.size() && !changed; ++l) {
            LevelSpec &lv = r.arch.levels[l];
            if (lv.multicast) {
                Repro cand = r;
                cand.arch.levels[l].multicast = false;
                if (fails(cand)) {
                    r = std::move(cand);
                    changed = true;
                    continue;
                }
            }
            if (!lv.bypass.empty()) {
                Repro cand = r;
                cand.arch.levels[l].bypass.clear();
                if (fails(cand)) {
                    r = std::move(cand);
                    changed = true;
                    continue;
                }
            }
            if (!lv.partitions.empty()) {
                Repro cand = r;
                auto &clv = cand.arch.levels[l];
                std::int64_t cap = 0;
                for (const auto &p : clv.partitions)
                    cap += p.capacityBits;
                clv.partitions.clear();
                clv.capacityBits = cap;
                if (fails(cand)) {
                    r = std::move(cand);
                    changed = true;
                }
            }
        }
    }
    return r;
}

} // anonymous namespace

std::mt19937_64
diffcheckTrialRng(std::uint64_t trial_seed)
{
    return std::mt19937_64(splitmix64(trial_seed));
}

Workload
randomDiffcheckWorkload(std::mt19937_64 &rng)
{
    return randomWorkload(rng);
}

ArchSpec
randomDiffcheckArch(const Workload &wl, std::mt19937_64 &rng)
{
    return randomArch(wl, rng);
}

Mapping
randomDiffcheckMapping(const BoundArch &ba, std::mt19937_64 &rng)
{
    return randomMapping(ba, rng);
}

DiffcheckReport
runDiffcheck(const DiffcheckOptions &opts)
{
    DiffcheckReport rep;
    const auto say = [&](const std::string &s) {
        if (opts.log)
            opts.log(s);
    };

    for (int i = 0; i < opts.trials; ++i) {
        // seed + i makes any trial replayable in isolation:
        // `--seed <trialSeed> --trials 1` regenerates the same triple.
        const std::uint64_t trial_seed = opts.seed + i;
        std::mt19937_64 rng = diffcheckTrialRng(trial_seed);

        Repro r;
        r.wl = randomWorkload(rng);
        r.arch = randomArch(r.wl, rng);
        BoundArch ba(r.arch, r.wl);
        r.m = randomMapping(ba, rng);

        ++rep.trialsRun;
        auto mm = compareOnce(r, opts.fault);
        if (!mm) {
            if (opts.trials >= 10 && (i + 1) % (opts.trials / 10) == 0)
                say("diffcheck: " + std::to_string(i + 1) + "/" +
                    std::to_string(opts.trials) + " trials clean");
            continue;
        }

        ++rep.mismatches;
        say("diffcheck: mismatch at trial " + std::to_string(i) +
            (opts.shrink ? ", shrinking..." : ""));
        if (opts.shrink) {
            r = shrinkRepro(r, opts.fault);
            mm = compareOnce(r, opts.fault);
        }

        DiffcheckMismatch &f = rep.first;
        f.trial = i;
        f.trialSeed = trial_seed;
        f.level = mm->level;
        f.tensor = mm->tensor;
        f.tensorName = r.wl.tensor(mm->tensor).name;
        f.field = mm->field;
        f.modelValue = mm->model;
        f.oracleValue = mm->oracle;
        f.workloadText = workloadToText(r.wl);
        f.archText = archToText(r.arch);
        {
            BoundArch rba(r.arch, r.wl);
            f.mappingText = mappingToText(r.m, rba);
        }
        std::ostringstream os;
        os << "model/oracle mismatch: level "
           << r.arch.levels[mm->level].name << ", tensor " << f.tensorName
           << ", field " << f.field << ": model=" << f.modelValue
           << " oracle=" << f.oracleValue << " (trial " << i
           << ", replay with --seed " << trial_seed << " --trials 1)";
        f.summary = os.str();
        return rep; // stop at the first (now minimized) failure
    }
    return rep;
}

} // namespace sunstone
