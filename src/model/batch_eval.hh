/**
 * @file
 * Structure-of-arrays batch evaluator (ROADMAP item 2): evaluates groups
 * of candidate mappings against one bound (architecture, workload) pair
 * with the per-candidate floating-point finalization vectorized across
 * simd::kLanes lanes.
 *
 * Division of labor with the scalar model (cost_model.hh):
 *
 *  - The integer access-count kernels (satMul chains with data-dependent
 *    skip rules and saturating 64-bit multiplies, which AVX2/NEON cannot
 *    vectorize profitably) run per lane through the exact
 *    detail::countAccess the scalar path uses, so every counter is
 *    bit-identical by construction. Counters are written straight into
 *    the caller's CostResult rows; only the per-(level, tensor) read and
 *    write word sums — already converted to double, the form the packed
 *    kernels consume — are gathered lane-contiguous into SoA arrays.
 *  - The floating-point finalization (per-level energy accumulation,
 *    bandwidth-bound latency, EDP) runs packed over the SoA lanes with
 *    vec4d, in the scalar path's per-lane operation order. Because every
 *    wrapped operation is IEEE correctly rounded and no FMA contraction
 *    is enabled (CMake adds -mavx2 only, never -mfma), the packed
 *    results match the scalar path bitwise on mainstream toolchains; the
 *    contract tests still allow a small relative tolerance for exotic
 *    platforms (see tests/test_batch_eval.cc).
 *  - CostResults are emitted lane-by-lane into caller-owned storage,
 *    reusing buffer capacity — the batch path allocates nothing in
 *    steady state.
 *
 * Runtime fallback: when simd::simdRuntimeEnabled() is false (the
 * SUNSTONE_SIMD environment variable, or setSimdRuntimeEnabled(false)),
 * evaluate() degrades to a loop of evaluateMappingInto() — bit-identical
 * to the historical serial batch path by construction.
 *
 * A BatchEvaluator is bound to one (BoundArch, CostModelOptions) pair at
 * construction and is not thread-safe; EvalEngine keeps one per thread
 * per pair (see eval_engine.cc).
 */

#ifndef SUNSTONE_MODEL_BATCH_EVAL_HH
#define SUNSTONE_MODEL_BATCH_EVAL_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "model/cost_model.hh"

namespace sunstone {

class BatchEvaluator
{
  public:
    /**
     * Precomputes everything shared across the batch: flattened
     * per-(level, tensor) energy coefficients, MAC energy, clock and
     * fanout constants. The BoundArch must outlive the evaluator.
     */
    BatchEvaluator(const BoundArch &ba, const CostModelOptions &opts);

    /** Evaluates ms[i] into out[i]; out must hold ms.size() results. */
    void evaluate(std::span<const Mapping> ms, CostResult *out);

    /**
     * Gather form for non-contiguous candidates (e.g. the cache misses
     * of a memoized batch): evaluates *ms[i] into *out[i].
     */
    void evaluate(const Mapping *const *ms, std::size_t n,
                  CostResult *const *out);

    const BoundArch &boundArch() const { return *ba_; }
    const CostModelOptions &options() const { return opts_; }

    /** @return evaluations that reused the internal scratch (telemetry). */
    std::int64_t scratchReuses() const { return scratch_.reuseCount(); }

    /** @return the SIMD backend compiled into this translation unit
     *         ("avx2", "neon", or "scalar"). */
    static const char *backendName();

    /** @return true when the packed SoA kernels are in use (backend
     *         compiled in and not disabled at runtime). */
    static bool simdActive();

  private:
    static constexpr int kW = simd::kLanes;

    /** SoA kernel over one group of at most kW candidates. */
    void evaluateGroup(const Mapping *const *ms, int n,
                       CostResult *const *out);

    /** Packed finalization across the gathered lanes. */
    void finalizeLanes();

    /** Writes the finalized state of a valid lane k into *out (the
     *  access counters were already emitted during the integer pass). */
    void emitLane(int k, CostResult &out) const;

    const BoundArch *ba_;
    CostModelOptions opts_;
    int nl_ = 0;
    int nt_ = 0;

    // Shared-prefix terms of the whole batch: coefficients and constants
    // every candidate multiplies into, computed once per evaluator.
    std::vector<double> readPj_;  // [l * nt + t]
    std::vector<double> writePj_; // [l * nt + t]
    std::vector<double> readBw_;  // [l]
    std::vector<double> writeBw_; // [l]
    double macEnergyPj_ = 0;
    double opsD_ = 0;
    double clockHz_ = 0;
    double fanoutD_ = 1;

    // Per-lane state, gathered lane-contiguous ([idx * kW + k]). Word
    // sums are stored as doubles — the int64 -> double conversion is the
    // same one the scalar finalization applies to the summed counters,
    // hoisted into the gather so the packed kernels load directly.
    EvalScratch scratch_;
    std::vector<double> soaWordsR_, soaWordsW_; // [(l * nt + t) * kW + k]
    std::vector<std::int64_t> soaSpatial_;  // [l * kW + k], l in [0, nl]
    std::vector<double> laneLevelE_;        // [l * kW + k]
    double laneNoc_[kW];
    double laneTotalE_[kW];
    double laneCycles_[kW];
    double laneUtil_[kW];
    int laneBottleneck_[kW]; // level index, -1 = compute
    bool laneValid_[kW];
    std::string laneWhy_[kW];
};

} // namespace sunstone

#endif // SUNSTONE_MODEL_BATCH_EVAL_HH
