/**
 * @file
 * The unified evaluation engine: a single instrumented substrate through
 * which every search in the repository (the Sunstone driver, the local
 * refinement pass, and all baseline mappers) evaluates mappings.
 *
 * The engine provides, in one place, what each search previously
 * hand-rolled or lacked entirely:
 *  - a sharded (striped-mutex) memoization cache from a canonical
 *    mapping key to the full CostResult, so re-evaluations — final
 *    ranking, hill-climb revisits, repeated layers of a network — hit
 *    the cache instead of the analytical model;
 *  - atomic telemetry counters (evaluations, cache hits/misses, invalid
 *    mappings, alpha-beta prunes, evictions) plus per-phase wall-clock,
 *    exported as a SearchStats snapshot with JSON rendering;
 *  - a lazily created shared ThreadPool, so nested searches (network
 *    scheduler over per-layer searches) stop oversubscribing threads.
 *
 * Cache-key canonicalization (see DESIGN.md §8): the key folds a
 * structural fingerprint of the bound architecture/workload pair with the
 * mapping's factors and *cost-relevant* loop orders — per level the loop
 * order restricted to dims with temporal factor > 1 (the cost model skips
 * factor-1 loops), and level 0's order dropped entirely (no loop below it
 * consumes it). Two mappings differing only in the placement of trivial
 * loops therefore share one cache entry. The full canonical key is stored
 * alongside each entry and compared on lookup, so a 64-bit hash collision
 * degrades to a miss, never to a wrong result.
 *
 * The free function evaluateMapping() in cost_model.hh remains the raw
 * analytical model (and the engine's backend); search code must evaluate
 * through an EvalEngine.
 */

#ifndef SUNSTONE_MODEL_EVAL_ENGINE_HH
#define SUNSTONE_MODEL_EVAL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"
#include "model/cost_model.hh"
#include "obs/metrics.hh"

namespace sunstone {

/** Snapshot of the engine's telemetry counters. */
struct SearchStats
{
    /** Evaluation requests routed through the engine (hits included). */
    std::int64_t evaluations = 0;
    std::int64_t cacheHits = 0;
    std::int64_t cacheMisses = 0;
    /** Evaluations whose mapping failed the validity check. */
    std::int64_t invalidMappings = 0;
    /** Alpha-beta prunes recorded by searches via notePrune(). */
    std::int64_t prunes = 0;
    /** Entries dropped when a full shard was reset. */
    std::int64_t evictions = 0;
    /** Prefix-term cache hits/misses (see EvalEngine::prefix()). */
    std::int64_t prefixHits = 0;
    std::int64_t prefixMisses = 0;
    /** Model invocations that reused the per-thread scratch arena. */
    std::int64_t scratchReuses = 0;
    /** evaluateBatch() calls routed through the engine. */
    std::int64_t batches = 0;
    /** Wall-clock per phase, accumulated via addPhaseSeconds(). */
    std::vector<std::pair<std::string, double>> phaseSeconds;
    /** Latency of analytical-model invocations (cache hits excluded). */
    obs::HistogramSnapshot evalLatencyUs;
    /** Distribution of evaluateBatch() sizes. */
    obs::HistogramSnapshot batchSize;

    /** Renders the snapshot as a JSON object. */
    std::string toJson() const;

    /**
     * Counter-wise difference of two snapshots of one engine
     * (this - earlier): what a bounded span of work — e.g. one service
     * request on a long-lived session engine — contributed. Histograms
     * and phase wall-clock are not differenced; the delta keeps this
     * snapshot's copies.
     */
    SearchStats deltaSince(const SearchStats &earlier) const;

    /** Cache hits over cache lookups (hits + misses); 1 when no lookup
     *  happened (an all-cached span has nothing left to miss). */
    double hitRate() const;
};

/**
 * FNV-1a over a factor vector; also used by search frontiers that dedup
 * factor vectors (e.g. the top-down tiling frontier).
 */
std::uint64_t hashFactors(const std::vector<std::int64_t> &v,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Engine construction knobs. */
struct EvalEngineOptions
{
    /** Shared pool size; 0 means hardware_concurrency(). */
    unsigned threads = 1;
    /** Cache stripe count (rounded up to a power of two). */
    unsigned shards = 16;
    /** Per-shard entry cap; a full shard is reset (epoch eviction). */
    std::size_t maxEntriesPerShard = 16384;
    bool enableCache = true;
};

/** The unified evaluation engine. Thread-safe. */
class EvalEngine
{
  public:
    /**
     * A bound (architecture, workload) pair plus its precomputed
     * structural fingerprint. Cheap to copy; valid only while the
     * BoundArch it was created from is alive. Identical layer structures
     * produce identical fingerprints regardless of display names, which
     * is what makes cross-layer deduplication work.
     */
    class Context
    {
      public:
        const BoundArch &boundArch() const { return *ba_; }
        std::uint64_t fingerprint() const { return fp_; }

      private:
        friend class EvalEngine;
        Context(const BoundArch *ba, std::uint64_t fp) : ba_(ba), fp_(fp)
        {
        }
        const BoundArch *ba_;
        std::uint64_t fp_;
    };

    /**
     * Bypass skips the cache for this call (still counted as an
     * evaluation). Used for high-volume, low-reuse paths such as the
     * Sunstone completion scoring, where caching would only churn.
     */
    enum class CachePolicy { UseCache, Bypass };

    /**
     * A shared, immutable snapshot of the contribution terms of a
     * decided-level prefix (see PrefixTerms in cost_model.hh). Obtained
     * from prefix(); cheap to copy and safe to share across threads. A
     * default-constructed (empty) handle is valid everywhere a handle is
     * accepted and simply selects the non-incremental path.
     */
    class PrefixHandle
    {
      public:
        PrefixHandle() = default;
        bool valid() const { return terms_ != nullptr; }
        int prefixLevels() const
        {
            return terms_ ? terms_->prefixLevels : 0;
        }

      private:
        friend class EvalEngine;
        std::shared_ptr<const PrefixTerms> terms_;
    };

    explicit EvalEngine(EvalEngineOptions opts = {});
    ~EvalEngine();

    EvalEngine(const EvalEngine &) = delete;
    EvalEngine &operator=(const EvalEngine &) = delete;

    /** Fingerprints the pair; do once per search, not per evaluation. */
    Context context(const BoundArch &ba) const;

    /** Evaluates through the memoization cache. */
    CostResult evaluate(const Context &ctx, const Mapping &m,
                        const CostModelOptions &opts = {},
                        CachePolicy policy = CachePolicy::UseCache);

    /** Convenience overload fingerprinting on every call. */
    CostResult evaluate(const BoundArch &ba, const Mapping &m,
                        const CostModelOptions &opts = {},
                        CachePolicy policy = CachePolicy::UseCache);

    /**
     * Returns (building on demand) the contribution terms of levels
     * [0, prefix_levels) of `base`. Handles are memoized in a bounded
     * cache keyed by the context fingerprint plus the canonical prefix
     * (factors + reduced orders — the same rules the memo cache uses),
     * so repeated requests for equivalent prefixes share one snapshot.
     * prefix_levels <= 0 returns an empty handle.
     */
    PrefixHandle prefix(const Context &ctx, const Mapping &base,
                        int prefix_levels);

    /**
     * Like evaluate(), but mappings sharing the handle's decided prefix
     * reuse its cached terms and only recompute the undecided levels.
     * Bit-identical to evaluate() for any mapping whose canonical prefix
     * matches the handle's; results share the same memo-cache entries.
     */
    CostResult evaluateWithPrefix(const Context &ctx,
                                  const PrefixHandle &ph, const Mapping &m,
                                  const CostModelOptions &opts = {},
                                  CachePolicy policy =
                                      CachePolicy::UseCache);

    /**
     * Allocation-free scoring fast path: evaluates into per-thread
     * buffers and returns only the total energy (pJ); infinity for
     * invalid mappings. Counted as an evaluation, never cached. This is
     * what high-volume completion scoring calls — identical numbers to
     * evaluate(...).totalEnergyPj without materializing a CostResult.
     */
    double scoreEnergy(const Context &ctx, const PrefixHandle &ph,
                       const Mapping &m, const CostModelOptions &opts = {});

    /**
     * Evaluates a batch of mappings through the SoA batch evaluator
     * (model/batch_eval.hh): the batch is cut into fixed-size chunks
     * (independent of the pool size, so results and cache contents are
     * deterministic for any thread count) and each chunk runs through a
     * per-thread BatchEvaluator with the floating-point finalization
     * vectorized across candidate lanes. out[i] corresponds to ms[i].
     *
     * Results are identical to calling evaluate() per mapping: bitwise
     * when the runtime scalar fallback is active (SUNSTONE_SIMD=off),
     * and on mainstream toolchains also with the packed kernels (same
     * IEEE operations in the same per-lane order, no FMA); the pinned
     * contract for the packed path is integer-exact counters plus
     * tightly tolerance-bounded doubles (tests/test_batch_eval.cc).
     * Under CachePolicy::UseCache, hits are served per mapping and only
     * the misses run through the SoA path (and are then inserted).
     * The per-eval latency histogram records one sample per chunk (the
     * chunk mean) rather than one per evaluation.
     */
    void evaluateBatch(const Context &ctx, std::span<const Mapping> ms,
                       const CostModelOptions &opts, CachePolicy policy,
                       std::vector<CostResult> &out);

    /** Convenience overload returning the results by value. */
    std::vector<CostResult>
    evaluateBatch(const Context &ctx, std::span<const Mapping> ms,
                  const CostModelOptions &opts = {},
                  CachePolicy policy = CachePolicy::UseCache);

    /**
     * The shared worker pool, created on first use with the configured
     * thread count. Use TaskGroup/parallelFor for scoped joins.
     */
    ThreadPool &pool();

    /** @return configured pool size (without forcing pool creation). */
    unsigned configuredThreads() const { return opts_.threads; }

    /** Records alpha-beta (or equivalent) prunes for telemetry. */
    void notePrune(std::int64_t n = 1) { prunes_.add(n); }

    /** Accumulates wall-clock into a named phase. */
    void addPhaseSeconds(const std::string &phase, double seconds);

    /** @return a consistent snapshot of the counters. */
    SearchStats stats() const;

    void resetStats();
    void clearCache();

    /** @return total entries currently cached (approximate under load). */
    std::size_t cacheSize() const;

  private:
    struct Entry
    {
        std::vector<std::int64_t> key;
        CostResult result;
    };
    struct Shard
    {
        std::mutex mtx;
        std::unordered_map<std::uint64_t, Entry> map;
    };
    struct PrefixEntry
    {
        std::vector<std::int64_t> key;
        std::shared_ptr<const PrefixTerms> terms;
    };

    void canonicalKey(const Mapping &m, const CostModelOptions &opts,
                      std::vector<std::int64_t> &out) const;
    void canonicalPrefixKey(const Mapping &m, int prefix_levels,
                            std::vector<std::int64_t> &out) const;
    CostResult evaluateImpl(const Context &ctx, const Mapping &m,
                            const CostModelOptions &opts, CachePolicy policy,
                            const PrefixTerms *prefix);
    void evaluateChunk(const Context &ctx, std::span<const Mapping> ms,
                       const CostModelOptions &opts, CachePolicy policy,
                       std::vector<CostResult> &out, std::size_t lo,
                       std::size_t hi);

    EvalEngineOptions opts_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Bounded memo of prefix-term snapshots (cleared when full). */
    static constexpr std::size_t kMaxPrefixEntries = 4096;
    mutable std::mutex prefixMtx_;
    std::unordered_map<std::uint64_t, PrefixEntry> prefixCache_;

    // Per-engine telemetry uses the obs primitives directly (not the
    // process-wide registry) so two engines in one process — e.g. the
    // Sunstone and baseline engines in fig7 — stay separable.
    obs::Counter evaluations_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter invalid_;
    obs::Counter prunes_;
    obs::Counter evictions_;
    obs::Counter prefixHits_;
    obs::Counter prefixMisses_;
    obs::Counter scratchReuses_;
    obs::Counter batches_;
    obs::Histogram evalLatencyUs_;
    obs::Histogram batchSize_;

    mutable std::mutex phaseMtx_;
    std::map<std::string, double> phases_;

    mutable std::mutex poolMtx_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace sunstone

#endif // SUNSTONE_MODEL_EVAL_ENGINE_HH
