/**
 * @file
 * Differential fuzzing of the analytical cost model against the
 * loop-nest oracle (`sunstone check` and tools/diffcheck). Each trial
 * draws a random workload, a random three-level architecture (multicast
 * on/off, unified or per-datatype buffers, optional mid-level bypass)
 * and a random valid-by-construction mapping, then compares every
 * per-(level, tensor) access counter produced by evaluateMapping()
 * against simulateAccessCounts(). The first mismatch is shrunk to a
 * minimal reproducer — problem dimensions and mapping factors are
 * divided down in lock step while the disagreement persists — and
 * reported as ready-to-save workload/arch/mapping text.
 *
 * Everything is seeded and deterministic: the same (seed, trials) pair
 * replays the same sequence of triples bit for bit, so a failure found
 * in CI reproduces locally from its printed seed.
 */

#ifndef SUNSTONE_MODEL_DIFFCHECK_HH
#define SUNSTONE_MODEL_DIFFCHECK_HH

#include <cstdint>
#include <functional>
#include <random>
#include <string>

#include "model/cost_model.hh"

namespace sunstone {

/**
 * Seeded generators behind the fuzz harness, exported so the
 * equivalence tests and the benchmark tool draw from the same
 * distribution of (workload, arch, mapping) triples. Trial i of a run
 * seeds its stream as `diffcheckTrialRng(seed + i)`; the same seed
 * replays the same triple bit for bit.
 */
std::mt19937_64 diffcheckTrialRng(std::uint64_t trial_seed);

/** Random small einsum (GEMM, conv1d, strided conv1d, MTTKRP, depthwise). */
Workload randomDiffcheckWorkload(std::mt19937_64 &rng);

/** Random three-level machine (multicast on/off, partitioned or unified
 *  buffers, optional mid-level bypass). */
ArchSpec randomDiffcheckArch(const Workload &wl, std::mt19937_64 &rng);

/** Random valid-by-construction mapping (fanouts respected). */
Mapping randomDiffcheckMapping(const BoundArch &ba, std::mt19937_64 &rng);

/** Configuration for one differential-fuzz run. */
struct DiffcheckOptions
{
    /** Base seed; trial i derives its own stream from (seed, i). */
    std::uint64_t seed = 1;

    /** Number of random (workload, arch, mapping) triples to try. */
    int trials = 200;

    /** Shrink the first mismatch to a minimal reproducer. */
    bool shrink = true;

    /**
     * Deliberate perturbations of the model-side counts, used to prove
     * the harness detects and minimizes a planted cost-model bug.
     */
    enum class Fault
    {
        None,
        /** Adds one word to the outermost level's reads of tensor 0. */
        TopLevelReads,
    };
    Fault fault = Fault::None;

    /** Optional progress sink (one line per message); may be empty. */
    std::function<void(const std::string &)> log;
};

/** A single model/oracle disagreement, with a saved reproducer. */
struct DiffcheckMismatch
{
    /** Trial index (0-based) and the per-trial derived seed. */
    int trial = -1;
    std::uint64_t trialSeed = 0;

    /** Where the counters diverged. */
    int level = -1;
    int tensor = -1;
    std::string tensorName;
    std::string field; // "reads" | "fills" | "updates" | ...
    std::int64_t modelValue = 0;
    std::int64_t oracleValue = 0;

    /** Minimal reproducer (after shrinking, when enabled). */
    std::string workloadText;
    std::string archText;
    std::string mappingText;

    /** Human-readable one-paragraph description. */
    std::string summary;
};

/** Outcome of a run. */
struct DiffcheckReport
{
    int trialsRun = 0;
    int mismatches = 0;
    /** First mismatch found (valid when mismatches > 0). */
    DiffcheckMismatch first;

    bool ok() const { return mismatches == 0; }
};

/**
 * Runs the differential fuzzer. Stops at the first mismatch (after
 * shrinking it); a clean run executes all opts.trials trials.
 */
DiffcheckReport runDiffcheck(const DiffcheckOptions &opts);

} // namespace sunstone

#endif // SUNSTONE_MODEL_DIFFCHECK_HH
