/**
 * @file
 * Session-owned cooperative cancellation (DESIGN.md §16). A
 * CancellationSource wraps the atomic flag every StopPolicy in a
 * request points at; the search drivers poll it at batch boundaries.
 * The flag used to be a process global in the CLI (`g_cancelRequested`);
 * owning it here lets each SchedulerSession cancel (and reset) its own
 * traffic, and lets embedders cancel programmatically instead of only
 * via signals.
 */

#ifndef SUNSTONE_SERVICE_CANCELLATION_HH
#define SUNSTONE_SERVICE_CANCELLATION_HH

#include <atomic>

namespace sunstone {
namespace service {

/** A resettable cancellation flag shared by a session's requests. */
class CancellationSource
{
  public:
    /** Raises the flag; every in-flight search stops cooperatively. */
    void
    requestCancel()
    {
        flag_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    /** Lowers the flag (between requests; never during one). */
    void
    reset()
    {
        flag_.store(false, std::memory_order_relaxed);
    }

    /** The flag StopPolicy::cancel points at. Stable for the source's
     *  lifetime. */
    std::atomic<bool> *flag() { return &flag_; }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_CANCELLATION_HH
