/**
 * @file
 * The long-lived scheduler session (DESIGN.md §16): the request/session
 * service core extracted from the CLI monolith. One SchedulerSession
 * owns everything that is worth keeping warm across requests —
 *
 *  - the shared EvalEngine (memo cache + thread pool), so a repeat of a
 *    layer structure the session has already searched is served from
 *    cache instead of the analytical model;
 *  - the warm-start store: realized bests are recorded after every
 *    found Map search, and requests that opt in (`warm_start: true`)
 *    are seeded from the stored bests of structurally similar layers;
 *  - a result cache keyed by the canonical request (id excluded): a
 *    bit-identical repeat of a deterministic Map/Net request returns
 *    the stored response with `cached: true`, paying only a
 *    re-validation of the winning mapping(s) through the engine (a
 *    guaranteed memo hit, which is how the dedup stays observable in
 *    the per-request engine delta);
 *  - the cooperative CancellationSource every request's StopPolicy
 *    points at (the SignalBridge raises it on SIGINT/SIGTERM);
 *  - request counters for the health scrape.
 *
 * Requests run on one session worker thread through a bounded admission
 * queue: submit() enqueues (or rejects immediately when the queue is
 * full — the admission control), execute() is submit-and-wait. The
 * searches themselves parallelize on the engine's pool, so one worker
 * serializes requests without serializing the work.
 *
 * Three front ends drive a session: the CLI (one request per process),
 * `sunstone serve` (many requests over NDJSON), and embedders. The CLI
 * path is bit-identical to the pre-service monolith for fixed seeds:
 * the session runs the same mapper code under the same options, and
 * engine cache state cannot change search results (a collision degrades
 * to a miss, never a wrong value).
 */

#ifndef SUNSTONE_SERVICE_SESSION_HH
#define SUNSTONE_SERVICE_SESSION_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "model/eval_engine.hh"
#include "search/warmstart.hh"
#include "service/artifacts.hh"
#include "service/cancellation.hh"
#include "service/request.hh"

namespace sunstone {
namespace service {

/** Session construction knobs. */
struct SessionOptions
{
    /** Engine pool size; 0 = hardware_concurrency clamped to [2, 8]
     *  (the CLI's historical default). */
    unsigned threads = 0;

    /**
     * Path of the persistent warm-start store. Loaded at construction
     * (a missing file is an empty store), saved after every recorded
     * best. Empty keeps the store in memory only: warm starting still
     * works within the session, nothing persists.
     */
    std::string warmStartPath;

    /** Admission control: pending requests beyond this are rejected. */
    std::size_t queueCapacity = 64;

    /**
     * Turn SUNSTONE_FATAL during a request into an error response
     * instead of process exit (serve mode). The CLI leaves this off so
     * bad flags keep their historical fatal-and-exit behavior.
     */
    bool captureFatals = false;

    /** Serve Check progress lines somewhere (the CLI prints them);
     *  null discards them. */
    std::function<void(const std::string &)> logSink;
};

/** Monotonic request counters, exported by healthJson(). */
struct SessionCounters
{
    std::int64_t executed = 0;  ///< requests that ran (ok or not)
    std::int64_t failed = 0;    ///< requests that produced ok=false
    std::int64_t deduped = 0;   ///< served from the result cache
    std::int64_t rejected = 0;  ///< refused by admission control
    std::int64_t warmSeeded = 0; ///< warm-start seeds injected, total
};

class SchedulerSession
{
  public:
    explicit SchedulerSession(SessionOptions opts = {});
    ~SchedulerSession();

    SchedulerSession(const SchedulerSession &) = delete;
    SchedulerSession &operator=(const SchedulerSession &) = delete;

    /** The session engine (shared memo cache + pool). */
    EvalEngine &engine() { return *engine_; }

    /** The cancellation flag every request's StopPolicy points at. */
    CancellationSource &cancellation() { return cancel_; }

    /** The effective engine pool size. */
    unsigned threads() const { return threads_; }

    /**
     * Enqueues a request. The future resolves when the worker has
     * executed it; when the queue is at capacity the future is already
     * resolved with an ok=false "queue full" rejection (the admission
     * control — a client sees the rejection immediately instead of
     * waiting behind work that will miss its deadline anyway).
     *
     * `artifacts`, when given, must outlive the request: the worker
     * starts/stops its live threads around the search, routes the
     * convergence recorder into the SearchContext, and registers its
     * best-effort flush with the SignalBridge for the duration.
     */
    std::future<MappingResponse> submit(MappingRequest req,
                                        ArtifactSet *artifacts = nullptr);

    /** submit() and wait. The CLI's one-request-per-process path. */
    MappingResponse execute(const MappingRequest &req,
                            ArtifactSet *artifacts = nullptr);

    /** Pending requests (the queue the admission control bounds). */
    std::size_t queueDepth() const;

    SessionCounters counters() const;

    /**
     * The health/metrics scrape document: session counters, queue
     * state, warm-start store size, the engine stats, and the process
     * metrics registry. One JSON object.
     */
    std::string healthJson() const;

  private:
    struct Pending
    {
        MappingRequest req;
        ArtifactSet *artifacts = nullptr;
        std::promise<MappingResponse> promise;
    };

    void workerLoop();
    MappingResponse executeNow(const MappingRequest &req,
                               ArtifactSet *artifacts);
    MappingResponse dispatch(const MappingRequest &req,
                             ArtifactSet *artifacts);
    void runMap(const MappingRequest &req, ArtifactSet *artifacts,
                MappingResponse &resp);
    void runNet(const MappingRequest &req, ArtifactSet *artifacts,
                MappingResponse &resp);
    void runEval(const MappingRequest &req, MappingResponse &resp);
    void runCheck(const MappingRequest &req, MappingResponse &resp);
    void runHealth(MappingResponse &resp);

    SearchContext makeContext(const MappingRequest &req,
                              obs::ConvergenceRecorder *convergence);

    /** Whether the result cache may serve/store this request. */
    static bool cacheable(const MappingRequest &req);
    /** The cache key: canonical request JSON with the id cleared. */
    static std::string cacheKey(const MappingRequest &req);
    /** Replays the cached winning mapping(s) through the engine. */
    void revalidate(const MappingRequest &req,
                    const MappingResponse &resp);

    SessionOptions opts_;
    unsigned threads_ = 0;
    std::unique_ptr<EvalEngine> engine_;
    CancellationSource cancel_;

    WarmStartStore warmStore_;

    mutable std::mutex mtx_;
    std::condition_variable cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    SessionCounters counters_;
    std::unordered_map<std::string, MappingResponse> resultCache_;

    std::thread worker_;
};

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_SESSION_HH
