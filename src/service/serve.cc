#include "service/serve.hh"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/json.hh"
#include "service/signals.hh"

namespace sunstone {
namespace service {

namespace {

/** One request line in, one response line out. */
void
serveLine(SchedulerSession &session, const std::string &line)
{
    MappingRequest req;
    std::string err;
    JsonValue v;
    if (!parseJson(line, v, &err) ||
        !MappingRequest::fromJson(v, req, &err)) {
        MappingResponse resp;
        // Echo the id when the line parsed far enough to carry one.
        if (const JsonValue *id = v.isObject() ? v.find("id") : nullptr)
            resp.id = id->asString();
        resp.error = "bad request: " + err;
        std::printf("%s\n", resp.toJson().c_str());
        std::fflush(stdout);
        return;
    }
    const MappingResponse resp = session.execute(req);
    std::printf("%s\n", resp.toJson().c_str());
    std::fflush(stdout);
}

} // anonymous namespace

int
runServe(ServeOptions opts)
{
    // Serve must survive bad requests: fatals become error responses.
    opts.session.captureFatals = true;
    SchedulerSession session(opts.session);

    SignalBridge::instance().install();
    SignalBridge::instance().attach(&session.cancellation());

    std::fprintf(stderr,
                 "sunstone serve: ready (%u threads, queue %zu); one "
                 "JSON request per line\n",
                 session.threads(), opts.session.queueCapacity);

    std::string buffer;
    bool eof = false;
    while (!eof && SignalBridge::instance().signalCount() == 0) {
        struct pollfd pfd = {opts.inputFd, POLLIN, 0};
        // A short poll keeps the loop responsive to signals even when
        // no input arrives (the read below never blocks without data).
        const int pr = poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "sunstone serve: poll failed\n");
            break;
        }
        if (pr == 0)
            continue;
        char chunk[4096];
        const ssize_t n = read(opts.inputFd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "sunstone serve: read failed\n");
            break;
        }
        if (n == 0) {
            eof = true;
        } else {
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
        std::size_t start = 0;
        for (std::size_t nl; (nl = buffer.find('\n', start)) !=
                             std::string::npos;
             start = nl + 1) {
            const std::string line = buffer.substr(start, nl - start);
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            serveLine(session, line);
            if (SignalBridge::instance().signalCount() > 0)
                break;
        }
        buffer.erase(0, start);
    }
    // EOF with a trailing unterminated line: still a request.
    if (eof && SignalBridge::instance().signalCount() == 0 &&
        buffer.find_first_not_of(" \t\r") != std::string::npos)
        serveLine(session, buffer);

    const bool signalled = SignalBridge::instance().signalCount() > 0;
    if (!opts.metricsPath.empty()) {
        std::ofstream os(opts.metricsPath);
        if (os)
            os << session.healthJson() << "\n";
        else
            std::fprintf(stderr, "sunstone serve: cannot write '%s'\n",
                         opts.metricsPath.c_str());
    }
    std::fprintf(stderr, "sunstone serve: %s; served %lld requests\n",
                 signalled ? "signal shutdown" : "stdin closed",
                 static_cast<long long>(session.counters().executed));
    // A signalled shutdown is a clean shutdown: telemetry is flushed
    // above, so the exit status stays 0.
    return 0;
}

} // namespace service
} // namespace sunstone
