/**
 * @file
 * The service layer's request/response schema (DESIGN.md §16).
 *
 * A MappingRequest captures, as plain data, everything the CLI's map
 * commands used to parse ad hoc: the workload (einsum + dims, a conv
 * preset string, or a workload file), the architecture, the mapper
 * choice, the stop policy (deadline / max-evals / plateau / seed), the
 * fusion mode, and the surrogate/warm-start options. One struct serves
 * three callers: the CLI (fills it from argv), `sunstone serve` (parses
 * it from a newline-delimited JSON line), and embedders (construct it
 * directly). Field values are deliberately the same strings the CLI
 * flags take — `conv: "n=1,k=8,..."` is exactly the `--conv` value — so
 * the two front ends cannot drift apart.
 *
 * A MappingResponse carries the outcome: the mapper result (or the
 * whole-network schedule), the winning mapping, session markers
 * (`cached` for fingerprint-deduplicated repeats, `warmSeeds` for
 * warm-started searches), and the per-request delta of the session
 * engine's cache counters — which is how a client observes that its
 * repeat traffic was served warm.
 *
 * Materialization (spec → Workload/ArchSpec/NetGraph) lives here too,
 * shared by every front end. Materializers fatal() on bad specs like
 * the CLI always has; the session wraps them in ScopedFatalCapture when
 * it must survive bad requests (serve mode).
 */

#ifndef SUNSTONE_SERVICE_REQUEST_HH
#define SUNSTONE_SERVICE_REQUEST_HH

#include <cstdint>
#include <optional>
#include <string>

#include "arch/arch_config.hh"
#include "common/json.hh"
#include "core/net_scheduler.hh"
#include "mappers/mapper.hh"
#include "model/diffcheck.hh"
#include "workload/net_graph.hh"
#include "workload/workload.hh"

namespace sunstone {
namespace service {

/** What a request asks the session to do. */
enum class RequestKind
{
    /** Search a single-layer mapping (the CLI's `map`). */
    Map,
    /** Schedule a whole network (`map --net`). */
    Net,
    /** Re-evaluate a saved mapping (`eval`). */
    Eval,
    /** Differential-fuzz the cost model (`check`). */
    Check,
    /** Report session/engine health and metrics (scrape endpoint). */
    Health,
};

/** Stable wire name of a kind ("map", "net", ...). */
const char *requestKindName(RequestKind k);

/** One unit of work for a SchedulerSession. */
struct MappingRequest
{
    /** Client-chosen correlation id, echoed verbatim in the response. */
    std::string id;

    RequestKind kind = RequestKind::Map;

    // -- Workload (Map/Eval; exactly the CLI flag values) --------------
    std::string einsum;        ///< --einsum expression
    std::string dims;          ///< --dims "k=64,c=32,..."
    std::string bits;          ///< --bits "A=8,B=16,..."
    std::string workloadName;  ///< --name (einsum workloads)
    std::string conv;          ///< --conv "n=1,k=64,...[,stride=2]"
    std::string workloadFile;  ///< --workload-file path

    // -- Architecture --------------------------------------------------
    std::string archName = "conventional"; ///< preset name
    std::string archFile;                  ///< --arch-file path

    // -- Search configuration (Map/Net) --------------------------------
    std::string mapper = "sunstone";
    bool optimizeEdp = true;   ///< false = --energy (energy-only)
    int beamWidth = 0;         ///< 0 keeps the mapper default
    std::optional<double> budgetSeconds; ///< timeloop --budget

    std::optional<double> deadlineMs;
    std::optional<std::int64_t> maxEvals;
    std::optional<std::int64_t> plateau;
    std::optional<std::uint64_t> seed;
    std::string stopPolicyFile; ///< --stop-policy path (CLI)

    std::string checkpointPath; ///< --checkpoint path (CLI)
    std::string resumePath;     ///< --resume path (CLI)

    bool surrogate = false;
    std::optional<double> surrogatePrune;

    /**
     * Seed this search from the session's warm-start store (and record
     * the realized best back). Off by default: seeding changes search
     * results, so it must be an explicit opt-in to preserve the
     * bit-identity contract with seed-fixed cold runs.
     */
    bool warmStart = false;

    // -- Network (Net) -------------------------------------------------
    std::string net;  ///< net name ("resnet18", "attention", ...)
    std::optional<std::int64_t> batch;
    std::optional<std::int64_t> seq;
    std::string fuse = "off"; ///< "off" | "greedy"

    // -- Eval ----------------------------------------------------------
    std::string mappingFile; ///< saved mapping to re-evaluate

    // -- Check ---------------------------------------------------------
    std::optional<int> checkTrials;
    std::optional<std::uint64_t> checkSeed;
    bool checkShrink = true;
    std::string checkFault; ///< "" or "top-level-reads"

    /** Renders the request as one JSON object (the wire format). */
    std::string toJson() const;

    /**
     * Parses the wire format produced by toJson() (and hand-written
     * request lines). Unknown fields are rejected so typos fail loudly.
     * @return false with *err set on malformed requests.
     */
    static bool fromJson(const JsonValue &v, MappingRequest &out,
                         std::string *err);
};

/** The outcome of one request. */
struct MappingResponse
{
    std::string id;
    RequestKind kind = RequestKind::Map;

    /** The request was executed (found or not); false = rejected or
     *  failed before any search ran (the error field says why). */
    bool ok = false;
    std::string error;

    /** Served from the session's fingerprint→result cache (the dedup
     *  marker: the repeat cost one re-validation, not a search). */
    bool cached = false;
    /** Warm-start seed mappings injected into the search. */
    int warmSeeds = 0;

    /** Request wall-clock, seconds (queue wait excluded). */
    double seconds = 0;

    /** Delta of the session engine's counters over this request. */
    SearchStats engineDelta;

    // -- Map/Eval payload ----------------------------------------------
    std::string mapper;
    MapperResult result;
    std::string mappingText; ///< serialized winning mapping
    /** Materialized inputs, echoed for artifact writers (save-mapping
     *  needs the BoundArch the search ran under). Present when ok. */
    std::optional<Workload> workload;
    std::optional<ArchSpec> arch;

    // -- Net payload ---------------------------------------------------
    std::optional<NetScheduleResult> net;

    // -- Check payload -------------------------------------------------
    std::optional<DiffcheckReport> check;

    // -- Health payload ------------------------------------------------
    std::string healthJson; ///< pre-rendered session/engine/registry doc

    /**
     * The "result" half of the CLI's --stats-json document: the mapper
     * result for Map, the schedule's toJson() for Net. Byte-identical
     * to what the pre-service CLI emitted.
     */
    std::string resultJson() const;

    /** Renders the full wire response (one NDJSON line's payload). */
    std::string toJson() const;
};

// -- Materialization (shared by CLI and session) -----------------------

/** Builds the workload from the request's spec fields; fatal() on bad
 *  or missing specs, exactly as the CLI always did. */
Workload materializeWorkload(const MappingRequest &req);

/** Builds the architecture (preset or file); fatal() on unknown names. */
ArchSpec materializeArch(const MappingRequest &req);

/** Builds the network graph for a Net request; fatal() on unknown nets. */
NetGraph materializeNetGraph(const MappingRequest &req);

/** Parses the request's fuse field; fatal() on unknown modes. */
FusionMode materializeFusionMode(const MappingRequest &req);

/**
 * Applies the CLI's Simba precision rule: when the architecture is the
 * "simba" preset and the request does not override word widths, the
 * per-tensor Simba precisions are applied to `wl`.
 */
void applyArchPrecisions(const MappingRequest &req, Workload &wl);

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_REQUEST_HH
