#include "service/request.hh"

#include <sstream>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "mapping/serialize.hh"
#include "workload/nets.hh"
#include "workload/zoo.hh"

namespace sunstone {
namespace service {

namespace {

/** Splits "a=1,b=2" into (name, value) pairs; fatal() on junk. This is
 *  the one parser behind --dims/--bits/--conv and their request-field
 *  twins. */
std::vector<std::pair<std::string, std::int64_t>>
parsePairs(const std::string &text)
{
    std::vector<std::pair<std::string, std::int64_t>> out;
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            SUNSTONE_FATAL("expected name=value in '", item, "'");
        std::int64_t v;
        if (!tryParseInt64(item.substr(eq + 1), v))
            SUNSTONE_FATAL("value in '", item,
                           "' is not a valid integer");
        out.emplace_back(item.substr(0, eq), v);
    }
    return out;
}

void
appendStringField(std::string &out, const char *name,
                  const std::string &v, bool &first)
{
    if (v.empty())
        return;
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    out += name;
    out += "\": \"" + jsonEscape(v) + "\"";
}

void
appendIntField(std::string &out, const char *name,
               std::optional<std::int64_t> v, bool &first)
{
    if (!v)
        return;
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    out += name;
    out += "\": " + std::to_string(*v);
}

void
appendDoubleField(std::string &out, const char *name,
                  std::optional<double> v, bool &first)
{
    if (!v)
        return;
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    out += name;
    out += "\": " + jsonDouble(*v);
}

void
appendBoolField(std::string &out, const char *name, bool v, bool &first)
{
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    out += name;
    out += v ? "\": true" : "\": false";
}

} // anonymous namespace

const char *
requestKindName(RequestKind k)
{
    switch (k) {
    case RequestKind::Map:
        return "map";
    case RequestKind::Net:
        return "net";
    case RequestKind::Eval:
        return "eval";
    case RequestKind::Check:
        return "check";
    case RequestKind::Health:
        return "health";
    }
    return "map";
}

std::string
MappingRequest::toJson() const
{
    std::string out = "{";
    bool first = true;
    appendStringField(out, "id", id, first);
    out += first ? "" : ", ";
    first = false;
    out += std::string("\"kind\": \"") + requestKindName(kind) + "\"";

    // Workload spec.
    if (!einsum.empty() || !dims.empty() || !bits.empty() ||
        !conv.empty() || !workloadFile.empty() || !workloadName.empty()) {
        out += ", \"workload\": {";
        bool wf = true;
        appendStringField(out, "einsum", einsum, wf);
        appendStringField(out, "dims", dims, wf);
        appendStringField(out, "bits", bits, wf);
        appendStringField(out, "name", workloadName, wf);
        appendStringField(out, "conv", conv, wf);
        appendStringField(out, "file", workloadFile, wf);
        out += "}";
    }

    if (archName != "conventional")
        out += ", \"arch\": \"" + jsonEscape(archName) + "\"";
    if (!archFile.empty())
        out += ", \"arch_file\": \"" + jsonEscape(archFile) + "\"";

    if (mapper != "sunstone")
        out += ", \"mapper\": \"" + jsonEscape(mapper) + "\"";
    if (!optimizeEdp)
        out += ", \"objective\": \"energy\"";
    if (beamWidth > 0)
        out += ", \"beam\": " + std::to_string(beamWidth);
    {
        bool f = false;
        appendDoubleField(out, "budget_seconds", budgetSeconds, f);
    }

    if (deadlineMs || maxEvals || plateau || seed) {
        out += ", \"stop\": {";
        bool sf = true;
        appendDoubleField(out, "deadline_ms", deadlineMs, sf);
        appendIntField(out, "max_evals", maxEvals, sf);
        appendIntField(out, "plateau", plateau, sf);
        if (seed) {
            out += sf ? "" : ", ";
            sf = false;
            out += "\"seed\": " + std::to_string(*seed);
        }
        out += "}";
    }
    {
        bool f = false;
        appendStringField(out, "stop_policy_file", stopPolicyFile, f);
        appendStringField(out, "checkpoint", checkpointPath, f);
        appendStringField(out, "resume", resumePath, f);
    }

    if (surrogate) {
        out += ", \"surrogate\": {\"enabled\": true";
        if (surrogatePrune)
            out += ", \"prune\": " + jsonDouble(*surrogatePrune);
        out += "}";
    }
    if (warmStart) {
        bool f = false;
        appendBoolField(out, "warm_start", warmStart, f);
    }

    {
        bool f = false;
        appendStringField(out, "net", net, f);
        appendIntField(out, "batch", batch, f);
        appendIntField(out, "seq", seq, f);
    }
    if (fuse != "off")
        out += ", \"fuse\": \"" + jsonEscape(fuse) + "\"";
    {
        bool f = false;
        appendStringField(out, "mapping_file", mappingFile, f);
    }

    if (kind == RequestKind::Check) {
        out += ", \"check\": {";
        bool cf = true;
        if (checkTrials) {
            out += "\"trials\": " + std::to_string(*checkTrials);
            cf = false;
        }
        if (checkSeed) {
            out += cf ? "" : ", ";
            cf = false;
            out += "\"seed\": " + std::to_string(*checkSeed);
        }
        if (!checkShrink) {
            out += cf ? "" : ", ";
            cf = false;
            out += "\"shrink\": false";
        }
        appendStringField(out, "inject_fault", checkFault, cf);
        out += "}";
    }

    out += "}";
    return out;
}

namespace {

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

} // anonymous namespace

bool
MappingRequest::fromJson(const JsonValue &v, MappingRequest &out,
                         std::string *err)
{
    if (!v.isObject())
        return fail(err, "request must be a JSON object");
    out = MappingRequest{};
    for (const auto &[name, field] : v.fields) {
        if (name == "id") {
            out.id = field.asString();
        } else if (name == "kind") {
            const std::string k = field.asString();
            if (k == "map")
                out.kind = RequestKind::Map;
            else if (k == "net")
                out.kind = RequestKind::Net;
            else if (k == "eval")
                out.kind = RequestKind::Eval;
            else if (k == "check")
                out.kind = RequestKind::Check;
            else if (k == "health")
                out.kind = RequestKind::Health;
            else
                return fail(err, "unknown kind '" + k + "'");
        } else if (name == "workload") {
            if (!field.isObject())
                return fail(err, "workload must be an object");
            for (const auto &[wn, wv] : field.fields) {
                if (wn == "einsum")
                    out.einsum = wv.asString();
                else if (wn == "dims")
                    out.dims = wv.asString();
                else if (wn == "bits")
                    out.bits = wv.asString();
                else if (wn == "name")
                    out.workloadName = wv.asString();
                else if (wn == "conv")
                    out.conv = wv.asString();
                else if (wn == "file")
                    out.workloadFile = wv.asString();
                else
                    return fail(err,
                                "unknown workload field '" + wn + "'");
            }
        } else if (name == "arch") {
            out.archName = field.asString();
        } else if (name == "arch_file") {
            out.archFile = field.asString();
        } else if (name == "mapper") {
            out.mapper = field.asString();
        } else if (name == "objective") {
            const std::string o = field.asString();
            if (o == "edp")
                out.optimizeEdp = true;
            else if (o == "energy")
                out.optimizeEdp = false;
            else
                return fail(err, "unknown objective '" + o + "'");
        } else if (name == "beam") {
            const std::int64_t b = field.asInt(-1);
            if (b <= 0)
                return fail(err, "beam must be a positive integer");
            out.beamWidth = static_cast<int>(b);
        } else if (name == "budget_seconds") {
            out.budgetSeconds = field.asDouble();
        } else if (name == "stop") {
            if (!field.isObject())
                return fail(err, "stop must be an object");
            for (const auto &[sn, sv] : field.fields) {
                if (sn == "deadline_ms") {
                    out.deadlineMs = sv.asDouble();
                } else if (sn == "max_evals") {
                    const std::int64_t n = sv.asInt(-1);
                    if (n < 1)
                        return fail(err, "stop.max_evals must be >= 1");
                    out.maxEvals = n;
                } else if (sn == "plateau") {
                    const std::int64_t n = sv.asInt(-1);
                    if (n < 1)
                        return fail(err, "stop.plateau must be >= 1");
                    out.plateau = n;
                } else if (sn == "seed") {
                    const std::int64_t s = sv.asInt(-1);
                    if (s < 0)
                        return fail(err, "stop.seed must be >= 0");
                    out.seed = static_cast<std::uint64_t>(s);
                } else {
                    return fail(err, "unknown stop field '" + sn + "'");
                }
            }
        } else if (name == "stop_policy_file") {
            out.stopPolicyFile = field.asString();
        } else if (name == "checkpoint") {
            out.checkpointPath = field.asString();
        } else if (name == "resume") {
            out.resumePath = field.asString();
        } else if (name == "surrogate") {
            if (!field.isObject())
                return fail(err, "surrogate must be an object");
            for (const auto &[sn, sv] : field.fields) {
                if (sn == "enabled") {
                    out.surrogate = sv.asBool();
                } else if (sn == "prune") {
                    const double f = sv.asDouble(-1);
                    if (f < 0 || f > 0.95)
                        return fail(err,
                                    "surrogate.prune must be in "
                                    "[0, 0.95]");
                    out.surrogatePrune = f;
                } else {
                    return fail(err,
                                "unknown surrogate field '" + sn + "'");
                }
            }
        } else if (name == "warm_start") {
            out.warmStart = field.asBool();
        } else if (name == "net") {
            out.net = field.asString();
        } else if (name == "batch") {
            const std::int64_t b = field.asInt(-1);
            if (b <= 0)
                return fail(err, "batch must be a positive integer");
            out.batch = b;
        } else if (name == "seq") {
            const std::int64_t s = field.asInt(-1);
            if (s <= 0)
                return fail(err, "seq must be a positive integer");
            out.seq = s;
        } else if (name == "fuse") {
            out.fuse = field.asString();
        } else if (name == "mapping_file") {
            out.mappingFile = field.asString();
        } else if (name == "check") {
            if (!field.isObject())
                return fail(err, "check must be an object");
            for (const auto &[cn, cv] : field.fields) {
                if (cn == "trials") {
                    const std::int64_t t = cv.asInt(-1);
                    if (t < 1)
                        return fail(err, "check.trials must be >= 1");
                    out.checkTrials = static_cast<int>(t);
                } else if (cn == "seed") {
                    const std::int64_t s = cv.asInt(-1);
                    if (s < 0)
                        return fail(err, "check.seed must be >= 0");
                    out.checkSeed = static_cast<std::uint64_t>(s);
                } else if (cn == "shrink") {
                    out.checkShrink = cv.asBool(true);
                } else if (cn == "inject_fault") {
                    out.checkFault = cv.asString();
                } else {
                    return fail(err, "unknown check field '" + cn + "'");
                }
            }
        } else {
            return fail(err, "unknown request field '" + name + "'");
        }
    }
    // Infer the kind for requests that name a net but no kind.
    if (out.kind == RequestKind::Map && !out.net.empty())
        out.kind = RequestKind::Net;
    return true;
}

std::string
MappingResponse::resultJson() const
{
    if (kind == RequestKind::Net && net)
        return net->toJson();
    std::ostringstream os;
    os.precision(17);
    os << "{\"mapper\": \"" << mapper << "\", \"found\": "
       << (result.found ? "true" : "false") << ", \"stop_reason\": \""
       << result.stopReason << "\""
       << ", \"seconds\": " << result.seconds
       << ", \"mappings_evaluated\": " << result.mappingsEvaluated;
    if (result.found)
        os << ", \"energy_pj\": " << result.cost.totalEnergyPj
           << ", \"delay_seconds\": " << result.cost.delaySeconds
           << ", \"edp\": " << result.cost.edp
           << ", \"utilization\": " << result.cost.utilization;
    os << "}";
    return os.str();
}

std::string
MappingResponse::toJson() const
{
    std::string out = "{\"id\": \"" + jsonEscape(id) + "\", \"kind\": \"";
    out += requestKindName(kind);
    out += ok ? "\", \"ok\": true" : "\", \"ok\": false";
    if (!ok) {
        out += ", \"error\": \"" + jsonEscape(error) + "\"}";
        return out;
    }
    out += cached ? ", \"cached\": true" : ", \"cached\": false";
    out += ", \"warm_seeds\": " + std::to_string(warmSeeds);
    out += ", \"seconds\": " + jsonDouble(seconds);
    out += ", \"engine_delta\": {\"evaluations\": " +
           std::to_string(engineDelta.evaluations) +
           ", \"cache_hits\": " + std::to_string(engineDelta.cacheHits) +
           ", \"cache_misses\": " +
           std::to_string(engineDelta.cacheMisses) +
           ", \"hit_rate\": " + jsonDouble(engineDelta.hitRate()) + "}";
    switch (kind) {
    case RequestKind::Map:
    case RequestKind::Net:
        out += ", \"result\": " + resultJson();
        if (!mappingText.empty())
            out += ", \"mapping\": \"" + jsonEscape(mappingText) + "\"";
        break;
    case RequestKind::Eval:
        out += ", \"result\": " + resultJson();
        break;
    case RequestKind::Check:
        if (check) {
            out += ", \"trials\": " + std::to_string(check->trialsRun);
            out += check->ok() ? ", \"agree\": true"
                               : ", \"agree\": false";
            if (!check->ok())
                out += ", \"summary\": \"" +
                       jsonEscape(check->first.summary) + "\"";
        }
        break;
    case RequestKind::Health:
        out += ", \"health\": " + healthJson;
        break;
    }
    out += "}";
    return out;
}

Workload
materializeWorkload(const MappingRequest &req)
{
    if (!req.workloadFile.empty())
        return loadWorkloadFile(req.workloadFile);
    if (!req.conv.empty()) {
        ConvShape sh;
        for (auto &[k, v] : parsePairs(req.conv)) {
            if (k == "n")
                sh.n = v;
            else if (k == "k")
                sh.k = v;
            else if (k == "c")
                sh.c = v;
            else if (k == "p")
                sh.p = v;
            else if (k == "q")
                sh.q = v;
            else if (k == "r")
                sh.r = v;
            else if (k == "s")
                sh.s = v;
            else if (k == "stride")
                sh.strideH = sh.strideW = v;
            else
                SUNSTONE_FATAL("unknown conv parameter '", k, "'");
        }
        return makeConv2D(sh);
    }
    if (req.einsum.empty() || req.dims.empty())
        SUNSTONE_FATAL("specify a workload: --einsum + --dims, --conv, "
                       "or --workload-file");
    Workload wl = parseEinsum(req.workloadName.empty() ? "workload"
                                                       : req.workloadName,
                              req.einsum, parsePairs(req.dims));
    if (!req.bits.empty())
        for (auto &[t, b] : parsePairs(req.bits))
            wl.setWordBits(wl.tensorByName(t), static_cast<int>(b));
    return wl;
}

ArchSpec
materializeArch(const MappingRequest &req)
{
    if (!req.archFile.empty())
        return loadArchFile(req.archFile);
    const std::string &name = req.archName;
    if (name == "conventional")
        return makeConventional();
    if (name == "simba")
        return makeSimbaLike();
    if (name == "eyeriss")
        return makeEyerissLike();
    if (name == "diannao")
        return makeDianNaoLike();
    if (name == "toy")
        return makeToyArch();
    SUNSTONE_FATAL("unknown architecture '", name,
                   "' (try conventional, simba, eyeriss, diannao, toy, "
                   "or --arch-file)");
}

NetGraph
materializeNetGraph(const MappingRequest &req)
{
    const std::string &net = req.net;
    const std::int64_t batch = req.batch.value_or(-1);
    auto b = [&](std::int64_t dflt) { return batch > 0 ? batch : dflt; };
    // seq names the sequence length of attention nets; batch is
    // accepted there too for backward compatibility.
    const std::int64_t seq = req.seq ? *req.seq : b(512);
    if (net == "resnet18")
        return NetGraph::fromLayers(resnet18Layers(b(16)));
    if (net == "resnet18-fused")
        return resnet18Graph(b(16));
    if (net == "inception")
        return NetGraph::fromLayers(inceptionV3Layers(b(16)));
    if (net == "inception-wu")
        return NetGraph::fromLayers(inceptionV3WeightUpdateLayers(b(16)));
    if (net == "alexnet")
        return NetGraph::fromLayers(alexnetLayers(b(4)));
    if (net == "vgg16")
        return NetGraph::fromLayers(vgg16Layers(b(4)));
    if (net == "nondnn")
        return NetGraph::fromLayers(nonDnnSuite());
    if (net == "tcl")
        return NetGraph::fromLayers(tclSuite());
    if (net == "attention")
        return attentionGraph(seq);
    if (net == "depthwise")
        return NetGraph::fromLayers(depthwiseSuite(b(4)));
    SUNSTONE_FATAL("unknown net '", net,
                   "' (try resnet18, resnet18-fused, inception, "
                   "inception-wu, alexnet, vgg16, nondnn, tcl, "
                   "attention, depthwise)");
}

FusionMode
materializeFusionMode(const MappingRequest &req)
{
    if (req.fuse == "off")
        return FusionMode::Off;
    if (req.fuse == "greedy")
        return FusionMode::Greedy;
    SUNSTONE_FATAL("--fuse expects 'off' or 'greedy', got '", req.fuse,
                   "'");
}

void
applyArchPrecisions(const MappingRequest &req, Workload &wl)
{
    if (req.archName == "simba" && req.archFile.empty() &&
        req.bits.empty())
        applySimbaPrecisions(wl);
}

} // namespace service
} // namespace sunstone
