#include "service/signals.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/flight_recorder.hh"

namespace sunstone {
namespace service {

namespace {

// The only state the signal handler touches. Both are lock-free
// atomics; fetch_add/store on them is async-signal-safe.
std::atomic<int> gSignalCount{0};
std::atomic<int> gLastSignal{0};

extern "C" void
onTerminationSignal(int sig)
{
    gLastSignal.store(sig, std::memory_order_relaxed);
    const int n =
        gSignalCount.fetch_add(1, std::memory_order_relaxed) + 1;
    // Third signal: the watcher thread (which handles the second-signal
    // flush) is itself stuck. _Exit is async-signal-safe.
    if (n >= 3)
        std::_Exit(128 + sig);
}

std::mutex gMtx;
CancellationSource *gCancel = nullptr;
std::function<void()> gForceFlush;
bool gInstalled = false;

void
watcherLoop()
{
    bool cancelRaised = false;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const int n = gSignalCount.load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        if (!cancelRaised) {
            cancelRaised = true;
            CancellationSource *cancel;
            {
                std::lock_guard<std::mutex> lock(gMtx);
                cancel = gCancel;
            }
            if (cancel)
                cancel->requestCancel();
            obs::flightRecorder().record(
                "signal.cancel", "termination signal; cooperative "
                                 "cancellation raised");
        }
        if (n >= 2) {
            // Second signal: drain is too slow. Flush from this thread
            // (normal context) and exit with the signal status.
            std::function<void()> flush;
            {
                std::lock_guard<std::mutex> lock(gMtx);
                flush = gForceFlush;
            }
            if (flush)
                flush();
            std::_Exit(128 + gLastSignal.load(std::memory_order_relaxed));
        }
    }
}

} // anonymous namespace

SignalBridge &
SignalBridge::instance()
{
    static SignalBridge bridge;
    return bridge;
}

void
SignalBridge::install()
{
    std::lock_guard<std::mutex> lock(gMtx);
    if (gInstalled)
        return;
    gInstalled = true;
    std::signal(SIGINT, onTerminationSignal);
    std::signal(SIGTERM, onTerminationSignal);
    // The watcher lives for the rest of the process; it spends its life
    // asleep unless a signal arrives.
    std::thread(watcherLoop).detach();
}

void
SignalBridge::attach(CancellationSource *cancel)
{
    std::lock_guard<std::mutex> lock(gMtx);
    gCancel = cancel;
}

void
SignalBridge::setForceFlush(std::function<void()> flush)
{
    std::lock_guard<std::mutex> lock(gMtx);
    gForceFlush = std::move(flush);
}

int
SignalBridge::signalCount() const
{
    return gSignalCount.load(std::memory_order_relaxed);
}

} // namespace service
} // namespace sunstone
