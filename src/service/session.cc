#include "service/session.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "arch/presets.hh"
#include "common/logging.hh"
#include "core/net_scheduler.hh"
#include "core/sunstone.hh"
#include "mappers/cosa_mapper.hh"
#include "mappers/dmaze_mapper.hh"
#include "mappers/exhaustive_mapper.hh"
#include "mappers/gamma_mapper.hh"
#include "mappers/interstellar_mapper.hh"
#include "mappers/timeloop_mapper.hh"
#include "mapping/serialize.hh"
#include "obs/metrics.hh"
#include "obs/thread_registry.hh"
#include "search/checkpoint.hh"
#include "search/stop_policy.hh"
#include "service/signals.hh"

namespace sunstone {
namespace service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // anonymous namespace

SchedulerSession::SchedulerSession(SessionOptions opts)
    : opts_(std::move(opts))
{
    threads_ = opts_.threads != 0
                   ? opts_.threads
                   // The CLI's historical default: a small pool so traces
                   // show real parallelism even where
                   // hardware_concurrency() reports 1 (CI containers).
                   : std::clamp(std::thread::hardware_concurrency(), 2u,
                                8u);
    engine_ = std::make_unique<EvalEngine>(
        EvalEngineOptions{.threads = threads_});
    if (!opts_.warmStartPath.empty()) {
        std::string err;
        std::ifstream probe(opts_.warmStartPath);
        if (probe.good() && !warmStore_.load(opts_.warmStartPath, &err))
            SUNSTONE_FATAL("bad --warmstart-store '", opts_.warmStartPath,
                           "': ", err);
    }
    worker_ = std::thread([this] { workerLoop(); });
}

SchedulerSession::~SchedulerSession()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    // Reject whatever the worker never reached.
    for (auto &p : queue_) {
        MappingResponse resp;
        resp.id = p.req.id;
        resp.kind = p.req.kind;
        resp.error = "session shut down";
        p.promise.set_value(std::move(resp));
    }
}

std::future<MappingResponse>
SchedulerSession::submit(MappingRequest req, ArtifactSet *artifacts)
{
    Pending p;
    p.req = std::move(req);
    p.artifacts = artifacts;
    std::future<MappingResponse> fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (stopping_ || queue_.size() >= opts_.queueCapacity) {
            ++counters_.rejected;
            MappingResponse resp;
            resp.id = p.req.id;
            resp.kind = p.req.kind;
            resp.error = stopping_ ? "session shut down"
                                   : "queue full (capacity " +
                                         std::to_string(
                                             opts_.queueCapacity) +
                                         ")";
            p.promise.set_value(std::move(resp));
            return fut;
        }
        queue_.push_back(std::move(p));
    }
    cv_.notify_one();
    return fut;
}

MappingResponse
SchedulerSession::execute(const MappingRequest &req, ArtifactSet *artifacts)
{
    return submit(req, artifacts).get();
}

std::size_t
SchedulerSession::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return queue_.size();
}

SessionCounters
SchedulerSession::counters() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return counters_;
}

void
SchedulerSession::workerLoop()
{
    obs::registerThisThread("session");
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(mtx_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping; the destructor drains the rest
            p = std::move(queue_.front());
            queue_.pop_front();
        }
        p.promise.set_value(executeNow(p.req, p.artifacts));
    }
}

MappingResponse
SchedulerSession::executeNow(const MappingRequest &req,
                             ArtifactSet *artifacts)
{
    const auto t0 = std::chrono::steady_clock::now();
    const SearchStats before = engine_->stats();

    // Result-cache lookup: a bit-identical repeat of a deterministic
    // request is served from the stored response, paying only a
    // re-validation of its winning mapping(s) through the engine — a
    // guaranteed memo hit, so the client's engine_delta shows the dedup.
    const bool canCache = cacheable(req);
    std::string key;
    if (canCache) {
        key = cacheKey(req);
        std::unique_lock<std::mutex> lock(mtx_);
        auto it = resultCache_.find(key);
        if (it != resultCache_.end()) {
            MappingResponse resp = it->second;
            ++counters_.deduped;
            ++counters_.executed;
            lock.unlock();
            revalidate(req, resp);
            resp.id = req.id;
            resp.cached = true;
            resp.engineDelta = engine_->stats().deltaSince(before);
            resp.seconds = secondsSince(t0);
            return resp;
        }
    }

    MappingResponse resp = dispatch(req, artifacts);
    resp.engineDelta = engine_->stats().deltaSince(before);
    resp.seconds = secondsSince(t0);

    std::lock_guard<std::mutex> lock(mtx_);
    ++counters_.executed;
    if (!resp.ok)
        ++counters_.failed;
    counters_.warmSeeded += resp.warmSeeds;
    if (canCache && resp.ok)
        resultCache_.emplace(std::move(key), resp);
    return resp;
}

MappingResponse
SchedulerSession::dispatch(const MappingRequest &req, ArtifactSet *artifacts)
{
    MappingResponse resp;
    resp.id = req.id;
    resp.kind = req.kind;

    auto run = [&] {
        switch (req.kind) {
        case RequestKind::Map:
            runMap(req, artifacts, resp);
            break;
        case RequestKind::Net:
            runNet(req, artifacts, resp);
            break;
        case RequestKind::Eval:
            runEval(req, resp);
            break;
        case RequestKind::Check:
            runCheck(req, resp);
            break;
        case RequestKind::Health:
            runHealth(resp);
            break;
        }
    };

    if (!opts_.captureFatals) {
        run();
        return resp;
    }
    // Serve mode: a bad request must produce an error response, not kill
    // the session. The capture is thread-local, so only fatals raised on
    // this worker thread (materialization, validation) convert; the CLI
    // path never engages it and keeps its historical exit behavior.
    ScopedFatalCapture capture;
    try {
        run();
    } catch (const FatalError &e) {
        resp.ok = false;
        resp.error = e.what();
    } catch (const std::exception &e) {
        resp.ok = false;
        resp.error = std::string("internal error: ") + e.what();
    }
    return resp;
}

SearchContext
SchedulerSession::makeContext(const MappingRequest &req,
                              obs::ConvergenceRecorder *convergence)
{
    StopPolicy p;
    std::optional<std::uint64_t> seed;
    // The stop-policy file carries the lowest precedence; explicit
    // request fields override it (same layering as the CLI flags).
    if (!req.stopPolicyFile.empty()) {
        std::string err;
        if (!loadStopPolicyFile(req.stopPolicyFile, p, &seed, &err))
            SUNSTONE_FATAL("bad --stop-policy '", req.stopPolicyFile,
                           "': ", err);
    }
    if (req.deadlineMs)
        p.deadlineSeconds = *req.deadlineMs / 1000.0;
    if (req.maxEvals)
        p.maxEvals = *req.maxEvals;
    if (req.plateau)
        p.plateau = *req.plateau;
    if (req.seed)
        seed = req.seed;
    p.cancel = cancel_.flag();

    SearchContext sc(engine_.get(), p, convergence);
    if (seed)
        sc.setSeed(*seed);

    SurrogateOptions so;
    so.enabled = req.surrogate;
    if (req.surrogatePrune)
        so.pruneFraction = *req.surrogatePrune;
    sc.setSurrogate(so);

    if (!req.checkpointPath.empty())
        sc.setCheckpointPath(req.checkpointPath);
    if (!req.resumePath.empty()) {
        SearchCheckpoint ck;
        std::string err;
        if (!SearchCheckpoint::load(req.resumePath, ck, &err))
            SUNSTONE_FATAL("cannot resume from '", req.resumePath,
                           "': ", err);
        sc.setResume(std::move(ck));
    }
    return sc;
}

void
SchedulerSession::runMap(const MappingRequest &req, ArtifactSet *artifacts,
                         MappingResponse &resp)
{
    Workload wl = materializeWorkload(req);
    ArchSpec arch = materializeArch(req);
    applyArchPrecisions(req, wl);
    BoundArch ba(arch, wl);

    SearchContext sc =
        makeContext(req, artifacts ? artifacts->convergence() : nullptr);

    // Warm starting is an explicit opt-in: seeding changes search
    // results, and the default must stay bit-identical to a cold run.
    if (req.warmStart) {
        std::vector<Mapping> seeds = warmStore_.query(ba);
        resp.warmSeeds = static_cast<int>(seeds.size());
        sc.setWarmStarts(std::move(seeds));
    }

    if (artifacts) {
        SignalBridge::instance().setForceFlush(
            [artifacts] { artifacts->flushBestEffort(); });
        artifacts->start();
    }

    MapperResult mr;
    const bool edp = req.optimizeEdp;
    if (req.mapper == "sunstone") {
        SunstoneOptions opts;
        opts.optimizeEdp = edp;
        if (req.beamWidth > 0)
            opts.beamWidth = req.beamWidth;
        opts.threads = threads_;
        SunstoneResult r = sunstoneOptimize(sc, ba, opts);
        mr.found = r.found;
        mr.mapping = r.mapping;
        mr.cost = r.cost;
        mr.seconds = r.seconds;
        mr.mappingsEvaluated = r.candidatesExamined;
        mr.stopReason = r.stopReason;
        if (!r.found) {
            mr.invalid = true;
            mr.invalidReason = "search produced no valid mapping";
        }
    } else if (req.mapper == "timeloop") {
        TimeloopOptions opts = TimeloopOptions::slow();
        opts.optimizeEdp = edp;
        opts.threads = threads_;
        if (req.budgetSeconds)
            opts.maxSeconds = *req.budgetSeconds;
        mr = TimeloopMapper(opts).optimize(sc, ba);
    } else if (req.mapper == "dmaze") {
        mr = DMazeMapper(DMazeOptions::slow()).optimize(sc, ba);
    } else if (req.mapper == "inter") {
        mr = InterstellarMapper(InterstellarOptions{}).optimize(sc, ba);
    } else if (req.mapper == "cosa") {
        mr = CosaMapper(CosaOptions{}).optimize(sc, ba);
    } else if (req.mapper == "gamma") {
        GammaOptions opts;
        opts.optimizeEdp = edp;
        mr = GammaMapper(opts).optimize(sc, ba);
    } else if (req.mapper == "exhaustive") {
        ExhaustiveOptions opts;
        opts.optimizeEdp = edp;
        mr = ExhaustiveMapper(opts).optimize(sc, ba);
    } else {
        if (artifacts)
            artifacts->stop();
        SignalBridge::instance().setForceFlush(nullptr);
        SUNSTONE_FATAL("unknown mapper '", req.mapper, "'");
    }

    if (artifacts)
        artifacts->stop();
    SignalBridge::instance().setForceFlush(nullptr);

    resp.ok = true;
    resp.mapper = req.mapper;
    resp.result = mr;
    resp.workload = wl;
    resp.arch = arch;
    if (mr.found) {
        resp.mappingText = mr.mapping.toString(ba);
        // Every realized best feeds the session store (that is what
        // keeps later warm_start requests warm); only a configured
        // path persists it.
        if (warmStore_.record(ba, wl.name(), mr.cost.edp, mr.mapping) &&
            !opts_.warmStartPath.empty()) {
            if (!warmStore_.save(opts_.warmStartPath))
                SUNSTONE_FATAL("cannot write '", opts_.warmStartPath,
                               "'");
        }
    }
}

void
SchedulerSession::runNet(const MappingRequest &req, ArtifactSet *artifacts,
                         MappingResponse &resp)
{
    ArchSpec arch = materializeArch(req);
    NetGraph graph = materializeNetGraph(req);
    if (req.archName == "simba" && req.archFile.empty() &&
        req.bits.empty())
        for (int i = 0; i < graph.numNodes(); ++i)
            applySimbaPrecisions(graph.node(i).workload);

    NetSchedulerOptions opts;
    opts.fusion = materializeFusionMode(req);
    opts.warmstartStore = req.warmStart ? opts_.warmStartPath : "";
    opts.sunstone.optimizeEdp = req.optimizeEdp;
    if (req.beamWidth > 0)
        opts.sunstone.beamWidth = req.beamWidth;
    opts.sunstone.threads = threads_;
    opts.engine = engine_.get();

    SearchContext sc =
        makeContext(req, artifacts ? artifacts->convergence() : nullptr);

    if (artifacts) {
        SignalBridge::instance().setForceFlush(
            [artifacts] { artifacts->flushBestEffort(); });
        artifacts->start();
    }
    NetScheduleResult r = scheduleNet(sc, arch, graph, opts);
    if (artifacts)
        artifacts->stop();
    SignalBridge::instance().setForceFlush(nullptr);

    resp.ok = true;
    resp.arch = arch;
    resp.net = std::move(r);
}

void
SchedulerSession::runEval(const MappingRequest &req, MappingResponse &resp)
{
    Workload wl = materializeWorkload(req);
    ArchSpec arch = materializeArch(req);
    BoundArch ba(arch, wl);
    if (req.mappingFile.empty())
        SUNSTONE_FATAL("eval needs --mapping <file>");
    Mapping m = loadMappingFile(req.mappingFile, ba);
    const CostResult cost = engine_->evaluate(ba, m);

    resp.ok = true;
    resp.mapper = "eval";
    resp.result.found = cost.valid;
    resp.result.mapping = m;
    resp.result.cost = cost;
    if (!cost.valid) {
        resp.result.invalid = true;
        resp.result.invalidReason = cost.invalidReason;
    }
    resp.mappingText = m.toString(ba);
    resp.workload = wl;
    resp.arch = arch;
}

void
SchedulerSession::runCheck(const MappingRequest &req, MappingResponse &resp)
{
    DiffcheckOptions opts;
    if (req.checkTrials)
        opts.trials = *req.checkTrials;
    if (req.checkSeed)
        opts.seed = *req.checkSeed;
    opts.shrink = req.checkShrink;
    if (req.checkFault == "top-level-reads")
        opts.fault = DiffcheckOptions::Fault::TopLevelReads;
    else if (!req.checkFault.empty())
        SUNSTONE_FATAL("unknown fault '", req.checkFault,
                       "' (known: top-level-reads)");
    if (opts_.logSink)
        opts.log = opts_.logSink;

    resp.check = runDiffcheck(opts);
    resp.ok = true;
}

void
SchedulerSession::runHealth(MappingResponse &resp)
{
    resp.ok = true;
    resp.healthJson = healthJson();
}

std::string
SchedulerSession::healthJson() const
{
    SessionCounters c;
    std::size_t depth, cached;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        c = counters_;
        depth = queue_.size();
        cached = resultCache_.size();
    }
    std::string out = "{\"session\": {";
    out += "\"executed\": " + std::to_string(c.executed);
    out += ", \"failed\": " + std::to_string(c.failed);
    out += ", \"deduped\": " + std::to_string(c.deduped);
    out += ", \"rejected\": " + std::to_string(c.rejected);
    out += ", \"warm_seeded\": " + std::to_string(c.warmSeeded);
    out += ", \"queue_depth\": " + std::to_string(depth);
    out += ", \"queue_capacity\": " +
           std::to_string(opts_.queueCapacity);
    out += ", \"result_cache_entries\": " + std::to_string(cached);
    out += ", \"warmstart_entries\": " +
           std::to_string(warmStore_.size());
    out += ", \"threads\": " + std::to_string(threads_);
    out += "}, \"engine\": " + engine_->stats().toJson();
    out += ", \"registry\": " + obs::metrics().toJson();
    out += "}";
    return out;
}

bool
SchedulerSession::cacheable(const MappingRequest &req)
{
    // Only deterministic, side-effect-free searches may be deduplicated:
    // wall-clock bounds (deadline, budget), resumable/checkpointed runs,
    // external stop-policy files (their contents can change between
    // requests), and warm-started searches (session-state-dependent)
    // always re-execute.
    if (req.kind != RequestKind::Map && req.kind != RequestKind::Net)
        return false;
    return !req.deadlineMs && !req.budgetSeconds &&
           req.stopPolicyFile.empty() && req.checkpointPath.empty() &&
           req.resumePath.empty() && !req.warmStart;
}

std::string
SchedulerSession::cacheKey(const MappingRequest &req)
{
    MappingRequest canonical = req;
    canonical.id.clear();
    return canonical.toJson();
}

void
SchedulerSession::revalidate(const MappingRequest &req,
                             const MappingResponse &resp)
{
    if (req.kind == RequestKind::Map) {
        if (!resp.result.found)
            return;
        Workload wl = materializeWorkload(req);
        ArchSpec arch = materializeArch(req);
        applyArchPrecisions(req, wl);
        BoundArch ba(arch, wl);
        engine_->evaluate(ba, resp.result.mapping);
        return;
    }
    if (!resp.net)
        return;
    ArchSpec arch = materializeArch(req);
    NetGraph graph = materializeNetGraph(req);
    if (req.archName == "simba" && req.archFile.empty() &&
        req.bits.empty())
        for (int i = 0; i < graph.numNodes(); ++i)
            applySimbaPrecisions(graph.node(i).workload);
    // result.layers is in graph-node order. Fused layers searched under
    // a residency-modified BoundArch are skipped — their mappings were
    // never cached under the plain binding.
    const int n = std::min<int>(graph.numNodes(),
                                static_cast<int>(resp.net->layers.size()));
    for (int i = 0; i < n; ++i) {
        const LayerSchedule &l = resp.net->layers[i];
        if (!l.found || l.fused)
            continue;
        BoundArch ba(arch, graph.node(i).workload);
        engine_->evaluate(ba, l.mapping);
    }
}

} // namespace service
} // namespace sunstone
