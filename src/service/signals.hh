/**
 * @file
 * Async-signal-safe SIGINT/SIGTERM bridge (DESIGN.md §16).
 *
 * The old CLI handler invoked a `std::function` flush callback directly
 * from signal context — allocation and lock acquisition in a signal
 * handler, the classic async-signal-safety bug. The bridge replaces it:
 * the handler only touches lock-free atomics (fetch_add on an
 * std::atomic<int> is async-signal-safe when lock-free, which it is on
 * every supported target), and a dedicated watcher thread polls those
 * flags from normal context, where allocating and locking are legal.
 *
 * Escalation ladder (exit codes preserved from the old CLI):
 *  1st signal  - watcher raises the attached CancellationSource; the
 *                searches drain cooperatively and the normal exit path
 *                writes every artifact.
 *  2nd signal  - the run is stuck or draining too slowly: the watcher
 *                runs the registered best-effort flush (from its own
 *                thread, not signal context) and _Exit(128 + sig).
 *  3rd signal  - last resort if the watcher itself is wedged (e.g. the
 *                flush deadlocked): the handler _Exit(128 + sig)s
 *                directly, which is async-signal-safe.
 */

#ifndef SUNSTONE_SERVICE_SIGNALS_HH
#define SUNSTONE_SERVICE_SIGNALS_HH

#include <functional>

#include "service/cancellation.hh"

namespace sunstone {
namespace service {

/** Process-wide signal bridge; one instance, installed on demand. */
class SignalBridge
{
  public:
    static SignalBridge &instance();

    /**
     * Installs the SIGINT/SIGTERM handlers and starts the watcher
     * thread. Idempotent; cheap after the first call.
     */
    void install();

    /**
     * Attaches the cancellation source the first signal raises (null
     * detaches). The caller keeps ownership; detach before destroying
     * the source.
     */
    void attach(CancellationSource *cancel);

    /**
     * Registers the best-effort flush the watcher runs on the second
     * signal, right before _Exit (null clears). Runs on the watcher
     * thread — normal context, allocation and locks are fine.
     */
    void setForceFlush(std::function<void()> flush);

    /** Termination signals received so far (0 in an uninterrupted run). */
    int signalCount() const;

  private:
    SignalBridge() = default;
};

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_SIGNALS_HH
