/**
 * @file
 * Run-artifact sinks shared by the CLI's map modes, `sunstone serve`,
 * and the SchedulerSession (DESIGN.md §16). One ArtifactSet bundles
 * everything a run can leave behind — the stats/trace/metrics/
 * convergence documents, the live snapshot/progress threads, and the
 * crash-diagnostics directory — behind three entry points:
 *
 *  - writeFinal()       the normal exit path (fatal()s on I/O errors,
 *                       prints "wrote ..." like the CLI always has);
 *  - flushBestEffort()  the forced-exit path (second termination
 *                       signal, crash handlers): flush what we can,
 *                       never fatal, never print;
 *  - writeStats()       the --stats-json document.
 *
 * flushBestEffort() is the single shared implementation of what used to
 * be two near-identical `g_signalFlush` lambdas in cmdMap/cmdMapNet; it
 * is what the session registers with the SignalBridge while a request
 * is running.
 */

#ifndef SUNSTONE_SERVICE_ARTIFACTS_HH
#define SUNSTONE_SERVICE_ARTIFACTS_HH

#include <memory>
#include <string>

#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/progress.hh"
#include "obs/snapshot.hh"

namespace sunstone {
namespace service {

/** Which artifacts a run wants, and where. Empty paths disable. */
struct ArtifactOptions
{
    std::string statsJsonPath;   ///< --stats-json
    std::string tracePath;       ///< --trace-json
    std::string metricsPath;     ///< --metrics-json
    std::string convergencePath; ///< --convergence-json
    std::string snapshotPath;    ///< --snapshot-json
    int snapshotIntervalMs = 1000;
    bool progress = false;       ///< --progress
    std::string diagDir;         ///< --diag-dir
};

/** The sinks of one run (a CLI command or a serve session). */
class ArtifactSet
{
  public:
    /**
     * Prepares the sinks: enables the tracer when a trace is requested,
     * builds the snapshot writer and progress reporter, and configures
     * the crash-diagnostics directory and handlers. `engine` is the
     * engine whose stats the snapshot/diag documents embed; it must
     * outlive the set.
     */
    ArtifactSet(const ArtifactOptions &opts, EvalEngine &engine);
    ~ArtifactSet();

    ArtifactSet(const ArtifactSet &) = delete;
    ArtifactSet &operator=(const ArtifactSet &) = delete;

    /** The convergence recorder, or nullptr when no sink wants it. */
    obs::ConvergenceRecorder *convergence();

    /** Starts the live threads (snapshot, progress); call pre-search. */
    void start();

    /**
     * Stops the live threads, writes the cooperative-cancellation diag
     * bundle when a termination signal was seen, and detaches the
     * global diag providers. Idempotent; the destructor calls it.
     */
    void stop();

    /** Writes the --stats-json document ("{"result": ..., "engine":
     *  ...}" is the caller's to compose). No-op without a path. */
    void writeStats(const std::string &doc);

    /** Normal-exit rendering of trace/metrics/convergence. */
    void writeFinal();

    /**
     * The shared forced-exit flush: one snapshot record, best-effort
     * trace/metrics/convergence, and a diag bundle. Safe to call from
     * any thread in normal (non-signal) context.
     */
    void flushBestEffort();

    /** Whether any live sink (snapshot/progress/diag) is configured. */
    bool hasLiveTelemetry() const;

  private:
    void flushSinks(bool best_effort);

    ArtifactOptions opts_;
    EvalEngine &engine_;
    obs::ConvergenceRecorder recorder_;
    std::unique_ptr<obs::SnapshotWriter> snapshot_;
    std::unique_ptr<obs::ProgressReporter> progress_;
    bool diag_ = false;
    bool stopped_ = false;
};

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_ARTIFACTS_HH
