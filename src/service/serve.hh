/**
 * @file
 * `sunstone serve`: the long-lived front end that proves the service
 * core (DESIGN.md §16). Speaks newline-delimited JSON over
 * stdin/stdout — one MappingRequest object per input line, one
 * MappingResponse object per output line, in order. A `{"kind":
 * "health"}` request is the metrics/health scrape.
 *
 * Lifecycle: requests are served until stdin reaches EOF or a
 * SIGINT/SIGTERM arrives. The first signal cancels the in-flight
 * search cooperatively (its response is still written, stop reason
 * "cancelled") and begins a clean shutdown; stdin is read through
 * poll() so a signal also interrupts an idle server blocked on input.
 * On shutdown the final health document is written to --metrics-json
 * when configured, and the exit status is 0 — a signalled shutdown is
 * the normal way to stop a server, not an error.
 *
 * Malformed input lines produce an ok=false error response and the
 * server keeps going; SUNSTONE_FATAL raised by a bad request is
 * captured per request (ScopedFatalCapture) instead of exiting.
 */

#ifndef SUNSTONE_SERVICE_SERVE_HH
#define SUNSTONE_SERVICE_SERVE_HH

#include <string>

#include "service/session.hh"

namespace sunstone {
namespace service {

/** `sunstone serve` configuration. */
struct ServeOptions
{
    /** Session knobs (threads, warm-start store, queue capacity). */
    SessionOptions session;

    /** Final health/metrics document written on shutdown; empty skips. */
    std::string metricsPath;

    /** Input fd (the tests point this at a pipe). */
    int inputFd = 0;
};

/** Runs the serve loop to completion. @return the process exit code. */
int runServe(ServeOptions opts);

} // namespace service
} // namespace sunstone

#endif // SUNSTONE_SERVICE_SERVE_HH
