#include "service/artifacts.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/signals.hh"

namespace sunstone {
namespace service {

ArtifactSet::ArtifactSet(const ArtifactOptions &opts, EvalEngine &engine)
    : opts_(opts), engine_(engine)
{
    if (!opts_.tracePath.empty())
        obs::tracer().setEnabled(true);
    if (!opts_.snapshotPath.empty()) {
        snapshot_ = std::make_unique<obs::SnapshotWriter>(
            opts_.snapshotPath, opts_.snapshotIntervalMs);
        snapshot_->setExtraProvider([this] {
            return "{\"engine\": " + engine_.stats().toJson() + "}";
        });
    }
    if (opts_.progress)
        progress_ = std::make_unique<obs::ProgressReporter>();
    if (!opts_.diagDir.empty()) {
        diag_ = true;
        obs::setDiagDir(opts_.diagDir);
        obs::setDiagExtraProvider([this] {
            return "{\"engine\": " + engine_.stats().toJson() + "}";
        });
        obs::installCrashHandlers();
    }
}

ArtifactSet::~ArtifactSet() { stop(); }

obs::ConvergenceRecorder *
ArtifactSet::convergence()
{
    return opts_.convergencePath.empty() ? nullptr : &recorder_;
}

void
ArtifactSet::start()
{
    if (snapshot_ && !snapshot_->start())
        SUNSTONE_FATAL("cannot write '", snapshot_->path(), "'");
    if (progress_)
        progress_->start();
}

void
ArtifactSet::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    if (progress_)
        progress_->stop();
    if (snapshot_)
        snapshot_->stop();
    if (diag_) {
        if (SignalBridge::instance().signalCount() > 0)
            obs::writeDiagBundle("termination signal (cooperative)");
        obs::setDiagExtraProvider(nullptr);
        diag_ = false;
    }
}

void
ArtifactSet::writeStats(const std::string &doc)
{
    if (opts_.statsJsonPath.empty())
        return;
    std::ofstream os(opts_.statsJsonPath);
    if (!os)
        SUNSTONE_FATAL("cannot write '", opts_.statsJsonPath, "'");
    os << doc << "\n";
    std::printf("wrote %s\n", opts_.statsJsonPath.c_str());
}

void
ArtifactSet::writeFinal()
{
    flushSinks(/*best_effort=*/false);
}

void
ArtifactSet::flushBestEffort()
{
    if (snapshot_)
        snapshot_->writeNow();
    flushSinks(/*best_effort=*/true);
    obs::writeDiagBundle("forced exit: repeated termination signal");
}

bool
ArtifactSet::hasLiveTelemetry() const
{
    return snapshot_ || progress_ || !opts_.diagDir.empty();
}

void
ArtifactSet::flushSinks(bool best_effort)
{
    if (!opts_.tracePath.empty()) {
        obs::tracer().setEnabled(false);
        const bool ok = obs::tracer().writeChromeJson(opts_.tracePath);
        if (!ok && !best_effort)
            SUNSTONE_FATAL("cannot write '", opts_.tracePath, "'");
        if (!best_effort)
            std::printf("wrote %s\n", opts_.tracePath.c_str());
    }
    if (!opts_.metricsPath.empty()) {
        const std::string doc =
            "{\"engine\": " + engine_.stats().toJson() +
            ", \"registry\": " + obs::metrics().toJson() + "}";
        std::ofstream os(opts_.metricsPath);
        if (!os && !best_effort)
            SUNSTONE_FATAL("cannot write '", opts_.metricsPath, "'");
        os << doc << "\n";
        if (!best_effort)
            std::printf("wrote %s\n", opts_.metricsPath.c_str());
    }
    if (!opts_.convergencePath.empty()) {
        const bool ok = recorder_.writeJson(opts_.convergencePath);
        if (!ok && !best_effort)
            SUNSTONE_FATAL("cannot write '", opts_.convergencePath, "'");
        if (!best_effort)
            std::printf("wrote %s\n", opts_.convergencePath.c_str());
    }
}

} // namespace service
} // namespace sunstone
