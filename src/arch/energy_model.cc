#include "arch/energy_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace sunstone {
namespace energy {

double
sramReadPjPerBit(std::int64_t capacity_bits)
{
    SUNSTONE_ASSERT(capacity_bits > 0, "SRAM capacity must be positive");
    // Fixed decode/sense floor plus sqrt-capacity bitline/wordline term.
    // Yields (per 16-bit word): 64 B register file ~0.15 pJ, 512 B scratch
    // ~0.38 pJ, 32 KB ~2.2 pJ, 512 KB ~8.3 pJ, 3 MB ~20 pJ.
    return 0.008 + 0.00025 * std::sqrt(static_cast<double>(capacity_bits));
}

double
sramWritePjPerBit(std::int64_t capacity_bits)
{
    return 1.1 * sramReadPjPerBit(capacity_bits);
}

double
dramPjPerBit()
{
    // 200 pJ per 16-bit word: the canonical ~200x-a-MAC DRAM cost.
    return 12.5;
}

double
macPj(int operand_bits)
{
    SUNSTONE_ASSERT(operand_bits > 0, "MAC width must be positive");
    // Multiplier energy grows ~quadratically with operand width:
    // 0.1 pJ at 8 bits, 0.41 pJ at 16 bits (45 nm flavored).
    return 0.0016 * operand_bits * operand_bits;
}

double
nocHopPjPerBit()
{
    return 0.003;
}

double
tagCheckPjPerWord()
{
    return 0.001;
}

} // namespace energy
} // namespace sunstone
