/**
 * @file
 * The evaluated accelerator configurations of Table IV plus the
 * DianNao-like machine of Section V-D, expressed as ArchSpecs.
 */

#ifndef SUNSTONE_ARCH_PRESETS_HH
#define SUNSTONE_ARCH_PRESETS_HH

#include "arch/arch.hh"

namespace sunstone {

/**
 * Conventional accelerator (Table IV, right column): 32x32 grid of PEs,
 * one 16-bit MAC each, 512 B unified L1 per PE, 3.1 MB unified L2, DRAM.
 * Two spatial levels in the sense of Fig. 1a (PE grid only).
 */
ArchSpec makeConventional();

/**
 * Simba-like accelerator (Table IV, left column): 4x4 PEs; each PE has
 * 8 lanes of 8-wide 8-bit vector MACs with per-lane weight registers;
 * per-PE weight (32 KB) / ifmap (8 KB) / ofmap (3 KB) buffers; a shared
 * 512 KB L2 holding ifmap+ofmap only (weights bypass it); DRAM.
 * Three spatial levels: vector width, lanes per PE, PE grid.
 */
ArchSpec makeSimbaLike();

/**
 * DianNao-like accelerator (Section V-D): 16x16 multiplier NFU, NBin /
 * NBout / SB scratchpads, DRAM. Used by the overhead study and by the
 * Fig. 9 energy-breakdown bench.
 */
ArchSpec makeDianNaoLike();

/**
 * Eyeriss-like accelerator used in the Table VI optimization-order study:
 * a 14x12 PE grid with per-PE scratchpads and a 108 KB global buffer.
 */
ArchSpec makeEyerissLike();

/** Tiny two-level machine for unit tests and the quickstart example. */
ArchSpec makeToyArch(std::int64_t l1_words = 8, int pes = 4);

/**
 * Applies Table IV per-datatype precisions to a workload bound to the
 * Simba-like architecture (weights/ifmap 8-bit, ofmap 24-bit).
 */
void applySimbaPrecisions(Workload &wl);

} // namespace sunstone

#endif // SUNSTONE_ARCH_PRESETS_HH
