/**
 * @file
 * Closed-form 45 nm energy model standing in for the paper's
 * Accelergy + Cacti + Aladdin toolchain (see DESIGN.md, "Substitutions").
 *
 * The constants are fitted so that the canonical Eyeriss-style relative
 * access costs hold: register file accesses are ~1x a MAC, a multi-KB
 * scratchpad ~6x, a multi-hundred-KB SRAM ~50x, and DRAM ~200x a 16-bit
 * MAC. Since every mapper in this repository is evaluated with the same
 * model (as in the paper, where all tools share Timeloop's cost model),
 * relative EDP ordering is what matters.
 */

#ifndef SUNSTONE_ARCH_ENERGY_MODEL_HH
#define SUNSTONE_ARCH_ENERGY_MODEL_HH

#include <cstdint>

namespace sunstone {
namespace energy {

/**
 * SRAM read energy per bit (pJ) as a function of macro capacity, using a
 * Cacti-like sqrt(capacity) wordline/bitline scaling term plus a fixed
 * sense/decode floor.
 */
double sramReadPjPerBit(std::int64_t capacity_bits);

/** SRAM write energy per bit (pJ); ~10% above read. */
double sramWritePjPerBit(std::int64_t capacity_bits);

/** Off-chip DRAM access energy per bit (pJ); 200 pJ per 16-bit word. */
double dramPjPerBit();

/** MAC energy (pJ) for the given operand width; ~quadratic in width. */
double macPj(int operand_bits);

/** Per-bit, per-hop on-chip wire energy (pJ). */
double nocHopPjPerBit();

/**
 * Eyeriss-style destination-tag check energy per delivered word (pJ):
 * every potential receiver compares the X/Y tag (Section V-A).
 */
double tagCheckPjPerWord();

} // namespace energy
} // namespace sunstone

#endif // SUNSTONE_ARCH_ENERGY_MODEL_HH
