#include "arch/arch_config.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace sunstone {

std::string
archToText(const ArchSpec &arch)
{
    std::ostringstream os;
    os << "arch " << arch.name << "\n";
    os << "mac_bits " << arch.macBits << "\n";
    os << "clock_ghz " << arch.clockGhz << "\n";
    for (const auto &l : arch.levels) {
        os << "level " << l.name << "\n";
        if (l.isDram) {
            os << "  dram\n";
        } else if (!l.partitions.empty()) {
            for (const auto &p : l.partitions)
                os << "  partition " << p.name << " " << p.capacityBits
                   << "\n";
        } else {
            os << "  capacity " << l.capacityBits << "\n";
        }
        if (!l.bypass.empty()) {
            os << "  bypass";
            for (const auto &b : l.bypass)
                os << " " << b;
            os << "\n";
        }
        if (l.fanout != 1)
            os << "  fanout " << l.fanout << "\n";
        if (l.readBwWordsPerCycle < 1e17)
            os << "  bw_read " << l.readBwWordsPerCycle << "\n";
        if (l.writeBwWordsPerCycle < 1e17)
            os << "  bw_write " << l.writeBwWordsPerCycle << "\n";
        if (!l.multicast)
            os << "  no_multicast\n";
        if (l.doubleBuffered)
            os << "  double_buffered\n";
        if (l.meshX > 0)
            os << "  mesh " << l.meshX << " " << l.meshY << "\n";
    }
    return os.str();
}

ArchSpec
archFromText(const std::string &text)
{
    ArchSpec arch;
    LevelSpec *cur = nullptr;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;

    auto fail = [&](const std::string &msg) {
        SUNSTONE_FATAL("arch config line ", lineno, ": ", msg);
    };

    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;

        if (key == "arch") {
            ls >> arch.name;
        } else if (key == "mac_bits") {
            if (!(ls >> arch.macBits))
                fail("expected integer after mac_bits");
        } else if (key == "clock_ghz") {
            if (!(ls >> arch.clockGhz))
                fail("expected number after clock_ghz");
        } else if (key == "level") {
            LevelSpec l;
            if (!(ls >> l.name))
                fail("level needs a name");
            arch.levels.push_back(l);
            cur = &arch.levels.back();
        } else if (!cur) {
            fail("directive '" + key + "' before any level");
        } else if (key == "dram") {
            cur->isDram = true;
        } else if (key == "capacity") {
            if (!(ls >> cur->capacityBits))
                fail("expected bits after capacity");
        } else if (key == "partition") {
            PartitionSpec p;
            if (!(ls >> p.name >> p.capacityBits))
                fail("partition needs a name and bits");
            cur->partitions.push_back(p);
        } else if (key == "bypass") {
            std::string b;
            while (ls >> b)
                cur->bypass.push_back(b);
        } else if (key == "fanout") {
            if (!(ls >> cur->fanout))
                fail("expected integer after fanout");
        } else if (key == "bw_read") {
            if (!(ls >> cur->readBwWordsPerCycle))
                fail("expected number after bw_read");
        } else if (key == "bw_write") {
            if (!(ls >> cur->writeBwWordsPerCycle))
                fail("expected number after bw_write");
        } else if (key == "no_multicast") {
            cur->multicast = false;
        } else if (key == "double_buffered") {
            cur->doubleBuffered = true;
        } else if (key == "mesh") {
            if (!(ls >> cur->meshX >> cur->meshY))
                fail("mesh needs X and Y");
        } else {
            fail("unknown directive '" + key + "'");
        }
    }
    arch.validate();
    return arch;
}

ArchSpec
loadArchFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot open architecture file '", path, "'");
    std::ostringstream os;
    os << f.rdbuf();
    return archFromText(os.str());
}

void
saveArchFile(const ArchSpec &arch, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot write architecture file '", path, "'");
    f << archToText(arch);
    if (!f)
        SUNSTONE_FATAL("error writing architecture file '", path, "'");
}

} // namespace sunstone
