#include "arch/arch.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#include "arch/energy_model.hh"
#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

std::int64_t
ArchSpec::totalFanout() const
{
    std::int64_t f = 1;
    for (const auto &l : levels)
        f = satMul(f, l.fanout);
    return f;
}

void
ArchSpec::validate() const
{
    if (levels.empty())
        SUNSTONE_FATAL("architecture '", name, "' has no levels");
    if (!levels.back().isDram)
        SUNSTONE_FATAL("architecture '", name,
                       "' must end with a DRAM level");
    for (std::size_t i = 0; i + 1 < levels.size(); ++i)
        if (levels[i].isDram)
            SUNSTONE_FATAL("architecture '", name,
                           "' has a non-outermost DRAM level");
    for (const auto &l : levels) {
        if (l.fanout < 1)
            SUNSTONE_FATAL("level '", l.name, "' has fanout < 1");
        if ((l.meshX > 0) != (l.meshY > 0))
            SUNSTONE_FATAL("level '", l.name,
                           "' must set both mesh sides or neither");
        if (l.meshX > 0 &&
            static_cast<std::int64_t>(l.meshX) * l.meshY != l.fanout)
            SUNSTONE_FATAL("level '", l.name, "' mesh ", l.meshX, "x",
                           l.meshY, " != fanout ", l.fanout);
        if (!l.isDram && l.capacityBits <= 0 && l.partitions.empty())
            SUNSTONE_FATAL("level '", l.name, "' has no capacity");
    }
}

BoundArch::BoundArch(
    ArchSpec arch, Workload wl,
    const std::map<std::string, std::string> &tensor_to_partition)
    : arch_(std::move(arch)), wl_(std::move(wl))
{
    // uid 0 is reserved as "no binding yet" by scratch arenas.
    static std::atomic<std::uint64_t> next{1};
    uid_ = next.fetch_add(1, std::memory_order_relaxed);
    arch_.validate();
    residency_.reserve(wl_.numTensors());
    for (TensorId t = 0; t < wl_.numTensors(); ++t)
        residency_.push_back(wl_.tensor(t).isOutput
                                 ? Residency::OutputBoundary
                                 : Residency::InputBoundary);
    assignPartitions(tensor_to_partition);
    computeStores();
    computeEnergies();
}

void
BoundArch::setResidency(TensorId t, Residency r)
{
    residency_.at(t) = r;
    anyEphemeral_ = false;
    for (Residency x : residency_)
        anyEphemeral_ |= (x == Residency::Ephemeral);
}

int
BoundArch::residencyLevel(TensorId t) const
{
    for (int l = numLevels() - 1; l >= 0; --l)
        if (!arch_.levels[l].isDram && stores_[l][t])
            return l;
    return -1;
}

void
BoundArch::assignPartitions(
    const std::map<std::string, std::string> &explicit_map)
{
    // Collect every partition name appearing anywhere in the hierarchy.
    std::vector<std::string> partition_names;
    for (const auto &l : arch_.levels)
        for (const auto &p : l.partitions)
            if (std::find(partition_names.begin(), partition_names.end(),
                          p.name) == partition_names.end())
                partition_names.push_back(p.name);

    tensorPartition.assign(wl_.numTensors(), "");

    if (partition_names.empty()) {
        // Fully unified hierarchy; partition names are only used for
        // bypass matching, so fall back to tensor names.
        for (TensorId t = 0; t < wl_.numTensors(); ++t)
            tensorPartition[t] = wl_.tensor(t).name;
        return;
    }

    std::vector<bool> partition_used(partition_names.size(), false);
    auto claim = [&](TensorId t, const std::string &p) {
        auto it =
            std::find(partition_names.begin(), partition_names.end(), p);
        SUNSTONE_ASSERT(it != partition_names.end(), "unknown partition");
        tensorPartition[t] = p;
        partition_used[it - partition_names.begin()] = true;
    };

    // 1. Explicit assignments.
    for (TensorId t = 0; t < wl_.numTensors(); ++t) {
        auto it = explicit_map.find(wl_.tensor(t).name);
        if (it == explicit_map.end())
            continue;
        if (std::find(partition_names.begin(), partition_names.end(),
                      it->second) == partition_names.end())
            SUNSTONE_FATAL("tensor '", it->first,
                           "' mapped to unknown partition '", it->second,
                           "' on arch '", arch_.name, "'");
        claim(t, it->second);
    }

    // 2. Exact tensor-name matches.
    for (TensorId t = 0; t < wl_.numTensors(); ++t) {
        if (!tensorPartition[t].empty())
            continue;
        auto it = std::find(partition_names.begin(), partition_names.end(),
                            wl_.tensor(t).name);
        if (it != partition_names.end())
            claim(t, *it);
    }

    // 3. Outputs go to an output-flavored partition.
    static const char *output_names[] = {"ofmap", "out", "psum", "nbout"};
    for (TensorId t = 0; t < wl_.numTensors(); ++t) {
        if (!tensorPartition[t].empty() || !wl_.tensor(t).isOutput)
            continue;
        for (const char *n : output_names) {
            auto it = std::find(partition_names.begin(),
                                partition_names.end(), n);
            if (it != partition_names.end()) {
                claim(t, *it);
                break;
            }
        }
    }

    // 4. Remaining tensors take unused partitions in declaration order.
    for (TensorId t = 0; t < wl_.numTensors(); ++t) {
        if (!tensorPartition[t].empty())
            continue;
        bool found = false;
        for (std::size_t i = 0; i < partition_names.size(); ++i) {
            if (!partition_used[i]) {
                claim(t, partition_names[i]);
                found = true;
                break;
            }
        }
        if (!found)
            SUNSTONE_FATAL(
                "cannot auto-assign tensor '", wl_.tensor(t).name,
                "' to a partition of arch '", arch_.name,
                "'; pass an explicit tensor-to-partition map");
    }
}

void
BoundArch::computeStores()
{
    const int nl = numLevels();
    const int nt = numTensors();
    stores_.assign(nl, std::vector<bool>(nt, true));
    for (int l = 0; l < nl; ++l) {
        const auto &lv = arch_.levels[l];
        for (TensorId t = 0; t < nt; ++t) {
            bool bypassed =
                std::find(lv.bypass.begin(), lv.bypass.end(),
                          tensorPartition[t]) != lv.bypass.end();
            // A partitioned level stores only tensors that have a
            // partition there.
            if (!bypassed && !lv.partitions.empty()) {
                bool has = false;
                for (const auto &p : lv.partitions)
                    has |= (p.name == tensorPartition[t]);
                bypassed = !has;
            }
            stores_[l][t] = !bypassed;
        }
    }
    // DRAM must store everything.
    for (TensorId t = 0; t < nt; ++t)
        SUNSTONE_ASSERT(stores_[nl - 1][t],
                        "DRAM cannot bypass tensor ", wl_.tensor(t).name);
}

void
BoundArch::computeEnergies()
{
    const int nl = numLevels();
    const int nt = numTensors();
    readPj.assign(nl, std::vector<double>(nt, 0));
    writePj.assign(nl, std::vector<double>(nt, 0));
    for (int l = 0; l < nl; ++l) {
        const auto &lv = arch_.levels[l];
        for (TensorId t = 0; t < nt; ++t) {
            const int bits = wl_.tensor(t).wordBits;
            double rd_per_bit, wr_per_bit;
            if (lv.isDram) {
                rd_per_bit = wr_per_bit = energy::dramPjPerBit();
            } else {
                std::int64_t cap = lv.capacityBits;
                for (const auto &p : lv.partitions)
                    if (p.name == tensorPartition[t])
                        cap = p.capacityBits;
                if (cap <= 0)
                    cap = 1; // bypassed tensors never charge here
                rd_per_bit = energy::sramReadPjPerBit(cap);
                wr_per_bit = energy::sramWritePjPerBit(cap);
            }
            readPj[l][t] = rd_per_bit * bits;
            writePj[l][t] = wr_per_bit * bits;
        }
    }
    macPj_ = energy::macPj(arch_.macBits);
}

int
BoundArch::innermostLevel(TensorId t) const
{
    for (int l = 0; l < numLevels(); ++l)
        if (stores_[l][t])
            return l;
    SUNSTONE_PANIC("tensor stored nowhere");
}

int
BoundArch::nextLevelAbove(int level, TensorId t) const
{
    for (int l = level + 1; l < numLevels(); ++l)
        if (stores_[l][t])
            return l;
    return -1;
}

std::int64_t
BoundArch::capacityBitsFor(int level, TensorId t) const
{
    const auto &lv = arch_.levels[level];
    if (lv.isDram)
        return std::numeric_limits<std::int64_t>::max() / 4;
    const std::int64_t shrink = lv.doubleBuffered ? 2 : 1;
    if (lv.partitions.empty())
        return lv.capacityBits / shrink;
    for (const auto &p : lv.partitions)
        if (p.name == tensorPartition[t])
            return p.capacityBits / shrink;
    return 0;
}

const std::string &
BoundArch::partitionOf(TensorId t) const
{
    return tensorPartition.at(t);
}

} // namespace sunstone
