/**
 * @file
 * Hierarchical spatial-accelerator description (paper Section II-A,
 * Fig. 1): a stack of storage levels, innermost first and DRAM last, each
 * with an optional spatial fanout of the level below it. Buffers may be
 * unified or partitioned per datatype, and a partition may bypass a level
 * entirely (e.g. weights skip the Simba global buffer).
 *
 * An ArchSpec is workload independent; a BoundArch pairs it with a
 * Workload, assigning each tensor to a partition so capacities, bypass,
 * and per-access energies can be queried per tensor.
 */

#ifndef SUNSTONE_ARCH_ARCH_HH
#define SUNSTONE_ARCH_ARCH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace sunstone {

/** A named capacity partition inside a storage level. */
struct PartitionSpec
{
    std::string name;
    std::int64_t capacityBits = 0;
};

/** One storage level of the hierarchy. */
struct LevelSpec
{
    std::string name;

    /**
     * Unified capacity in bits; used when partitions is empty. Zero with
     * isDram means unbounded.
     */
    std::int64_t capacityBits = 0;

    /** Per-datatype partitions (empty means unified). */
    std::vector<PartitionSpec> partitions;

    /** Partition names that skip this level (data flows through). */
    std::vector<std::string> bypass;

    /**
     * Number of instances of the next-lower level (or MAC lanes for the
     * innermost level) below one instance of this level.
     */
    int fanout = 1;

    /** Read/write bandwidth to children, words per cycle per instance. */
    double readBwWordsPerCycle = 1e18;
    double writeBwWordsPerCycle = 1e18;

    /** Whether the level's fanout network supports multicast. */
    bool multicast = true;

    /**
     * Double-buffered levels overlap refill with compute (the latency
     * model already assumes this, Section V-A) at the cost of half the
     * usable capacity for resident tiles.
     */
    bool doubleBuffered = false;

    /**
     * Optional physical 2D mesh shape of the fanout (meshX * meshY ==
     * fanout). When set, a mapping's spatial factors at this level must
     * be partitionable into an X group and a Y group whose products fit
     * the respective mesh sides (Timeloop-style placement). Zero means
     * unconstrained (only the fanout product is checked).
     */
    int meshX = 0;
    int meshY = 0;

    /** DRAM levels have unchecked capacity. */
    bool isDram = false;
};

/** A complete accelerator: levels (inner to outer) plus compute specs. */
struct ArchSpec
{
    std::string name;
    std::vector<LevelSpec> levels;

    /** MAC operand width in bits (sets MAC energy). */
    int macBits = 16;

    double clockGhz = 1.0;

    int numLevels() const { return static_cast<int>(levels.size()); }

    /** @return total MAC lanes = product of all fanouts. */
    std::int64_t totalFanout() const;

    /** Sanity checks; fatal() on inconsistency. */
    void validate() const;
};

/**
 * Residency class of a tensor within a fused-subgraph evaluation (see
 * DESIGN.md §13). Boundary tensors behave exactly as in per-layer
 * scheduling: they live in DRAM and stream through the hierarchy.
 * Ephemeral tensors are inter-op intermediates of a fused subgraph: when
 * a mapping keeps the whole tensor resident at its outermost on-chip
 * storage level, the DRAM round-trip (the producer's final drain, the
 * consumer's initial fill) is never performed and the cost model drops
 * it; a mapping that does not achieve full residency is charged the DRAM
 * traffic as usual (the "spill" behavior, identical to a boundary
 * tensor), so evaluation stays well-defined over the whole search space.
 */
enum class Residency { InputBoundary, OutputBoundary, Ephemeral };

/**
 * An architecture bound to a workload: every tensor is assigned to a
 * partition, so storage membership, capacity, and access energy become
 * per-(level, tensor) queries. Binding is by explicit map or by the
 * default rule: exact tensor-name match first, then outputs to an
 * output-ish partition (ofmap/out/psum/nbout), then remaining inputs to
 * remaining partitions in declaration order.
 */
class BoundArch
{
  public:
    /**
     * Copies both descriptions, so temporaries are safe to pass.
     *
     * @param arch architecture
     * @param wl workload
     * @param tensor_to_partition optional explicit assignment by name
     */
    BoundArch(ArchSpec arch, Workload wl,
              const std::map<std::string, std::string> &tensor_to_partition
              = {});

    const ArchSpec &arch() const { return arch_; }
    const Workload &workload() const { return wl_; }

    /**
     * Process-unique identity of this binding's construction, from a
     * monotone counter (never recycled, so a new BoundArch landing at a
     * freed one's address can never alias it). Copies share the uid:
     * a copy is semantically identical, and the only post-construction
     * mutation (setResidency) does not affect anything callers key on
     * the uid — EvalScratch caches only residency-independent derived
     * data (storage chains, problem footprints, indexing-dim sets).
     */
    std::uint64_t uid() const { return uid_; }

    int numLevels() const { return arch_.numLevels(); }
    int numTensors() const { return wl_.numTensors(); }

    /** @return whether tensor t is stored (not bypassed) at level l. */
    bool stores(int level, TensorId t) const { return stores_[level][t]; }

    /** @return innermost level storing t. */
    int innermostLevel(TensorId t) const;

    /** @return next level above `level` that stores t, or -1 if none. */
    int nextLevelAbove(int level, TensorId t) const;

    /** @return read energy (pJ) for one word of tensor t at level l.
     *  Inline: the cost model charges energy per (level, tensor) of
     *  every evaluation. */
    double
    readEnergyPj(int level, TensorId t) const
    {
        return readPj.at(level).at(t);
    }

    /** @return write energy (pJ) for one word of tensor t at level l. */
    double
    writeEnergyPj(int level, TensorId t) const
    {
        return writePj.at(level).at(t);
    }

    /** @return MAC energy (pJ) per operation. */
    double macEnergyPj() const { return macPj_; }

    /**
     * Checks that per-tensor footprints (words) fit level l, respecting
     * partitions. DRAM always fits. Inline: the validity check calls
     * this for every non-DRAM level of every evaluation.
     *
     * @param level level index
     * @param footprint_words per-tensor footprints; entries for tensors
     *        not stored at this level are ignored
     */
    bool
    fits(int level, const std::vector<std::int64_t> &footprint_words) const
    {
        const auto &lv = arch_.levels[level];
        if (lv.isDram)
            return true;
        SUNSTONE_ASSERT((int)footprint_words.size() == numTensors(),
                        "footprint vector size mismatch");
        const std::int64_t shrink = lv.doubleBuffered ? 2 : 1;
        if (lv.partitions.empty()) {
            std::int64_t bits = 0;
            for (TensorId t = 0; t < numTensors(); ++t)
                if (stores_[level][t])
                    bits += footprint_words[t] * wl_.tensor(t).wordBits;
            return bits <= lv.capacityBits / shrink;
        }
        for (const auto &p : lv.partitions) {
            std::int64_t bits = 0;
            for (TensorId t = 0; t < numTensors(); ++t)
                if (stores_[level][t] && tensorPartition[t] == p.name)
                    bits += footprint_words[t] * wl_.tensor(t).wordBits;
            if (bits > p.capacityBits / shrink)
                return false;
        }
        return true;
    }

    /**
     * @return the capacity budget (bits) available to tensor t at level l
     *         assuming it had the whole partition (for tile-growth
     *         heuristics); unbounded levels return a large sentinel.
     */
    std::int64_t capacityBitsFor(int level, TensorId t) const;

    /** @return the partition name tensor t is assigned to. */
    const std::string &partitionOf(TensorId t) const;

    // -- Fusion residency ----------------------------------------------

    /**
     * Declares the residency class of tensor t. Defaults are
     * OutputBoundary for outputs and InputBoundary for inputs, which
     * reproduce per-layer behavior exactly. Marking a tensor Ephemeral
     * changes the cost model (conditionally — see Residency) and the
     * engine's structural fingerprint, so fused and unfused variants of
     * one op never share cache entries or dedup groups.
     */
    void setResidency(TensorId t, Residency r);

    /** @return the residency class of tensor t. */
    Residency residency(TensorId t) const { return residency_.at(t); }

    /** @return true when any tensor was marked Ephemeral. */
    bool anyEphemeral() const { return anyEphemeral_; }

    /**
     * @return the level an Ephemeral tensor lives at when fused: the
     * outermost non-DRAM level storing it, or -1 when it is stored
     * on-chip nowhere (such a tensor can never avoid DRAM).
     */
    int residencyLevel(TensorId t) const;

  private:
    void assignPartitions(
        const std::map<std::string, std::string> &explicit_map);
    void computeStores();
    void computeEnergies();

    ArchSpec arch_;
    Workload wl_;
    std::uint64_t uid_ = 0;
    std::vector<Residency> residency_;
    bool anyEphemeral_ = false;
    std::vector<std::string> tensorPartition;
    std::vector<std::vector<bool>> stores_;      // [level][tensor]
    std::vector<std::vector<double>> readPj;     // [level][tensor]
    std::vector<std::vector<double>> writePj;    // [level][tensor]
    double macPj_ = 0;
};

} // namespace sunstone

#endif // SUNSTONE_ARCH_ARCH_HH
