/**
 * @file
 * Plain-text serialization for ArchSpec — the equivalent of Timeloop's
 * YAML architecture files, in a deliberately small line-oriented format
 * so accelerator configs can live next to experiments and be diffed.
 *
 * Format (one directive per line, '#' comments):
 *
 *   arch my-simba
 *   mac_bits 8
 *   clock_ghz 1.0
 *   level WeightReg
 *     partition weight 64        # name, capacity in bits
 *     bypass ifmap ofmap
 *     fanout 8
 *     bw_read 64
 *     bw_write 8
 *     no_multicast               # optional
 *   level L2
 *     capacity 26214400          # unified, bits
 *     fanout 16
 *   level DRAM
 *     dram
 *
 * Levels appear innermost first; the last must be "dram".
 */

#ifndef SUNSTONE_ARCH_ARCH_CONFIG_HH
#define SUNSTONE_ARCH_ARCH_CONFIG_HH

#include <string>

#include "arch/arch.hh"

namespace sunstone {

/** Renders an ArchSpec in the config format above. */
std::string archToText(const ArchSpec &arch);

/** Parses the config format; fatal() with a line number on errors. */
ArchSpec archFromText(const std::string &text);

/** Reads an architecture config file; fatal() if unreadable. */
ArchSpec loadArchFile(const std::string &path);

/** Writes an architecture config file; fatal() on I/O errors. */
void saveArchFile(const ArchSpec &arch, const std::string &path);

} // namespace sunstone

#endif // SUNSTONE_ARCH_ARCH_CONFIG_HH
