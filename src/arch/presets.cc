#include "arch/presets.hh"

namespace sunstone {

namespace {

constexpr std::int64_t kB = 8 * 1024; // bits per kilobyte

} // anonymous namespace

ArchSpec
makeConventional()
{
    ArchSpec a;
    a.name = "conventional";
    a.macBits = 16;
    a.clockGhz = 1.0;

    LevelSpec l1;
    l1.name = "L1";
    l1.capacityBits = 512 * 8; // 512 B unified per PE
    l1.fanout = 1;             // a single MAC below each L1
    l1.readBwWordsPerCycle = 2;
    l1.writeBwWordsPerCycle = 2;

    LevelSpec l2;
    l2.name = "L2";
    l2.capacityBits = static_cast<std::int64_t>(3.1 * 1024) * kB; // 3.1 MB
    l2.fanout = 32 * 32; // PE grid
    l2.readBwWordsPerCycle = 32;
    l2.writeBwWordsPerCycle = 32;

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    dram.fanout = 1;
    dram.readBwWordsPerCycle = 16;
    dram.writeBwWordsPerCycle = 16;

    a.levels = {l1, l2, dram};
    return a;
}

ArchSpec
makeSimbaLike()
{
    ArchSpec a;
    a.name = "simba-like";
    a.macBits = 8;
    a.clockGhz = 1.0;

    // Per-lane weight register: 8 words of 8 bits, feeding an 8-wide
    // vector MAC (the innermost spatial level).
    LevelSpec reg;
    reg.name = "WeightReg";
    reg.partitions = {{"weight", 8 * 8}};
    reg.bypass = {"ifmap", "ofmap"};
    reg.fanout = 8; // vector width
    reg.readBwWordsPerCycle = 64;
    reg.writeBwWordsPerCycle = 8;

    // Per-PE buffers: distributed weight buffer, broadcast ifmap buffer,
    // ofmap accumulation buffer (Table IV capacities).
    LevelSpec pe;
    pe.name = "PEBuf";
    pe.partitions = {
        {"weight", 32 * kB}, {"ifmap", 8 * kB}, {"ofmap", 3 * kB}};
    pe.fanout = 8; // 8 vector-MAC lanes per PE
    pe.readBwWordsPerCycle = 64;
    pe.writeBwWordsPerCycle = 8;

    // Shared global buffer: ifmap + ofmap only; weights bypass to DRAM.
    LevelSpec l2;
    l2.name = "L2";
    l2.partitions = {{"ifmap", 256 * kB}, {"ofmap", 256 * kB}};
    l2.bypass = {"weight"};
    l2.fanout = 4 * 4; // PE grid
    l2.readBwWordsPerCycle = 32;
    l2.writeBwWordsPerCycle = 32;

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    dram.fanout = 1;
    dram.readBwWordsPerCycle = 16;
    dram.writeBwWordsPerCycle = 16;

    a.levels = {reg, pe, l2, dram};
    return a;
}

void
applySimbaPrecisions(Workload &wl)
{
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        wl.setWordBits(t, wl.tensor(t).isOutput ? 24 : 8);
}

ArchSpec
makeDianNaoLike()
{
    ArchSpec a;
    a.name = "diannao-like";
    a.macBits = 16;
    a.clockGhz = 1.0;

    LevelSpec buf;
    buf.name = "Buffers";
    buf.partitions = {
        {"nbin", 2 * kB}, {"nbout", 2 * kB}, {"sb", 32 * kB}};
    buf.fanout = 16 * 16; // the NFU multiplier array
    buf.readBwWordsPerCycle = 512;
    buf.writeBwWordsPerCycle = 64;

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    dram.fanout = 1;
    dram.readBwWordsPerCycle = 16;
    dram.writeBwWordsPerCycle = 16;

    a.levels = {buf, dram};
    return a;
}

ArchSpec
makeEyerissLike()
{
    ArchSpec a;
    a.name = "eyeriss-like";
    a.macBits = 16;
    a.clockGhz = 1.0;

    LevelSpec spad;
    spad.name = "Spad";
    spad.capacityBits = 512 * 8; // ~0.5 KB per-PE scratchpad
    spad.fanout = 1;
    spad.readBwWordsPerCycle = 2;
    spad.writeBwWordsPerCycle = 2;

    LevelSpec glb;
    glb.name = "GLB";
    glb.capacityBits = 108 * kB; // Eyeriss global buffer
    glb.fanout = 14 * 12;        // the 14x12 PE array
    glb.readBwWordsPerCycle = 16;
    glb.writeBwWordsPerCycle = 16;

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    dram.fanout = 1;
    dram.readBwWordsPerCycle = 16;
    dram.writeBwWordsPerCycle = 16;

    a.levels = {spad, glb, dram};
    return a;
}

ArchSpec
makeToyArch(std::int64_t l1_words, int pes)
{
    ArchSpec a;
    a.name = "toy";
    a.macBits = 16;
    a.clockGhz = 1.0;

    LevelSpec l1;
    l1.name = "L1";
    l1.capacityBits = l1_words * 16;
    l1.fanout = 1;

    LevelSpec l2;
    l2.name = "L2";
    l2.capacityBits = 1024 * kB;
    l2.fanout = pes;

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    dram.fanout = 1;

    a.levels = {l1, l2, dram};
    return a;
}

} // namespace sunstone
