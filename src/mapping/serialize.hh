/**
 * @file
 * Plain-text serialization for mappings and workloads, so that a found
 * dataflow can be saved next to an experiment, diffed, re-evaluated, or
 * compiled later (e.g. by the DianNao compiler) without re-running the
 * search.
 *
 * Mapping format (one line per level, innermost first):
 *
 *   mapping
 *   level L1 temporal k=2,p=4 spatial - order n,k,c,p,q,r,s
 *   level L2 temporal c=8 spatial k=16 order n,k,c,p,q,r,s
 *   ...
 *
 * Workload format:
 *
 *   workload conv1d
 *   einsum ofmap[k,p] = ifmap[c,p+r] * weight[k,c,r]
 *   dims k=64,c=32,p=56,r=3
 *   bits ofmap=24,ifmap=8,weight=8      # optional
 */

#ifndef SUNSTONE_MAPPING_SERIALIZE_HH
#define SUNSTONE_MAPPING_SERIALIZE_HH

#include <string>

#include "mapping/mapping.hh"

namespace sunstone {

/** Renders a mapping (level names come from the architecture). */
std::string mappingToText(const Mapping &m, const BoundArch &ba);

/**
 * Parses a mapping for the given architecture/workload pair. Dims are
 * referenced by name; omitted factors default to 1. fatal() on errors.
 */
Mapping mappingFromText(const std::string &text, const BoundArch &ba);

/** Renders a workload (einsum + dims + word widths). */
std::string workloadToText(const Workload &wl);

/** Parses the workload format; fatal() on errors. */
Workload workloadFromText(const std::string &text);

/** File helpers; fatal() on I/O errors. */
void saveMappingFile(const Mapping &m, const BoundArch &ba,
                     const std::string &path);
Mapping loadMappingFile(const std::string &path, const BoundArch &ba);
void saveWorkloadFile(const Workload &wl, const std::string &path);
Workload loadWorkloadFile(const std::string &path);

} // namespace sunstone

#endif // SUNSTONE_MAPPING_SERIALIZE_HH
