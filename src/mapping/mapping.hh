/**
 * @file
 * Dataflow mapping representation (paper Section II-C): per storage level
 * a temporal tiling factor per dimension, a loop order over those factors,
 * and a spatial unrolling factor per dimension (distributing the
 * instances of the level below across the level's fanout).
 *
 * Conventions (also DESIGN.md Section 3): levels are indexed like the
 * architecture, innermost first. The tile resident at level l spans
 * shape[l][d] = prod_{k<=l} temporal[k][d] * spatial[k][d]. For every
 * dimension the factors across all levels must multiply exactly to the
 * problem size (divisor-exact mappings, as in Timeloop).
 */

#ifndef SUNSTONE_MAPPING_MAPPING_HH
#define SUNSTONE_MAPPING_MAPPING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch.hh"
#include "workload/workload.hh"

namespace sunstone {

/** Mapping decisions for one storage level. */
struct LevelMapping
{
    /** Temporal tiling factor per dimension (size = numDims). */
    std::vector<std::int64_t> temporal;

    /** Spatial unrolling factor per dimension (product <= fanout). */
    std::vector<std::int64_t> spatial;

    /**
     * Loop order of the temporal loops, outermost first, as a permutation
     * of all DimIds (dims with factor 1 are placeholders).
     */
    std::vector<DimId> order;

    /** @return a neutral level mapping (all factors 1, identity order). */
    static LevelMapping identity(int num_dims);

    /** @return product of spatial factors. */
    std::int64_t spatialProduct() const;
};

/**
 * Reusable buffers for Mapping::valid(): the running cumulative tile
 * shape, per-tensor footprints, the permutation-check bitmap, and the
 * mesh-packing factor list. Validity is on every evaluation's critical
 * path, and the historical implementation re-allocated (and re-derived
 * tile shapes from scratch) per level; with a scratch the check is
 * allocation-free and incremental. One scratch per thread — see
 * EvalScratch, which embeds one for the cost model's hot path.
 */
struct ValidityScratch
{
    std::vector<std::int64_t> shape;
    std::vector<std::int64_t> footprints;
    std::vector<char> seen;
    std::vector<std::int64_t> meshFactors;
};

/** A complete mapping of a workload onto an architecture. */
class Mapping
{
  public:
    Mapping() = default;

    /** @param num_levels levels in the architecture
     *  @param num_dims dimensions in the workload */
    Mapping(int num_levels, int num_dims);

    int numLevels() const { return static_cast<int>(levels.size()); }
    int numDims() const
    {
        return levels.empty() ? 0
                              : static_cast<int>(levels[0].temporal.size());
    }

    LevelMapping &level(int l) { return levels.at(l); }
    const LevelMapping &level(int l) const { return levels.at(l); }

    /** @return cumulative tile shape at level l (see file header). */
    std::vector<std::int64_t> tileShape(int l) const;

    /** @return per-tensor footprints (words) of the level-l tile. */
    std::vector<std::int64_t> footprints(int l, const Workload &wl) const;

    /** @return product over all levels and dims of the spatial factors. */
    std::int64_t totalSpatial() const;

    /**
     * Full validity check: factor products match problem dims, spatial
     * products respect fanouts, and every stored tile fits its level.
     *
     * @param ba bound architecture/workload pair
     * @param why optional out-parameter receiving the failure reason
     */
    bool valid(const BoundArch &ba, std::string *why = nullptr) const;

    /**
     * Allocation-free variant of valid(): identical checks in the
     * identical order with identical failure strings, but every
     * temporary lives in the caller-provided scratch and tile shapes
     * accumulate incrementally instead of being re-derived per level.
     */
    bool valid(const BoundArch &ba, ValidityScratch &vs,
               std::string *why = nullptr) const;

    /** Renders the mapping as an indented loop nest for humans. */
    std::string toString(const BoundArch &ba) const;

  private:
    std::vector<LevelMapping> levels;
};

/**
 * @return a mapping that keeps every loop at the DRAM level (temporal
 * factors = problem sizes outermost, everything else 1). Always valid on
 * architectures whose innermost tile (one word per tensor) fits L1; used
 * as the "naive" reference and as a search fallback.
 */
Mapping naiveMapping(const BoundArch &ba);

} // namespace sunstone

#endif // SUNSTONE_MAPPING_MAPPING_HH
