#include "mapping/mapping.hh"

#include <numeric>
#include <sstream>

#include "common/logging.hh"
#include "common/math_utils.hh"

namespace sunstone {

LevelMapping
LevelMapping::identity(int num_dims)
{
    LevelMapping lm;
    lm.temporal.assign(num_dims, 1);
    lm.spatial.assign(num_dims, 1);
    lm.order.resize(num_dims);
    std::iota(lm.order.begin(), lm.order.end(), 0);
    return lm;
}

std::int64_t
LevelMapping::spatialProduct() const
{
    std::int64_t p = 1;
    for (auto s : spatial)
        p = satMul(p, s);
    return p;
}

Mapping::Mapping(int num_levels, int num_dims)
{
    levels.assign(num_levels, LevelMapping::identity(num_dims));
}

std::vector<std::int64_t>
Mapping::tileShape(int l) const
{
    std::vector<std::int64_t> shape(numDims(), 1);
    for (int k = 0; k <= l; ++k)
        for (int d = 0; d < numDims(); ++d)
            shape[d] =
                satMul(shape[d],
                       satMul(levels[k].temporal[d], levels[k].spatial[d]));
    return shape;
}

std::vector<std::int64_t>
Mapping::footprints(int l, const Workload &wl) const
{
    const auto shape = tileShape(l);
    std::vector<std::int64_t> fp(wl.numTensors());
    for (TensorId t = 0; t < wl.numTensors(); ++t)
        fp[t] = wl.tensor(t).footprint(shape);
    return fp;
}

std::int64_t
Mapping::totalSpatial() const
{
    std::int64_t p = 1;
    for (const auto &lm : levels)
        p = satMul(p, lm.spatialProduct());
    return p;
}

bool
Mapping::valid(const BoundArch &ba, std::string *why) const
{
    // Non-hot callers go through a per-thread scratch; the cost model's
    // fast path supplies its own (embedded in EvalScratch).
    thread_local ValidityScratch vs;
    return valid(ba, vs, why);
}

bool
Mapping::valid(const BoundArch &ba, ValidityScratch &vs,
               std::string *why) const
{
    const Workload &wl = ba.workload();
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (numLevels() != ba.numLevels())
        return fail("level count mismatch");
    if (numDims() != wl.numDims())
        return fail("dimension count mismatch");

    // Factor products must reconstruct the problem exactly.
    for (DimId d = 0; d < wl.numDims(); ++d) {
        std::int64_t prod = 1;
        for (const auto &lm : levels)
            prod = satMul(prod, satMul(lm.temporal[d], lm.spatial[d]));
        if (prod != wl.dimSize(d))
            return fail("factors of dim '" + wl.dimName(d) +
                        "' multiply to " + std::to_string(prod) +
                        ", expected " + std::to_string(wl.dimSize(d)));
    }

    // Orders must be permutations; spatial products must fit fanouts.
    for (int l = 0; l < numLevels(); ++l) {
        const auto &lm = levels[l];
        if ((int)lm.order.size() != wl.numDims())
            return fail("bad order length at level " + std::to_string(l));
        vs.seen.assign(wl.numDims(), 0);
        for (DimId d : lm.order) {
            if (d < 0 || d >= wl.numDims() || vs.seen[d])
                return fail("order at level " + std::to_string(l) +
                            " is not a permutation");
            vs.seen[d] = 1;
        }
        const auto &lv = ba.arch().levels[l];
        if (lm.spatialProduct() > lv.fanout)
            return fail("spatial product exceeds fanout at level '" +
                        lv.name + "'");
        if (lv.meshX > 0) {
            // The spatial factors must pack onto the physical X x Y
            // mesh: some subset's product <= meshX with the complement's
            // product <= meshY. Dimension counts are tiny, so subsets
            // are enumerated directly.
            auto &factors = vs.meshFactors;
            factors.clear();
            for (DimId d = 0; d < wl.numDims(); ++d)
                if (lm.spatial[d] > 1)
                    factors.push_back(lm.spatial[d]);
            bool packable = false;
            const std::size_t n = factors.size();
            for (std::size_t mask = 0; mask < (std::size_t(1) << n);
                 ++mask) {
                std::int64_t x = 1, y = 1;
                for (std::size_t i = 0; i < n; ++i) {
                    if (mask & (std::size_t(1) << i))
                        x = satMul(x, factors[i]);
                    else
                        y = satMul(y, factors[i]);
                }
                if (x <= lv.meshX && y <= lv.meshY) {
                    packable = true;
                    break;
                }
            }
            if (!packable)
                return fail("spatial factors do not pack onto the " +
                            std::to_string(lv.meshX) + "x" +
                            std::to_string(lv.meshY) +
                            " mesh at level '" + lv.name + "'");
        }
    }

    // Every stored tile must fit its level. The cumulative shape
    // accumulates across levels (satMul folds in the same inner-to-outer
    // order tileShape() uses, so the products are identical), turning
    // the historical O(levels^2) re-derivation into one pass.
    vs.shape.assign(wl.numDims(), 1);
    vs.footprints.resize(wl.numTensors());
    for (int l = 0; l < numLevels(); ++l) {
        const auto &lm = levels[l];
        for (DimId d = 0; d < wl.numDims(); ++d)
            vs.shape[d] = satMul(
                vs.shape[d], satMul(lm.temporal[d], lm.spatial[d]));
        if (ba.arch().levels[l].isDram)
            continue;
        for (TensorId t = 0; t < wl.numTensors(); ++t)
            vs.footprints[t] = wl.tensor(t).footprint(vs.shape);
        if (!ba.fits(l, vs.footprints))
            return fail("tile does not fit level '" +
                        ba.arch().levels[l].name + "'");
    }
    return true;
}

std::string
Mapping::toString(const BoundArch &ba) const
{
    const Workload &wl = ba.workload();
    std::ostringstream os;
    int indent = 0;
    auto pad = [&] {
        for (int i = 0; i < indent; ++i)
            os << "  ";
    };
    for (int l = numLevels() - 1; l >= 0; --l) {
        const auto &lm = levels[l];
        pad();
        os << "[" << ba.arch().levels[l].name << "]";
        bool any_spatial = false;
        for (DimId d = 0; d < wl.numDims(); ++d) {
            if (lm.spatial[d] > 1) {
                os << " parallel-for " << wl.dimName(d) << " in 0.."
                   << lm.spatial[d];
                any_spatial = true;
            }
        }
        if (!any_spatial)
            os << " (no spatial unrolling)";
        os << "\n";
        ++indent;
        for (DimId d : lm.order) {
            if (lm.temporal[d] <= 1)
                continue;
            pad();
            os << "for " << wl.dimName(d) << " in 0.." << lm.temporal[d]
               << "\n";
            ++indent;
        }
    }
    pad();
    os << "compute\n";
    return os.str();
}

Mapping
naiveMapping(const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    Mapping m(ba.numLevels(), wl.numDims());
    const int top = ba.numLevels() - 1;
    for (DimId d = 0; d < wl.numDims(); ++d)
        m.level(top).temporal[d] = wl.dimSize(d);
    return m;
}

} // namespace sunstone
