#include "mapping/serialize.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/parse.hh"

namespace sunstone {

namespace {

/** Renders "k=2,p=4" for non-unit factors ("-" when all are 1). */
std::string
factorsToText(const Workload &wl, const std::vector<std::int64_t> &f)
{
    std::ostringstream os;
    bool any = false;
    for (DimId d = 0; d < wl.numDims(); ++d) {
        if (f[d] == 1)
            continue;
        if (any)
            os << ",";
        os << wl.dimName(d) << "=" << f[d];
        any = true;
    }
    return any ? os.str() : "-";
}

/** Parses "k=2,p=4" or "-" into a factor vector. */
std::vector<std::int64_t>
factorsFromText(const Workload &wl, const std::string &text, int lineno)
{
    std::vector<std::int64_t> f(wl.numDims(), 1);
    if (text == "-")
        return f;
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            SUNSTONE_FATAL("mapping line ", lineno, ": expected d=N in '",
                           item, "'");
        const DimId d = wl.dimByName(item.substr(0, eq));
        std::int64_t v;
        if (!tryParseInt64(item.substr(eq + 1), v))
            SUNSTONE_FATAL("mapping line ", lineno,
                           ": factor in '", item,
                           "' is not a valid integer");
        if (v < 1)
            SUNSTONE_FATAL("mapping line ", lineno, ": factor in '",
                           item, "' must be >= 1");
        f[d] = v;
    }
    return f;
}

/** Renders one tensor access like "ifmap[c,2*p+r]". */
std::string
tensorAccess(const Workload &wl, const TensorSpec &t)
{
    std::ostringstream os;
    os << t.name << "[";
    for (std::size_t i = 0; i < t.ranks.size(); ++i) {
        if (i)
            os << ",";
        const auto &terms = t.ranks[i].terms;
        for (std::size_t j = 0; j < terms.size(); ++j) {
            if (j)
                os << "+";
            if (terms[j].coeff != 1)
                os << terms[j].coeff << "*";
            os << wl.dimName(terms[j].dim);
        }
    }
    os << "]";
    return os.str();
}

} // anonymous namespace

std::string
mappingToText(const Mapping &m, const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    std::ostringstream os;
    os << "mapping\n";
    for (int l = 0; l < m.numLevels(); ++l) {
        const auto &lm = m.level(l);
        os << "level " << ba.arch().levels[l].name << " temporal "
           << factorsToText(wl, lm.temporal) << " spatial "
           << factorsToText(wl, lm.spatial) << " order ";
        for (std::size_t i = 0; i < lm.order.size(); ++i) {
            if (i)
                os << ",";
            os << wl.dimName(lm.order[i]);
        }
        os << "\n";
    }
    return os.str();
}

Mapping
mappingFromText(const std::string &text, const BoundArch &ba)
{
    const Workload &wl = ba.workload();
    Mapping m(ba.numLevels(), wl.numDims());
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    int next_level = 0;

    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "mapping")
            continue;
        if (key != "level")
            SUNSTONE_FATAL("mapping line ", lineno,
                           ": unknown directive '", key, "'");
        std::string name, kw_t, temporal, kw_s, spatial, kw_o, order;
        if (!(ls >> name >> kw_t >> temporal >> kw_s >> spatial >> kw_o >>
              order) ||
            kw_t != "temporal" || kw_s != "spatial" || kw_o != "order")
            SUNSTONE_FATAL("mapping line ", lineno, ": malformed level");
        if (next_level >= ba.numLevels())
            SUNSTONE_FATAL("mapping line ", lineno,
                           ": more levels than the architecture has");
        if (ba.arch().levels[next_level].name != name)
            SUNSTONE_FATAL("mapping line ", lineno, ": expected level '",
                           ba.arch().levels[next_level].name, "', got '",
                           name, "'");
        auto &lm = m.level(next_level);
        lm.temporal = factorsFromText(wl, temporal, lineno);
        lm.spatial = factorsFromText(wl, spatial, lineno);
        lm.order.clear();
        std::istringstream osr(order);
        std::string dim;
        while (std::getline(osr, dim, ','))
            lm.order.push_back(wl.dimByName(dim));
        ++next_level;
    }
    if (next_level != ba.numLevels())
        SUNSTONE_FATAL("mapping has ", next_level, " levels, expected ",
                       ba.numLevels());
    return m;
}

std::string
workloadToText(const Workload &wl)
{
    std::ostringstream os;
    os << "workload " << wl.name() << "\n";
    os << "einsum ";
    for (const auto &t : wl.tensors())
        if (t.isOutput)
            os << tensorAccess(wl, t) << " = ";
    bool first = true;
    for (const auto &t : wl.tensors()) {
        if (t.isOutput)
            continue;
        if (!first)
            os << " * ";
        os << tensorAccess(wl, t);
        first = false;
    }
    os << "\n";
    os << "dims ";
    for (DimId d = 0; d < wl.numDims(); ++d) {
        if (d)
            os << ",";
        os << wl.dimName(d) << "=" << wl.dimSize(d);
    }
    os << "\n";
    os << "bits ";
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        if (t)
            os << ",";
        os << wl.tensor(t).name << "=" << wl.tensor(t).wordBits;
    }
    os << "\n";
    return os.str();
}

Workload
workloadFromText(const std::string &text)
{
    std::string name = "workload";
    std::string einsum;
    std::vector<std::pair<std::string, std::int64_t>> dims;
    std::vector<std::pair<std::string, int>> bits;

    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "workload") {
            ls >> name;
        } else if (key == "einsum") {
            std::getline(ls, einsum);
        } else if (key == "dims" || key == "bits") {
            std::string rest;
            ls >> rest;
            std::istringstream rs(rest);
            std::string item;
            while (std::getline(rs, item, ',')) {
                const auto eq = item.find('=');
                if (eq == std::string::npos)
                    SUNSTONE_FATAL("workload line ", lineno,
                                   ": expected name=value in '", item,
                                   "'");
                std::int64_t v;
                if (!tryParseInt64(item.substr(eq + 1), v))
                    SUNSTONE_FATAL("workload line ", lineno,
                                   ": value in '", item,
                                   "' is not a valid integer");
                if (v < 1)
                    SUNSTONE_FATAL("workload line ", lineno,
                                   ": value in '", item,
                                   "' must be >= 1");
                if (key == "dims") {
                    dims.emplace_back(item.substr(0, eq), v);
                } else {
                    if (v > 4096)
                        SUNSTONE_FATAL("workload line ", lineno,
                                       ": implausible word width in '",
                                       item, "'");
                    bits.emplace_back(item.substr(0, eq),
                                      static_cast<int>(v));
                }
            }
        } else {
            SUNSTONE_FATAL("workload line ", lineno,
                           ": unknown directive '", key, "'");
        }
    }
    if (einsum.empty())
        SUNSTONE_FATAL("workload text has no einsum line");
    if (dims.empty())
        SUNSTONE_FATAL("workload text has no dims line");
    Workload wl = parseEinsum(name, einsum, dims);
    for (const auto &[tname, b] : bits)
        wl.setWordBits(wl.tensorByName(tname), b);
    return wl;
}

void
saveMappingFile(const Mapping &m, const BoundArch &ba,
                const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot write mapping file '", path, "'");
    f << mappingToText(m, ba);
}

Mapping
loadMappingFile(const std::string &path, const BoundArch &ba)
{
    std::ifstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot open mapping file '", path, "'");
    std::ostringstream os;
    os << f.rdbuf();
    return mappingFromText(os.str(), ba);
}

void
saveWorkloadFile(const Workload &wl, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot write workload file '", path, "'");
    f << workloadToText(wl);
}

Workload
loadWorkloadFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        SUNSTONE_FATAL("cannot open workload file '", path, "'");
    std::ostringstream os;
    os << f.rdbuf();
    return workloadFromText(os.str());
}

} // namespace sunstone
