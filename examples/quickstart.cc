/**
 * @file
 * Quickstart: describe a tensor computation, pick an accelerator, run
 * Sunstone, and inspect the resulting dataflow. Mirrors Section IV's
 * walkthrough of the 1D-convolution running example, including the
 * inferred reuse table (Table III).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "workload/workload.hh"

using namespace sunstone;

int
main()
{
    // 1. Describe the computation. This is the paper's running example:
    //    a 1D convolution with K filters of length R over C input
    //    channels, written as an einsum. Sliding windows use `+` and
    //    strides use `N*` inside an index expression.
    Workload wl = parseEinsum(
        "conv1d", "ofmap[k,p] = ifmap[c,p+r] * weight[k,c,r]",
        {{"k", 64}, {"c", 32}, {"p", 56}, {"r", 3}});
    std::printf("workload: %s\n\n", wl.toString().c_str());

    // 2. Sunstone infers all reuse information from the description
    //    alone (Table III) -- no per-workload heuristics anywhere.
    std::printf("%-8s | %-12s | %-12s | %s\n", "tensor", "indexed by",
                "reused by", "partially reused by");
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        const TensorReuse &r = wl.reuse(t);
        auto render = [&](DimSet s) {
            std::string out;
            for (DimId d : s) {
                if (!out.empty())
                    out += ",";
                out += wl.dimName(d);
            }
            return out.empty() ? std::string("-") : out;
        };
        std::printf("%-8s | %-12s | %-12s | %s\n",
                    wl.tensor(t).name.c_str(), render(r.indexing).c_str(),
                    render(r.fullyReusedBy).c_str(),
                    render(r.partiallyReusedBy).c_str());
    }

    // 3. Pick an accelerator (Table IV's conventional machine) and bind.
    ArchSpec arch = makeConventional();
    BoundArch ba(arch, wl);

    // 4. Optimize. Options default to the paper's bottom-up search.
    SunstoneResult r = sunstoneOptimize(ba);
    if (!r.found) {
        std::printf("no valid mapping found\n");
        return 1;
    }

    std::printf("\nsearch: %lld candidates examined in %.3f s\n",
                static_cast<long long>(r.candidatesExamined), r.seconds);
    std::printf("energy: %.4g pJ   delay: %.4g s   EDP: %.4g J*s\n",
                r.cost.totalEnergyPj, r.cost.delaySeconds, r.cost.edp);
    std::printf("MAC-array utilization: %.1f%%\n\n",
                100.0 * r.cost.utilization);
    std::printf("best dataflow:\n%s\n", r.mapping.toString(ba).c_str());

    // 5. Per-level access counts (the quantities behind Eqs. 1-3).
    std::printf("per-level access energy:\n");
    for (int l = 0; l < ba.numLevels(); ++l)
        std::printf("  %-6s %.4g pJ\n", arch.levels[l].name.c_str(),
                    r.cost.levelEnergyPj[l]);
    std::printf("  %-6s %.4g pJ\n", "MACs", r.cost.macEnergyPj);
    std::printf("  %-6s %.4g pJ\n", "NoC", r.cost.nocEnergyPj);
    return 0;
}
