/**
 * @file
 * Schedules every ResNet-18 layer (inference, configurable batch) on the
 * conventional accelerator of Table IV and prints a per-layer report --
 * the workload of Fig. 8 on the simpler machine, runnable in seconds.
 *
 * Usage:  ./build/examples/resnet_scheduling [batch]
 */

#include <cstdio>
#include <cstdlib>

#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "workload/nets.hh"

using namespace sunstone;

int
main(int argc, char **argv)
{
    const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 4;
    ArchSpec arch = makeConventional();

    std::printf("ResNet-18 (batch %lld) on %s\n\n",
                static_cast<long long>(batch), arch.name.c_str());
    std::printf("%-10s %6s %12s %12s %10s %8s %9s\n", "layer", "count",
                "MACs", "energy(pJ)", "EDP(J*s)", "util", "search(s)");

    double total_energy = 0;
    double total_delay = 0;
    for (const auto &layer : resnet18Layers(batch)) {
        BoundArch ba(arch, layer.workload);
        SunstoneResult r = sunstoneOptimize(ba);
        if (!r.found) {
            std::printf("%-10s  -- no valid mapping --\n",
                        layer.workload.name().c_str());
            continue;
        }
        std::printf("%-10s %6d %12.4g %12.4g %10.3g %7.1f%% %9.3f\n",
                    layer.workload.name().c_str(), layer.count,
                    static_cast<double>(layer.workload.totalOps()),
                    r.cost.totalEnergyPj, r.cost.edp,
                    100.0 * r.cost.utilization, r.seconds);
        total_energy += layer.count * r.cost.totalEnergyPj;
        total_delay += layer.count * r.cost.delaySeconds;
    }
    std::printf("\nnetwork total: %.4g pJ over %.4g s  (EDP %.4g J*s)\n",
                total_energy, total_delay,
                total_energy * 1e-12 * total_delay);
    return 0;
}
