/**
 * @file
 * Building a custom hierarchical accelerator (the Fig. 1b story): this
 * example assembles a Simba-like machine level by level -- per-lane
 * weight registers feeding 8-wide vector MACs, per-PE partitioned
 * buffers, a shared L2 that weights bypass -- then schedules a ResNet
 * layer on it and on the flat conventional machine, showing how the
 * same scheduler scales to more memory and spatial levels.
 *
 * Usage:  ./build/examples/custom_accelerator
 */

#include <cstdio>

#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "workload/zoo.hh"

using namespace sunstone;

namespace {

constexpr std::int64_t kB = 8 * 1024;

/** Builds the modern accelerator of Fig. 1b from scratch. */
ArchSpec
buildModernAccelerator()
{
    ArchSpec a;
    a.name = "my-simba";
    a.macBits = 8;

    LevelSpec reg;
    reg.name = "WeightReg";
    reg.partitions = {{"weight", 8 * 8}}; // 8 words x 8 bits per lane
    reg.bypass = {"ifmap", "ofmap"};      // activations skip the regs
    reg.fanout = 8;                       // vector width
    a.levels.push_back(reg);

    LevelSpec pe;
    pe.name = "PEBuf";
    pe.partitions = {
        {"weight", 32 * kB}, {"ifmap", 8 * kB}, {"ofmap", 3 * kB}};
    pe.fanout = 8; // vector-MAC lanes per PE
    a.levels.push_back(pe);

    LevelSpec l2;
    l2.name = "L2";
    l2.partitions = {{"ifmap", 256 * kB}, {"ofmap", 256 * kB}};
    l2.bypass = {"weight"}; // weights stream DRAM -> PE directly
    l2.fanout = 16;         // 4x4 PE grid
    a.levels.push_back(l2);

    LevelSpec dram;
    dram.name = "DRAM";
    dram.isDram = true;
    a.levels.push_back(dram);
    return a;
}

void
report(const char *tag, const BoundArch &ba, const SunstoneResult &r)
{
    if (!r.found) {
        std::printf("%-14s no valid mapping\n", tag);
        return;
    }
    std::printf("%-14s EDP %.4g J*s | energy %.4g pJ | util %5.1f%% | "
                "%.3f s search\n",
                tag, r.cost.edp, r.cost.totalEnergyPj,
                100.0 * r.cost.utilization, r.seconds);
    std::printf("%s\n", r.mapping.toString(ba).c_str());
}

} // namespace

int
main()
{
    ConvShape sh;
    sh.n = 4;
    sh.k = 128;
    sh.c = 128;
    sh.p = 28;
    sh.q = 28;
    sh.r = 3;
    sh.s = 3;
    Workload wl = makeConv2D(sh);
    std::printf("workload: %s\n\n", wl.toString().c_str());

    // Schedule on the hand-built hierarchical machine with the
    // per-datatype precisions of Table IV.
    Workload wl8 = wl;
    applySimbaPrecisions(wl8);
    ArchSpec modern = buildModernAccelerator();
    BoundArch mba(modern, wl8);
    report("my-simba:", mba, sunstoneOptimize(mba));

    // Same layer on the flat conventional machine for contrast.
    ArchSpec conv = makeConventional();
    BoundArch cba(conv, wl);
    report("conventional:", cba, sunstoneOptimize(cba));
    return 0;
}
