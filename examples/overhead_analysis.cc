/**
 * @file
 * End-to-end DianNao flow (Section V-D at example scale): schedule a
 * convolution on the DianNao-like accelerator, compile the mapping to
 * the 256-bit control ISA, run the instruction-level simulator, and
 * compare against naive DRAM streaming -- printing the instruction and
 * data-reordering overheads the paper quantifies in Fig. 9.
 *
 * Usage:  ./build/examples/overhead_analysis
 */

#include <cstdio>

#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "diannao/simulator.hh"
#include "workload/zoo.hh"

using namespace sunstone;

int
main()
{
    ConvShape sh;
    sh.n = 1;
    sh.k = 64;
    sh.c = 64;
    sh.p = 14;
    sh.q = 14;
    sh.r = 3;
    sh.s = 3;
    Workload wl = makeConv2D(sh);
    BoundArch ba(makeDianNaoLike(), wl);
    std::printf("workload: %s\n\n", wl.toString().c_str());

    SunstoneResult r = sunstoneOptimize(ba);
    if (!r.found) {
        std::printf("no valid mapping found\n");
        return 1;
    }
    std::printf("dataflow chosen by Sunstone:\n%s\n",
                r.mapping.toString(ba).c_str());

    auto prog = diannao::compileMapping(ba, r.mapping);
    std::printf("compiled %zu instructions (%lld MACs sequenced, "
                "%lld words reordered once in DRAM)\n",
                prog.program.size(),
                static_cast<long long>(prog.totalMacs),
                static_cast<long long>(prog.reorderWords));

    // Show the first few instructions of the stream.
    std::printf("\nfirst instructions:\n");
    for (std::size_t i = 0; i < prog.program.size() && i < 8; ++i)
        std::printf("  %s\n", prog.program[i].toString().c_str());

    auto tiled = diannao::simulate(ba, prog);
    auto naive = diannao::simulateNaiveStreaming(ba);

    auto row = [](const char *name, double pj, double total) {
        std::printf("  %-12s %12.4g pJ  (%5.2f%%)\n", name, pj,
                    100.0 * pj / total);
    };
    std::printf("\nnaive streaming:   %.4g pJ total\n", naive.totalPj);
    row("MACs", naive.macPj, naive.totalPj);
    row("DRAM", naive.dramPj, naive.totalPj);

    std::printf("\ntiled + unrolled:  %.4g pJ total  (%.2fx better)\n",
                tiled.totalPj, naive.totalPj / tiled.totalPj);
    row("MACs", tiled.macPj, tiled.totalPj);
    row("DRAM", tiled.dramPj, tiled.totalPj);
    row("NBin", tiled.nbinPj, tiled.totalPj);
    row("SB", tiled.sbPj, tiled.totalPj);
    row("NBout", tiled.nboutPj, tiled.totalPj);
    row("instructions", tiled.instrPj, tiled.totalPj);
    row("reordering", tiled.reorderPj, tiled.totalPj);
    return 0;
}
