/**
 * @file
 * The save/re-use workflow: search once, persist the workload, the
 * architecture, and the found dataflow as text; then reload all three,
 * re-evaluate bit-identically, and compile the saved mapping for the
 * DianNao-like machine — the flow a deployment pipeline would script
 * around the `sunstone` CLI.
 *
 * Usage:  ./build/examples/saved_dataflows [output-dir]
 */

#include <cstdio>

#include "arch/arch_config.hh"
#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "diannao/simulator.hh"
#include "mapping/serialize.hh"
#include "workload/zoo.hh"

using namespace sunstone;

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "/tmp";

    // --- Search phase -------------------------------------------------
    ConvShape sh;
    sh.n = 1;
    sh.k = 64;
    sh.c = 32;
    sh.p = 14;
    sh.q = 14;
    sh.r = 3;
    sh.s = 3;
    Workload wl = makeConv2D(sh);
    ArchSpec arch = makeDianNaoLike();
    BoundArch ba(arch, wl);

    SunstoneResult r = sunstoneOptimize(ba);
    if (!r.found) {
        std::printf("no valid mapping found\n");
        return 1;
    }
    std::printf("searched: EDP %.4g J*s in %.3f s\n", r.cost.edp,
                r.seconds);

    const std::string wl_path = dir + "/conv.workload";
    const std::string arch_path = dir + "/diannao.arch";
    const std::string map_path = dir + "/conv.mapping";
    saveWorkloadFile(wl, wl_path);
    saveArchFile(arch, arch_path);
    saveMappingFile(r.mapping, ba, map_path);
    std::printf("saved %s, %s, %s\n", wl_path.c_str(), arch_path.c_str(),
                map_path.c_str());

    // --- Reload phase (a separate process would start here) -----------
    Workload wl2 = loadWorkloadFile(wl_path);
    ArchSpec arch2 = loadArchFile(arch_path);
    BoundArch ba2(arch2, wl2);
    Mapping m2 = loadMappingFile(map_path, ba2);

    CostResult again = evaluateMapping(ba2, m2);
    std::printf("reloaded: EDP %.4g J*s (%s)\n", again.edp,
                again.edp == r.cost.edp ? "bit-identical" : "MISMATCH");

    // --- Deployment phase: lower to the DianNao ISA --------------------
    auto prog = diannao::compileMapping(ba2, m2);
    auto sim = diannao::simulate(ba2, prog);
    std::printf("compiled %zu instructions; simulated %.4g pJ, "
                "%.4g cycles\n",
                prog.program.size(), sim.totalPj, sim.cycles);
    std::printf("first instruction: %s\n",
                prog.program.front().toString().c_str());
    return 0;
}
