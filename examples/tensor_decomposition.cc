/**
 * @file
 * Versatility demo (the paper's Section V-B1 / Fig. 6 story): the same
 * scheduler, with zero workload-specific code, maps the bottleneck
 * kernels of CP and Tucker decomposition (MTTKRP, TTMc) and the ALS
 * kernel SDDMM onto the conventional accelerator. The kernels come
 * straight from Table II; shapes are scaled-down FROSTT-like modes so
 * the example finishes in seconds.
 *
 * Usage:  ./build/examples/tensor_decomposition
 */

#include <cstdio>

#include "arch/presets.hh"
#include "core/sunstone.hh"
#include "workload/zoo.hh"

using namespace sunstone;

namespace {

void
schedule(const Workload &wl, const ArchSpec &arch)
{
    BoundArch ba(arch, wl);
    SunstoneResult r = sunstoneOptimize(ba);
    std::printf("== %s\n   %s\n", wl.name().c_str(),
                wl.toString().c_str());
    if (!r.found) {
        std::printf("   no valid mapping found\n\n");
        return;
    }
    std::printf("   EDP %.4g J*s | energy %.4g pJ | util %.1f%% | "
                "%lld candidates in %.3f s\n",
                r.cost.edp, r.cost.totalEnergyPj,
                100.0 * r.cost.utilization,
                static_cast<long long>(r.candidatesExamined), r.seconds);
    std::printf("%s\n", r.mapping.toString(ba).c_str());
}

} // namespace

int
main()
{
    ArchSpec arch = makeConventional();

    // MTTKRP: out[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j]
    // (CP decomposition, rank 32 as in Fig. 6).
    schedule(makeMTTKRP(2048, 1024, 1024, 32, "mttkrp_demo"), arch);

    // TTMc: out[i,l,m] = sum_{j,k} A[i,j,k] * B[j,l] * C[k,m]
    // (Tucker decomposition, rank 8).
    schedule(makeTTMc(2048, 1024, 1024, 8, 8, "ttmc_demo"), arch);

    // SDDMM: out[i,j] = A[i,j] * sum_k B[i,k] * C[k,j]
    // (alternating least squares, rank 512).
    schedule(makeSDDMM(1024, 1024, 512, "sddmm_demo"), arch);

    // And a transformer-flavored matrix chain (MMc) for good measure.
    schedule(makeMMc(512, 512, 512, 512, "attention_mmc_demo"), arch);
    return 0;
}
