/**
 * @file
 * `sunstone report`: offline digestion of the run artifacts the other
 * subcommands write. It ingests any subset of
 *
 *   --stats-json F        map/map --net outcome + engine stats
 *   --metrics-json F      {"engine": ..., "registry": ...}
 *   --snapshot-json F     live-telemetry JSONL time series
 *   --convergence-json F  incumbent trajectories
 *   --bench-json F        a `sunstone bench` artifact (BENCH_eval.json
 *                         or BENCH_search.json; schema-sniffed)
 *   --trace-json F        Chrome trace_event spans
 *   --diag-dir D          a crash/exit bundle (reads metrics.json,
 *                         engine.json, events.jsonl, crash.txt, and
 *                         trace.json inside D)
 *
 * and prints, per section: the run summary, wall-clock attribution by
 * phase/mapper (engine phase_seconds, largest first), evaluation-latency
 * percentiles (p50/p90/p99 interpolated from the histogram buckets),
 * the cache hit/miss breakdown, per-layer/per-chain fusion outcomes,
 * the snapshot time series (records, eval-rate trend, final search
 * states), convergence trajectories with time-to-quality (evals and
 * seconds to within 1%/5% of each trajectory's final metric), the
 * surrogate/warm-start counters from the metrics registry, bench timing
 * tables (iterations whose coefficient of variation exceeds 15% are
 * flagged as noisy), span totals, and the flight-event tail. Sections
 * whose artifact was not supplied are skipped, so the command composes
 * with whatever a run actually produced.
 *
 * Torn trailing lines in the snapshot JSONL (a killed writer) are
 * counted and skipped — every complete line parses by construction.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/convergence.hh"
#include "obs/metrics.hh"

namespace sunstone {
namespace report {

namespace {

bool
loadFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Parses `path` as one JSON document; fatal() on junk. */
bool
loadJson(const std::string &path, JsonValue &out)
{
    std::string text;
    if (!loadFile(path, text))
        return false;
    std::string err;
    if (!parseJson(text, out, &err))
        SUNSTONE_FATAL("cannot parse '", path, "': ", err);
    return true;
}

void
section(const char *title)
{
    std::printf("\n== %s ==\n", title);
}

/** Rebuilds a HistogramSnapshot from its toJson() rendering. */
bool
histogramFromJson(const JsonValue &v, obs::HistogramSnapshot &h)
{
    const JsonValue *bounds = v.find("bounds");
    const JsonValue *counts = v.find("counts");
    if (!bounds || !counts || !bounds->isArray() || !counts->isArray())
        return false;
    for (const JsonValue &b : bounds->items)
        h.bounds.push_back(b.asDouble());
    for (const JsonValue &c : counts->items) {
        h.counts.push_back(c.asInt());
        h.count += h.counts.back();
    }
    if (const JsonValue *s = v.find("sum"))
        h.sum = s->asDouble();
    return true;
}

// ---------------------------------------------------------------------
// Sections. Each takes the parsed artifact(s) it reads and prints
// nothing when the data is absent, so the report composes.
// ---------------------------------------------------------------------

void
printPhaseAttribution(const JsonValue &engine)
{
    const JsonValue *phases = engine.find("phase_seconds");
    if (!phases || !phases->isObject() || phases->fields.empty())
        return;
    section("wall-clock attribution");
    std::vector<std::pair<std::string, double>> rows;
    double total = 0;
    for (const auto &[name, v] : phases->fields) {
        rows.emplace_back(name, v.asDouble());
        total += rows.back().second;
    }
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    for (const auto &[name, secs] : rows)
        std::printf("  %-32s %10.3f s  %5.1f%%\n", name.c_str(), secs,
                    total > 0 ? 100.0 * secs / total : 0.0);
    std::printf("  %-32s %10.3f s\n", "total attributed", total);
}

void
printEvalLatency(const JsonValue &engine)
{
    const JsonValue *lat = engine.find("eval_latency_us");
    if (!lat)
        return;
    obs::HistogramSnapshot h;
    if (!histogramFromJson(*lat, h) || h.count == 0)
        return;
    section("evaluation latency");
    // Percentiles are re-derived from the buckets so old artifacts
    // (written before the p50/p90/p99 summary fields) report too.
    std::printf("  evaluations timed   %lld\n",
                static_cast<long long>(h.count));
    std::printf("  mean                %.1f us\n",
                h.sum / static_cast<double>(h.count));
    std::printf("  p50                 %.1f us\n", h.percentile(50));
    std::printf("  p90                 %.1f us\n", h.percentile(90));
    std::printf("  p99                 %.1f us\n", h.percentile(99));
}

void
printCache(const JsonValue &engine)
{
    const JsonValue *hits = engine.find("cache_hits");
    const JsonValue *misses = engine.find("cache_misses");
    if (!hits || !misses)
        return;
    section("cache");
    const double h = hits->asDouble();
    const double m = misses->asDouble();
    auto row = [&](const char *label, const char *key) {
        if (const JsonValue *v = engine.find(key))
            std::printf("  %-18s %lld\n", label,
                        static_cast<long long>(v->asInt()));
    };
    row("evaluations", "evaluations");
    row("cache hits", "cache_hits");
    row("cache misses", "cache_misses");
    if (h + m > 0)
        std::printf("  %-18s %.1f%%\n", "hit rate",
                    100.0 * h / (h + m));
    row("prefix hits", "prefix_hits");
    row("prefix misses", "prefix_misses");
    row("evictions", "evictions");
    row("scratch reuses", "scratch_reuses");
    row("invalid mappings", "invalid_mappings");
    row("prunes", "prunes");
    row("batches", "batches");
}

void
printRunSummary(const JsonValue &result)
{
    section("run summary");
    if (const JsonValue *m = result.find("mapper")) {
        // Single-layer map document.
        std::printf("  mapper         %s\n", m->asString().c_str());
        if (const JsonValue *v = result.find("found"))
            std::printf("  found          %s\n",
                        v->asBool() ? "yes" : "no");
        if (const JsonValue *v = result.find("stop_reason"))
            std::printf("  stop reason    %s\n", v->asString().c_str());
        if (const JsonValue *v = result.find("seconds"))
            std::printf("  search time    %.3f s\n", v->asDouble());
        if (const JsonValue *v = result.find("mappings_evaluated"))
            std::printf("  evaluations    %lld\n",
                        static_cast<long long>(v->asInt()));
        if (const JsonValue *v = result.find("edp"))
            std::printf("  best EDP       %.6g J*s\n", v->asDouble());
        return;
    }
    // Network-schedule document.
    if (const JsonValue *v = result.find("stopReason"))
        std::printf("  stop reason    %s\n", v->asString().c_str());
    if (const JsonValue *v = result.find("layersTotal"))
        std::printf("  layers         %lld",
                    static_cast<long long>(v->asInt()));
    if (const JsonValue *v = result.find("layersUnique"))
        std::printf(" (%lld unique searched)\n",
                    static_cast<long long>(v->asInt()));
    if (const JsonValue *v = result.find("seconds"))
        std::printf("  schedule time  %.3f s\n", v->asDouble());
    if (const JsonValue *v = result.find("totalEnergyPj"))
        std::printf("  total energy   %.6g pJ\n", v->asDouble());
    if (const JsonValue *v = result.find("totalEdp"))
        std::printf("  total EDP      %.6g J*s\n", v->asDouble());
}

void
printLayers(const JsonValue &result)
{
    const JsonValue *layers = result.find("layers");
    if (!layers || !layers->isArray() || layers->items.empty())
        return;
    section("per-layer outcomes");
    std::printf("  %-16s %6s %-8s %10s %12s %s\n", "layer", "count",
                "via", "evals", "seconds", "stop");
    for (const JsonValue &l : layers->items) {
        const bool dedup =
            l.find("deduplicated") && l.find("deduplicated")->asBool();
        const bool fused = l.find("fused") && l.find("fused")->asBool();
        const char *via = dedup ? "dedup" : fused ? "fused" : "search";
        std::printf("  %-16s %6lld %-8s %10lld %12.3f %s\n",
                    l.find("name") ? l.find("name")->asString().c_str()
                                   : "?",
                    static_cast<long long>(
                        l.find("count") ? l.find("count")->asInt() : 0),
                    via,
                    static_cast<long long>(
                        l.find("candidatesExamined")
                            ? l.find("candidatesExamined")->asInt()
                            : 0),
                    l.find("seconds") ? l.find("seconds")->asDouble() : 0,
                    l.find("stopReason")
                        ? l.find("stopReason")->asString().c_str()
                        : "");
    }
}

void
printFusion(const JsonValue &result)
{
    const JsonValue *fusion = result.find("fusion");
    if (!fusion || !fusion->isObject())
        return;
    section("fusion");
    if (const JsonValue *v = fusion->find("mode"))
        std::printf("  mode           %s\n", v->asString().c_str());
    const auto count = [&](const char *key) {
        const JsonValue *v = fusion->find(key);
        return static_cast<long long>(v ? v->asInt() : 0);
    };
    std::printf("  chains         %lld fusable, %lld fused (%lld ops)\n",
                count("groupsFusable"), count("groupsFused"),
                count("opsFused"));
    const JsonValue *groups = fusion->find("groups");
    if (!groups || !groups->isArray())
        return;
    for (const JsonValue &gr : groups->items) {
        const JsonValue *members = gr.find("members");
        if (!members || !members->isArray() || members->items.size() < 2)
            continue; // singletons carry no decision
        std::string chain;
        for (const JsonValue &m : members->items) {
            if (!chain.empty())
                chain += "+";
            chain += m.asString();
        }
        const bool fused = gr.find("fused") && gr.find("fused")->asBool();
        std::string verdict = fused ? "fused" : "unfused";
        if (const JsonValue *r = gr.find("rejectReason");
            r && !r->asString().empty())
            verdict += " (" + r->asString() + ")";
        std::printf("  %-34s %-18s", chain.c_str(), verdict.c_str());
        if (const JsonValue *s = gr.find("searchSeconds"))
            std::printf(" %9.3f s", s->asDouble());
        if (const JsonValue *e = gr.find("candidatesExamined"))
            std::printf(" %10lld evals",
                        static_cast<long long>(e->asInt()));
        std::printf("\n");
    }
}

void
printSnapshots(const std::string &path)
{
    std::string text;
    if (!loadFile(path, text))
        SUNSTONE_FATAL("cannot read '", path, "'");
    std::istringstream is(text);
    std::string line;
    std::vector<JsonValue> records;
    int torn = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JsonValue v;
        if (parseJson(line, v))
            records.push_back(std::move(v));
        else
            ++torn;
    }
    section("snapshots");
    std::printf("  records        %zu\n", records.size());
    if (torn)
        std::printf("  torn lines     %d (skipped)\n", torn);
    if (records.empty())
        return;
    const JsonValue &last = records.back();
    const auto totalEvals = [](const JsonValue &rec) {
        std::int64_t n = 0;
        if (const JsonValue *ss = rec.find("searches"); ss && ss->isArray())
            for (const JsonValue &s : ss->items)
                if (const JsonValue *e = s.find("evaluated"))
                    n += e->asInt();
        return n;
    };
    const double span =
        last.find("elapsed_seconds")
            ? last.find("elapsed_seconds")->asDouble()
            : 0;
    std::printf("  covers         %.1f s\n", span);
    if (const JsonValue *u = last.find("units"))
        std::printf("  units          %lld/%lld done\n",
                    static_cast<long long>(
                        u->find("done") ? u->find("done")->asInt() : 0),
                    static_cast<long long>(
                        u->find("total") ? u->find("total")->asInt()
                                         : 0));
    const std::int64_t evals = totalEvals(last);
    std::printf("  evaluations    %lld", static_cast<long long>(evals));
    if (span > 0)
        std::printf(" (%.0f/s overall)", evals / span);
    std::printf("\n");
    if (const JsonValue *ss = last.find("searches");
        ss && ss->isArray() && !ss->items.empty()) {
        std::printf("  searches       %zu\n", ss->items.size());
        for (const JsonValue &s : ss->items) {
            const bool done =
                s.find("done") && s.find("done")->asBool();
            std::printf("    %-28s %10lld evals  %s%s\n",
                        s.find("label")
                            ? s.find("label")->asString().c_str()
                            : "?",
                        static_cast<long long>(
                            s.find("evaluated")
                                ? s.find("evaluated")->asInt()
                                : 0),
                        done ? "done" : "running",
                        done && s.find("stop_reason")
                            ? (" (" + s.find("stop_reason")->asString() +
                               ")")
                                  .c_str()
                            : "");
        }
    }
}

void
printConvergence(const JsonValue &doc)
{
    const JsonValue *trajs = doc.find("trajectories");
    if (!trajs || !trajs->isArray() || trajs->items.empty())
        return;
    section("convergence");
    for (const JsonValue &t : trajs->items) {
        const JsonValue *pts = t.find("points");
        const std::size_t n =
            pts && pts->isArray() ? pts->items.size() : 0;
        std::printf("  %-34s %4zu improvements",
                    t.find("name") ? t.find("name")->asString().c_str()
                                   : "?",
                    n);
        if (n > 0) {
            const JsonValue &fin = pts->items.back();
            std::printf("  final metric %.6g at %lld evals",
                        fin.find("metric")
                            ? fin.find("metric")->asDouble()
                            : 0,
                        static_cast<long long>(
                            fin.find("evaluations")
                                ? fin.find("evaluations")->asInt()
                                : 0));
        }
        std::printf("\n");
    }
}

/**
 * Time-to-quality per trajectory (DESIGN.md §15): the evaluation count
 * and wall-clock at which the incumbent first came within 1% and 5% of
 * the trajectory's final metric — the number the surrogate ranker is
 * meant to shrink.
 */
void
printTimeToQuality(const JsonValue &doc)
{
    const JsonValue *trajs = doc.find("trajectories");
    if (!trajs || !trajs->isArray() || trajs->items.empty())
        return;
    section("time to quality");
    std::printf("  %-34s %10s %10s %12s %12s\n", "trajectory",
                "to 5% (ev)", "to 1% (ev)", "to 1% (s)", "final");
    for (const JsonValue &t : trajs->items) {
        const JsonValue *pts = t.find("points");
        if (!pts || !pts->isArray() || pts->items.empty())
            continue;
        std::vector<obs::ConvergencePoint> points;
        points.reserve(pts->items.size());
        for (const JsonValue &p : pts->items) {
            obs::ConvergencePoint cp;
            if (const JsonValue *v = p.find("seconds"))
                cp.seconds = v->asDouble();
            if (const JsonValue *v = p.find("evaluations"))
                cp.evaluations = v->asInt();
            if (const JsonValue *v = p.find("metric"))
                cp.metric = v->asDouble();
            points.push_back(cp);
        }
        const obs::TimeToQuality q = obs::timeToQuality(points);
        std::printf("  %-34s %10lld %10lld %12.3f %12.6g\n",
                    t.find("name") ? t.find("name")->asString().c_str()
                                   : "?",
                    static_cast<long long>(q.evalsTo5pct),
                    static_cast<long long>(q.evalsTo1pct),
                    q.secondsTo1pct, q.finalMetric);
    }
}

/**
 * Surrogate ranker and warm-start counters from the flat metrics
 * registry ("search.<mapper>.surrogate.*" / ".warmstart.*" keys).
 */
void
printSurrogate(const JsonValue &metricsDoc)
{
    const JsonValue *reg = metricsDoc.find("registry");
    if (!reg || !reg->isObject())
        return;
    std::vector<std::pair<std::string, double>> rows;
    for (const auto &[name, v] : reg->fields)
        if (name.find(".surrogate.") != std::string::npos ||
            name.find(".warmstart.") != std::string::npos)
            rows.emplace_back(name, v.asDouble());
    if (rows.empty())
        return;
    section("surrogate / warm start");
    std::sort(rows.begin(), rows.end());
    for (const auto &[name, v] : rows)
        std::printf("  %-40s %.6g\n", name.c_str(), v);
}

/** CV above which a bench iteration set is reported as noisy. */
constexpr double kNoisyCv = 0.15;

/**
 * A `sunstone bench` artifact. Sniffs the schema: the timing document
 * (BENCH_eval.json) prints best/median/CV per benchmark and flags noisy
 * iteration sets; the search time-to-quality document
 * (BENCH_search.json) prints per-workload eval reductions.
 */
void
printBench(const JsonValue &doc)
{
    if (const JsonValue *benches = doc.find("benchmarks");
        benches && benches->isArray()) {
        section("bench timings");
        std::printf("  %-30s %12s %12s %8s\n", "benchmark", "best s",
                    "median s", "cv");
        int noisy = 0;
        for (const JsonValue &b : benches->items) {
            const double cv =
                b.find("cv") ? b.find("cv")->asDouble() : 0;
            const bool flag = cv > kNoisyCv;
            noisy += flag;
            std::printf("  %-30s %12.6f %12.6f %7.1f%%%s\n",
                        b.find("name")
                            ? b.find("name")->asString().c_str()
                            : "?",
                        b.find("best_seconds")
                            ? b.find("best_seconds")->asDouble()
                            : 0,
                        b.find("median_seconds")
                            ? b.find("median_seconds")->asDouble()
                            : 0,
                        100.0 * cv, flag ? "  NOISY" : "");
        }
        if (noisy)
            std::printf("  %d benchmark(s) above %.0f%% CV: timings on "
                        "this host are unstable; prefer median over "
                        "best/mean.\n",
                        noisy, 100.0 * kNoisyCv);
        return;
    }
    const JsonValue *wls = doc.find("workloads");
    if (!wls || !wls->isArray())
        return;
    section("search time to quality (bench)");
    std::printf("  %-24s %12s %12s %12s %s\n", "workload", "base best",
                "surr. cut", "warm cut", "within 1%");
    for (const JsonValue &w : wls->items) {
        const auto pct = [&](const char *key) {
            const JsonValue *v = w.find(key);
            return v ? 100.0 * v->asDouble() : 0.0;
        };
        std::printf("  %-24s %12.6g %11.1f%% %11.1f%% %s\n",
                    w.find("name") ? w.find("name")->asString().c_str()
                                   : "?",
                    w.find("baseline_best")
                        ? w.find("baseline_best")->asDouble()
                        : 0,
                    pct("eval_reduction"), pct("warm_reduction"),
                    w.find("on_within_1pct") &&
                            w.find("on_within_1pct")->asBool()
                        ? "yes"
                        : "NO");
    }
}

void
printTrace(const JsonValue &doc)
{
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return;
    // Aggregate complete ("X") spans by name.
    std::map<std::string, std::pair<std::int64_t, double>> byName;
    for (const JsonValue &e : events->items) {
        const JsonValue *ph = e.find("ph");
        if (!ph || ph->asString() != "X")
            continue;
        const std::string name =
            e.find("name") ? e.find("name")->asString() : "?";
        auto &[count, us] = byName[name];
        ++count;
        if (const JsonValue *d = e.find("dur"))
            us += d->asDouble();
    }
    if (byName.empty())
        return;
    section("trace spans");
    std::vector<std::pair<std::string, std::pair<std::int64_t, double>>>
        rows(byName.begin(), byName.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.second > b.second.second;
    });
    const std::size_t shown = std::min<std::size_t>(rows.size(), 15);
    for (std::size_t i = 0; i < shown; ++i)
        std::printf("  %-40s %6lld x %12.3f ms total\n",
                    rows[i].first.c_str(),
                    static_cast<long long>(rows[i].second.first),
                    rows[i].second.second / 1000.0);
    if (rows.size() > shown)
        std::printf("  ... %zu more span names\n", rows.size() - shown);
}

void
printFlightEvents(const std::string &path)
{
    std::string text;
    if (!loadFile(path, text))
        return;
    std::istringstream is(text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    if (lines.empty())
        return;
    section("flight events");
    std::printf("  %zu events retained; most recent last:\n",
                lines.size());
    const std::size_t shown = std::min<std::size_t>(lines.size(), 20);
    for (std::size_t i = lines.size() - shown; i < lines.size(); ++i) {
        JsonValue v;
        if (!parseJson(lines[i], v))
            continue;
        std::printf("  %12.3f s  %-20s %s\n",
                    (v.find("ns") ? v.find("ns")->asDouble() : 0) / 1e9,
                    v.find("kind") ? v.find("kind")->asString().c_str()
                                   : "?",
                    v.find("detail")
                        ? v.find("detail")->asString().c_str()
                        : "");
    }
}

} // anonymous namespace

int
run(const std::map<std::string, std::string> &kv)
{
    const auto get = [&](const char *k) {
        auto it = kv.find(k);
        return it == kv.end() ? std::string() : it->second;
    };
    std::string statsPath = get("stats-json");
    std::string metricsPath = get("metrics-json");
    std::string snapshotPath = get("snapshot-json");
    std::string convergencePath = get("convergence-json");
    std::string benchPath = get("bench-json");
    std::string tracePath = get("trace-json");
    const std::string diagDir = get("diag-dir");

    if (statsPath.empty() && metricsPath.empty() &&
        snapshotPath.empty() && convergencePath.empty() &&
        benchPath.empty() && tracePath.empty() && diagDir.empty()) {
        std::printf(
            "usage: sunstone report [--stats-json F] [--metrics-json F]\n"
            "                       [--snapshot-json F] "
            "[--convergence-json F]\n"
            "                       [--bench-json F] [--trace-json F] "
            "[--diag-dir D]\n");
        return 2;
    }

    std::printf("sunstone report\n");

    JsonValue stats, metricsDoc, diagMetrics, diagEngine;
    const bool haveStats =
        !statsPath.empty() && loadJson(statsPath, stats);
    if (!statsPath.empty() && !haveStats)
        SUNSTONE_FATAL("cannot read '", statsPath, "'");
    const bool haveMetrics =
        !metricsPath.empty() && loadJson(metricsPath, metricsDoc);
    if (!metricsPath.empty() && !haveMetrics)
        SUNSTONE_FATAL("cannot read '", metricsPath, "'");

    if (!diagDir.empty()) {
        std::string crash;
        if (loadFile(diagDir + "/crash.txt", crash)) {
            section("diag bundle");
            std::printf("  %s", crash.c_str());
        }
        loadJson(diagDir + "/metrics.json", diagMetrics);
        loadJson(diagDir + "/engine.json", diagEngine);
    }

    // The engine document can arrive through --stats-json,
    // --metrics-json, or a diag bundle; first supplier wins.
    const JsonValue *engine = nullptr;
    if (haveStats)
        engine = stats.find("engine");
    if (!engine && haveMetrics)
        engine = metricsDoc.find("engine");
    if (!engine)
        engine = diagEngine.find("engine");

    if (haveStats)
        if (const JsonValue *result = stats.find("result")) {
            printRunSummary(*result);
            printLayers(*result);
            printFusion(*result);
        }
    if (engine) {
        printPhaseAttribution(*engine);
        printEvalLatency(*engine);
        printCache(*engine);
    }
    if (!snapshotPath.empty())
        printSnapshots(snapshotPath);
    if (!convergencePath.empty()) {
        JsonValue conv;
        if (!loadJson(convergencePath, conv))
            SUNSTONE_FATAL("cannot read '", convergencePath, "'");
        printConvergence(conv);
        printTimeToQuality(conv);
    }
    if (haveMetrics)
        printSurrogate(metricsDoc);
    else if (!diagDir.empty())
        printSurrogate(diagMetrics);
    if (!benchPath.empty()) {
        JsonValue benchDoc;
        if (!loadJson(benchPath, benchDoc))
            SUNSTONE_FATAL("cannot read '", benchPath, "'");
        printBench(benchDoc);
    }
    if (!tracePath.empty() || !diagDir.empty()) {
        JsonValue trace;
        const std::string tp =
            !tracePath.empty() ? tracePath : diagDir + "/trace.json";
        if (loadJson(tp, trace))
            printTrace(trace);
        else if (!tracePath.empty())
            SUNSTONE_FATAL("cannot read '", tracePath, "'");
    }
    if (!diagDir.empty())
        printFlightEvents(diagDir + "/events.jsonl");
    return 0;
}

} // namespace report
} // namespace sunstone
