/**
 * @file
 * Implementation of `sunstone bench`: a seeded micro/macro benchmark of
 * the evaluation engine and the Sunstone search.
 *
 * Five benchmarks run, each `--warmup` throwaway + `--repeat` timed
 * iterations (best-of wins, mean reported alongside):
 *
 *  - eval_random     SoA batch-evaluator throughput over a fixed set of
 *                    seeded diffcheck triples (single thread, no engine,
 *                    no memo cache): per triple, a pre-built
 *                    BatchEvaluator evaluates a seeded batch of random
 *                    mappings into persistent result buffers — the
 *                    steady-state fast path of the model.
 *  - eval_scalar     the historical spec: one evaluateMapping() call
 *                    (fresh CostResult, thread scratch) per evaluation.
 *                    Kept so the trajectory of the scalar path stays
 *                    comparable across optimization PRs.
 *  - batch_conv      EvalEngine::evaluateBatch() over random valid
 *                    mappings of one conv layer (cache bypassed) — the
 *                    batched fast path across the shared pool.
 *  - search_conventional / search_simba
 *                    end-to-end sunstoneOptimize() on a ResNet-style
 *                    conv layer; evals/sec is the engine's evaluation
 *                    counter delta over the search wall-clock.
 *  - search_ttq      time-to-quality of the surrogate ranker (DESIGN.md
 *                    §15): per workload (a large conv layer and a large
 *                    matmul) one seeded timeloop search with --surrogate
 *                    off, one with it on, and one warm-started repeat
 *                    from an in-memory WarmStartStore. Records each
 *                    run's evaluations-to-within-1%-of-the-baseline-best
 *                    and the resulting eval reductions into a separate
 *                    --search-out file (default BENCH_search.json,
 *                    schema "sunstone-search-ttq-v1", full convergence
 *                    trajectories included). Runs once — it measures
 *                    evaluation counts, which are seed-deterministic,
 *                    not wall time.
 *
 * Timing noise: alongside best/mean every benchmark reports the median
 * iteration and the coefficient of variation (stddev/mean) of the timed
 * repeats, so consumers (sunstone report) can flag unstable hosts.
 *
 * Every eval/batch benchmark reports a `checksum` extra: a deterministic
 * reduction (fixed index order, computed once from the final results,
 * outside the timed region), so it is a pure function of the seed —
 * independent of --repeat/--warmup and bitwise comparable across runs
 * and hosts. (It used to accumulate across every warmup and timed
 * iteration inside the loop, which changed with the iteration counts.)
 *
 * Results land in --out (default BENCH_eval.json) under the stable
 * "sunstone-bench-v1" schema so CI can archive and diff them.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "arch/presets.hh"
#include "common/parse.hh"
#include "common/timer.hh"
#include "core/sunstone.hh"
#include "mappers/timeloop_mapper.hh"
#include "model/batch_eval.hh"
#include "model/diffcheck.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/progress.hh"
#include "obs/snapshot.hh"
#include "search/warmstart.hh"
#include "workload/workload.hh"
#include "workload/zoo.hh"

namespace sunstone {
namespace bench {

namespace {

struct BenchConfig
{
    std::uint64_t seed = 1;
    int repeat = 5;
    int warmup = 1;
    unsigned threads = 4;
    std::string out = "BENCH_eval.json";
    std::string searchOut = "BENCH_search.json";
    std::string only; // substring filter on benchmark names

    /**
     * StopPolicy for the search benchmarks (--deadline-ms/--max-evals/
     * --plateau), so a bench run can be bounded the same way a map run
     * is. Unset fields leave the search unbounded, as before.
     */
    StopPolicy policy;
};

struct BenchResult
{
    std::string name;
    std::string kind; // "eval" | "batch" | "search"
    std::int64_t evalsPerIter = 0;
    double bestSeconds = 0;
    double meanSeconds = 0;
    double medianSeconds = 0;
    double cv = 0;          // stddev/mean of the timed repeats
    double evalsPerSec = 0; // from the best iteration
    std::map<std::string, double> extra;
};

/** Runs fn() warmup+repeat times, returns per-repeat seconds. */
template <typename Fn>
std::vector<double>
timeIters(const BenchConfig &cfg, Fn &&fn)
{
    std::vector<double> secs;
    for (int i = 0; i < cfg.warmup + cfg.repeat; ++i) {
        Timer t;
        fn();
        const double s = t.seconds();
        if (i >= cfg.warmup)
            secs.push_back(s);
    }
    return secs;
}

void
finalize(BenchResult &r, const std::vector<double> &secs)
{
    r.bestSeconds = *std::min_element(secs.begin(), secs.end());
    r.meanSeconds = std::accumulate(secs.begin(), secs.end(), 0.0) /
                    static_cast<double>(secs.size());
    std::vector<double> sorted = secs;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    r.medianSeconds = (n % 2) ? sorted[n / 2]
                              : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    double var = 0;
    for (double s : secs)
        var += (s - r.meanSeconds) * (s - r.meanSeconds);
    var /= static_cast<double>(n);
    r.cv = r.meanSeconds > 0 ? std::sqrt(var) / r.meanSeconds : 0;
    r.evalsPerSec =
        static_cast<double>(r.evalsPerIter) / std::max(r.bestSeconds, 1e-12);
}

/** A pre-built diffcheck triple ready to evaluate. */
struct Triple
{
    Workload wl;
    ArchSpec arch;
    BoundArch ba;
    Mapping m;
};

std::vector<Triple>
makeTriples(std::uint64_t seed, int n)
{
    std::vector<Triple> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
        std::mt19937_64 rng = diffcheckTrialRng(seed + i);
        Workload wl = randomDiffcheckWorkload(rng);
        ArchSpec arch = randomDiffcheckArch(wl, rng);
        BoundArch ba(arch, wl);
        Mapping m = randomDiffcheckMapping(ba, rng);
        out.push_back({std::move(wl), std::move(arch), std::move(ba),
                       std::move(m)});
    }
    return out;
}

/**
 * Raw batch-evaluator throughput, no engine, single thread: per triple a
 * pre-built BatchEvaluator runs a seeded batch of random mappings into
 * persistent results — nothing allocates inside the timed region.
 */
BenchResult
benchEvalRandom(const BenchConfig &cfg)
{
    constexpr int kTriples = 256;
    constexpr int kMappings = 20;
    auto triples = makeTriples(cfg.seed, kTriples);

    std::vector<std::vector<Mapping>> batches(kTriples);
    std::vector<std::vector<CostResult>> out(kTriples);
    std::vector<BatchEvaluator> evals;
    evals.reserve(kTriples);
    for (int i = 0; i < kTriples; ++i) {
        // A fresh stream, offset past the triple seeds so mapping draws
        // never replay a triple's construction stream.
        std::mt19937_64 rng = diffcheckTrialRng(cfg.seed + kTriples + i);
        batches[i].reserve(kMappings);
        for (int j = 0; j < kMappings; ++j)
            batches[i].push_back(
                randomDiffcheckMapping(triples[i].ba, rng));
        out[i].resize(kMappings);
        evals.emplace_back(triples[i].ba, CostModelOptions{});
    }

    BenchResult r;
    r.name = "eval_random";
    r.kind = "eval";
    r.evalsPerIter = static_cast<std::int64_t>(kTriples) * kMappings;
    auto secs = timeIters(cfg, [&] {
        for (int i = 0; i < kTriples; ++i)
            evals[i].evaluate(batches[i], out[i].data());
    });
    finalize(r, secs);

    // Deterministic reduction in fixed index order from the final
    // results: a pure function of the seed.
    double checksum = 0;
    for (int i = 0; i < kTriples; ++i)
        for (int j = 0; j < kMappings; ++j)
            checksum += out[i][j].valid ? out[i][j].totalEnergyPj : 0.0;
    r.extra["checksum"] = checksum;
    r.extra["simd_active"] = BatchEvaluator::simdActive() ? 1 : 0;
    return r;
}

/** The historical per-call scalar spec (fresh CostResult per eval). */
BenchResult
benchEvalScalar(const BenchConfig &cfg)
{
    constexpr int kTriples = 256;
    constexpr int kPasses = 20;
    auto triples = makeTriples(cfg.seed, kTriples);
    BenchResult r;
    r.name = "eval_scalar";
    r.kind = "eval";
    r.evalsPerIter = static_cast<std::int64_t>(kTriples) * kPasses;
    auto secs = timeIters(cfg, [&] {
        for (int p = 0; p < kPasses; ++p)
            for (const auto &t : triples) {
                CostResult cr = evaluateMapping(t.ba, t.m);
                // The result feeds the post-run checksum only; keep the
                // call from being optimized out.
                if (cr.cycles < 0)
                    std::abort();
            }
    });
    finalize(r, secs);

    double checksum = 0;
    for (const auto &t : triples) {
        const CostResult cr = evaluateMapping(t.ba, t.m);
        checksum += cr.valid ? cr.totalEnergyPj : 0.0;
    }
    r.extra["checksum"] = checksum;
    return r;
}

/** Batched engine throughput on one conv layer, cache bypassed. */
BenchResult
benchBatchConv(const BenchConfig &cfg)
{
    ConvShape sh;
    sh.n = 1;
    sh.k = 64;
    sh.c = 64;
    sh.p = 28;
    sh.q = 28;
    sh.r = 3;
    sh.s = 3;
    Workload wl = makeConv2D(sh);
    ArchSpec arch = makeConventional();
    BoundArch ba(arch, wl);

    constexpr int kBatch = 512;
    constexpr int kPasses = 4;
    std::mt19937_64 rng = diffcheckTrialRng(cfg.seed);
    std::vector<Mapping> ms;
    ms.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i)
        ms.push_back(randomDiffcheckMapping(ba, rng));

    EvalEngine engine(EvalEngineOptions{.threads = cfg.threads});
    const EvalEngine::Context ctx = engine.context(ba);
    std::vector<CostResult> res;

    BenchResult r;
    r.name = "batch_conv";
    r.kind = "batch";
    r.evalsPerIter = static_cast<std::int64_t>(kBatch) * kPasses;
    auto secs = timeIters(cfg, [&] {
        for (int p = 0; p < kPasses; ++p)
            engine.evaluateBatch(ctx, ms, {},
                                 EvalEngine::CachePolicy::Bypass, res);
    });
    finalize(r, secs);
    r.extra["batch_size"] = kBatch;

    // Deterministic reduction over the final batch results, in index
    // order, outside the timed region: a pure function of the seed.
    double checksum = 0;
    for (const CostResult &cr : res)
        checksum += cr.valid ? cr.totalEnergyPj : 0.0;
    r.extra["checksum"] = checksum;
    return r;
}

/** End-to-end Sunstone search; evals/sec from engine counter deltas. */
BenchResult
benchSearch(const BenchConfig &cfg, const std::string &archName)
{
    ConvShape sh;
    sh.n = 1;
    sh.k = 64;
    sh.c = 64;
    sh.p = 28;
    sh.q = 28;
    sh.r = 3;
    sh.s = 3;
    Workload wl = makeConv2D(sh);
    ArchSpec arch =
        archName == "simba" ? makeSimbaLike() : makeConventional();
    BoundArch ba(arch, wl);

    BenchResult r;
    r.name = "search_" + archName;
    r.kind = "search";
    std::int64_t evals = 0;
    double edp = 0;
    auto secs = timeIters(cfg, [&] {
        // A fresh engine per iteration: every repeat pays the same cold
        // memo/prefix caches, so iterations are comparable.
        EvalEngine engine(EvalEngineOptions{.threads = cfg.threads});
        SunstoneOptions opts;
        opts.threads = cfg.threads;
        SearchContext sc(&engine, cfg.policy);
        SunstoneResult sr = sunstoneOptimize(sc, ba, opts);
        evals = engine.stats().evaluations;
        edp = sr.found ? sr.cost.edp : -1;
    });
    r.evalsPerIter = evals; // count of the last iteration (deterministic
                            // up to alpha-beta thread interleaving)
    finalize(r, secs);
    r.extra["edp"] = edp;
    r.extra["search_seconds_best"] = r.bestSeconds;
    return r;
}

// -- search_ttq: surrogate / warm-start time-to-quality ---------------

/** One seeded timeloop search leg of the search_ttq benchmark. */
struct TtqRun
{
    std::string label; // "off" | "on" | "warm"
    double finalMetric = 0;
    std::int64_t evaluations = 0; // full-model evals consumed
    double seconds = 0;
    /** Evals until within 1% of the baseline (off) best; -1 = never. */
    std::int64_t evalsToBand = -1;
    std::vector<obs::ConvergencePoint> points;
};

/** First evaluation count at which metric enters target*1.01. */
std::int64_t
evalsToBand(const std::vector<obs::ConvergencePoint> &pts, double target)
{
    for (const obs::ConvergencePoint &p : pts)
        if (p.metric <= target * 1.01)
            return p.evaluations;
    return -1;
}

TtqRun
runTtqLeg(const BenchConfig &cfg, const BoundArch &ba, const char *label,
          bool surrogateOn, const std::vector<Mapping> &seeds,
          MapperResult *mrOut = nullptr)
{
    TtqRun run;
    run.label = label;

    EvalEngine engine(EvalEngineOptions{.threads = cfg.threads});
    obs::ConvergenceRecorder rec;
    StopPolicy policy = cfg.policy;
    if (policy.maxEvals <= 0)
        policy.maxEvals = 8000;
    if (policy.plateau <= 0)
        policy.plateau = policy.maxEvals;
    SearchContext sc(&engine, policy, &rec);
    sc.setSeed(cfg.seed);
    SurrogateOptions so;
    so.enabled = surrogateOn;
    sc.setSurrogate(so);
    if (!seeds.empty())
        sc.setWarmStarts(seeds);

    // The slow (conservative) Timeloop profile, with the wall-clock cap
    // lifted: the leg is bounded by max-evals/plateau only, so the
    // evaluation trajectory is a pure function of the seed.
    TimeloopOptions to = TimeloopOptions::slow();
    to.threads = cfg.threads;
    to.maxSeconds = 1e9;
    TimeloopMapper tl(to);

    Timer t;
    MapperResult mr = tl.optimize(sc, ba);
    run.seconds = t.seconds();
    run.finalMetric = mr.found && !mr.invalid ? mr.cost.edp : -1;
    run.evaluations = engine.stats().evaluations;
    const auto trajs = rec.trajectories();
    if (!trajs.empty())
        run.points = trajs.back()->points();
    if (mrOut)
        *mrOut = mr;
    return run;
}

/** One search_ttq workload: baseline, surrogate-on, warm repeat. */
struct TtqWorkload
{
    std::string name;
    std::vector<TtqRun> runs;
    double evalReduction = 0; // surrogate-on vs baseline, to 1% band
    double warmReduction = 0; // warm repeat vs baseline, to 1% band
    bool onWithin1pct = false;
};

TtqWorkload
benchTtqWorkload(const BenchConfig &cfg, const std::string &name,
                 const Workload &wl)
{
    ArchSpec arch = makeConventional();
    BoundArch ba(arch, wl);

    TtqWorkload w;
    w.name = name;

    MapperResult coldBest;
    TtqRun off = runTtqLeg(cfg, ba, "off", false, {}, &coldBest);
    TtqRun on = runTtqLeg(cfg, ba, "on", true, {});

    // Warm repeat: the baseline's best seeds a fresh run of the same
    // layer through the store's query/adapt path (exactly what
    // --warmstart-store does on a repeated shape).
    WarmStartStore store;
    std::vector<Mapping> seeds;
    if (coldBest.found && !coldBest.invalid) {
        store.record(ba, name, coldBest.cost.edp, coldBest.mapping);
        seeds = store.query(ba);
    }
    TtqRun warm = runTtqLeg(cfg, ba, "warm", false, seeds);

    // Target quality is the baseline's final best. The baseline's own
    // entry is the evaluation count at which it locked that best in
    // (its last improvement) — the full price of producing the target —
    // while the on/warm entries are their first step into the 1% band
    // around it: "reaches within 1% of the baseline best with N% fewer
    // evaluations than the baseline spent finding it".
    const double target = off.finalMetric;
    for (const obs::ConvergencePoint &p : off.points)
        if (p.metric <= target) {
            off.evalsToBand = p.evaluations;
            break;
        }
    on.evalsToBand = evalsToBand(on.points, target);
    warm.evalsToBand = evalsToBand(warm.points, target);
    if (off.evalsToBand > 0 && on.evalsToBand > 0)
        w.evalReduction = 1.0 - static_cast<double>(on.evalsToBand) /
                                    static_cast<double>(off.evalsToBand);
    if (off.evalsToBand > 0 && warm.evalsToBand > 0)
        w.warmReduction = 1.0 - static_cast<double>(warm.evalsToBand) /
                                    static_cast<double>(off.evalsToBand);
    w.onWithin1pct = on.finalMetric > 0 && target > 0 &&
                     on.finalMetric <= target * 1.01;
    w.runs = {std::move(off), std::move(on), std::move(warm)};
    return w;
}

std::string
ttqToJson(const BenchConfig &cfg, const std::vector<TtqWorkload> &wls)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"schema\": \"sunstone-search-ttq-v1\""
       << ", \"seed\": " << cfg.seed << ", \"threads\": " << cfg.threads
       << ", \"workloads\": [";
    for (std::size_t i = 0; i < wls.size(); ++i) {
        const TtqWorkload &w = wls[i];
        if (i)
            os << ", ";
        os << "{\"name\": \"" << w.name << "\""
           << ", \"baseline_best\": " << w.runs[0].finalMetric
           << ", \"eval_reduction\": " << w.evalReduction
           << ", \"warm_reduction\": " << w.warmReduction
           << ", \"on_within_1pct\": "
           << (w.onWithin1pct ? "true" : "false") << ", \"runs\": [";
        for (std::size_t j = 0; j < w.runs.size(); ++j) {
            const TtqRun &r = w.runs[j];
            if (j)
                os << ", ";
            os << "{\"label\": \"" << r.label << "\""
               << ", \"final_metric\": " << r.finalMetric
               << ", \"evaluations\": " << r.evaluations
               << ", \"seconds\": " << r.seconds
               << ", \"evals_to_band\": " << r.evalsToBand
               << ", \"trajectory\": [";
            for (std::size_t k = 0; k < r.points.size(); ++k) {
                const obs::ConvergencePoint &p = r.points[k];
                if (k)
                    os << ", ";
                os << "{\"evaluations\": " << p.evaluations
                   << ", \"metric\": " << p.metric
                   << ", \"seconds\": " << p.seconds << "}";
            }
            os << "]}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

/**
 * Runs the two search_ttq workloads, writes --search-out, and appends
 * one summary row per workload to the main results table. Single-shot:
 * its numbers are evaluation counts, deterministic under the seed.
 */
bool
benchSearchTtq(const BenchConfig &cfg, std::vector<BenchResult> &results)
{
    std::vector<std::pair<std::string, Workload>> wls;
    {
        ConvShape sh;
        sh.n = 1;
        sh.k = 128;
        sh.c = 128;
        sh.p = 56;
        sh.q = 56;
        sh.r = 3;
        sh.s = 3;
        wls.emplace_back("conv_n1k128c128p56", makeConv2D(sh));
    }
    wls.emplace_back(
        "matmul_1024x1024x64",
        parseEinsum("mm", "out[i,j] = A[i,k] * B[k,j]",
                    {{"i", 1024}, {"j", 1024}, {"k", 64}}));

    std::vector<TtqWorkload> done;
    for (const auto &[name, wl] : wls) {
        TtqWorkload w = benchTtqWorkload(cfg, name, wl);

        BenchResult r;
        r.name = "search_ttq_" + name;
        r.kind = "search";
        r.evalsPerIter = w.runs[0].evaluations;
        finalize(r, {w.runs[0].seconds + w.runs[1].seconds +
                     w.runs[2].seconds});
        r.extra["final_off"] = w.runs[0].finalMetric;
        r.extra["final_on"] = w.runs[1].finalMetric;
        r.extra["evals_to_band_off"] =
            static_cast<double>(w.runs[0].evalsToBand);
        r.extra["evals_to_band_on"] =
            static_cast<double>(w.runs[1].evalsToBand);
        r.extra["evals_to_band_warm"] =
            static_cast<double>(w.runs[2].evalsToBand);
        r.extra["eval_reduction"] = w.evalReduction;
        r.extra["warm_reduction"] = w.warmReduction;
        r.extra["on_within_1pct"] = w.onWithin1pct ? 1 : 0;
        results.push_back(std::move(r));
        done.push_back(std::move(w));
    }

    std::ofstream os(cfg.searchOut);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", cfg.searchOut.c_str());
        return false;
    }
    os << ttqToJson(cfg, done) << "\n";
    std::printf("wrote %s\n", cfg.searchOut.c_str());
    return true;
}

std::string
toJson(const BenchConfig &cfg, const std::vector<BenchResult> &results)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"schema\": \"sunstone-bench-v1\""
       << ", \"seed\": " << cfg.seed << ", \"repeat\": " << cfg.repeat
       << ", \"warmup\": " << cfg.warmup
       << ", \"threads\": " << cfg.threads << ", \"simd_backend\": \""
       << BatchEvaluator::backendName() << "\", \"simd_active\": "
       << (BatchEvaluator::simdActive() ? "true" : "false")
       << ", \"benchmarks\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        if (i)
            os << ", ";
        os << "{\"name\": \"" << r.name << "\", \"kind\": \"" << r.kind
           << "\", \"evals_per_iter\": " << r.evalsPerIter
           << ", \"best_seconds\": " << r.bestSeconds
           << ", \"mean_seconds\": " << r.meanSeconds
           << ", \"median_seconds\": " << r.medianSeconds
           << ", \"cv\": " << r.cv
           << ", \"evals_per_sec\": " << r.evalsPerSec;
        for (const auto &[k, v] : r.extra)
            os << ", \"" << k << "\": " << v;
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // anonymous namespace

int
run(const std::map<std::string, std::string> &kv)
{
    BenchConfig cfg;
    const auto get = [&](const std::string &k) -> const std::string * {
        auto it = kv.find(k);
        return it == kv.end() ? nullptr : &it->second;
    };
    // Validated numeric parsing: every malformed or out-of-range value
    // is a clean usage error, never an exception or silent truncation.
    bool parseOk = true;
    const auto intArg = [&](const char *k, std::int64_t lo,
                            std::int64_t hi, std::int64_t dflt) {
        const auto *v = get(k);
        if (!v)
            return dflt;
        std::int64_t n = 0;
        if (!tryParseInt64(*v, n) || n < lo || n > hi) {
            std::fprintf(stderr,
                         "bench: --%s expects an integer in [%lld, %lld], "
                         "got '%s'\n",
                         k, (long long)lo, (long long)hi, v->c_str());
            parseOk = false;
            return dflt;
        }
        return n;
    };
    const auto doubleArg = [&](const char *k, double dflt) {
        const auto *v = get(k);
        if (!v)
            return dflt;
        double d = 0;
        if (!tryParseDouble(*v, d)) {
            std::fprintf(stderr,
                         "bench: --%s expects a finite number, got '%s'\n",
                         k, v->c_str());
            parseOk = false;
            return dflt;
        }
        return d;
    };
    if (const auto *v = get("seed")) {
        std::int64_t n = 0;
        if (!tryParseInt64(*v, n) || n < 0) {
            std::fprintf(stderr,
                         "bench: --seed expects a non-negative integer, "
                         "got '%s'\n",
                         v->c_str());
            parseOk = false;
        } else {
            cfg.seed = static_cast<std::uint64_t>(n);
        }
    }
    cfg.repeat = static_cast<int>(intArg("repeat", 1, 1 << 20, cfg.repeat));
    cfg.warmup = static_cast<int>(intArg("warmup", 0, 1 << 20, cfg.warmup));
    cfg.threads = static_cast<unsigned>(
        intArg("threads", 1, 4096, cfg.threads));
    if (const auto *v = get("out"))
        cfg.out = *v;
    if (const auto *v = get("search-out"))
        cfg.searchOut = *v;
    if (const auto *v = get("only"))
        cfg.only = *v;
    if (get("deadline-ms"))
        cfg.policy.deadlineSeconds = doubleArg("deadline-ms", 0) / 1000.0;
    if (get("max-evals"))
        cfg.policy.maxEvals =
            intArg("max-evals", 1, std::numeric_limits<std::int64_t>::max(),
                   0);
    if (get("plateau"))
        cfg.policy.plateau =
            intArg("plateau", 1, std::numeric_limits<std::int64_t>::max(),
                   0);
    if (!parseOk)
        return 1;

    const auto wanted = [&](const std::string &name) {
        return cfg.only.empty() || name.find(cfg.only) != std::string::npos;
    };

    // Live telemetry (DESIGN.md §14), mainly so its overhead can be
    // measured against a telemetry-off run of the same benchmarks.
    std::unique_ptr<obs::SnapshotWriter> snapshot;
    if (const auto *v = get("snapshot-json")) {
        const int interval = static_cast<int>(
            intArg("snapshot-interval-ms", 1, 1 << 30, 1000));
        if (!parseOk)
            return 1;
        snapshot = std::make_unique<obs::SnapshotWriter>(*v, interval);
        if (!snapshot->start()) {
            std::fprintf(stderr, "cannot write '%s'\n", v->c_str());
            return 1;
        }
    }
    std::unique_ptr<obs::ProgressReporter> progress;
    if (kv.count("progress")) {
        progress = std::make_unique<obs::ProgressReporter>();
        progress->start();
    }

    std::vector<BenchResult> results;
    if (wanted("eval_random"))
        results.push_back(benchEvalRandom(cfg));
    if (wanted("eval_scalar"))
        results.push_back(benchEvalScalar(cfg));
    if (wanted("batch_conv"))
        results.push_back(benchBatchConv(cfg));
    if (wanted("search_conventional"))
        results.push_back(benchSearch(cfg, "conventional"));
    if (wanted("search_simba"))
        results.push_back(benchSearch(cfg, "simba"));
    if (wanted("search_ttq") && !benchSearchTtq(cfg, results))
        return 1;

    if (progress)
        progress->stop();
    if (snapshot)
        snapshot->stop();

    std::printf("%-20s %-7s %12s %12s %14s\n", "benchmark", "kind",
                "best s", "mean s", "evals/sec");
    for (const auto &r : results)
        std::printf("%-20s %-7s %12.6f %12.6f %14.0f\n", r.name.c_str(),
                    r.kind.c_str(), r.bestSeconds, r.meanSeconds,
                    r.evalsPerSec);

    std::ofstream os(cfg.out);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", cfg.out.c_str());
        return 1;
    }
    os << toJson(cfg, results) << "\n";
    std::printf("wrote %s\n", cfg.out.c_str());
    return 0;
}

} // namespace bench
} // namespace sunstone
