/**
 * @file
 * Command-line front end to the library. Subcommands:
 *
 *   sunstone describe --einsum "<expr>" --dims k=64,c=32,...
 *       Print the inferred reuse table (Table III style).
 *
 *   sunstone map [workload opts] [--arch NAME|--arch-file F]
 *                [--mapper sunstone|timeloop|dmaze|inter|cosa|gamma|
 *                 exhaustive]
 *                [--energy] [--save-mapping F] [--save-workload F]
 *                [--stats-json F] [--trace-json F] [--metrics-json F]
 *                [--convergence-json F] [--threads N]
 *                [--deadline-ms N] [--max-evals N] [--plateau N]
 *                [--seed S] [--stop-policy F]
 *                [--checkpoint F] [--resume F]
 *       Search for a dataflow and print it with its cost breakdown.
 *
 * Search control (both map modes; see DESIGN.md §12): every search runs
 * under one StopPolicy enforced by the shared SearchDriver —
 *   --deadline-ms N    wall-clock budget (negative: expire immediately)
 *   --max-evals N      total candidate evaluations
 *   --plateau N        stop after N consecutive non-improving evals
 *   --seed S           RNG seed (results are identical at any --threads)
 *   --stop-policy F    text config (deadline_ms/max_evals/plateau/seed;
 *                      the deprecated Timeloop key `timeout` still parses
 *                      as max_consecutive_invalid, with a warning)
 *   --checkpoint F     periodically snapshot resumable search state
 *   --resume F         continue from a snapshot written by --checkpoint
 * SIGINT/SIGTERM raise the cooperative cancellation flag: the search
 * stops at the next batch boundary, writes a final checkpoint, and the
 * best-so-far result is reported with stop reason "cancelled".
 *
 * Surrogate ranking + warm starting (both map modes; DESIGN.md §15):
 *   --surrogate on|off    online linear ranker over cheap mapping
 *                         features reorders each candidate batch
 *                         best-first and, once its streaming rank
 *                         correlation clears a confidence gate, prunes
 *                         the predicted-worst tail (default off; `off`
 *                         is bit-identical to builds without the flag)
 *   --surrogate-prune F   fraction of each batch pruned once the gate
 *                         opens (default 0.5, clamped to [0, 0.95])
 *   --warmstart-store F   persistent best-mapping store; searches are
 *                         seeded from stored bests of structurally
 *                         similar layers and realized bests are
 *                         recorded back (file created when missing)
 *
 *   sunstone map --net NAME [--batch N] [--seq N] [--fuse off|greedy]
 *                [--arch ...] [--stats-json F]
 *                [--trace-json F] [--metrics-json F]
 *                [--convergence-json F]
 *       Schedule a whole network (resnet18, resnet18-fused, inception,
 *       inception-wu, alexnet, vgg16, nondnn, tcl, attention,
 *       depthwise) through the network scheduler: identical layers are
 *       deduplicated and the per-net aggregate energy/delay/EDP is
 *       reported. --seq sets the attention sequence length. With
 *       --fuse greedy, producer→consumer chains of the net's DAG whose
 *       intermediate tensors fit on chip are additionally searched as
 *       fused subgraphs (intermediates pinned on chip, DRAM traffic
 *       dropped) and each chain keeps whichever variant wins; --fuse
 *       off (the default) reproduces per-layer results exactly.
 *
 * Observability sinks (both map modes; see DESIGN.md §9):
 *   --stats-json F        one document {"result": ..., "engine": ...}
 *                         with the search outcome and the evaluation
 *                         engine's cache/latency statistics
 *   --trace-json F        Chrome trace_event JSON of the search's spans
 *                         (load into https://ui.perfetto.dev)
 *   --metrics-json F      {"engine": ..., "registry": ...} counters,
 *                         gauges, and histograms
 *   --convergence-json F  incumbent-vs-evaluations trajectories
 * --threads defaults to hardware_concurrency clamped to [2, 8].
 *
 * Live telemetry (both map modes; see DESIGN.md §14):
 *   --progress            throttled single-line progress on stderr
 *                         (units done, evals/sec, incumbent, ETA to the
 *                         dominant StopPolicy bound)
 *   --snapshot-json F     append-only JSONL time series of the metrics
 *                         registry + live per-search state; every
 *                         complete line is a parseable record even if
 *                         the process is killed mid-run
 *   --snapshot-interval-ms N  snapshot period (default 1000)
 *   --diag-dir D          on fatal signals, std::terminate, repeated
 *                         SIGINT/SIGTERM, or cancelled exit, write a
 *                         diagnostics bundle (crash.txt, events.jsonl
 *                         flight-recorder ring, metrics.json,
 *                         engine.json, trace.json) into D
 * A second SIGINT/SIGTERM while the cooperative cancellation is still
 * draining force-flushes all telemetry sinks and exits immediately.
 *
 *   sunstone report [--stats-json F] [--metrics-json F]
 *                   [--snapshot-json F] [--convergence-json F]
 *                   [--bench-json F] [--trace-json F] [--diag-dir D]
 *       Digest run artifacts offline: wall-clock attribution by
 *       phase/mapper, eval-latency percentiles, cache hit/miss
 *       breakdown, per-layer/per-chain fusion outcomes, snapshot and
 *       convergence series with time-to-quality, surrogate/warm-start
 *       counters, bench timing/CV tables (BENCH_eval.json or
 *       BENCH_search.json), span totals, flight-event tail.
 *
 *   sunstone eval --mapping F [workload opts] [--arch ...]
 *       Re-evaluate a saved mapping.
 *
 *   sunstone arch --arch NAME [--save F]
 *       Print (or save) a preset architecture config.
 *
 *   sunstone check [--trials N] [--seed S] [--no-shrink]
 *                  [--repro-prefix P] [--inject-fault top-level-reads]
 *       Differential-fuzz the analytical cost model against the
 *       loop-nest oracle on random (workload, arch, mapping) triples.
 *       On a mismatch the reproducer is shrunk to a minimal triple,
 *       printed, optionally saved as P.workload/P.arch/P.mapping, and
 *       the exit status is 1. Runs are deterministic per seed;
 *       --inject-fault plants a known model-side perturbation so the
 *       harness itself can be tested.
 *
 * Workload options: --einsum/--dims/--bits, or --workload-file F, or a
 * preset: --conv n=16,k=64,c=64,p=56,q=56,r=3,s=3[,stride=1].
 * Architectures: conventional (default), simba, eyeriss, diannao, toy,
 * or --arch-file with a config in the arch_config format.
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "arch/arch_config.hh"
#include "common/parse.hh"
#include "arch/presets.hh"
#include "core/net_scheduler.hh"
#include "core/sunstone.hh"
#include "mapping/serialize.hh"
#include "model/diffcheck.hh"
#include "mappers/cosa_mapper.hh"
#include "mappers/dmaze_mapper.hh"
#include "mappers/exhaustive_mapper.hh"
#include "mappers/gamma_mapper.hh"
#include "mappers/interstellar_mapper.hh"
#include "mappers/timeloop_mapper.hh"
#include "search/checkpoint.hh"
#include "search/stop_policy.hh"
#include "search/surrogate.hh"
#include "search/warmstart.hh"
#include "model/eval_engine.hh"
#include "obs/convergence.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/snapshot.hh"
#include "obs/thread_registry.hh"
#include "obs/trace.hh"
#include "workload/nets.hh"
#include "workload/zoo.hh"

using namespace sunstone;

namespace {

/** Minimal argv parser: --key value pairs plus the subcommand. */
struct Args
{
    std::string command;
    std::map<std::string, std::string> kv;

    bool has(const std::string &k) const { return kv.count(k) > 0; }
    std::string
    get(const std::string &k, const std::string &dflt = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    if (argc >= 2 && argv[1][0] != '-')
        a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            SUNSTONE_FATAL("expected --option, got '", key, "'");
        key = key.substr(2);
        std::string value = "1";
        // Only a following "--option" is not a value; a lone "-" or a
        // negative number ("--budget -0.5") is.
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            value = argv[++i];
        a.kv[key] = value;
    }
    return a;
}

std::vector<std::pair<std::string, std::int64_t>>
parsePairs(const std::string &text)
{
    std::vector<std::pair<std::string, std::int64_t>> out;
    std::istringstream is(text);
    std::string item;
    while (std::getline(is, item, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            SUNSTONE_FATAL("expected name=value in '", item, "'");
        std::int64_t v;
        if (!tryParseInt64(item.substr(eq + 1), v))
            SUNSTONE_FATAL("value in '", item,
                           "' is not a valid integer");
        out.emplace_back(item.substr(0, eq), v);
    }
    return out;
}

Workload
workloadFromArgs(const Args &a)
{
    if (a.has("workload-file"))
        return loadWorkloadFile(a.get("workload-file"));
    if (a.has("conv")) {
        ConvShape sh;
        for (auto &[k, v] : parsePairs(a.get("conv"))) {
            if (k == "n")
                sh.n = v;
            else if (k == "k")
                sh.k = v;
            else if (k == "c")
                sh.c = v;
            else if (k == "p")
                sh.p = v;
            else if (k == "q")
                sh.q = v;
            else if (k == "r")
                sh.r = v;
            else if (k == "s")
                sh.s = v;
            else if (k == "stride")
                sh.strideH = sh.strideW = v;
            else
                SUNSTONE_FATAL("unknown conv parameter '", k, "'");
        }
        return makeConv2D(sh);
    }
    if (!a.has("einsum") || !a.has("dims"))
        SUNSTONE_FATAL("specify a workload: --einsum + --dims, --conv, "
                       "or --workload-file");
    Workload wl = parseEinsum(a.get("name", "workload"), a.get("einsum"),
                              parsePairs(a.get("dims")));
    if (a.has("bits"))
        for (auto &[t, b] : parsePairs(a.get("bits")))
            wl.setWordBits(wl.tensorByName(t), static_cast<int>(b));
    return wl;
}

ArchSpec
archFromArgs(const Args &a)
{
    if (a.has("arch-file"))
        return loadArchFile(a.get("arch-file"));
    const std::string name = a.get("arch", "conventional");
    if (name == "conventional")
        return makeConventional();
    if (name == "simba")
        return makeSimbaLike();
    if (name == "eyeriss")
        return makeEyerissLike();
    if (name == "diannao")
        return makeDianNaoLike();
    if (name == "toy")
        return makeToyArch();
    SUNSTONE_FATAL("unknown architecture '", name,
                   "' (try conventional, simba, eyeriss, diannao, toy, "
                   "or --arch-file)");
}

void
printReuseTable(const Workload &wl)
{
    std::printf("workload: %s\n\n", wl.toString().c_str());
    std::printf("%-10s | %-14s | %-14s | %s\n", "tensor", "indexed by",
                "reused by", "partially reused by");
    auto render = [&](DimSet s) {
        std::string out;
        for (DimId d : s) {
            if (!out.empty())
                out += ",";
            out += wl.dimName(d);
        }
        return out.empty() ? std::string("-") : out;
    };
    for (TensorId t = 0; t < wl.numTensors(); ++t) {
        const TensorReuse &r = wl.reuse(t);
        std::printf("%-10s | %-14s | %-14s | %s\n",
                    wl.tensor(t).name.c_str(), render(r.indexing).c_str(),
                    render(r.fullyReusedBy).c_str(),
                    render(r.partiallyReusedBy).c_str());
    }
}

void
printCost(const BoundArch &ba, const CostResult &cost)
{
    std::printf("energy  %.6g pJ\ndelay   %.6g s\nEDP     %.6g J*s\n"
                "util    %.1f%%  (bound by %s)\n",
                cost.totalEnergyPj, cost.delaySeconds, cost.edp,
                100.0 * cost.utilization, cost.bottleneck.c_str());
    std::printf("per-level energy:");
    for (int l = 0; l < ba.numLevels(); ++l)
        std::printf(" %s=%.4g", ba.arch().levels[l].name.c_str(),
                    cost.levelEnergyPj[l]);
    std::printf(" MAC=%.4g NoC=%.4g\n", cost.macEnergyPj,
                cost.nocEnergyPj);
}

int
cmdDescribe(const Args &a)
{
    printReuseTable(workloadFromArgs(a));
    return 0;
}

void
writeStatsJson(const std::string &path, const std::string &json)
{
    std::ofstream os(path);
    if (!os)
        SUNSTONE_FATAL("cannot write '", path, "'");
    os << json << "\n";
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Cooperative cancellation: the first SIGINT/SIGTERM only raises this
 * flag; the SearchDriver polls it at batch boundaries, checkpoints, and
 * returns the best-so-far result with stop reason "cancelled", after
 * which every requested telemetry sink is written by the normal exit
 * path.
 */
std::atomic<bool> g_cancelRequested{false};
std::atomic<int> g_terminationSignals{0};

/**
 * Force-flushes telemetry when the cooperative path cannot: installed
 * by the map commands once their sinks exist, invoked on a *second*
 * SIGINT/SIGTERM. Like the crash handlers it is best-effort (allocates,
 * takes locks — not async-signal-safe), but at that point the process
 * is exiting regardless and partial telemetry beats none.
 */
std::function<void()> g_signalFlush;

void
onTerminationSignal(int sig)
{
    if (g_terminationSignals.fetch_add(1) == 0) {
        g_cancelRequested.store(true);
        return;
    }
    // Second signal: the search is stuck or draining too slowly. Flush
    // what we can and exit with the conventional signal status.
    if (g_signalFlush)
        g_signalFlush();
    std::_Exit(128 + sig);
}

void
installCancellationHandler()
{
    std::signal(SIGINT, onTerminationSignal);
    std::signal(SIGTERM, onTerminationSignal);
}

/**
 * Parses a strictly positive integer flag; fatal() with the offending
 * text on junk, trailing garbage, overflow, or values <= 0 (the zoo
 * builders would otherwise build degenerate shapes from them). The
 * shared validator for every positive-integer flag — --threads, --beam,
 * --snapshot-interval-ms, --batch, --seq — so zero, negative, overflown,
 * and garbage values all die with the same clean usage error instead of
 * an uncaught std::stoi exception.
 */
std::int64_t
positiveArg(const Args &a, const char *name)
{
    const std::string v = a.get(name);
    std::int64_t x = 0;
    if (!tryParseInt64(v, x))
        SUNSTONE_FATAL("--", name, " expects a positive integer, got '",
                       v, "'");
    if (x <= 0)
        SUNSTONE_FATAL("--", name, " must be > 0, got '", v, "'");
    return x;
}

/** positiveArg with an inclusive upper bound, for flags that feed
 *  fixed-width consumers (thread counts, beam widths, intervals). */
std::int64_t
positiveArg(const Args &a, const char *name, std::int64_t max_value)
{
    const std::int64_t x = positiveArg(a, name);
    if (x > max_value)
        SUNSTONE_FATAL("--", name, " must be <= ", max_value, ", got '",
                       a.get(name), "'");
    return x;
}

/**
 * Parses a finite double flag; fatal() on junk, trailing garbage, or
 * inf/nan. Negative values pass — "--budget -0.5" is a legal
 * instantly-expiring budget (see test_cli OptionValuesMayBeNegative-
 * Numbers).
 */
double
finiteArg(const Args &a, const char *name)
{
    const std::string v = a.get(name);
    double x = 0;
    if (!tryParseDouble(v, x))
        SUNSTONE_FATAL("--", name, " expects a finite number, got '", v,
                       "'");
    return x;
}

/**
 * Builds the unified StopPolicy from --stop-policy (lowest precedence),
 * then the individual flags, and attaches the cancellation flag. A
 * `seed` key / --seed lands in `seed`.
 */
StopPolicy
stopPolicyFromArgs(const Args &a, std::optional<std::uint64_t> &seed)
{
    StopPolicy p;
    if (a.has("stop-policy")) {
        std::string err;
        if (!loadStopPolicyFile(a.get("stop-policy"), p, &seed, &err))
            SUNSTONE_FATAL("bad --stop-policy '", a.get("stop-policy"),
                           "': ", err);
    }
    if (a.has("deadline-ms"))
        p.deadlineSeconds = finiteArg(a, "deadline-ms") / 1000.0;
    std::int64_t v;
    if (a.has("max-evals")) {
        if (!tryParseInt64(a.get("max-evals"), v) || v < 1)
            SUNSTONE_FATAL("--max-evals needs a positive integer");
        p.maxEvals = v;
    }
    if (a.has("plateau")) {
        if (!tryParseInt64(a.get("plateau"), v) || v < 1)
            SUNSTONE_FATAL("--plateau needs a positive integer");
        p.plateau = v;
    }
    if (a.has("seed")) {
        if (!tryParseInt64(a.get("seed"), v) || v < 0)
            SUNSTONE_FATAL("--seed needs a non-negative integer");
        seed = static_cast<std::uint64_t>(v);
    }
    p.cancel = &g_cancelRequested;
    return p;
}

/**
 * Parses --surrogate on|off and --surrogate-prune into SurrogateOptions.
 * --surrogate-prune without --surrogate on is rejected — silently
 * ignoring it would misreport what the run did.
 */
SurrogateOptions
surrogateFromArgs(const Args &a)
{
    SurrogateOptions o;
    if (a.has("surrogate")) {
        const std::string v = a.get("surrogate");
        if (v == "on")
            o.enabled = true;
        else if (v != "off")
            SUNSTONE_FATAL("--surrogate expects 'on' or 'off', got '", v,
                           "'");
    }
    if (a.has("surrogate-prune")) {
        if (!o.enabled)
            SUNSTONE_FATAL("--surrogate-prune requires --surrogate on");
        const double f = finiteArg(a, "surrogate-prune");
        if (f < 0 || f > 0.95)
            SUNSTONE_FATAL("--surrogate-prune must be in [0, 0.95], "
                           "got '",
                           a.get("surrogate-prune"), "'");
        o.pruneFraction = f;
    }
    return o;
}

/**
 * Builds the SearchContext every search in `map` runs under: StopPolicy
 * and seed from the flags, the shared engine, the convergence sink, the
 * surrogate configuration, and the checkpoint/resume configuration.
 */
SearchContext
searchContextFromArgs(const Args &a, EvalEngine &engine,
                      obs::ConvergenceRecorder *convergence)
{
    installCancellationHandler();
    std::optional<std::uint64_t> seed;
    SearchContext sc(&engine, stopPolicyFromArgs(a, seed), convergence);
    if (seed)
        sc.setSeed(*seed);
    sc.setSurrogate(surrogateFromArgs(a));
    if (a.has("checkpoint"))
        sc.setCheckpointPath(a.get("checkpoint"));
    if (a.has("resume")) {
        SearchCheckpoint ck;
        std::string err;
        if (!SearchCheckpoint::load(a.get("resume"), ck, &err))
            SUNSTONE_FATAL("cannot resume from '", a.get("resume"),
                           "': ", err);
        sc.setResume(std::move(ck));
    }
    return sc;
}

unsigned
threadsFromArgs(const Args &a)
{
    if (a.has("threads"))
        return static_cast<unsigned>(positiveArg(a, "threads", 4096));
    // Default to a small pool so traces show real parallelism even on
    // boxes where hardware_concurrency() reports 1 (CI containers).
    return std::clamp(std::thread::hardware_concurrency(), 2u, 8u);
}

/**
 * Shared handling of the three observability sinks. Construction enables
 * the tracer when --trace-json is given; write() renders every requested
 * file once the search has quiesced.
 */
struct ObsSinks
{
    std::string tracePath, metricsPath, convergencePath;
    obs::ConvergenceRecorder recorder;

    explicit ObsSinks(const Args &a)
        : tracePath(a.get("trace-json")),
          metricsPath(a.get("metrics-json")),
          convergencePath(a.get("convergence-json"))
    {
        if (!tracePath.empty())
            obs::tracer().setEnabled(true);
    }

    /** @return the recorder, or nullptr when no sink was requested. */
    obs::ConvergenceRecorder *
    convergence()
    {
        return convergencePath.empty() ? nullptr : &recorder;
    }

    void
    write(const EvalEngine &engine)
    {
        flush(engine, /*best_effort=*/false);
    }

    /**
     * Renders every requested sink. The best-effort variant (the
     * forced-exit signal path) neither fatals nor prints — it just gets
     * as much telemetry to disk as it can.
     */
    void
    flush(const EvalEngine &engine, bool best_effort)
    {
        if (!tracePath.empty()) {
            obs::tracer().setEnabled(false);
            const bool ok = obs::tracer().writeChromeJson(tracePath);
            if (!ok && !best_effort)
                SUNSTONE_FATAL("cannot write '", tracePath, "'");
            if (!best_effort)
                std::printf("wrote %s\n", tracePath.c_str());
        }
        if (!metricsPath.empty()) {
            const std::string doc =
                "{\"engine\": " + engine.stats().toJson() +
                ", \"registry\": " + obs::metrics().toJson() + "}";
            if (best_effort) {
                std::ofstream os(metricsPath);
                os << doc << "\n";
            } else {
                writeStatsJson(metricsPath, doc);
            }
        }
        if (!convergencePath.empty()) {
            const bool ok = recorder.writeJson(convergencePath);
            if (!ok && !best_effort)
                SUNSTONE_FATAL("cannot write '", convergencePath, "'");
            if (!best_effort)
                std::printf("wrote %s\n", convergencePath.c_str());
        }
    }
};

/**
 * The live-telemetry bundle (DESIGN.md §14): --progress, --snapshot-json
 * [--snapshot-interval-ms], and --diag-dir, shared by both map modes.
 * start() must run before the search, stop() after it has quiesced (the
 * destructor stops too). While active, a second SIGINT/SIGTERM and the
 * fatal-signal handlers can flush everything the run has produced.
 */
struct LiveTelemetry
{
    std::unique_ptr<obs::SnapshotWriter> snapshot;
    std::unique_ptr<obs::ProgressReporter> progress;
    bool diag = false;

    LiveTelemetry(const Args &a, EvalEngine &engine)
    {
        if (a.has("snapshot-json")) {
            int interval = 1000;
            if (a.has("snapshot-interval-ms"))
                interval = static_cast<int>(
                    positiveArg(a, "snapshot-interval-ms", 1 << 30));
            snapshot = std::make_unique<obs::SnapshotWriter>(
                a.get("snapshot-json"), interval);
            snapshot->setExtraProvider([&engine] {
                return "{\"engine\": " + engine.stats().toJson() + "}";
            });
        }
        if (a.has("progress"))
            progress = std::make_unique<obs::ProgressReporter>();
        if (a.has("diag-dir")) {
            diag = true;
            obs::setDiagDir(a.get("diag-dir"));
            obs::setDiagExtraProvider([&engine] {
                return "{\"engine\": " + engine.stats().toJson() + "}";
            });
            obs::installCrashHandlers();
        }
    }

    ~LiveTelemetry() { stop(); }

    void
    start()
    {
        if (snapshot && !snapshot->start())
            SUNSTONE_FATAL("cannot write '", snapshot->path(), "'");
        if (progress)
            progress->start();
    }

    /**
     * Stops the threads, writes the cooperative-cancellation diag
     * bundle when one was requested, and detaches the global providers
     * (they capture the engine, which dies with the command).
     */
    void
    stop()
    {
        if (progress)
            progress->stop();
        if (snapshot)
            snapshot->stop();
        if (diag) {
            if (g_terminationSignals.load() > 0)
                obs::writeDiagBundle("termination signal (cooperative)");
            obs::setDiagExtraProvider(nullptr);
            diag = false;
        }
    }
};

/** The "result" half of the --stats-json document for single-layer map. */
std::string
mapperResultJson(const std::string &mapper, const MapperResult &mr)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"mapper\": \"" << mapper << "\", \"found\": "
       << (mr.found ? "true" : "false")
       << ", \"stop_reason\": \"" << mr.stopReason << "\""
       << ", \"seconds\": " << mr.seconds
       << ", \"mappings_evaluated\": " << mr.mappingsEvaluated;
    if (mr.found)
        os << ", \"energy_pj\": " << mr.cost.totalEnergyPj
           << ", \"delay_seconds\": " << mr.cost.delaySeconds
           << ", \"edp\": " << mr.cost.edp
           << ", \"utilization\": " << mr.cost.utilization;
    os << "}";
    return os.str();
}

NetGraph
netGraphFromArgs(const Args &a)
{
    const std::string net = a.get("net");
    const std::int64_t batch =
        a.has("batch") ? positiveArg(a, "batch") : -1;
    auto b = [&](std::int64_t dflt) { return batch > 0 ? batch : dflt; };
    // --seq names the sequence length of attention nets; --batch is
    // accepted there too for backward compatibility.
    const std::int64_t seq =
        a.has("seq") ? positiveArg(a, "seq") : b(512);
    if (net == "resnet18")
        return NetGraph::fromLayers(resnet18Layers(b(16)));
    if (net == "resnet18-fused")
        return resnet18Graph(b(16));
    if (net == "inception")
        return NetGraph::fromLayers(inceptionV3Layers(b(16)));
    if (net == "inception-wu")
        return NetGraph::fromLayers(inceptionV3WeightUpdateLayers(b(16)));
    if (net == "alexnet")
        return NetGraph::fromLayers(alexnetLayers(b(4)));
    if (net == "vgg16")
        return NetGraph::fromLayers(vgg16Layers(b(4)));
    if (net == "nondnn")
        return NetGraph::fromLayers(nonDnnSuite());
    if (net == "tcl")
        return NetGraph::fromLayers(tclSuite());
    if (net == "attention")
        return attentionGraph(seq);
    if (net == "depthwise")
        return NetGraph::fromLayers(depthwiseSuite(b(4)));
    SUNSTONE_FATAL("unknown net '", net,
                   "' (try resnet18, resnet18-fused, inception, "
                   "inception-wu, alexnet, vgg16, nondnn, tcl, "
                   "attention, depthwise)");
}

FusionMode
fusionFromArgs(const Args &a)
{
    const std::string v = a.get("fuse", "off");
    if (v == "off")
        return FusionMode::Off;
    if (v == "greedy")
        return FusionMode::Greedy;
    SUNSTONE_FATAL("--fuse expects 'off' or 'greedy', got '", v, "'");
}

int
cmdMapNet(const Args &a)
{
    ArchSpec arch = archFromArgs(a);
    NetGraph graph = netGraphFromArgs(a);
    if (a.get("arch") == "simba" && !a.has("bits"))
        for (int i = 0; i < graph.numNodes(); ++i)
            applySimbaPrecisions(graph.node(i).workload);

    ObsSinks sinks(a);
    NetSchedulerOptions opts;
    opts.fusion = fusionFromArgs(a);
    opts.warmstartStore = a.get("warmstart-store");
    opts.sunstone.optimizeEdp = !a.has("energy");
    if (a.has("beam"))
        opts.sunstone.beamWidth =
            static_cast<int>(positiveArg(a, "beam", 1 << 30));
    opts.sunstone.threads = threadsFromArgs(a);
    EvalEngine engine(
        EvalEngineOptions{.threads = opts.sunstone.threads});
    opts.engine = &engine;

    SearchContext sc = searchContextFromArgs(a, engine,
                                             sinks.convergence());
    LiveTelemetry telemetry(a, engine);
    g_signalFlush = [&] {
        if (telemetry.snapshot)
            telemetry.snapshot->writeNow();
        sinks.flush(engine, /*best_effort=*/true);
        obs::writeDiagBundle("forced exit: repeated termination signal");
    };
    telemetry.start();
    NetScheduleResult r = scheduleNet(sc, arch, graph, opts);
    telemetry.stop();

    std::printf("%-12s | %5s | %10s | %12s | %8s | %s\n", "layer",
                "count", "EDP", "energy pJ", "time s", "via");
    for (const auto &l : r.layers) {
        const char *via = l.deduplicated ? "dedup"
                          : l.fused      ? "fused"
                                         : "search";
        if (l.found)
            std::printf("%-12s | %5d | %10.3g | %12.4g | %8.3f | %s\n",
                        l.name.c_str(), l.count, l.cost.edp,
                        l.cost.totalEnergyPj, l.seconds, via);
        else
            std::printf("%-12s | %5d | %10s | %12s | %8.3f | %s\n",
                        l.name.c_str(), l.count, "invalid", "-",
                        l.seconds, via);
    }
    std::printf("\nnetwork: %d layers (%d unique searched)\n",
                r.layersTotal, r.layersUnique);
    if (!r.fusionMode.empty())
        std::printf("fusion: %d of %d fusable chains fused (%d ops "
                    "scheduled fused)\n",
                    r.groupsFused, r.groupsFusable, r.opsFused);
    std::printf("total energy %.6g pJ, total delay %.6g s, "
                "EDP %.6g J*s\n",
                r.totalEnergyPj, r.totalDelaySeconds, r.totalEdp);
    std::printf("engine: %lld evaluations, %lld cache hits, "
                "%lld misses, %lld prunes (%.2f s)\n",
                static_cast<long long>(r.stats.evaluations),
                static_cast<long long>(r.stats.cacheHits),
                static_cast<long long>(r.stats.cacheMisses),
                static_cast<long long>(r.stats.prunes), r.seconds);
    if (a.has("stats-json"))
        writeStatsJson(a.get("stats-json"),
                       "{\"result\": " + r.toJson() + ", \"engine\": " +
                           engine.stats().toJson() + "}");
    sinks.write(engine);
    g_signalFlush = nullptr;
    return r.allFound ? 0 : 1;
}

int
cmdMap(const Args &a)
{
    if (a.has("net")) {
        // --net always runs the Sunstone network scheduler; a --mapper
        // flag would be silently ignored, so reject the combination.
        if (a.has("mapper"))
            SUNSTONE_FATAL("--mapper cannot be combined with --net; "
                           "network search always uses the Sunstone "
                           "scheduler");
        return cmdMapNet(a);
    }
    Workload wl = workloadFromArgs(a);
    ArchSpec arch = archFromArgs(a);
    if (a.get("arch") == "simba" && !a.has("bits"))
        applySimbaPrecisions(wl);
    BoundArch ba(arch, wl);

    const std::string mapper = a.get("mapper", "sunstone");
    const bool edp = !a.has("energy");
    const unsigned threads = threadsFromArgs(a);
    ObsSinks sinks(a);
    EvalEngine engine(EvalEngineOptions{.threads = threads});
    SearchContext sc = searchContextFromArgs(a, engine,
                                             sinks.convergence());
    // Warm starting for a single-layer search: seed from the stored
    // bests of similar shapes, record the realized best back after the
    // search. A missing store file is an empty store, not an error.
    WarmStartStore wstore;
    const std::string wsPath = a.get("warmstart-store");
    if (!wsPath.empty()) {
        std::string err;
        std::ifstream probe(wsPath);
        if (probe.good() && !wstore.load(wsPath, &err))
            SUNSTONE_FATAL("bad --warmstart-store '", wsPath, "': ",
                           err);
        sc.setWarmStarts(wstore.query(ba));
    }
    LiveTelemetry telemetry(a, engine);
    g_signalFlush = [&] {
        if (telemetry.snapshot)
            telemetry.snapshot->writeNow();
        sinks.flush(engine, /*best_effort=*/true);
        obs::writeDiagBundle("forced exit: repeated termination signal");
    };
    telemetry.start();
    MapperResult mr;
    if (mapper == "sunstone") {
        SunstoneOptions opts;
        opts.optimizeEdp = edp;
        if (a.has("beam"))
            opts.beamWidth =
                static_cast<int>(positiveArg(a, "beam", 1 << 30));
        opts.threads = threads;
        SunstoneResult r = sunstoneOptimize(sc, ba, opts);
        mr.found = r.found;
        mr.mapping = r.mapping;
        mr.cost = r.cost;
        mr.seconds = r.seconds;
        mr.mappingsEvaluated = r.candidatesExamined;
        mr.stopReason = r.stopReason;
        if (!r.found) {
            mr.invalid = true;
            mr.invalidReason = "search produced no valid mapping";
        }
    } else if (mapper == "timeloop") {
        TimeloopOptions opts = TimeloopOptions::slow();
        opts.optimizeEdp = edp;
        opts.threads = threads;
        if (a.has("budget"))
            opts.maxSeconds = finiteArg(a, "budget");
        mr = TimeloopMapper(opts).optimize(sc, ba);
    } else if (mapper == "dmaze") {
        mr = DMazeMapper(DMazeOptions::slow()).optimize(sc, ba);
    } else if (mapper == "inter") {
        mr = InterstellarMapper(InterstellarOptions{}).optimize(sc, ba);
    } else if (mapper == "cosa") {
        mr = CosaMapper(CosaOptions{}).optimize(sc, ba);
    } else if (mapper == "gamma") {
        GammaOptions opts;
        opts.optimizeEdp = edp;
        mr = GammaMapper(opts).optimize(sc, ba);
    } else if (mapper == "exhaustive") {
        ExhaustiveOptions opts;
        opts.optimizeEdp = edp;
        mr = ExhaustiveMapper(opts).optimize(sc, ba);
    } else {
        SUNSTONE_FATAL("unknown mapper '", mapper, "'");
    }
    telemetry.stop();
    if (a.has("stats-json"))
        writeStatsJson(a.get("stats-json"),
                       "{\"result\": " + mapperResultJson(mapper, mr) +
                           ", \"engine\": " + engine.stats().toJson() +
                           "}");
    sinks.write(engine);
    g_signalFlush = nullptr;

    if (!mr.found) {
        std::printf("no valid mapping found: %s\n",
                    mr.invalidReason.c_str());
        return 1;
    }
    if (!wsPath.empty() &&
        wstore.record(ba, wl.name(), mr.cost.edp, mr.mapping)) {
        if (!wstore.save(wsPath))
            SUNSTONE_FATAL("cannot write '", wsPath, "'");
    }
    std::printf("mapper  %s (%.3f s, %lld candidates, stop: %s)\n\n",
                mapper.c_str(), mr.seconds,
                static_cast<long long>(mr.mappingsEvaluated),
                mr.stopReason.empty() ? "exhausted"
                                      : mr.stopReason.c_str());
    std::printf("%s\n", mr.mapping.toString(ba).c_str());
    printCost(ba, mr.cost);
    if (a.has("save-mapping"))
        saveMappingFile(mr.mapping, ba, a.get("save-mapping"));
    if (a.has("save-workload"))
        saveWorkloadFile(wl, a.get("save-workload"));
    return 0;
}

int
cmdEval(const Args &a)
{
    Workload wl = workloadFromArgs(a);
    ArchSpec arch = archFromArgs(a);
    BoundArch ba(arch, wl);
    if (!a.has("mapping"))
        SUNSTONE_FATAL("eval needs --mapping <file>");
    Mapping m = loadMappingFile(a.get("mapping"), ba);
    CostResult cost = evaluateMapping(ba, m);
    if (!cost.valid) {
        std::printf("mapping is INVALID: %s\n",
                    cost.invalidReason.c_str());
        return 1;
    }
    std::printf("%s\n", m.toString(ba).c_str());
    printCost(ba, cost);
    return 0;
}

int
cmdArch(const Args &a)
{
    ArchSpec arch = archFromArgs(a);
    if (a.has("save")) {
        saveArchFile(arch, a.get("save"));
        std::printf("wrote %s\n", a.get("save").c_str());
    } else {
        std::printf("%s", archToText(arch).c_str());
    }
    return 0;
}

int
cmdCheck(const Args &a)
{
    DiffcheckOptions opts;
    std::int64_t v;
    if (a.has("trials")) {
        if (!tryParseInt64(a.get("trials"), v) || v < 1)
            SUNSTONE_FATAL("--trials needs a positive integer");
        opts.trials = static_cast<int>(v);
    }
    if (a.has("seed")) {
        if (!tryParseInt64(a.get("seed"), v) || v < 0)
            SUNSTONE_FATAL("--seed needs a non-negative integer");
        opts.seed = static_cast<std::uint64_t>(v);
    }
    opts.shrink = !a.has("no-shrink");
    if (a.has("inject-fault")) {
        const std::string f = a.get("inject-fault");
        if (f == "top-level-reads")
            opts.fault = DiffcheckOptions::Fault::TopLevelReads;
        else
            SUNSTONE_FATAL("unknown fault '", f,
                           "' (known: top-level-reads)");
    }
    opts.log = [](const std::string &s) {
        std::printf("%s\n", s.c_str());
    };

    const DiffcheckReport rep = runDiffcheck(opts);
    if (rep.ok()) {
        std::printf("check: %d trials, model and oracle agree\n",
                    rep.trialsRun);
        return 0;
    }

    const DiffcheckMismatch &mm = rep.first;
    std::printf("check: FAILED -- %s\n", mm.summary.c_str());
    std::printf("--- minimized workload ---\n%s", mm.workloadText.c_str());
    std::printf("--- minimized arch ---\n%s", mm.archText.c_str());
    std::printf("--- minimized mapping ---\n%s", mm.mappingText.c_str());
    if (a.has("repro-prefix")) {
        const std::string p = a.get("repro-prefix");
        const auto dump = [](const std::string &path,
                             const std::string &text) {
            std::ofstream f(path);
            if (!f)
                SUNSTONE_FATAL("cannot write '", path, "'");
            f << text;
        };
        dump(p + ".workload", mm.workloadText);
        dump(p + ".arch", mm.archText);
        dump(p + ".mapping", mm.mappingText);
        std::printf("repro written to %s.{workload,arch,mapping}\n",
                    p.c_str());
    }
    return 1;
}

void
usage()
{
    std::printf(
        "usage: sunstone <describe|map|eval|arch|check|bench|report> "
        "[options]\n"
        "see the header of tools/sunstone_cli.cc for the full option "
        "list\n");
}

} // anonymous namespace

namespace sunstone {
namespace bench {
// Implemented in tools/bench.cc (compiled into this binary).
int run(const std::map<std::string, std::string> &kv);
} // namespace bench
namespace report {
// Implemented in tools/report.cc (compiled into this binary).
int run(const std::map<std::string, std::string> &kv);
} // namespace report
} // namespace sunstone

int
main(int argc, char **argv)
{
    obs::registerThisThread("main");
    Args a = parseArgs(argc, argv);
    if (a.command == "describe")
        return cmdDescribe(a);
    if (a.command == "map")
        return cmdMap(a);
    if (a.command == "eval")
        return cmdEval(a);
    if (a.command == "arch")
        return cmdArch(a);
    if (a.command == "check")
        return cmdCheck(a);
    if (a.command == "bench")
        return sunstone::bench::run(a.kv);
    if (a.command == "report")
        return sunstone::report::run(a.kv);
    usage();
    return a.command.empty() ? 1 : 2;
}
